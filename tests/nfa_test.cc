#include "cep/nfa.h"

#include <gtest/gtest.h>

namespace tpstream {
namespace cep {
namespace {

// Single bool field "flag".
Event Ev(bool flag, TimePoint t) { return Event({Value(flag)}, t); }

CepPattern DerivationPattern() {
  // !S S+ !S — the straw-man situation derivation (Section 1).
  CepPattern p;
  const ExprPtr flag = FieldRef(0, "flag");
  p.steps.push_back(PatternStep{"pre", Not(flag), false, {}});
  p.steps.push_back(PatternStep{
      "body", flag, true, {AggregateSpec{AggKind::kCount, -1, "n"}}});
  p.steps.push_back(PatternStep{"post", Not(flag), false, {}});
  return p;
}

TEST(NfaEngineTest, DerivationPatternFindsRuns) {
  std::vector<CepMatch> matches;
  NfaEngine engine(DerivationPattern(),
                   [&](const CepMatch& m) { matches.push_back(m); });
  // flags: F T T T F T F
  const bool flags[] = {false, true, true, true, false, true, false};
  for (int i = 0; i < 7; ++i) engine.Push(Ev(flags[i], i + 1));

  ASSERT_EQ(matches.size(), 2u);
  // First situation: events 2..4, closed by event 5.
  EXPECT_EQ(matches[0].step_spans[1].first, 2);
  EXPECT_EQ(matches[0].step_spans[1].second, 4);
  EXPECT_EQ(matches[0].step_spans[2].first, 5);
  EXPECT_EQ(matches[0].step_aggregates[1][0].AsInt(), 3);  // count
  // Second situation: event 6, closed by event 7.
  EXPECT_EQ(matches[1].step_spans[1].first, 6);
  EXPECT_EQ(matches[1].step_spans[2].first, 7);
  EXPECT_EQ(matches[1].detected_at, 7);
}

TEST(NfaEngineTest, StrictContiguityKillsInterruptedRuns) {
  // Pattern: A (x>5) then B (x<0), strictly contiguous.
  CepPattern p;
  const ExprPtr x = FieldRef(0, "x");
  p.steps.push_back(
      PatternStep{"A", Gt(x, Literal(int64_t{5})), false, {}});
  p.steps.push_back(
      PatternStep{"B", Lt(x, Literal(int64_t{0})), false, {}});
  int matches = 0;
  NfaEngine engine(p, [&](const CepMatch&) { ++matches; });

  auto push = [&](int64_t v, TimePoint t) {
    engine.Push(Event({Value(v)}, t));
  };
  push(7, 1);   // A
  push(3, 2);   // neither: run dies
  push(-1, 3);  // B, but no active run
  EXPECT_EQ(matches, 0);
  push(9, 4);   // A
  push(-2, 5);  // B immediately after: match
  EXPECT_EQ(matches, 1);
}

TEST(NfaEngineTest, WindowExpiresRuns) {
  CepPattern p;
  const ExprPtr flag = FieldRef(0, "flag");
  p.steps.push_back(PatternStep{"S", flag, true, {}});
  p.steps.push_back(PatternStep{"E", Not(flag), false, {}});
  p.within = 5;
  int matches = 0;
  NfaEngine engine(p, [&](const CepMatch&) { ++matches; });

  // A run starting at t=1 must conclude by t=6.
  for (TimePoint t = 1; t <= 10; ++t) engine.Push(Ev(true, t));
  engine.Push(Ev(false, 11));
  // Runs spawned at t=7..10 are still within the window when the
  // terminator arrives at t=11 (11 - 7 <= 5 ... 11 - 10 <= 5).
  EXPECT_EQ(matches, 5);  // runs started at t in {6,...,10}
}

TEST(NfaEngineTest, ForkOnAmbiguousEvent) {
  // A+ B where both predicates hold for the same event: runs must fork,
  // reporting both the short and the extended alternative.
  CepPattern p;
  const ExprPtr x = FieldRef(0, "x");
  p.steps.push_back(PatternStep{"A", Gt(x, Literal(int64_t{0})), true, {}});
  p.steps.push_back(PatternStep{"B", Gt(x, Literal(int64_t{10})), false, {}});
  std::vector<CepMatch> matches;
  NfaEngine engine(p, [&](const CepMatch& m) { matches.push_back(m); });

  engine.Push(Event({Value(int64_t{5})}, 1));   // A
  engine.Push(Event({Value(int64_t{20})}, 2));  // A or B -> fork: one match
  engine.Push(Event({Value(int64_t{30})}, 3));  // again both
  // t=2: run(A@1) advances to B -> match [A:1..1, B:2]. Fork keeps A@1..2.
  // Also a new run spawns at step A (x=20 > 0).
  // t=3: run(A@1..2) -> B match; run(A@2) -> B match; new run spawns.
  EXPECT_EQ(matches.size(), 3u);
}

TEST(NfaEngineTest, SkipTillNextMatchIgnoresIrrelevantEvents) {
  // A (x>5) followed by B (x<0); noise (x in [0,5]) between them.
  auto make = [](SelectionPolicy policy) {
    CepPattern p;
    const ExprPtr x = FieldRef(0, "x");
    p.steps.push_back(
        PatternStep{"A", Gt(x, Literal(int64_t{5})), false, {}});
    p.steps.push_back(
        PatternStep{"B", Lt(x, Literal(int64_t{0})), false, {}});
    p.within = 100;
    p.policy = policy;
    return p;
  };

  const int64_t trace[] = {7, 3, 2, 4, -1};
  int strict_matches = 0;
  int skip_matches = 0;
  {
    NfaEngine engine(make(SelectionPolicy::kStrictContiguity),
                     [&](const CepMatch&) { ++strict_matches; });
    for (int i = 0; i < 5; ++i) engine.Push(Event({Value(trace[i])}, i + 1));
  }
  {
    NfaEngine engine(make(SelectionPolicy::kSkipTillNextMatch),
                     [&](const CepMatch&) { ++skip_matches; });
    for (int i = 0; i < 5; ++i) engine.Push(Event({Value(trace[i])}, i + 1));
  }
  EXPECT_EQ(strict_matches, 0);  // noise kills the run
  EXPECT_EQ(skip_matches, 1);    // noise is skipped
}

TEST(NfaEngineTest, SkipTillNextExpiresThroughWindow) {
  CepPattern p;
  const ExprPtr x = FieldRef(0, "x");
  p.steps.push_back(PatternStep{"A", Gt(x, Literal(int64_t{5})), false, {}});
  p.steps.push_back(PatternStep{"B", Lt(x, Literal(int64_t{0})), false, {}});
  p.within = 3;
  p.policy = SelectionPolicy::kSkipTillNextMatch;
  int matches = 0;
  NfaEngine engine(p, [&](const CepMatch&) { ++matches; });
  engine.Push(Event({Value(int64_t{9})}, 1));   // A
  engine.Push(Event({Value(int64_t{2})}, 2));   // skipped
  engine.Push(Event({Value(int64_t{2})}, 6));   // window expired
  EXPECT_EQ(engine.active_runs(), 0u);
  engine.Push(Event({Value(int64_t{-4})}, 7));  // too late
  EXPECT_EQ(matches, 0);
}

TEST(NfaEngineTest, ActiveRunAccounting) {
  CepPattern p;
  const ExprPtr flag = FieldRef(0, "flag");
  p.steps.push_back(PatternStep{"S", flag, true, {}});
  p.steps.push_back(PatternStep{"E", Not(flag), false, {}});
  NfaEngine engine(p, nullptr);
  EXPECT_EQ(engine.active_runs(), 0u);
  engine.Push(Ev(true, 1));
  engine.Push(Ev(true, 2));
  // One run per spawn point, still active.
  EXPECT_EQ(engine.active_runs(), 2u);
  engine.Push(Ev(false, 3));
  EXPECT_EQ(engine.active_runs(), 0u);
  EXPECT_EQ(engine.num_matches(), 2);
}

}  // namespace
}  // namespace cep
}  // namespace tpstream
