// Chaos suite for the degradation subsystem (`chaos` ctest label; also
// under the `concurrency` label so the TSan job exercises it). Driven by
// the deterministic fault-injection harness (tests/fault_injection.h),
// it proves the Degradation contract of docs/architecture.md:
//
//  * hard caps keep matcher state (and so memory) bounded under
//    open-situation floods, with every eviction accounted;
//  * the parallel operator's drop policies bound producer push latency
//    under overload, quarantine every shed batch exactly once, and leave
//    partitions untouched by shedding byte-identical to the sequential
//    engine — including after the burst subsides (recovery);
//  * malformed CSV rows and late events route to the dead-letter sink
//    with full context instead of killing the stream;
//  * allocation failure inside the quarantine path is contained.
//
// The bounded-memory proofs use the counting allocator of
// tests/chaos_alloc.h (single-TU include; this is that TU).

#include "tests/chaos_alloc.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "io/csv.h"
#include "matcher/low_latency_matcher.h"
#include "obs/metrics.h"
#include "ooo/reorder_buffer.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"
#include "robust/dead_letter.h"
#include "tests/fault_injection.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::FloodWorkload;
using testing::HighWaterBytes;
using testing::MakeLateBursts;
using testing::MalformedCsv;
using testing::ResetHighWater;
using testing::ScopedAllocFailure;
using testing::StallingSink;

constexpr Duration kHugeWindow = Duration{1} << 30;

/// The keyed two-symbol query of the concurrency suite, but with a window
/// far wider than any test horizon: nothing ever purges, so only the
/// overload caps bound matcher state.
QuerySpec FloodSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(kHugeWindow)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

// ---------------------------------------------------------------------------
// Situation-buffer caps: bounded memory under an open-situation flood
// ---------------------------------------------------------------------------

// With an unbounded window every finished situation stays buffered
// forever; the flood finishes one situation per event. The cap must (a)
// hold BufferedCount at the cap, (b) keep the post-warmup allocation
// high-water near zero (steady state reuses ring slots), and (c) account
// every eviction.
TEST(ChaosTest, SituationFloodIsMemoryBoundedUnderCap) {
  QuerySpec spec = FloodSpec();
  obs::MetricsRegistry registry;
  TPStreamOperator::Options options;
  options.low_latency = false;  // baseline matcher: pure buffer state
  options.metrics = &registry;
  options.overload.max_situations_per_buffer = 32;

  int64_t matches = 0;
  TPStreamOperator op(spec, options, [&](const Event&) { ++matches; });

  const std::vector<Event> events = FloodWorkload(1, 14000, 0xC0FFEE);
  // Warmup: buffers hit the cap, every scratch vector reaches steady
  // state.
  size_t i = 0;
  for (; i < 2000; ++i) op.Push(events[i]);
  ASSERT_GT(op.shed_situations(), 0) << "flood did not reach the cap";

  ResetHighWater();
  const int64_t base_bytes = tpstream::testing::LiveBytes();
  const int64_t shed_before = op.shed_situations();
  for (; i < events.size(); ++i) op.Push(events[i]);

  // (a) state bound: both symbol buffers at/below the cap.
  EXPECT_LE(op.BufferedCount(), 2 * 32u);
  // (b) memory bound: the post-warmup high-water delta stays tiny (the
  // per-match output event is the only transient allocation). Without
  // the cap this flood buffers ~28k situations and grows without bound.
  EXPECT_LT(HighWaterBytes() - base_bytes, int64_t{1} << 20)
      << "high water " << HighWaterBytes() << " base " << base_bytes;
  // (c) accounting: one eviction per appended situation beyond the cap,
  // mirrored exactly into the metrics registry.
  EXPECT_GT(op.shed_situations(), shed_before);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("robust.shed_situations"),
            op.shed_situations());
  EXPECT_EQ(snap.counters.at("robust.lost_match_upper_bound"),
            op.lost_match_upper_bound());
  EXPECT_GE(op.lost_match_upper_bound(), op.shed_situations());
  EXPECT_GT(matches, 0);
}

// The cap must degrade, not corrupt: the capped output is a sub-multiset
// of the uncapped output (matches only disappear, never appear or
// change), and a cap that is never hit changes nothing.
TEST(ChaosTest, CapDropsMatchesMonotonically) {
  QuerySpec spec = FloodSpec();
  using Sig = std::map<std::tuple<TimePoint, int64_t, int64_t>, int64_t>;
  auto run = [&](size_t cap) {
    Sig out;
    TPStreamOperator::Options options;
    options.low_latency = false;
    options.overload.max_situations_per_buffer = cap;
    TPStreamOperator op(spec, options, [&](const Event& e) {
      ++out[{e.t, e.payload[0].AsInt(), e.payload[1].AsInt()}];
    });
    for (const Event& e : FloodWorkload(1, 300, 99)) op.Push(e);
    return out;
  };
  auto total = [](const Sig& sig) {
    int64_t n = 0;
    for (const auto& [key, count] : sig) n += count;
    return n;
  };
  const Sig uncapped = run(0);
  const Sig roomy = run(1000);  // never hit: 300 events total
  const Sig tight = run(8);
  EXPECT_EQ(roomy, uncapped);
  EXPECT_LT(total(tight), total(uncapped));
  for (const auto& [m, count] : tight) {
    const auto it = uncapped.find(m);
    ASSERT_TRUE(it != uncapped.end())
        << "capped run invented a match at t=" << std::get<0>(m);
    EXPECT_LE(count, it->second);
  }
}

// ---------------------------------------------------------------------------
// Trigger-pool cap (low-latency matcher)
// ---------------------------------------------------------------------------

// A before-chain of six symbols, all ongoing simultaneously: symbol k's
// start trigger pools every started symbol it is not directly
// constrained against (k-1 is excluded: `before` cannot be certain while
// k-1 is ongoing). Pool sizes are k-1 for k = 2..5, so a cap of 2 sheds
// exactly (3-2) + (4-2) = 3 candidates — deterministically.
TEST(ChaosTest, TriggerPoolCapShedsOldestCandidates) {
  std::vector<std::string> names = {"A", "B", "C", "D", "E", "F"};
  TemporalPattern pattern(names);
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(pattern.AddRelation(i, Relation::kBefore, i + 1).ok());
  }
  DetectionAnalysis analysis(
      pattern, std::vector<DurationConstraint>(pattern.num_symbols()));

  auto run = [&](size_t pool_cap) {
    obs::MetricsRegistry registry;
    int64_t matches = 0;
    LowLatencyMatcher matcher(pattern, analysis, kHugeWindow,
                              [&](const Match&) { ++matches; });
    matcher.EnableMetrics(&registry);
    robust::OverloadPolicy policy;
    policy.max_trigger_pool = pool_cap;
    matcher.SetOverload(policy);

    // Symbol i starts at t=10+i and never finishes inside the run: all
    // six are ongoing together from t=15.
    std::vector<SymbolSituation> none;
    for (int i = 0; i < 6; ++i) {
      Situation s({}, /*ts=*/10 + i, kTimeUnknown);
      std::vector<SymbolSituation> started = {SymbolSituation{i, s}};
      matcher.Update(started, none, 10 + i);
    }
    return std::pair<int64_t, int64_t>(matcher.shed_trigger_candidates(),
                                       matches);
  };

  EXPECT_EQ(run(0).first, 0);  // unbounded: nothing shed
  const auto capped = run(2);
  EXPECT_EQ(capped.first, 3);
  EXPECT_EQ(capped.second, 0);  // the chain never completes a match

  // The metric mirrors the accessor.
  obs::MetricsRegistry registry;
  LowLatencyMatcher matcher(pattern, analysis, kHugeWindow,
                            [](const Match&) {});
  matcher.EnableMetrics(&registry);
  robust::OverloadPolicy policy;
  policy.max_trigger_pool = 1;
  matcher.SetOverload(policy);
  std::vector<SymbolSituation> none;
  for (int i = 0; i < 6; ++i) {
    Situation s({}, 10 + i, kTimeUnknown);
    std::vector<SymbolSituation> started = {SymbolSituation{i, s}};
    matcher.Update(started, none, 10 + i);
  }
  EXPECT_EQ(registry.Snapshot().counters.at("robust.shed_trigger_candidates"),
            matcher.shed_trigger_candidates());
  EXPECT_GT(matcher.shed_trigger_candidates(), 0);
}

// ---------------------------------------------------------------------------
// Parallel backpressure policies
// ---------------------------------------------------------------------------

using Sig = std::vector<std::tuple<TimePoint, int64_t, int64_t>>;

/// Skewed open-situation flood: key 0 flips its flag every tick (the hot
/// partition whose matcher state floods), the other keys emit rarely.
/// At most one event per key per tick, so (key, t) identifies an event.
std::vector<Event> SkewedFlood(int keys, TimePoint horizon,
                               double emit_prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution emit(emit_prob);
  std::vector<bool> value(keys, false);
  std::vector<Event> events;
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < keys; ++k) {
      if (k != 0 && !emit(rng)) continue;
      value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

Sig SequentialReference(const QuerySpec& spec,
                        const TPStreamOperator::Options& op_options,
                        const std::vector<Event>& events) {
  Sig out;
  PartitionedTPStream op(spec, op_options, [&](const Event& e) {
    out.emplace_back(e.t, e.payload[0].AsInt(), e.payload[1].AsInt());
  });
  for (const Event& e : events) op.Push(e);
  std::sort(out.begin(), out.end());
  return out;
}

/// All (key, t) pairs held by the sink's kShedBatch items. Every input
/// event is unique under (key, t) by construction, so multiset ==
/// multiplicity checks give the exactly-once property.
std::vector<std::pair<int64_t, TimePoint>> ShedPairs(
    const std::vector<robust::DeadLetterItem>& items) {
  std::vector<std::pair<int64_t, TimePoint>> pairs;
  for (const robust::DeadLetterItem& item : items) {
    EXPECT_EQ(item.kind, robust::DeadLetterKind::kShedBatch);
    EXPECT_FALSE(item.events.empty());
    for (const Event& e : item.events) {
      pairs.emplace_back(e.payload[0].AsInt(), e.t);
    }
  }
  return pairs;
}

// The flagship scenario of the Degradation contract: situation caps plus
// kDropOldest rings under an open-situation flood with a stalled
// consumer. Proves, in one run:
//  * bounded allocator high-water despite flood + burst,
//  * every shed event reaches the dead-letter sink exactly once,
//  * partitions untouched by shedding match the sequential engine
//    byte-identically — including the post-burst (recovery) phase,
//  * shed/processed accounting adds up exactly.
TEST(ChaosTest, DropOldestFloodBurstQuarantinesExactlyOnceAndRecovers) {
  const QuerySpec spec = FloodSpec();
  const int kKeys = 8;
  const TimePoint kBurstEnd = 300;
  const TimePoint kHorizon = 600;
  const std::vector<Event> events =
      SkewedFlood(kKeys, kHorizon, /*emit_prob=*/0.05, 4242);

  TPStreamOperator::Options op_options;
  op_options.overload.max_situations_per_buffer = 64;

  robust::CollectingDeadLetterSink sink(/*capacity=*/1 << 20);
  obs::MetricsRegistry enable_flag;  // non-null => per-worker registries

  parallel::ParallelTPStream::Options options;
  options.num_workers = 3;
  options.batch_size = 8;
  options.ring_capacity = 2;
  options.backpressure = robust::BackpressurePolicy::kDropOldest;
  options.dead_letter = &sink;
  options.operator_options = op_options;
  options.operator_options.metrics = &enable_flag;

  Sig parallel_out;
  std::mutex mutex;
  // Stalled consumer: every 32nd match of the hot key (key 0 floods its
  // partition) sleeps, so the hot worker falls far behind and its ring
  // sheds. The stall holds the operator's output lock, but the cold
  // workers' rings (4 batches x 8 events against a trickle of cold
  // events) ride out each hold, so their keys stay clean. Disarmed for
  // the recovery phase.
  std::atomic<int64_t> hot_matches{0};
  StallingSink stalling(
      [&](const Event& e) {
        std::lock_guard<std::mutex> lock(mutex);
        parallel_out.emplace_back(e.t, e.payload[0].AsInt(),
                                  e.payload[1].AsInt());
      },
      [&](const Event& e) {
        return e.payload[0].AsInt() == 0 && ++hot_matches % 32 == 0;
      },
      std::chrono::microseconds(100));

  obs::MetricsSnapshot metrics;
  int64_t shed_events = 0;
  {
    parallel::ParallelTPStream op(
        spec, options, [&](const Event& e) { stalling(e); });
    ResetHighWater();
    // Producer paced per tick: far above the stalled hot worker's drain
    // rate (sustained overload, so its ring sheds) yet slow enough that
    // the cold workers absorb the stall periods in their rings.
    TimePoint last_t = 0;
    for (const Event& e : events) {
      if (e.t != last_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        if (last_t == kBurstEnd) stalling.Disarm();  // burst over: recovery
        last_t = e.t;
      }
      op.Push(e);
    }
    op.Flush();

    // Bounded memory: with a 64-situation cap per buffer and the flood
    // never purging (unbounded window), the high-water mark stays under
    // a fixed bound. Uncapped, the buffers alone would keep growing with
    // the horizon.
    EXPECT_LT(HighWaterBytes(), int64_t{64} << 20);

    shed_events = op.shed_events();
    EXPECT_GT(shed_events, 0) << "burst never overloaded the ring";
    EXPECT_GT(op.shed_batches(), 0);
    EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()));
    metrics = op.Metrics();
  }

  // Accounting adds up: every pushed event was either processed by a
  // worker engine or shed (and counted) — none lost, none duplicated.
  EXPECT_EQ(metrics.counters.at("operator.events") + shed_events,
            static_cast<int64_t>(events.size()));
  EXPECT_EQ(metrics.counters.at("parallel.shed_events"), shed_events);
  // The open-situation flood hit the 64-situation cap on the hot
  // partition (unbounded window: only the cap bounds the buffers).
  EXPECT_GT(metrics.counters.at("robust.shed_situations"), 0);

  // Exactly-once quarantine: the dead-letter sink holds each shed event
  // once — counts match and no (key, t) pair repeats.
  EXPECT_EQ(sink.dropped(), 0);
  const auto pairs = ShedPairs(sink.Items());
  EXPECT_EQ(static_cast<int64_t>(pairs.size()), shed_events);
  std::set<std::pair<int64_t, TimePoint>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), pairs.size()) << "an event was quarantined twice";

  // Differential: partitions that never lost an event must be
  // byte-identical to the sequential engine (same overload caps), across
  // burst and recovery phases.
  std::set<int64_t> shed_keys;
  for (const auto& [key, t] : pairs) shed_keys.insert(key);
  EXPECT_LT(shed_keys.size(), static_cast<size_t>(kKeys))
      << "every key shed an event; differential check is vacuous";

  const Sig reference = SequentialReference(spec, op_options, events);
  auto clean = [&](const Sig& sig) {
    Sig out;
    for (const auto& m : sig) {
      if (shed_keys.count(std::get<1>(m)) == 0) out.push_back(m);
    }
    return out;
  };
  std::sort(parallel_out.begin(), parallel_out.end());
  EXPECT_EQ(clean(parallel_out), clean(reference));
}

// kDropNewest bounds the producer's push latency under a hard consumer
// stall: no Push may take longer than the shed-spin budget allows, shed
// events are quarantined exactly once, and kBlock (the default) on the
// same workload sheds nothing.
TEST(ChaosTest, DropNewestBoundsPushLatencyAndBlockIsLossless) {
  const QuerySpec spec = FloodSpec();
  const std::vector<Event> events = FloodWorkload(4, 200, 777);

  auto run = [&](robust::BackpressurePolicy policy,
                 robust::DeadLetterSink* sink, int64_t* max_push_ns) {
    parallel::ParallelTPStream::Options options;
    options.num_workers = 2;
    options.batch_size = 4;
    options.ring_capacity = 1;
    options.backpressure = policy;
    options.dead_letter = sink;
    options.operator_options.metrics = nullptr;
    options.operator_options.overload.max_situations_per_buffer = 32;

    // Unconditionally slow consumer: every match sleeps.
    StallingSink stalling([](const Event&) {},
                          [](const Event&) { return true; },
                          std::chrono::microseconds(20));
    parallel::ParallelTPStream op(spec, options,
                                  [&](const Event& e) { stalling(e); });
    int64_t worst = 0;
    for (const Event& e : events) {
      const auto t0 = std::chrono::steady_clock::now();
      op.Push(e);
      const auto t1 = std::chrono::steady_clock::now();
      worst = std::max<int64_t>(
          worst, std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                     .count());
    }
    op.Flush();
    *max_push_ns = worst;
    return std::pair<int64_t, int64_t>(op.shed_events(), op.shed_batches());
  };

  robust::CollectingDeadLetterSink sink(1 << 20);
  int64_t drop_worst = 0;
  const auto [shed_events, shed_batches] =
      run(robust::BackpressurePolicy::kDropNewest, &sink, &drop_worst);
  EXPECT_GT(shed_events, 0);
  EXPECT_GT(shed_batches, 0);

  // Exactly-once into the sink.
  const auto pairs = ShedPairs(sink.Items());
  EXPECT_EQ(static_cast<int64_t>(pairs.size()), shed_events);
  std::set<std::pair<int64_t, TimePoint>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), pairs.size());

  // Bounded push: the shed-spin budget is a few hundred relax/yield
  // iterations; even under sanitizers a single Push must finish in far
  // less than the consumer's aggregate stall. The generous ceiling keeps
  // the assertion meaningful (kBlock would park for the full drain,
  // easily seconds here) without flaking on slow machines.
  EXPECT_LT(drop_worst, int64_t{250} * 1000 * 1000) << "push latency unbounded?";

  // kBlock on the same overload: zero shed, everything delivered. (Not
  // measuring latency — blocking is the point.)
  int64_t block_worst = 0;
  const auto [block_shed, block_batches] =
      run(robust::BackpressurePolicy::kBlock, nullptr, &block_worst);
  EXPECT_EQ(block_shed, 0);
  EXPECT_EQ(block_batches, 0);
}

// ---------------------------------------------------------------------------
// Malformed CSV bursts
// ---------------------------------------------------------------------------

TEST(ChaosTest, MalformedCsvRowsQuarantineWithRowContext) {
  const auto input = MalformedCsv(/*seed=*/31337, /*rows=*/500,
                                  /*bad_fraction=*/0.2);
  ASSERT_FALSE(input.bad_rows.empty());

  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  robust::CollectingDeadLetterSink sink(1 << 16);
  obs::MetricsRegistry registry;
  std::istringstream in(input.text);
  io::CsvEventReader::Options options;
  options.on_error = io::CsvEventReader::OnError::kSkipAndQuarantine;
  options.dead_letter = &sink;
  options.metrics = &registry;
  io::CsvEventReader reader(in, schema, options);

  std::vector<TimePoint> delivered;
  Event event;
  for (;;) {
    const Status s = reader.Next(&event);
    if (s.code() == StatusCode::kNotFound) break;
    ASSERT_TRUE(s.ok()) << s.message();
    delivered.push_back(event.t);
  }

  // Every good row delivered in order; every bad row skipped + counted.
  EXPECT_EQ(delivered, input.good_timestamps);
  EXPECT_EQ(reader.quarantined(),
            static_cast<int64_t>(input.bad_rows.size()));
  EXPECT_EQ(registry.Snapshot().counters.at("csv.quarantined"),
            reader.quarantined());

  // Dead-letter items carry the exact row numbers (exactly once) plus
  // the raw line and a non-empty parse error.
  const auto items = sink.Items();
  ASSERT_EQ(items.size(), input.bad_rows.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].kind, robust::DeadLetterKind::kCsvRow);
    EXPECT_EQ(items[i].row, input.bad_rows[i]);
    EXPECT_FALSE(items[i].detail.empty());
  }
}

TEST(ChaosTest, CsvQuarantineBudgetTripsResourceExhausted) {
  Schema schema({Field{"key", ValueType::kInt}});
  std::istringstream in(
      "timestamp,key\n1,1\nbad,1\nbad,2\nbad,3\n5,2\n");
  io::CsvEventReader::Options options;
  options.on_error = io::CsvEventReader::OnError::kSkipAndQuarantine;
  options.max_quarantined = 2;
  io::CsvEventReader reader(in, schema, options);

  Event event;
  ASSERT_TRUE(reader.Next(&event).ok());
  EXPECT_EQ(event.t, 1);
  // Rows 2 and 3 are quarantined silently; row 4 exceeds the budget.
  const Status s = reader.Next(&event);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reader.quarantined(), 3);
}

// Header errors stay fatal in every mode: without a header nothing can
// be parsed, so skipping would spin over the whole file.
TEST(ChaosTest, CsvHeaderErrorsAreFatalEvenWhenSkipping) {
  Schema schema({Field{"key", ValueType::kInt}});
  std::istringstream in("no_timestamp_here,key\n1,2\n");
  io::CsvEventReader::Options options;
  options.on_error = io::CsvEventReader::OnError::kSkipAndQuarantine;
  io::CsvEventReader reader(in, schema, options);
  Event event;
  EXPECT_EQ(reader.Next(&event).code(), StatusCode::kParseError);
  EXPECT_EQ(reader.quarantined(), 0);
}

// ---------------------------------------------------------------------------
// Late-event bursts
// ---------------------------------------------------------------------------

TEST(ChaosTest, LateBurstsRouteToDeadLetterIntact) {
  const Duration kSlack = 10;
  const auto workload = MakeLateBursts(/*seed=*/5150, /*count=*/400, kSlack,
                                       /*bursts=*/5, /*burst_len=*/4);
  ASSERT_FALSE(workload.late_timestamps.empty());

  robust::CollectingDeadLetterSink sink(1 << 16);
  ooo::ReorderBuffer::Options options;
  options.slack = kSlack;
  options.dead_letter = &sink;
  ooo::ReorderBuffer reorder(options);

  std::vector<TimePoint> released;
  std::vector<TimePoint> late_seen;
  reorder.SetLateCallback([&](const Event& e) {
    // Regression (move-path): the callback must observe the intact
    // event, payload included, before any quarantine move.
    ASSERT_EQ(e.payload.size(), 1u);
    EXPECT_TRUE(e.payload[0].AsBool());
    late_seen.push_back(e.t);
  });
  auto sink_fn = [&](const Event& e) { released.push_back(e.t); };
  for (const Event& e : workload.events) reorder.Push(Event(e), sink_fn);
  reorder.Flush(sink_fn);

  // In-order delivery survived the bursts.
  EXPECT_TRUE(std::is_sorted(released.begin(), released.end()));
  // Every late event fired the callback AND reached the sink intact —
  // exactly once, with a lateness description.
  EXPECT_EQ(reorder.num_dropped(),
            static_cast<int64_t>(workload.late_timestamps.size()));
  const auto items = sink.Items();
  ASSERT_EQ(items.size(), workload.late_timestamps.size());
  ASSERT_EQ(late_seen.size(), workload.late_timestamps.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].kind, robust::DeadLetterKind::kLateEvent);
    ASSERT_EQ(items[i].events.size(), 1u);
    EXPECT_EQ(items[i].events[0].t, late_seen[i]);
    ASSERT_EQ(items[i].events[0].payload.size(), 1u);
    EXPECT_TRUE(items[i].events[0].payload[0].AsBool());
    EXPECT_FALSE(items[i].detail.empty());
  }
}

// The pipeline wires its reorder stage's dead-letter sink through the
// full-options Reorder overload.
TEST(ChaosTest, PipelineReorderRoutesLateEventsToDeadLetter) {
  robust::CollectingDeadLetterSink sink(64);
  ooo::ReorderBuffer::Options reorder_options;
  reorder_options.slack = 2;
  reorder_options.dead_letter = &sink;

  Schema schema({Field{"flag", ValueType::kBool}});
  pipeline::Pipeline p(schema);
  std::vector<TimePoint> out;
  p.Reorder(reorder_options).Sink([&](const Event& e) {
    out.push_back(e.t);
  });
  ASSERT_TRUE(p.Finalize().ok());

  for (TimePoint t : {10, 20, 5, 21}) p.Push(Event({Value(true)}, t));
  p.Finish();

  EXPECT_EQ(out, (std::vector<TimePoint>{10, 20, 21}));
  const auto items = sink.Items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, robust::DeadLetterKind::kLateEvent);
  ASSERT_EQ(items[0].events.size(), 1u);
  EXPECT_EQ(items[0].events[0].t, 5);
}

// ---------------------------------------------------------------------------
// Allocation failure containment
// ---------------------------------------------------------------------------

// An allocation failure inside the quarantine path must not corrupt the
// sink: the failed Consume propagates bad_alloc (strong guarantee of the
// underlying vector), the sink stays usable, and its accounting reflects
// only successful operations.
TEST(ChaosTest, AllocationFailureInQuarantinePathIsContained) {
  robust::CollectingDeadLetterSink sink(16);
  robust::DeadLetterItem item;
  item.kind = robust::DeadLetterKind::kLateEvent;

  EXPECT_THROW(
      {
        ScopedAllocFailure fail(/*after=*/1);
        (void)sink.Consume(robust::DeadLetterItem(item));
      },
      std::bad_alloc);

  // The sink survived: consistent counts, still accepting.
  EXPECT_EQ(sink.accepted(), 0);
  EXPECT_EQ(sink.dropped(), 0);
  ASSERT_TRUE(sink.Consume(robust::DeadLetterItem(item)).ok());
  EXPECT_EQ(sink.accepted(), 1);
  EXPECT_EQ(sink.Items().size(), 1u);
}

// A full sink reports kResourceExhausted and counts the drop — the
// dead-letter channel itself is bounded by design.
TEST(ChaosTest, DeadLetterSinkCapacityIsEnforced) {
  robust::CollectingDeadLetterSink sink(/*capacity=*/2);
  robust::DeadLetterItem item;
  EXPECT_TRUE(sink.Consume(robust::DeadLetterItem(item)).ok());
  EXPECT_TRUE(sink.Consume(robust::DeadLetterItem(item)).ok());
  const Status s = sink.Consume(robust::DeadLetterItem(item));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sink.accepted(), 2);
  EXPECT_EQ(sink.dropped(), 1);
  // Take() drains but keeps totals; capacity frees up again.
  EXPECT_EQ(sink.Take().size(), 2u);
  EXPECT_TRUE(sink.Consume(robust::DeadLetterItem(item)).ok());
  EXPECT_EQ(sink.accepted(), 3);
}

}  // namespace
}  // namespace tpstream
