// Durable event log unit suite: CRC-32C vectors, the segment format,
// rotation, replay-from-offset, fsync policies, torn-tail repair and the
// fault-injecting File seam (disk full, failing fsync).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/crc32c.h"
#include "log/event_log.h"
#include "log/file.h"
#include "log/memfs.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace log {
namespace {

// --- CRC-32C ---------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, ExtensionMatchesConcatenation) {
  const std::string a = "temporal pattern ";
  const std::string b = "matching on event streams";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b), Crc32c(a + b));
  EXPECT_EQ(Crc32cExtend(Crc32c(""), a), Crc32c(a));
}

TEST(Crc32c, SensitiveToEveryByte) {
  std::string data = "0123456789abcdef";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32c(mutated), base) << "byte " << i;
  }
}

// --- shared helpers --------------------------------------------------------

std::vector<Event> MakeEvents(int n, int64_t t0 = 1) {
  std::vector<Event> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    events.push_back(Event(
        {Value(static_cast<double>(i) * 0.25), Value(static_cast<int64_t>(i))},
        t0 + i));
  }
  return events;
}

void ExpectSameEvents(const std::vector<Event>& got,
                      const std::vector<Event>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t, want[i].t) << "event " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "event " << i;
  }
}

std::vector<Event> Replay(const EventLog& log, uint64_t offset) {
  std::vector<Event> out;
  EXPECT_TRUE(
      log.ReplayFrom(offset, [&](const Event& e) { out.push_back(e); }).ok());
  return out;
}

std::unique_ptr<EventLog> MustOpen(FileSystem* fs, const std::string& dir,
                                   const EventLogOptions& options = {},
                                   OpenReport* report = nullptr) {
  std::unique_ptr<EventLog> log;
  Status s = EventLog::Open(fs, dir, options, &log, report);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return log;
}

// --- append / replay -------------------------------------------------------

TEST(EventLog, AppendAndReplayRoundtrip) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  const std::vector<Event> events = MakeEvents(20);

  auto r1 = log->Append(std::span<const Event>(events.data(), 7));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value(), 7u);
  auto r2 = log->Append(std::span<const Event>(events.data() + 7, 13));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value(), 20u);
  EXPECT_EQ(log->end_offset(), 20u);

  ExpectSameEvents(Replay(*log, 0), events);
}

TEST(EventLog, EmptyBatchIsNoOp) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  auto r = log->Append(std::span<const Event>());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0u);
  EXPECT_EQ(log->end_offset(), 0u);
  EXPECT_TRUE(Replay(*log, 0).empty());
}

TEST(EventLog, ReplayFromMidBatchOffset) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  const std::vector<Event> events = MakeEvents(10);
  // One batch of 10; replay must still honor any event-level offset.
  ASSERT_TRUE(log->Append(events).ok());
  for (uint64_t offset = 0; offset <= 10; ++offset) {
    const std::vector<Event> got = Replay(*log, offset);
    ExpectSameEvents(
        got, std::vector<Event>(events.begin() + offset, events.end()));
  }
}

TEST(EventLog, ReplayBeyondEndIsEmpty) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  ASSERT_TRUE(log->Append(MakeEvents(5)).ok());
  EXPECT_TRUE(Replay(*log, 5).empty());
  EXPECT_TRUE(Replay(*log, 100).empty());
}

TEST(EventLog, SurvivesReopen) {
  MemFileSystem fs;
  const std::vector<Event> events = MakeEvents(30);
  {
    auto log = MustOpen(&fs, "/log");
    ASSERT_TRUE(log->Append(events).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  OpenReport report;
  auto log = MustOpen(&fs, "/log", {}, &report);
  EXPECT_EQ(report.truncated_tail_records, 0);
  EXPECT_EQ(log->end_offset(), 30u);
  ExpectSameEvents(Replay(*log, 0), events);
}

TEST(EventLog, BitExactDoublePayloadsRoundtrip) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  std::vector<Event> events;
  events.push_back(Event({Value(-0.0), Value(static_cast<int64_t>(1))}, 1));
  events.push_back(
      Event({Value(1e-308), Value(static_cast<int64_t>(2))}, 2));
  ASSERT_TRUE(log->Append(events).ok());
  const std::vector<Event> got = Replay(*log, 0);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(std::signbit(got[0].payload[0].AsDouble()));
  EXPECT_EQ(got[1].payload[0].AsDouble(), 1e-308);
}

// --- rotation --------------------------------------------------------------

TEST(EventLog, RotatesSegmentsAndReplaysAcrossThem) {
  MemFileSystem fs;
  EventLogOptions options;
  options.segment_bytes = 512;  // force frequent rotation
  const std::vector<Event> events = MakeEvents(200);
  auto log = MustOpen(&fs, "/log", options);
  for (size_t i = 0; i < events.size(); i += 10) {
    ASSERT_TRUE(
        log->Append(std::span<const Event>(events.data() + i, 10)).ok());
  }
  EXPECT_GT(log->num_segments(), 3);
  ExpectSameEvents(Replay(*log, 0), events);
  // Mid-stream offsets must land in the right segment.
  ExpectSameEvents(Replay(*log, 150),
                   std::vector<Event>(events.begin() + 150, events.end()));

  // Reopen sees the same multi-segment log.
  log.reset();
  log = MustOpen(&fs, "/log", options);
  EXPECT_EQ(log->end_offset(), 200u);
  ExpectSameEvents(Replay(*log, 0), events);
}

TEST(EventLog, SegmentFileNamesCarryBaseOffset) {
  EXPECT_EQ(EventLog::SegmentFileName(0), "segment-00000000000000000000.tpl");
  EXPECT_EQ(EventLog::SegmentFileName(42), "segment-00000000000000000042.tpl");
}

// --- checkpoint markers ----------------------------------------------------

TEST(EventLog, CheckpointMarkersDoNotAdvanceOffsets) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  const std::vector<Event> events = MakeEvents(10);
  ASSERT_TRUE(log->Append(events).ok());
  ASSERT_TRUE(log->AppendCheckpointMarker(1, 10).ok());
  EXPECT_EQ(log->end_offset(), 10u);
  ExpectSameEvents(Replay(*log, 0), events);  // markers are skipped

  uint64_t generation = 0, offset = 0;
  ASSERT_TRUE(log->LatestCheckpointMarker(&generation, &offset));
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(offset, 10u);
}

TEST(EventLog, LatestCheckpointMarkerSurvivesReopen) {
  MemFileSystem fs;
  {
    auto log = MustOpen(&fs, "/log");
    ASSERT_TRUE(log->Append(MakeEvents(5)).ok());
    ASSERT_TRUE(log->AppendCheckpointMarker(3, 2).ok());
    ASSERT_TRUE(log->AppendCheckpointMarker(4, 5).ok());
  }
  auto log = MustOpen(&fs, "/log");
  uint64_t generation = 0, offset = 0;
  ASSERT_TRUE(log->LatestCheckpointMarker(&generation, &offset));
  EXPECT_EQ(generation, 4u);
  EXPECT_EQ(offset, 5u);

  MemFileSystem empty_fs;
  auto fresh = MustOpen(&empty_fs, "/log");
  EXPECT_FALSE(fresh->LatestCheckpointMarker(&generation, &offset));
}

// --- fsync policies --------------------------------------------------------

TEST(EventLog, EveryRecordSyncsPerAppend) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");  // default: kEveryRecord
  const uint64_t baseline = fs.num_syncs();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(log->Append(MakeEvents(1, 100 + i)).ok());
  }
  EXPECT_EQ(fs.num_syncs(), baseline + 5);
}

TEST(EventLog, EveryBytesBatchesSyncs) {
  MemFileSystem fs;
  EventLogOptions options;
  options.sync.mode = SyncMode::kEveryBytes;
  options.sync.sync_bytes = 4096;
  auto log = MustOpen(&fs, "/log", options);
  const uint64_t baseline = fs.num_syncs();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log->Append(MakeEvents(1, 100 + i)).ok());
  }
  // Far fewer barriers than appends (records are tens of bytes each).
  EXPECT_LT(fs.num_syncs() - baseline, 3u);
  // An explicit Sync() still forces the barrier.
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_GE(fs.num_syncs(), baseline + 1);
}

TEST(EventLog, IntervalSyncsOnInjectedClock) {
  MemFileSystem fs;
  int64_t now_ns = 0;
  EventLogOptions options;
  options.sync.mode = SyncMode::kInterval;
  options.sync.sync_interval_ns = 1'000'000;
  options.sync.clock = [&now_ns] { return now_ns; };
  auto log = MustOpen(&fs, "/log", options);
  const uint64_t baseline = fs.num_syncs();

  ASSERT_TRUE(log->Append(MakeEvents(1, 1)).ok());
  ASSERT_TRUE(log->Append(MakeEvents(1, 2)).ok());
  EXPECT_EQ(fs.num_syncs(), baseline);  // clock has not advanced

  now_ns += 2'000'000;
  ASSERT_TRUE(log->Append(MakeEvents(1, 3)).ok());
  EXPECT_EQ(fs.num_syncs(), baseline + 1);  // period elapsed -> barrier

  ASSERT_TRUE(log->Append(MakeEvents(1, 4)).ok());
  EXPECT_EQ(fs.num_syncs(), baseline + 1);
}

// --- torn-tail repair ------------------------------------------------------

TEST(EventLog, CrashLosesOnlyUnsyncedTail) {
  MemFileSystem fs;
  EventLogOptions options;
  options.sync.mode = SyncMode::kEveryBytes;
  options.sync.sync_bytes = 1 << 30;  // never auto-sync
  const std::vector<Event> events = MakeEvents(12);
  {
    auto log = MustOpen(&fs, "/log", options);
    ASSERT_TRUE(log->Append(std::span<const Event>(events.data(), 8)).ok());
    ASSERT_TRUE(log->Sync().ok());
    ASSERT_TRUE(log->Append(std::span<const Event>(events.data() + 8, 4)).ok());
    // No sync: the last batch is in the page cache only.
  }
  fs.SimulateCrash();

  OpenReport report;
  robust::CollectingDeadLetterSink dead;
  options.dead_letter = &dead;
  auto log = MustOpen(&fs, "/log", options, &report);
  // The crash cut at a record boundary (synced prefix), so nothing is
  // torn — the unsynced records are simply gone.
  EXPECT_EQ(report.truncated_tail_records, 0);
  EXPECT_EQ(log->end_offset(), 8u);
  ExpectSameEvents(Replay(*log, 0),
                   std::vector<Event>(events.begin(), events.begin() + 8));
  EXPECT_EQ(dead.accepted(), 0);
}

TEST(EventLog, TornMidRecordTailIsTruncatedAndQuarantined) {
  MemFileSystem fs;
  const std::vector<Event> events = MakeEvents(10);
  {
    auto log = MustOpen(&fs, "/log");
    ASSERT_TRUE(log->Append(std::span<const Event>(events.data(), 6)).ok());
    ASSERT_TRUE(log->Append(std::span<const Event>(events.data() + 6, 4)).ok());
  }
  const std::string path = "/log/" + EventLog::SegmentFileName(0);
  const uint64_t full_size = fs.FileSize(path);
  // Carve a torn tail: cut into the middle of the final record.
  fs.TruncateTo(path, full_size - 3);

  OpenReport report;
  robust::CollectingDeadLetterSink dead;
  EventLogOptions options;
  options.dead_letter = &dead;
  auto log = MustOpen(&fs, "/log", options, &report);
  EXPECT_EQ(report.truncated_tail_records, 1);
  EXPECT_GT(report.truncated_tail_bytes, 0u);
  EXPECT_EQ(log->end_offset(), 6u);
  ExpectSameEvents(Replay(*log, 0),
                   std::vector<Event>(events.begin(), events.begin() + 6));
  // The torn bytes were quarantined once, with the right kind.
  ASSERT_EQ(dead.accepted(), 1);
  const auto items = dead.Items();
  EXPECT_EQ(items[0].kind, robust::DeadLetterKind::kTornLogRecord);
  EXPECT_NE(items[0].detail.find(EventLog::SegmentFileName(0)),
            std::string::npos);
  EXPECT_FALSE(items[0].raw.empty());

  // The repaired log accepts appends and stays consistent.
  ASSERT_TRUE(log->Append(std::span<const Event>(events.data() + 6, 4)).ok());
  ExpectSameEvents(Replay(*log, 0), events);
}

TEST(EventLog, TornTailAtEveryByteBoundaryRecoversPrefix) {
  // Build a reference log, then for every possible cut position verify
  // open either keeps whole records or truncates the torn one — never
  // fails, never invents events.
  MemFileSystem ref_fs;
  const std::vector<Event> events = MakeEvents(6);
  {
    auto log = MustOpen(&ref_fs, "/log");
    for (const Event& e : events) {
      ASSERT_TRUE(log->Append(std::span<const Event>(&e, 1)).ok());
    }
  }
  const std::string path = "/log/" + EventLog::SegmentFileName(0);
  const std::string bytes = ref_fs.Contents(path);

  for (uint64_t cut = 16; cut <= bytes.size(); ++cut) {
    MemFileSystem fs;
    {
      auto log = MustOpen(&fs, "/log");
      for (const Event& e : events) {
        ASSERT_TRUE(log->Append(std::span<const Event>(&e, 1)).ok());
      }
    }
    fs.TruncateTo(path, cut);
    auto log = MustOpen(&fs, "/log");
    const std::vector<Event> got = Replay(*log, 0);
    ASSERT_LE(got.size(), events.size()) << "cut@" << cut;
    ExpectSameEvents(
        got, std::vector<Event>(events.begin(), events.begin() + got.size()));
  }
}

TEST(EventLog, CorruptionInNonFinalSegmentFailsOpen) {
  MemFileSystem fs;
  EventLogOptions options;
  options.segment_bytes = 256;
  {
    auto log = MustOpen(&fs, "/log", options);
    const std::vector<Event> events = MakeEvents(100);
    for (size_t i = 0; i < events.size(); i += 5) {
      ASSERT_TRUE(
          log->Append(std::span<const Event>(events.data() + i, 5)).ok());
    }
    ASSERT_GT(log->num_segments(), 2);
  }
  // Flip a byte in the FIRST segment: that is corruption, not a torn
  // write, and must fail loudly instead of being silently truncated.
  fs.CorruptByte("/log/" + EventLog::SegmentFileName(0), 40, 0x10);
  std::unique_ptr<EventLog> log;
  Status s = EventLog::Open(&fs, "/log", options, &log);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

// --- disk full / fsync faults ----------------------------------------------

TEST(EventLog, DiskFullSurfacesResourceExhaustedWithPathAndBytes) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");
  ASSERT_TRUE(log->Append(MakeEvents(4)).ok());

  fs.set_enospc_after_bytes(fs.total_appended() + 10);
  auto r = log->Append(MakeEvents(4, 100));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find(EventLog::SegmentFileName(0)),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("byte"), std::string::npos);
  EXPECT_EQ(log->end_offset(), 4u);

  // Space comes back: the same log keeps working, and the rolled-back
  // partial record never surfaces.
  fs.clear_enospc();
  const std::vector<Event> more = MakeEvents(4, 100);
  ASSERT_TRUE(log->Append(more).ok());
  EXPECT_EQ(log->end_offset(), 8u);
  EXPECT_EQ(Replay(*log, 0).size(), 8u);

  // And the segment on disk is re-openable (no partial frame left).
  log.reset();
  OpenReport report;
  log = MustOpen(&fs, "/log", {}, &report);
  EXPECT_EQ(report.truncated_tail_records, 0);
  EXPECT_EQ(log->end_offset(), 8u);
}

TEST(EventLog, FsyncFailureSurfacesAndLogRemainsUsable) {
  MemFileSystem fs;
  auto log = MustOpen(&fs, "/log");  // kEveryRecord: every append syncs
  ASSERT_TRUE(log->Append(MakeEvents(2)).ok());

  const uint64_t syncs_so_far = fs.num_syncs();
  fs.set_fail_fsync_after(syncs_so_far);
  auto r = log->Append(MakeEvents(2, 50));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(log->end_offset(), 2u);

  // The failed batch was rolled back with the failed sync: a later sync
  // must not resurrect events that were reported as not appended.
  fs.clear_fsync_fault();
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(Replay(*log, 0).size(), 2u);

  // A retried append lands at the same first-offset without colliding
  // with a leftover frame, and the log stays openable.
  ASSERT_TRUE(log->Append(MakeEvents(2, 50)).ok());
  EXPECT_EQ(log->end_offset(), 4u);
  EXPECT_EQ(Replay(*log, 0).size(), 4u);

  log.reset();
  OpenReport report;
  log = MustOpen(&fs, "/log", {}, &report);
  EXPECT_EQ(report.truncated_tail_records, 0);
  EXPECT_EQ(log->end_offset(), 4u);
  EXPECT_EQ(Replay(*log, 0).size(), 4u);
}

TEST(EventLog, MarkerOnlySegmentDoesNotRotateOntoItself) {
  MemFileSystem fs;
  EventLogOptions options;
  options.segment_bytes = 64;  // tiny: a few markers overflow it
  auto log = MustOpen(&fs, "/log", options);
  // Markers never advance end_offset_, so a rotation here would name the
  // new segment after the current tail and corrupt it mid-file.
  for (uint64_t g = 1; g <= 20; ++g) {
    ASSERT_TRUE(log->AppendCheckpointMarker(g, 0).ok());
  }
  EXPECT_EQ(log->num_segments(), 1);

  // Once events move end_offset_ past the tail's base, rotation resumes.
  ASSERT_TRUE(log->Append(MakeEvents(3)).ok());
  ASSERT_TRUE(log->AppendCheckpointMarker(21, 3).ok());
  EXPECT_GT(log->num_segments(), 1);

  log.reset();
  OpenReport report;
  log = MustOpen(&fs, "/log", options, &report);
  EXPECT_EQ(report.truncated_tail_records, 0);
  EXPECT_EQ(log->end_offset(), 3u);
  uint64_t generation = 0, offset = 0;
  ASSERT_TRUE(log->LatestCheckpointMarker(&generation, &offset));
  EXPECT_EQ(generation, 21u);
  EXPECT_EQ(offset, 3u);
}

// --- metrics ---------------------------------------------------------------

TEST(EventLog, PublishesLogMetrics) {
  MemFileSystem fs;
  obs::MetricsRegistry metrics;
  EventLogOptions options;
  options.metrics = &metrics;
  auto log = MustOpen(&fs, "/log", options);
  ASSERT_TRUE(log->Append(MakeEvents(10)).ok());
  ASSERT_TRUE(log->ReplayFrom(0, [](const Event&) {}).ok());

  EXPECT_EQ(metrics.GetCounter("log.appended_records")->value(), 1);
  EXPECT_GT(metrics.GetCounter("log.appended_bytes")->value(), 0);
  EXPECT_GT(metrics.GetCounter("log.fsyncs")->value(), 0);
  EXPECT_EQ(metrics.GetCounter("log.replays")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("log.replayed_events")->value(), 10);
  EXPECT_EQ(metrics.GetGauge("log.segments")->value(), 1.0);
}

// --- posix seam ------------------------------------------------------------

TEST(PosixFileSystem, EndToEndRoundtripInTempDir) {
  char tmpl[] = "/tmp/tpstream_log_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string log_dir = JoinPath(dir, "wal");

  PosixFileSystem fs;
  const std::vector<Event> events = MakeEvents(50);
  {
    EventLogOptions options;
    options.segment_bytes = 1024;
    auto log = MustOpen(&fs, log_dir, options);
    for (size_t i = 0; i < events.size(); i += 5) {
      ASSERT_TRUE(
          log->Append(std::span<const Event>(events.data() + i, 5)).ok());
    }
    ASSERT_TRUE(log->AppendCheckpointMarker(7, 25).ok());
  }
  {
    auto log = MustOpen(&fs, log_dir);
    EXPECT_EQ(log->end_offset(), 50u);
    ExpectSameEvents(Replay(*log, 0), events);
    uint64_t generation = 0, offset = 0;
    ASSERT_TRUE(log->LatestCheckpointMarker(&generation, &offset));
    EXPECT_EQ(generation, 7u);
    EXPECT_EQ(offset, 25u);
  }

  // Torn tail on the real filesystem: chop 3 bytes off the last segment.
  std::vector<std::string> names;
  ASSERT_TRUE(fs.ListDir(log_dir, &names).ok());
  std::sort(names.begin(), names.end());
  const std::string last = JoinPath(log_dir, names.back());
  std::string contents;
  ASSERT_TRUE(fs.ReadFile(last, &contents).ok());
  ASSERT_TRUE(fs.Truncate(last, contents.size() - 3).ok());

  OpenReport report;
  auto log = MustOpen(&fs, log_dir, {}, &report);
  EXPECT_EQ(report.truncated_tail_records, 1);
  // The torn record may have been the checkpoint marker, so the event
  // count is only guaranteed not to grow.
  EXPECT_LE(log->end_offset(), 50u);
  const std::vector<Event> got = Replay(*log, 0);
  ExpectSameEvents(
      got, std::vector<Event>(events.begin(), events.begin() + got.size()));

  // Best-effort cleanup (the tree lives under /tmp regardless).
  ASSERT_TRUE(fs.ListDir(log_dir, &names).ok());
  for (const std::string& name : names) {
    (void)fs.DeleteFile(JoinPath(log_dir, name));
  }
}

// --- MemFileSystem seam self-checks ---------------------------------------

TEST(MemFileSystem, ShortWriteAppliesPrefixBeforeEnospc) {
  MemFileSystem fs;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.OpenAppend("/d/f", &file).ok());
  fs.set_enospc_after_bytes(4);
  Status s = file->Append("0123456789");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fs.Contents("/d/f"), "0123");  // the prefix that fit
}

TEST(MemFileSystem, SimulateCrashRollsBackToSyncedSize) {
  MemFileSystem fs;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.OpenAppend("/d/f", &file).ok());
  ASSERT_TRUE(file->Append("durable").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append("-volatile").ok());
  fs.SimulateCrash();
  EXPECT_EQ(fs.Contents("/d/f"), "durable");
}

TEST(MemFileSystem, RenameIsAtomicHandoff) {
  MemFileSystem fs;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fs.OpenAppend("/d/f.tmp", &file).ok());
  ASSERT_TRUE(file->Append("payload").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(fs.RenameFile("/d/f.tmp", "/d/f").ok());
  EXPECT_FALSE(fs.HasFile("/d/f.tmp"));
  EXPECT_EQ(fs.Contents("/d/f"), "payload");
}

}  // namespace
}  // namespace log
}  // namespace tpstream
