#include "matcher/situation_buffer.h"

#include <random>

#include <gtest/gtest.h>

#include "matcher/index_ranges.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::Sit;

TEST(SituationBufferTest, AppendGrowPurge) {
  SituationBuffer buf;
  for (int i = 0; i < 100; ++i) {
    buf.Append(Sit(i * 10, i * 10 + 5));
  }
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(buf.Front().ts, 0);
  EXPECT_EQ(buf.Back().ts, 990);

  buf.PurgeBefore(500);
  EXPECT_EQ(buf.size(), 50u);
  EXPECT_EQ(buf.Front().ts, 500);

  // Wrap-around: keep appending after purges.
  for (int i = 100; i < 150; ++i) {
    buf.Append(Sit(i * 10, i * 10 + 5));
    buf.PurgeBefore(i * 10 - 300);
  }
  EXPECT_EQ(buf.Back().ts, 1490);
  for (size_t i = 1; i < buf.size(); ++i) {
    EXPECT_LT(buf.At(i - 1).ts, buf.At(i).ts);
  }
}

TEST(SituationBufferTest, PopFrontEvictsOldestAndKeepsOrder) {
  SituationBuffer buf;
  buf.PopFront();  // empty: no-op
  EXPECT_EQ(buf.size(), 0u);

  for (int i = 0; i < 10; ++i) buf.Append(Sit(i * 10, i * 10 + 5));
  buf.PopFront();
  buf.PopFront();
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.Front().ts, 20);
  EXPECT_EQ(buf.Back().ts, 90);
  for (size_t i = 1; i < buf.size(); ++i) {
    EXPECT_LT(buf.At(i - 1).ts, buf.At(i).ts);
  }

  // Interleaved with appends and purges (ring wrap-around).
  for (int i = 10; i < 40; ++i) {
    buf.Append(Sit(i * 10, i * 10 + 5));
    if (i % 3 == 0) buf.PopFront();
  }
  EXPECT_EQ(buf.Back().ts, 390);
  for (size_t i = 1; i < buf.size(); ++i) {
    EXPECT_LT(buf.At(i - 1).ts, buf.At(i).ts);
  }
  while (buf.size() > 0) buf.PopFront();
  EXPECT_EQ(buf.size(), 0u);
  buf.Append(Sit(1000, 1005));
  EXPECT_EQ(buf.Front().ts, 1000);
}

TEST(SituationBufferTest, RangeQueriesMatchScan) {
  std::mt19937_64 rng(21);
  SituationBuffer buf;
  std::vector<Situation> shadow;
  TimePoint t = 0;
  std::uniform_int_distribution<Duration> step(1, 9);
  for (int i = 0; i < 500; ++i) {
    const TimePoint ts = t + step(rng);
    const TimePoint te = ts + step(rng);
    buf.Append(Sit(ts, te));
    shadow.push_back(Sit(ts, te));
    t = te;
  }

  std::uniform_int_distribution<TimePoint> point(0, t + 10);
  for (int trial = 0; trial < 2000; ++trial) {
    TimePoint lo = point(rng);
    TimePoint hi = point(rng);
    if (lo > hi) std::swap(lo, hi);
    const TimeRange range{lo, hi};

    const IndexRange by_ts = buf.FindTs(range);
    const IndexRange by_te = buf.FindTe(range);
    for (uint32_t i = 0; i < shadow.size(); ++i) {
      EXPECT_EQ(i >= by_ts.lo && i < by_ts.hi, range.Contains(shadow[i].ts));
      EXPECT_EQ(i >= by_te.lo && i < by_te.hi, range.Contains(shadow[i].te));
    }
  }
}

TEST(IndexRangesTest, AddNormalizesAndMerges) {
  IndexRanges set;
  set.Add(IndexRange{5, 8});
  set.Add(IndexRange{1, 3});
  set.Add(IndexRange{7, 12});  // overlaps [5,8)
  set.Add(IndexRange{3, 5});   // adjacent to [1,3) and [5,12)
  ASSERT_EQ(set.ranges().size(), 1u);
  EXPECT_EQ(set.ranges()[0].lo, 1u);
  EXPECT_EQ(set.ranges()[0].hi, 12u);
  EXPECT_EQ(set.TotalSize(), 11u);

  set.Add(IndexRange{20, 20});  // empty: ignored
  EXPECT_EQ(set.ranges().size(), 1u);
}

TEST(IndexRangesTest, IntersectMatchesSetSemantics) {
  std::mt19937_64 rng(22);
  std::uniform_int_distribution<uint32_t> point(0, 40);
  for (int trial = 0; trial < 500; ++trial) {
    IndexRanges a;
    IndexRanges b;
    std::vector<bool> in_a(50, false);
    std::vector<bool> in_b(50, false);
    for (int i = 0; i < 4; ++i) {
      uint32_t lo = point(rng), hi = point(rng);
      if (lo > hi) std::swap(lo, hi);
      a.Add(IndexRange{lo, hi});
      for (uint32_t j = lo; j < hi; ++j) in_a[j] = true;
      lo = point(rng);
      hi = point(rng);
      if (lo > hi) std::swap(lo, hi);
      b.Add(IndexRange{lo, hi});
      for (uint32_t j = lo; j < hi; ++j) in_b[j] = true;
    }
    const IndexRanges isect = a.Intersect(b);
    std::vector<bool> got(50, false);
    isect.ForEach([&](uint32_t i) { got[i] = true; });
    for (uint32_t i = 0; i < 50; ++i) {
      EXPECT_EQ(got[i], in_a[i] && in_b[i]) << "index " << i;
    }
  }
}

}  // namespace
}  // namespace tpstream
