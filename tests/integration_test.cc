// End-to-end scenario tests: the aggressive-driver query of Listing 1 on
// the Linear-Road-style generator, and cross-operator agreement between
// TPStream (both modes), ISEQ and the two-phase straw man on identical
// inputs.
#include <random>

#include <gtest/gtest.h>

#include "baselines/iseq.h"
#include "baselines/strawman.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/linear_road.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace {

TEST(IntegrationTest, AggressiveDriverScenarioByHand) {
  // A hand-crafted trip reproducing Figure 1's first match: sharp
  // acceleration overlapping a speeding phase, braking during speeding.
  Schema schema({
      Field{"car_id", ValueType::kInt},
      Field{"speed", ValueType::kDouble},
      Field{"accel", ValueType::kDouble},
  });
  auto spec = query::ParseQuery(
      "FROM Cars C PARTITION BY C.car_id "
      "DEFINE A AS C.accel > 8, "
      "       B AS C.speed > 70, "
      "       D AS C.accel < -9 "
      "PATTERN A meets B; A overlaps B; A starts B; A during B "
      "   AND D during B; B finishes D; B overlaps D; B meets D "
      "   AND A before D "
      "WITHIN 5 minutes "
      "RETURN first(B.car_id) AS id, avg(B.speed) AS avg_speed",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  std::vector<Event> outputs;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });

  // Timeline for car 7:
  //   accel > 8   on [10, 14)  (A)
  //   speed > 70  on [12, 40)  (B)  -> A overlaps B
  //   accel < -9  on [30, 36)  (D)  -> D during B, A before D
  for (TimePoint t = 1; t <= 45; ++t) {
    const double accel = (t >= 10 && t < 14) ? 9.5
                         : (t >= 30 && t < 36) ? -10.5
                                               : 0.0;
    const double speed = (t >= 12 && t < 40) ? 80.0 : 50.0;
    op.Push(Event({Value(int64_t{7}), Value(speed), Value(accel)}, t));
  }

  ASSERT_EQ(outputs.size(), 1u);
  // Figure 1: the match concludes at the beginning of the deceleration
  // phase (t = 30), long before speeding ends at t = 40.
  EXPECT_EQ(outputs[0].t, 30);
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(outputs[0].payload[1].ToDouble(), 80.0);
}

TEST(IntegrationTest, OperatorsAgreeOnSyntheticStreams) {
  // TPStream baseline, TPStream low-latency, ISEQ and the two-phase straw
  // man must report the same match count on the same input.
  SyntheticGenerator::Options gopts;
  gopts.num_streams = 3;
  gopts.seed = 1234;

  const Duration window = 600;
  auto make_defs = [] {
    return std::vector<SituationDefinition>{
        SituationDefinition("A", FieldRef(0, "s0")),
        SituationDefinition("B", FieldRef(1, "s1")),
        SituationDefinition("C", FieldRef(2, "s2")),
    };
  };
  TemporalPattern pattern({"A", "B", "C"});
  ASSERT_TRUE(pattern.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(pattern.AddRelation(1, Relation::kOverlaps, 2).ok());

  QuerySpec spec;
  spec.definitions = make_defs();
  spec.pattern = pattern;
  spec.window = window;
  SyntheticGenerator g0(gopts);
  // First event of the synthetic generator may start mid-situation; skip
  // until all attributes are false so every operator sees full situations.
  std::vector<Event> events;
  bool primed = false;
  for (int i = 0; i < 40000; ++i) {
    Event e = g0.Next();
    if (!primed) {
      primed = !e.payload[0].AsBool() && !e.payload[1].AsBool() &&
               !e.payload[2].AsBool();
      if (!primed) continue;
    }
    events.push_back(std::move(e));
  }

  TPStreamOperator::Options base_opts;
  base_opts.low_latency = false;
  TPStreamOperator baseline(spec, base_opts, [](const Event&) {});

  TPStreamOperator::Options ll_opts;
  ll_opts.low_latency = true;
  TPStreamOperator low_latency(spec, ll_opts, [](const Event&) {});

  IseqOperator iseq(make_defs(), pattern, window, nullptr);
  TwoPhaseMatcher two_phase(make_defs(), pattern, window, nullptr);

  for (const Event& e : events) {
    baseline.Push(e);
    low_latency.Push(e);
    iseq.Push(e);
    two_phase.Push(e);
  }

  EXPECT_GT(baseline.num_matches(), 0);
  EXPECT_EQ(baseline.num_matches(), iseq.num_matches());
  EXPECT_EQ(baseline.num_matches(), two_phase.num_matches());
  // Low latency may additionally conclude matches whose final situations
  // are cut off by the end of the stream; it never misses one.
  EXPECT_GE(low_latency.num_matches(), baseline.num_matches());
}

TEST(IntegrationTest, LinearRoadEndToEndFindsAggressiveDrivers) {
  LinearRoadGenerator::Options lr_opts;
  lr_opts.num_cars = 40;
  lr_opts.aggressive_fraction = 0.4;
  LinearRoadGenerator gen(lr_opts);

  // Calibrate thresholds from a sample, as in Section 6.2.1.
  const double speed_thr = LinearRoadGenerator::SampleFieldPercentile(
      lr_opts, LinearRoadGenerator::kSpeed, 99.0, 40000);
  const double accel_thr = LinearRoadGenerator::SampleFieldPercentile(
      lr_opts, LinearRoadGenerator::kAccel, 90.0, 40000);
  const double decel_thr = LinearRoadGenerator::SampleFieldPercentile(
      lr_opts, LinearRoadGenerator::kAccel, 10.0, 40000);

  char query[1024];
  std::snprintf(query, sizeof(query),
                "FROM Cars PARTITION BY car_id "
                "DEFINE A AS accel > %f, B AS speed > %f, C AS accel < %f "
                "PATTERN A meets B; A overlaps B; A starts B; A during B "
                "  AND C during B; B finishes C; B overlaps C; B meets C "
                "  AND A before C "
                "WITHIN 5 minutes "
                "RETURN first(B.car_id) AS id, avg(B.speed) AS avg_speed",
                accel_thr, speed_thr, decel_thr);
  auto spec = query::ParseQuery(query, gen.schema());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  int64_t matches = 0;
  std::set<int64_t> drivers;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& e) {
    ++matches;
    drivers.insert(e.payload[0].AsInt());
  });
  for (int i = 0; i < 400000; ++i) op.Push(gen.Next());

  EXPECT_GT(matches, 0);
  EXPECT_GT(drivers.size(), 1u);
  EXPECT_EQ(op.num_partitions(), 40u);
}

}  // namespace
}  // namespace tpstream
