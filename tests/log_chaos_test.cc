// Durability chaos suite (ctest label: chaos): kill-at-every-byte sweeps
// over the segment tail and the checkpoint chain, bit-flip fuzzing of
// segment files, and a chained kill/recover/append loop — the recovered
// state must always be byte-identical to an uninterrupted run, and a
// corrupt artifact must never crash, hang, or silently mis-restore.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "log/event_log.h"
#include "log/memfs.h"
#include "log/recovery.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
}

QuerySpec SensorSpec(bool partitioned = false) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount);
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> MakeStream(int n, uint64_t seed, int num_keys = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Event> events;
  events.reserve(n);
  double speed = 0.5, temp = 0.5;
  for (int i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    const int64_t key = static_cast<int64_t>(i % num_keys);
    events.push_back(Event({Value(speed), Value(temp), Value(key)}, i + 1));
  }
  return events;
}

constexpr char kLogDir[] = "/wal";
constexpr char kCkptDir[] = "/wal/ckpt";

std::unique_ptr<log::EventLog> MustOpenLog(
    log::FileSystem* fs, const log::EventLogOptions& options = {}) {
  std::unique_ptr<log::EventLog> log;
  Status s = log::EventLog::Open(fs, kLogDir, options, &log);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return log;
}

std::unique_ptr<log::RecoveryManager> MustOpenManager(
    log::FileSystem* fs, log::EventLog* log,
    const log::RecoveryManager::Options& options = {}) {
  std::unique_ptr<log::RecoveryManager> mgr;
  Status s = log::RecoveryManager::Open(fs, kCkptDir, log, options, &mgr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return mgr;
}

template <typename Engine>
void Feed(log::EventLog& log, Engine& engine, const Event& event) {
  auto r = log.Append(std::span<const Event>(&event, 1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  engine.Push(event);
}

std::string FinalCheckpointBytes(const QuerySpec& spec,
                                 const std::vector<Event>& events) {
  TPStreamOperator ref(spec, {}, nullptr);
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer w;
  ref.Checkpoint(w);
  return w.Take();
}

// --- segment-tail kill sweep -----------------------------------------------

TEST(LogChaos, KillAtEverySegmentByteRecoversAndCatchesUp) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(80, 41);
  const std::string ref_final = FinalCheckpointBytes(spec, events);

  // Reference image of the written log (single segment).
  log::MemFileSystem image;
  {
    auto log = MustOpenLog(&image);
    TPStreamOperator engine(spec, {}, nullptr);
    for (const Event& e : events) Feed(*log, engine, e);
  }
  const std::string seg_path =
      std::string(kLogDir) + "/" + log::EventLog::SegmentFileName(0);
  const uint64_t seg_size = image.FileSize(seg_path);
  ASSERT_GT(seg_size, 16u);

  // Kill at every byte boundary of the segment: open must repair the
  // tail, recovery must replay the surviving prefix, and re-sending the
  // lost suffix must converge on the uninterrupted final state.
  for (uint64_t cut = 16; cut <= seg_size; ++cut) {
    log::MemFileSystem fs;
    {
      auto log = MustOpenLog(&fs);
      TPStreamOperator engine(spec, {}, nullptr);
      for (const Event& e : events) Feed(*log, engine, e);
    }
    fs.TruncateTo(seg_path, cut);

    auto log = MustOpenLog(&fs);
    auto mgr = MustOpenManager(&fs, log.get());
    TPStreamOperator engine(spec, {}, nullptr);
    auto report = mgr->Recover(engine);
    ASSERT_TRUE(report.ok()) << "cut@" << cut;
    const uint64_t survived = log->end_offset();
    ASSERT_LE(survived, events.size()) << "cut@" << cut;
    ASSERT_EQ(report.value().replayed_events, survived) << "cut@" << cut;

    // The source re-sends everything the log lost.
    for (size_t i = survived; i < events.size(); ++i) {
      Feed(*log, engine, events[i]);
    }
    ckpt::Writer final_ckpt;
    engine.Checkpoint(final_ckpt);
    ASSERT_EQ(final_ckpt.buffer(), ref_final) << "cut@" << cut;
  }
}

// --- checkpoint-file kill sweep --------------------------------------------

TEST(LogChaos, KillAtEveryCheckpointByteFallsBackCleanly) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(120, 42);
  const std::string ref_final = FinalCheckpointBytes(spec, events);

  // Scripted run: checkpoint at offsets 60 (gen 1) and 120 (gen 2).
  log::MemFileSystem image;
  {
    auto log = MustOpenLog(&image);
    auto mgr = MustOpenManager(&image, log.get());
    TPStreamOperator engine(spec, {}, nullptr);
    for (size_t i = 0; i < events.size(); ++i) {
      Feed(*log, engine, events[i]);
      if (i + 1 == 60 || i + 1 == 120) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
    }
  }
  const std::string gen2 =
      std::string(kCkptDir) + "/ckpt-00000000000000000002-full.tpc";
  const std::string gen2_bytes = image.Contents(gen2);
  ASSERT_FALSE(gen2_bytes.empty());

  // A crash at byte `cut` of the gen-2 persist leaves either a partial
  // .tmp (rename never happened) or — modelling a torn rename target —
  // a truncated final file. Both must fall back to gen 1 + replay; only
  // the complete file recovers at gen 2.
  for (const bool as_tmp : {true, false}) {
    for (size_t cut = 0; cut <= gen2_bytes.size(); ++cut) {
      log::MemFileSystem fs;
      {
        auto log = MustOpenLog(&fs);
        auto mgr = MustOpenManager(&fs, log.get());
        TPStreamOperator engine(spec, {}, nullptr);
        for (size_t i = 0; i < events.size(); ++i) {
          Feed(*log, engine, events[i]);
          if (i + 1 == 60) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
        }
      }
      // Materialize the interrupted gen-2 write.
      const std::string partial = gen2_bytes.substr(0, cut);
      const std::string target = as_tmp ? gen2 + ".tmp" : gen2;
      {
        std::unique_ptr<log::WritableFile> f;
        ASSERT_TRUE(fs.OpenAppend(target, &f).ok());
        ASSERT_TRUE(f->Append(partial).ok());
        ASSERT_TRUE(f->Sync().ok());
      }

      auto log = MustOpenLog(&fs);
      auto mgr = MustOpenManager(&fs, log.get());
      TPStreamOperator engine(spec, {}, nullptr);
      auto report = mgr->Recover(engine);
      ASSERT_TRUE(report.ok()) << (as_tmp ? "tmp" : "final") << " cut@" << cut;
      if (!as_tmp && cut == gen2_bytes.size()) {
        ASSERT_EQ(report.value().generation, 2u);
      } else {
        ASSERT_EQ(report.value().generation, 1u)
            << (as_tmp ? "tmp" : "final") << " cut@" << cut;
        ASSERT_EQ(report.value().offset, 60u);
      }
      ckpt::Writer final_ckpt;
      engine.Checkpoint(final_ckpt);
      ASSERT_EQ(final_ckpt.buffer(), ref_final)
          << (as_tmp ? "tmp" : "final") << " cut@" << cut;
    }
  }
}

// --- delta-chain kill sweep ------------------------------------------------

TEST(LogChaos, KillAtEveryDeltaByteDegradesToChainPrefix) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(120, 43, /*keys=*/12);

  ckpt::Writer ref_w;
  {
    PartitionedTPStream ref(spec, {}, nullptr);
    for (const Event& e : events) ref.Push(e);
    ref.Checkpoint(ref_w);
  }
  const std::string ref_final = ref_w.Take();

  log::RecoveryManager::Options mopts;
  mopts.full_snapshot_interval = 8;

  // Scripted run: full @40 (gen 1), delta @80 (gen 2), delta @120 (gen 3).
  log::MemFileSystem image;
  {
    auto log = MustOpenLog(&image);
    auto mgr = MustOpenManager(&image, log.get(), mopts);
    PartitionedTPStream engine(spec, {}, nullptr);
    for (size_t i = 0; i < events.size(); ++i) {
      Feed(*log, engine, events[i]);
      if ((i + 1) % 40 == 0) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
    }
  }
  const std::string gen3 =
      std::string(kCkptDir) + "/ckpt-00000000000000000003-delta.tpc";
  const std::string gen3_bytes = image.Contents(gen3);
  ASSERT_FALSE(gen3_bytes.empty());

  // Torn tail of the newest delta at every byte: recovery must apply the
  // intact chain prefix (gen 1 + gen 2) and replay the rest of the log.
  for (size_t cut = 0; cut < gen3_bytes.size(); cut += 1) {
    log::MemFileSystem fs;
    {
      auto log = MustOpenLog(&fs);
      auto mgr = MustOpenManager(&fs, log.get(), mopts);
      PartitionedTPStream engine(spec, {}, nullptr);
      for (size_t i = 0; i < events.size(); ++i) {
        Feed(*log, engine, events[i]);
        if ((i + 1) % 40 == 0) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
      }
    }
    fs.TruncateTo(gen3, cut);

    auto log = MustOpenLog(&fs);
    auto mgr = MustOpenManager(&fs, log.get(), mopts);
    PartitionedTPStream engine(spec, {}, nullptr);
    auto report = mgr->Recover(engine);
    ASSERT_TRUE(report.ok()) << "cut@" << cut;
    ASSERT_EQ(report.value().generation, 2u) << "cut@" << cut;
    ASSERT_EQ(report.value().offset, 80u) << "cut@" << cut;
    ASSERT_EQ(report.value().replayed_events, 40u) << "cut@" << cut;

    ckpt::Writer final_ckpt;
    engine.Checkpoint(final_ckpt);
    ASSERT_EQ(final_ckpt.buffer(), ref_final) << "cut@" << cut;
  }
}

// --- bit-flip fuzz ---------------------------------------------------------

TEST(LogChaos, SegmentBitFlipFuzzNeverMisrestores) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(60, 44);
  std::vector<std::string> prefix_ckpts;  // ref state after k events
  {
    TPStreamOperator ref(spec, {}, nullptr);
    ckpt::Writer w0;
    ref.Checkpoint(w0);
    prefix_ckpts.push_back(w0.Take());
    for (const Event& e : events) {
      ref.Push(e);
      ckpt::Writer w;
      ref.Checkpoint(w);
      prefix_ckpts.push_back(w.Take());
    }
  }

  // Written image to draw flip positions from.
  log::MemFileSystem image;
  {
    auto log = MustOpenLog(&image);
    TPStreamOperator engine(spec, {}, nullptr);
    for (const Event& e : events) Feed(*log, engine, e);
  }
  const std::string seg_path =
      std::string(kLogDir) + "/" + log::EventLog::SegmentFileName(0);
  const uint64_t seg_size = image.FileSize(seg_path);

  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<uint64_t> pos_dist(0, seg_size - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);

  int opened = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    log::MemFileSystem fs;
    {
      auto log = MustOpenLog(&fs);
      TPStreamOperator engine(spec, {}, nullptr);
      for (const Event& e : events) Feed(*log, engine, e);
    }
    const uint64_t pos = pos_dist(rng);
    fs.CorruptByte(seg_path, pos, static_cast<uint8_t>(1u << bit_dist(rng)));

    std::unique_ptr<log::EventLog> log;
    Status s = log::EventLog::Open(&fs, kLogDir, {}, &log);
    if (!s.ok()) {
      // Header corruption is the only legal hard failure in a
      // single-segment log; everything else is tail-repaired.
      ASSERT_EQ(s.code(), StatusCode::kParseError) << "trial " << trial;
      ASSERT_LT(pos, 16u) << "trial " << trial << " pos " << pos;
      ++rejected;
      continue;
    }
    ++opened;
    // Whatever survived must be an exact event prefix: replaying into a
    // fresh engine reproduces the reference prefix state bit-for-bit.
    const uint64_t survived = log->end_offset();
    ASSERT_LE(survived, events.size()) << "trial " << trial;
    TPStreamOperator engine(spec, {}, nullptr);
    uint64_t replayed = 0;
    ASSERT_TRUE(log->ReplayFrom(0, [&](const Event& e) { engine.Push(e); },
                                &replayed)
                    .ok())
        << "trial " << trial;
    ASSERT_EQ(replayed, survived);
    ckpt::Writer w;
    engine.Checkpoint(w);
    ASSERT_EQ(w.buffer(), prefix_ckpts[survived])
        << "trial " << trial << " flip@" << pos;
  }
  // The sweep must actually exercise both outcomes.
  EXPECT_GT(opened, 0);
  EXPECT_GT(opened + rejected, 299);
}

// --- chained kill/recover/append rounds ------------------------------------

TEST(LogChaos, FiveRoundKillRecoverAppendLoopStaysByteIdentical) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(500, 45, /*keys=*/10);

  std::vector<Event> ref_outputs;
  ckpt::Writer ref_w;
  {
    PartitionedTPStream ref(spec, {},
                            [&](const Event& e) { ref_outputs.push_back(e); });
    for (const Event& e : events) ref.Push(e);
    ref.Checkpoint(ref_w);
  }
  const std::string ref_final = ref_w.Take();

  // Lossy sync policy: a crash loses the unsynced tail, which the
  // source must re-send after recovery (at-least-once upstream).
  log::EventLogOptions lopts;
  lopts.sync.mode = log::SyncMode::kEveryBytes;
  lopts.sync.sync_bytes = 1 << 20;
  log::RecoveryManager::Options mopts;
  mopts.full_snapshot_interval = 3;

  log::MemFileSystem fs;
  std::vector<Event> outputs;  // across all incarnations, replay included
  size_t next_event = 0;       // source cursor
  constexpr size_t kPerRound = 100;

  for (int round = 0; round < 5; ++round) {
    auto log = MustOpenLog(&fs, lopts);
    auto mgr = MustOpenManager(&fs, log.get(), mopts);
    PartitionedTPStream engine(spec, {},
                               [&](const Event& e) { outputs.push_back(e); });
    auto report = mgr->Recover(engine);
    ASSERT_TRUE(report.ok()) << "round " << round;
    // Re-send what the crash wiped from the log.
    next_event = log->end_offset();
    const size_t target = std::min(events.size(),
                                   (round + 1) * kPerRound);
    for (; next_event < target; ++next_event) {
      Feed(*log, engine, events[next_event]);
      if (next_event % 70 == 69) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
    }
    fs.SimulateCrash();  // power cut; checkpoints were tmp+fsync+rename
  }

  // Final incarnation: recover and verify the end state.
  auto log = MustOpenLog(&fs, lopts);
  auto mgr = MustOpenManager(&fs, log.get(), mopts);
  PartitionedTPStream engine(spec, {},
                             [&](const Event& e) { outputs.push_back(e); });
  auto report = mgr->Recover(engine);
  ASSERT_TRUE(report.ok());
  for (size_t i = log->end_offset(); i < events.size(); ++i) {
    Feed(*log, engine, events[i]);
  }

  ckpt::Writer final_ckpt;
  engine.Checkpoint(final_ckpt);
  EXPECT_EQ(final_ckpt.buffer(), ref_final)
      << "chained recovery diverged after 5 kill/recover/append rounds";

  // Match-output differential: the at-least-once union of all
  // incarnations must contain the exact uninterrupted match stream
  // (dedup by identity), and the last incarnation's tail must be pure.
  auto key = [](const Event& e) {
    std::string k = std::to_string(e.t);
    for (const Value& v : e.payload) k += "|" + v.ToString();
    return k;
  };
  std::multiset<std::string> got, want;
  for (const Event& e : outputs) got.insert(key(e));
  for (const Event& e : ref_outputs) want.insert(key(e));
  for (const std::string& k : want) {
    ASSERT_GT(got.count(k), 0u) << "missing match " << k;
  }
}

}  // namespace
}  // namespace tpstream
