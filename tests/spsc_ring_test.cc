// Unit tests for the lock-free SPSC ring backing ParallelTPStream's
// batch hand-off (carried by the `concurrency` ctest label, so the TSan
// CI job verifies the acquire/release protocol on the torture loops).

#include "parallel/spsc_ring.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace tpstream {
namespace parallel {
namespace {

// Bounded-progress wait for the two-thread torture loops: a few relax
// iterations, then yield so the loops also finish promptly on
// single-core machines (pure CpuRelax spinning would only advance on
// preemption there).
void SpinWait(int* spin) {
  if (++*spin < 64) {
    CpuRelax();
  } else {
    *spin = 0;
    std::this_thread::yield();
  }
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
  // Degenerate request still yields a usable ring.
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
}

TEST(SpscRingTest, CapacityOneAlternatesPushAndPop) {
  SpscRing<int> ring(1);
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.Full());
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));

  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ring.TryPush(int{i}));
    EXPECT_TRUE(ring.Full());
    EXPECT_FALSE(ring.TryPush(int{999}));  // full: rejected
    EXPECT_EQ(ring.Size(), 1u);
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
    EXPECT_TRUE(ring.Empty());
    EXPECT_FALSE(ring.TryPop(&out));
  }
}

TEST(SpscRingTest, FifoOrderAcrossManyWraps) {
  // Capacity 4: mixed-size bursts drive the slot index across the 2^k
  // boundary hundreds of times; pops must come out in push order.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % static_cast<int>(ring.capacity());
    for (int i = 0; i < burst; ++i) {
      if (!ring.TryPush(int{next_push})) break;
      ++next_push;
    }
    const int drain = 1 + (round * 7) % static_cast<int>(ring.capacity());
    for (int i = 0; i < drain; ++i) {
      int out = -1;
      if (!ring.TryPop(&out)) break;
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  int out = -1;
  while (ring.TryPop(&out)) {
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_GT(next_push, 1000);  // well past many wraps of the mask
}

TEST(SpscRingTest, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(7)));
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(8)));

  // A rejected push must leave the argument untouched so the caller can
  // retry with the same object (the operator's backpressure path relies
  // on this).
  auto survivor = std::make_unique<int>(9);
  EXPECT_FALSE(ring.TryPush(std::move(survivor)));
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(*survivor, 9);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 7);
  EXPECT_TRUE(ring.TryPush(std::move(survivor)));
  EXPECT_EQ(survivor, nullptr);  // accepted push does move

  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 8);
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, 9);
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, SizeIsClampedAndConsistentWhenQuiescent) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.Size(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(int{i}));
  EXPECT_EQ(ring.Size(), 5u);
  int out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(ring.Size(), 4u);
}

// Two-thread torture: the producer pushes a strictly increasing sequence
// (spinning on full), the consumer pops it back (spinning on empty) and
// checks order and completeness. Run for several capacities, including
// the capacity-1 edge; under TSan this exercises the release/acquire
// pairing on head_/tail_ and the slot hand-off.
TEST(SpscRingTest, ConcurrentTortureLoopPreservesSequence) {
  for (const size_t capacity : {size_t{1}, size_t{2}, size_t{16}}) {
    SCOPED_TRACE(testing::Message() << "capacity=" << capacity);
    SpscRing<int64_t> ring(capacity);
    constexpr int64_t kCount = 200000;

    std::thread producer([&ring] {
      int spin = 0;
      for (int64_t i = 0; i < kCount; ++i) {
        while (!ring.TryPush(int64_t{i})) SpinWait(&spin);
      }
    });

    int64_t expected = 0;
    int64_t popped;
    int spin = 0;
    while (expected < kCount) {
      if (ring.TryPop(&popped)) {
        ASSERT_EQ(popped, expected);
        ++expected;
      } else {
        SpinWait(&spin);
      }
    }
    producer.join();
    EXPECT_TRUE(ring.Empty());
    EXPECT_EQ(expected, kCount);
  }
}

// Same torture with a heap-owning element type: a moved-in unique_ptr
// must come out exactly once (ASan would flag double-free or leak).
TEST(SpscRingTest, ConcurrentTortureLoopMoveOnly) {
  SpscRing<std::unique_ptr<int64_t>> ring(4);
  constexpr int64_t kCount = 50000;

  std::thread producer([&ring] {
    int spin = 0;
    for (int64_t i = 0; i < kCount; ++i) {
      auto item = std::make_unique<int64_t>(i);
      while (!ring.TryPush(std::move(item))) SpinWait(&spin);
    }
  });

  int64_t expected = 0;
  std::unique_ptr<int64_t> popped;
  int spin = 0;
  while (expected < kCount) {
    if (ring.TryPop(&popped)) {
      ASSERT_NE(popped, nullptr);
      ASSERT_EQ(*popped, expected);
      ++expected;
    } else {
      SpinWait(&spin);
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

}  // namespace
}  // namespace parallel
}  // namespace tpstream
