// Edge cases across modules: disconnected patterns (cross-product
// fallback), single-symbol queries, string partition keys, analytic
// detection-time corner cases, and operator bookkeeping.
#include <gtest/gtest.h>

#include "algebra/detection.h"
#include "core/partitioned_operator.h"
#include "matcher/matcher.h"
#include "query/builder.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::BatchByEnd;
using testing::BruteForceMatches;
using testing::ConfigKey;
using testing::KeyOf;
using testing::Sit;

TEST(EdgeCaseTest, DisconnectedPatternFallsBackToCrossProduct) {
  // A before B, C unrelated: every in-window C joins every (A,B) pair.
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  EXPECT_FALSE(p.IsConnected());

  std::vector<std::vector<Situation>> streams = {
      {Sit(1, 4), Sit(10, 12)},
      {Sit(6, 9), Sit(14, 18)},
      {Sit(2, 5), Sit(11, 13)},
  };
  std::map<ConfigKey, TimePoint> got;
  Matcher matcher(p, 100, [&](const Match& m) {
    got.emplace(KeyOf(m.config), m.detected_at);
  });
  for (const auto& [te, batch] : BatchByEnd(streams)) {
    matcher.Update(batch, te);
  }
  const auto expected = BruteForceMatches(p, 100, streams);
  EXPECT_EQ(got.size(), expected.size());
  // (A,B) pairs: (1,6),(1,14),(10,14); C free: 2 options each.
  EXPECT_EQ(expected.size(), 6u);
}

TEST(EdgeCaseTest, SingleSymbolQueryEmitsEverySituation) {
  Schema schema({Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("S", FieldRef(0, "flag"), AtLeast(2))
      .Within(100)
      .Return("n", "S", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  std::vector<Event> outputs;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });
  // Situations [2,5) (kept) and [7,8) (fails AT LEAST 2). Low-latency
  // semantics: the single-symbol match is concluded at the deferred
  // start (t=3, when the minimum duration is guaranteed), with the
  // aggregate snapshot of the events seen so far.
  for (TimePoint t = 1; t <= 10; ++t) {
    const bool flag = (t >= 2 && t < 5) || t == 7;
    op.Push(Event({Value(flag)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 3);
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 2);

  // The baseline operator reports the same situation at its end, with
  // the complete aggregate.
  TPStreamOperator::Options baseline;
  baseline.low_latency = false;
  std::vector<Event> base_out;
  TPStreamOperator base_op(spec.value(), baseline, [&](const Event& e) {
    base_out.push_back(e);
  });
  for (TimePoint t = 1; t <= 10; ++t) {
    const bool flag = (t >= 2 && t < 5) || t == 7;
    base_op.Push(Event({Value(flag)}, t));
  }
  ASSERT_EQ(base_out.size(), 1u);
  EXPECT_EQ(base_out[0].t, 5);
  EXPECT_EQ(base_out[0].payload[0].AsInt(), 3);
}

TEST(EdgeCaseTest, PartitionByStringKeys) {
  Schema schema(
      {Field{"host", ValueType::kString}, Field{"up", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("UP", FieldRef(1, "up"))
      .Define("DOWN", Not(FieldRef(1, "up")))
      .Relate("UP", Relation::kMeets, "DOWN")
      .Within(100)
      .Return("host", "UP", AggKind::kFirst, "host")
      .PartitionBy("host");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<std::string> hosts;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& e) {
    hosts.push_back(e.payload[0].AsString());
  });
  for (TimePoint t = 1; t <= 10; ++t) {
    op.Push(Event({Value(std::string("alpha")), Value(t < 5)}, t));
    op.Push(Event({Value(std::string("beta")), Value(t < 8)}, t));
  }
  EXPECT_EQ(op.num_partitions(), 2u);
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], "alpha");
  EXPECT_EQ(hosts[1], "beta");
}

TEST(EdgeCaseTest, EarliestDetectionCornerCases) {
  // Non-matching configuration: never detectable.
  TemporalPattern before({"A", "B"});
  ASSERT_TRUE(before.AddRelation(0, Relation::kBefore, 1).ok());
  EXPECT_EQ(EarliestDetection(before, {Sit(5, 9), Sit(1, 3)}), kTimeMax);

  // before: certain the moment B starts.
  EXPECT_EQ(EarliestDetection(before, {Sit(1, 3), Sit(5, 9)}), 5);

  // equals: only certain when both have ended.
  TemporalPattern equals({"A", "B"});
  ASSERT_TRUE(equals.AddRelation(0, Relation::kEquals, 1).ok());
  EXPECT_EQ(EarliestDetection(equals, {Sit(2, 8), Sit(2, 8)}), 8);

  // Complete prefix group: certain at the later start.
  TemporalPattern group({"A", "B"});
  ASSERT_TRUE(group.AddRelation(0, Relation::kOverlaps, 1).ok());
  ASSERT_TRUE(group.AddRelation(0, Relation::kFinishes, 1).ok());
  ASSERT_TRUE(group.AddRelation(0, Relation::kContains, 1).ok());
  EXPECT_EQ(EarliestDetection(group, {Sit(2, 20), Sit(6, 9)}), 6);
}

TEST(EdgeCaseTest, MeetsAdjacencyAcrossStreams) {
  // A ends exactly where B starts (derived from complementary
  // predicates): meets must fire, before must not.
  std::vector<std::vector<Situation>> streams = {{Sit(1, 5)}, {Sit(5, 9)}};
  for (const auto& [relation, expected] :
       std::vector<std::pair<Relation, size_t>>{
           {Relation::kMeets, 1}, {Relation::kBefore, 0}}) {
    TemporalPattern p({"A", "B"});
    ASSERT_TRUE(p.AddRelation(0, relation, 1).ok());
    size_t count = 0;
    Matcher matcher(p, 100, [&](const Match&) { ++count; });
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    EXPECT_EQ(count, expected) << RelationName(relation);
  }
}

TEST(EdgeCaseTest, ZeroLengthWindowsAndTinySituations) {
  // Minimum-length situations (one tick) through the whole stack.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  std::map<ConfigKey, TimePoint> got;
  Matcher matcher(p, 3, [&](const Match& m) {
    got.emplace(KeyOf(m.config), m.detected_at);
  });
  matcher.Update({{0, Sit(1, 2)}}, 2);
  matcher.Update({{1, Sit(3, 4)}}, 4);  // span 3 == window: kept
  matcher.Update({{1, Sit(5, 6)}}, 6);  // span 5 > window for A@1
  EXPECT_EQ(got.size(), 1u);
}

TEST(EdgeCaseTest, OperatorBookkeeping) {
  Schema schema({Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0))
      .Define("B", Not(FieldRef(0)))
      .Relate("A", Relation::kMeets, "B")
      .Within(50)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  TPStreamOperator op(spec.value(), {}, nullptr);
  for (TimePoint t = 1; t <= 30; ++t) {
    op.Push(Event({Value(t % 10 < 5)}, t));
  }
  EXPECT_EQ(op.num_events(), 30);
  EXPECT_GT(op.num_matches(), 0);
  EXPECT_GT(op.BufferedCount(), 0u);
  EXPECT_EQ(op.CurrentOrder().size(), 2u);

  // Forcing an order mid-stream stays consistent.
  op.ForceEvaluationOrder({1, 0});
  EXPECT_EQ(op.CurrentOrder(), (std::vector<int>{1, 0}));
}

TEST(EdgeCaseTest, ValidationRejectsBrokenSpecs) {
  Schema schema({Field{"flag", ValueType::kBool}});
  {
    QueryBuilder qb(schema);  // no definitions
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(schema);
    qb.Define("A", FieldRef(0));  // window missing
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(schema);
    qb.Define("A", FieldRef(0)).Within(10).Relate("A", Relation::kBefore,
                                                  "Z");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(schema);
    qb.Define("A", FieldRef(0)).Within(10).PartitionBy("nope");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(schema);
    qb.Define("A", FieldRef(0), Between(9, 2)).Within(10);  // min > max
    EXPECT_FALSE(qb.Build().ok());
  }
}

}  // namespace
}  // namespace tpstream
