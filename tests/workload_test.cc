#include <gtest/gtest.h>

#include "workload/interval_source.h"
#include "workload/linear_road.h"
#include "workload/market.h"
#include "workload/synthetic.h"

namespace tpstream {
namespace {

TEST(SyntheticGeneratorTest, ShapeAndDeterminism) {
  SyntheticGenerator::Options options;
  options.num_streams = 4;
  options.seed = 99;
  SyntheticGenerator gen(options);
  SyntheticGenerator gen2(options);
  EXPECT_EQ(gen.schema().num_fields(), 4);

  for (int i = 0; i < 1000; ++i) {
    const Event a = gen.Next();
    const Event b = gen2.Next();
    ASSERT_EQ(a.t, b.t);
    ASSERT_EQ(a.payload.size(), 4u);
    for (int f = 0; f < 4; ++f) {
      ASSERT_EQ(a.payload[f].AsBool(), b.payload[f].AsBool());
    }
  }
}

TEST(SyntheticGeneratorTest, SituationLengthsWithinConfiguredRanges) {
  SyntheticGenerator::Options options;
  options.num_streams = 1;
  options.min_duration = 10;
  options.max_duration = 100;
  options.min_gap = 10;
  options.max_gap = 50;
  SyntheticGenerator gen(options);

  std::vector<Duration> situation_lengths;
  std::vector<Duration> gap_lengths;
  bool prev = false;
  TimePoint phase_start = 1;
  for (int i = 0; i < 200000; ++i) {
    const Event e = gen.Next();
    const bool cur = e.payload[0].AsBool();
    if (cur != prev) {
      const Duration len = e.t - phase_start;
      if (i > 0) (prev ? situation_lengths : gap_lengths).push_back(len);
      phase_start = e.t;
      prev = cur;
    }
  }
  ASSERT_GT(situation_lengths.size(), 100u);
  for (Duration d : situation_lengths) {
    EXPECT_GE(d, 10);
    EXPECT_LE(d, 100);
  }
  for (Duration d : gap_lengths) {
    EXPECT_GE(d, 10);
    EXPECT_LE(d, 50);
  }
}

TEST(SyntheticGeneratorTest, RatiosScaleOccurrences) {
  SyntheticGenerator::Options options;
  options.num_streams = 2;
  options.seed = 5;
  SyntheticGenerator gen(options);
  gen.SetRatios({1.0, 20.0});

  int starts0 = 0;
  int starts1 = 0;
  bool prev0 = false;
  bool prev1 = false;
  for (int i = 0; i < 300000; ++i) {
    const Event e = gen.Next();
    const bool cur0 = e.payload[0].AsBool();
    const bool cur1 = e.payload[1].AsBool();
    if (cur0 && !prev0) ++starts0;
    if (cur1 && !prev1) ++starts1;
    prev0 = cur0;
    prev1 = cur1;
  }
  // Stream 1 occurs far more often than stream 0 (gaps 20x shorter).
  EXPECT_GT(starts1, starts0 * 4);
}

TEST(LinearRoadGeneratorTest, SchemaAndRoundRobin) {
  LinearRoadGenerator::Options options;
  options.num_cars = 10;
  LinearRoadGenerator gen(options);
  EXPECT_EQ(gen.schema().num_fields(), 5);

  for (int round = 0; round < 5; ++round) {
    for (int car = 0; car < 10; ++car) {
      const Event e = gen.Next();
      EXPECT_EQ(e.payload[LinearRoadGenerator::kCarId].AsInt(), car);
      EXPECT_EQ(e.t, round + 1);  // all cars report each second
      EXPECT_GE(e.payload[LinearRoadGenerator::kSpeed].ToDouble(), 0.0);
    }
  }
}

TEST(LinearRoadGeneratorTest, ProducesSpeedingAndBrakingPhases) {
  LinearRoadGenerator::Options options;
  options.num_cars = 50;
  options.aggressive_fraction = 0.3;
  LinearRoadGenerator gen(options);
  int speeding = 0;
  int hard_accel = 0;
  int hard_brake = 0;
  for (int i = 0; i < 200000; ++i) {
    const Event e = gen.Next();
    if (e.payload[LinearRoadGenerator::kSpeed].ToDouble() > 70.0) ++speeding;
    const double accel = e.payload[LinearRoadGenerator::kAccel].ToDouble();
    if (accel > 8.0) ++hard_accel;
    if (accel < -9.0) ++hard_brake;
  }
  EXPECT_GT(speeding, 500);
  EXPECT_GT(hard_accel, 200);
  EXPECT_GT(hard_brake, 200);
}

TEST(LinearRoadGeneratorTest, PercentileCalibration) {
  LinearRoadGenerator::Options options;
  options.num_cars = 100;
  const double p99_speed = LinearRoadGenerator::SampleFieldPercentile(
      options, LinearRoadGenerator::kSpeed, 99.0, 50000);
  const double p50_speed = LinearRoadGenerator::SampleFieldPercentile(
      options, LinearRoadGenerator::kSpeed, 50.0, 50000);
  EXPECT_GT(p99_speed, p50_speed);
  EXPECT_GT(p99_speed, 65.0);  // the tail contains speeding phases
}

TEST(MarketDataGeneratorTest, RegimesProduceDurableSituations) {
  MarketDataGenerator::Options options;
  options.num_symbols = 8;
  MarketDataGenerator gen(options);
  EXPECT_EQ(gen.schema().IndexOf("price"), MarketDataGenerator::kPrice);

  int rally_ticks = 0;
  int selloff_ticks = 0;
  int burst_ticks = 0;
  for (int i = 0; i < 200000; ++i) {
    const Event e = gen.Next();
    ASSERT_GT(e.payload[MarketDataGenerator::kPrice].ToDouble(), 0.0);
    const double ret = e.payload[MarketDataGenerator::kReturn].ToDouble();
    if (ret > 0.05) ++rally_ticks;
    if (ret < -0.07) ++selloff_ticks;
    if (e.payload[MarketDataGenerator::kVolume].AsInt() > 200) ++burst_ticks;
  }
  // Regimes must create enough sustained phases for temporal queries.
  EXPECT_GT(rally_ticks, 1000);
  EXPECT_GT(selloff_ticks, 1000);
  EXPECT_GT(burst_ticks, 1000);

  // Determinism under the same seed.
  MarketDataGenerator a(options);
  MarketDataGenerator b(options);
  for (int i = 0; i < 1000; ++i) {
    const Event ea = a.Next();
    const Event eb = b.Next();
    ASSERT_EQ(ea.payload[MarketDataGenerator::kPrice].ToDouble(),
              eb.payload[MarketDataGenerator::kPrice].ToDouble());
  }
}

TEST(RandomSituationGeneratorTest, EndOrderedAndDisjointPerStream) {
  std::vector<RandomSituationGenerator::StreamOptions> streams(3);
  RandomSituationGenerator gen(streams, 77);

  TimePoint last_te = 0;
  std::vector<TimePoint> last_te_per_stream(3, 0);
  for (int i = 0; i < 5000; ++i) {
    const SymbolSituation ss = gen.Next();
    ASSERT_GE(ss.symbol, 0);
    ASSERT_LT(ss.symbol, 3);
    EXPECT_GE(ss.situation.te, last_te);  // globally end-ordered
    EXPECT_GE(ss.situation.ts, last_te_per_stream[ss.symbol]);  // disjoint
    EXPECT_GT(ss.situation.te, ss.situation.ts);
    last_te = ss.situation.te;
    last_te_per_stream[ss.symbol] = ss.situation.te;
  }
}

}  // namespace
}  // namespace tpstream
