#include <random>

#include <gtest/gtest.h>

#include "baselines/iseq.h"
#include "baselines/strawman.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::BatchByEnd;
using testing::BruteForceMatches;
using testing::ConfigKey;
using testing::KeyOf;
using testing::RandomPattern;
using testing::RandomStream;
using testing::Sit;

TEST(IseqMatcherTest, AgreesWithBruteForce) {
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 3);
    const TemporalPattern pattern = RandomPattern(rng, n);
    const Duration window = 30 + static_cast<Duration>(rng() % 50);
    std::vector<std::vector<Situation>> streams(n);
    for (auto& s : streams) s = RandomStream(rng, 250);

    std::map<ConfigKey, TimePoint> got;
    IseqMatcher matcher(pattern, window, [&](const Match& m) {
      got.emplace(KeyOf(m.config), m.detected_at);
    });
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    const auto expected = BruteForceMatches(pattern, window, streams);
    EXPECT_EQ(got.size(), expected.size()) << pattern.ToString();
    for (const auto& [key, te] : expected) {
      auto it = got.find(key);
      ASSERT_NE(it, got.end());
      EXPECT_EQ(it->second, te);  // ISEQ detects at the last end timestamp
    }
  }
}

TEST(IseqOperatorTest, DerivesAndMatchesFromPointEvents) {
  // Two boolean streams; pattern A overlaps B.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 1).ok());
  std::vector<SituationDefinition> defs = {
      SituationDefinition("A", FieldRef(0, "a")),
      SituationDefinition("B", FieldRef(1, "b")),
  };
  std::vector<Match> matches;
  IseqOperator op(defs, p, 100,
                  [&](const Match& m) { matches.push_back(m); });

  // a: true on [2,6), b: true on [4,9).
  for (TimePoint t = 1; t <= 12; ++t) {
    const bool a = t >= 2 && t < 6;
    const bool b = t >= 4 && t < 9;
    op.Push(Event({Value(a), Value(b)}, t));
  }
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].config[0].ts, 2);
  EXPECT_EQ(matches[0].config[0].te, 6);
  EXPECT_EQ(matches[0].config[1].ts, 4);
  EXPECT_EQ(matches[0].config[1].te, 9);
  // ISEQ concludes only when B ends.
  EXPECT_EQ(matches[0].detected_at, 9);
}

// Converts situation streams to a boolean event trace (one bool attribute
// per stream, 1 Hz). The trace starts all-false so the two-phase NFA sees
// the leading boundary event of every situation.
std::vector<Event> ToBooleanTrace(
    const std::vector<std::vector<Situation>>& streams, TimePoint horizon) {
  std::vector<Event> events;
  for (TimePoint t = 1; t <= horizon; ++t) {
    Tuple payload;
    for (const auto& stream : streams) {
      bool active = false;
      for (const Situation& s : stream) {
        if (t >= s.ts && t < s.te) {
          active = true;
          break;
        }
      }
      payload.push_back(Value(active));
    }
    events.emplace_back(std::move(payload), t);
  }
  return events;
}

TEST(TwoPhaseMatcherTest, AgreesWithBruteForceOnDerivedSituations) {
  std::mt19937_64 rng(62);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 2);
    const TemporalPattern pattern = RandomPattern(rng, n);
    const Duration window = 60;
    constexpr TimePoint kHorizon = 200;

    std::vector<std::vector<Situation>> streams(n);
    std::vector<SituationDefinition> defs;
    for (int s = 0; s < n; ++s) {
      // Start at ts >= 2 so the leading !S boundary event exists.
      streams[s] = RandomStream(rng, kHorizon - 1, 2, 12, 2, 10);
      defs.emplace_back(std::string(1, 'A' + s), FieldRef(s));
    }

    std::map<ConfigKey, TimePoint> got;
    int duplicates = 0;
    TwoPhaseMatcher matcher(defs, pattern, window, [&](const Match& m) {
      auto [it, inserted] = got.emplace(KeyOf(m.config), m.detected_at);
      if (!inserted) ++duplicates;
    });
    for (const Event& e : ToBooleanTrace(streams, kHorizon)) {
      matcher.Push(e);
    }
    const auto expected = BruteForceMatches(pattern, window, streams);
    EXPECT_EQ(duplicates, 0);
    EXPECT_EQ(got.size(), expected.size())
        << "trial " << trial << " " << pattern.ToString();
  }
}

TEST(TwoPhaseMatcherTest, RetainedEventsTrackWindow) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  std::vector<SituationDefinition> defs = {
      SituationDefinition("A", FieldRef(0)),
      SituationDefinition("B", FieldRef(1)),
  };
  TwoPhaseMatcher matcher(defs, p, /*window=*/50, nullptr);
  for (TimePoint t = 1; t <= 500; ++t) {
    matcher.Push(Event({Value(false), Value(false)}, t));
  }
  // Retention is bounded by the window, not the stream length.
  EXPECT_LE(matcher.BufferedCount(), 60u);
}

TEST(SingleRunMatcherTest, EncodesOverlapsAtEventGranularity) {
  // "A overlaps B" as A+ (A and B)+ B+ over two boolean attributes
  // (the encoding sketched in Section 1). Early result: concluded at the
  // first B-only event... with strict contiguity the pattern completes at
  // the first event where only B holds.
  const ExprPtr a = FieldRef(0, "a");
  const ExprPtr b = FieldRef(1, "b");
  cep::CepPattern p;
  // Leading boundary pins the start of the A phase, exactly like the
  // derivation patterns; without it the NFA reports one run per possible
  // A anchor.
  p.steps.push_back(cep::PatternStep{"pre", And(Not(a), Not(b)), false, {}});
  p.steps.push_back(cep::PatternStep{"A", And(a, Not(b)), true, {}});
  p.steps.push_back(cep::PatternStep{"AB", And(a, b), true, {}});
  p.steps.push_back(cep::PatternStep{"B", And(b, Not(a)), false, {}});

  std::vector<cep::CepMatch> matches;
  SingleRunMatcher matcher(
      p, [&](const cep::CepMatch& m) { matches.push_back(m); });
  // a: [1,5), b: [3,8); the trace starts with an all-false event at t=0.
  for (TimePoint t = 0; t <= 9; ++t) {
    const bool av = t >= 1 && t < 5;
    const bool bv = t >= 3 && t < 8;
    matcher.Push(Event({Value(av), Value(bv)}, t));
  }
  ASSERT_EQ(matches.size(), 1u);
  // Early detection: at t=5, the first B-only event, well before B ends.
  EXPECT_EQ(matches[0].detected_at, 5);
}

}  // namespace
}  // namespace tpstream
