#include "optimizer/plan_optimizer.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::RandomPattern;

TEST(PlanOptimizerTest, EnumerateOrdersQ1Q2Q3HaveSixPlans) {
  // Q1-Q3 of Section 6.4.1 relate three streams pairwise (triangle), so
  // all 3! = 6 orders are valid (no cross products).
  TemporalPattern q1({"A", "B", "C"});
  ASSERT_TRUE(q1.AddRelation(0, Relation::kOverlaps, 1).ok());
  ASSERT_TRUE(q1.AddRelation(0, Relation::kOverlaps, 2).ok());
  ASSERT_TRUE(q1.AddRelation(1, Relation::kStarts, 2).ok());
  PlanOptimizer opt(&q1);
  EXPECT_EQ(opt.EnumerateOrders().size(), 6u);
}

TEST(PlanOptimizerTest, ChainPatternExcludesCrossProducts) {
  // A-B-C chain: orders starting with A must continue with B (C would be
  // a cross product). Valid: ABC, BAC, BCA, CBA, plus B-first variants...
  // exactly the orders where every prefix is connected.
  TemporalPattern chain({"A", "B", "C"});
  ASSERT_TRUE(chain.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(chain.AddRelation(1, Relation::kBefore, 2).ok());
  PlanOptimizer opt(&chain);
  const auto orders = opt.EnumerateOrders();
  EXPECT_EQ(orders.size(), 4u);  // ABC, BAC, BCA, CBA
  for (const auto& order : orders) {
    // Second element must be connected to the first.
    EXPECT_TRUE(chain.ConstraintIndex(order[0], order[1]) >= 0)
        << order[0] << order[1] << order[2];
  }
}

TEST(PlanOptimizerTest, DpMatchesExhaustiveSearch) {
  std::mt19937_64 rng(51);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 3);  // 3..5
    const TemporalPattern pattern = RandomPattern(rng, n, 0.5);
    MatcherStats stats(pattern, 0.1);
    // Random buffer sizes to make the search non-trivial.
    for (int s = 0; s < n; ++s) {
      const double target = 1.0 + static_cast<double>(rng() % 1000);
      // Move the EMA decisively toward the target.
      for (int k = 0; k < 200; ++k) stats.UpdateBufferSize(s, target);
    }

    PlanOptimizer opt(&pattern);
    const std::vector<int> best_dp = opt.BestOrder(stats);
    double best_cost = std::numeric_limits<double>::infinity();
    for (const auto& order : opt.EnumerateOrders()) {
      best_cost = std::min(best_cost, opt.Cost(order, stats));
    }
    EXPECT_NEAR(opt.Cost(best_dp, stats), best_cost,
                1e-9 * std::max(1.0, best_cost))
        << pattern.ToString();
  }
}

TEST(PlanOptimizerTest, PrefersSmallSelectiveBuffersFirst) {
  // A before B, B before C; C's buffer is huge. The best plan joins the
  // small buffers first.
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(p.AddRelation(1, Relation::kBefore, 2).ok());
  MatcherStats stats(p, 0.5);
  for (int k = 0; k < 64; ++k) {
    stats.UpdateBufferSize(0, 10.0);
    stats.UpdateBufferSize(1, 10.0);
    stats.UpdateBufferSize(2, 10000.0);
  }
  PlanOptimizer opt(&p);
  const std::vector<int> best = opt.BestOrder(stats);
  EXPECT_NE(best[0], 2);  // the huge buffer must not lead the join
}

TEST(PlanOptimizerTest, InitialCostUsesTableThreeSelectivities) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kEquals, 1).ok());
  MatcherStats stats(p, 0.01);
  EXPECT_DOUBLE_EQ(stats.selectivity_ema(0), 0.0006);

  TemporalPattern q({"A", "B"});
  ASSERT_TRUE(q.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(q.AddRelation(0, Relation::kAfter, 1).ok());
  MatcherStats qstats(q, 0.01);
  EXPECT_DOUBLE_EQ(qstats.selectivity_ema(0), 0.89);  // 0.445 + 0.445
}

TEST(AdaptiveControllerTest, FirstCallSuggestsInitialPlan) {
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(p.AddRelation(1, Relation::kBefore, 2).ok());
  MatcherStats stats(p, 0.01);
  AdaptiveController controller(&p, {});
  const auto order = controller.MaybeReoptimize(stats);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), 3u);
  EXPECT_EQ(controller.migrations(), 1);
}

TEST(AdaptiveControllerTest, ReoptimizesOnDriftOnly) {
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(p.AddRelation(1, Relation::kBefore, 2).ok());
  MatcherStats stats(p, 0.5);
  AdaptiveController::Options options;
  options.threshold = 0.2;
  options.check_interval = 1;
  AdaptiveController controller(&p, options);
  ASSERT_TRUE(controller.MaybeReoptimize(stats).has_value());

  // Stable statistics: no re-optimization.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(controller.MaybeReoptimize(stats).has_value());
  }
  const int64_t before = controller.reoptimizations();

  // Massive drift in one buffer: re-optimization must trigger and the
  // new plan should avoid leading with the now-huge buffer.
  for (int k = 0; k < 32; ++k) stats.UpdateBufferSize(0, 50000.0);
  const auto order = controller.MaybeReoptimize(stats);
  EXPECT_GT(controller.reoptimizations(), before);
  if (order.has_value()) {
    EXPECT_NE((*order)[0], 0);
  }
}

}  // namespace
}  // namespace tpstream
