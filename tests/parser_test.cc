#include "query/parser.h"

#include <gtest/gtest.h>

#include "core/operator.h"
#include "query/lexer.h"

namespace tpstream {
namespace {

Schema CarSchema() {
  return Schema({
      Field{"car_id", ValueType::kInt},
      Field{"speed", ValueType::kDouble},
      Field{"accel", ValueType::kDouble},
      Field{"position", ValueType::kDouble},
      Field{"lane", ValueType::kInt},
  });
}

TEST(LexerTest, NumbersWithUnits) {
  auto tokens = query::Tokenize("8m/s^2 70mph 5s 4.5 x_1").value();
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, query::TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[0].number, 8);
  EXPECT_EQ(tokens[0].unit, "m/s^2");
  EXPECT_EQ(tokens[1].unit, "mph");
  EXPECT_EQ(tokens[2].unit, "s");
  EXPECT_DOUBLE_EQ(tokens[3].number, 4.5);
  EXPECT_TRUE(tokens[3].unit.empty());
  EXPECT_EQ(tokens[4].type, query::TokenType::kIdent);
  EXPECT_EQ(tokens[4].text, "x_1");
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens =
      query::Tokenize("a <= b -- trailing comment\n >= == != < >").value();
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[4].text, "==");
  EXPECT_EQ(tokens[5].text, "!=");
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(query::Tokenize("a ? b").ok());
  EXPECT_FALSE(query::Tokenize("'unterminated").ok());
}

TEST(LexerTest, RejectsOutOfRangeNumericLiterals) {
  // A literal too large for double used to escape as an uncaught
  // std::out_of_range from std::stod; it must surface as a Status.
  const std::string huge(400, '9');
  const auto result = query::Tokenize(huge);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos)
      << result.status().message();
  // The same literal inside surrounding tokens.
  EXPECT_FALSE(query::Tokenize("speed > " + huge).ok());
  // Huge-but-representable stays fine.
  EXPECT_TRUE(query::Tokenize("1e3").ok());
}

TEST(ParserTest, MalformedNumericLiteralSurfacesAsStatus) {
  // End-to-end: the oversized literal flows through ParseQuery as a
  // parse error instead of a crash.
  const std::string huge(400, '9');
  const auto spec = query::ParseQuery(
      "FROM CarSensors CS DEFINE A AS CS.speed > " + huge +
          " PATTERN A WITHIN 10s RETURN first(A.car_id) AS id",
      CarSchema());
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kParseError);
}

constexpr char kAggressiveQuery[] = R"(
  FROM CarSensors CS PARTITION BY CS.car_id
  DEFINE A AS CS.accel > 8m/s^2 AT LEAST 5s,
         B AS CS.speed > 70mph BETWEEN 4s AND 30s,
         C AS CS.accel < -9m/s^2 AT LEAST 3s
  PATTERN A meets B; A overlaps B; A starts B; A during B
      AND C during B; B finishes C; B overlaps C; B meets C
      AND A before C
  WITHIN 5 MINUTES
  RETURN first(B.car_id) AS id,
         avg(B.speed) AS avg_speed
)";

TEST(ParserTest, ParsesTheListingOneQuery) {
  auto result = query::ParseQuery(kAggressiveQuery, CarSchema());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QuerySpec& spec = result.value();

  EXPECT_EQ(spec.partition_field, 0);
  ASSERT_EQ(spec.definitions.size(), 3u);
  EXPECT_EQ(spec.definitions[0].symbol, "A");
  EXPECT_EQ(spec.definitions[0].duration.min, 5);
  EXPECT_FALSE(spec.definitions[0].duration.has_max());
  EXPECT_EQ(spec.definitions[1].duration.min, 4);
  EXPECT_EQ(spec.definitions[1].duration.max, 30);
  EXPECT_EQ(spec.definitions[2].duration.min, 3);

  EXPECT_EQ(spec.window, 300);
  ASSERT_EQ(spec.pattern.constraints().size(), 3u);
  // Constraint (A, B): 4 alternatives.
  const int ab = spec.pattern.ConstraintIndex(0, 1);
  ASSERT_GE(ab, 0);
  EXPECT_EQ(spec.pattern.constraints()[ab].relations.size(), 4);
  // Constraint (B, C): "C during B" plus three B-oriented relations.
  const int bc = spec.pattern.ConstraintIndex(1, 2);
  ASSERT_GE(bc, 0);
  EXPECT_EQ(spec.pattern.constraints()[bc].relations.size(), 4);
  const int ac = spec.pattern.ConstraintIndex(0, 2);
  ASSERT_GE(ac, 0);
  EXPECT_TRUE(
      spec.pattern.constraints()[ac].relations.Contains(Relation::kBefore));

  ASSERT_EQ(spec.returns.size(), 2u);
  EXPECT_EQ(spec.returns[0].name, "id");
  EXPECT_EQ(spec.returns[0].symbol, 1);
  EXPECT_EQ(spec.returns[1].name, "avg_speed");
  ASSERT_EQ(spec.definitions[1].aggregates.size(), 2u);
  EXPECT_EQ(spec.definitions[1].aggregates[0].kind, AggKind::kFirst);
  EXPECT_EQ(spec.definitions[1].aggregates[1].kind, AggKind::kAvg);

  // Predicates compile to evaluable expressions.
  Tuple fast = {Value(int64_t{1}), Value(90.0), Value(0.0), Value(0.0),
                Value(int64_t{0})};
  EXPECT_TRUE(EvalPredicate(*spec.definitions[1].predicate, fast));
  Tuple braking = {Value(int64_t{1}), Value(50.0), Value(-11.0), Value(0.0),
                   Value(int64_t{0})};
  EXPECT_TRUE(EvalPredicate(*spec.definitions[2].predicate, braking));
  EXPECT_FALSE(EvalPredicate(*spec.definitions[0].predicate, braking));
}

TEST(ParserTest, HyphenatedAndInverseRelations) {
  const Schema schema({Field{"x", ValueType::kInt}});
  auto result = query::ParseQuery(
      "FROM S DEFINE A AS x > 1, B AS x < 0 "
      "PATTERN B started-by A; A met-by B WITHIN 10s",
      schema);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const int ab = result.value().pattern.ConstraintIndex(0, 1);
  ASSERT_GE(ab, 0);
  // B started-by A == A starts B; A met-by B == B meets A.
  EXPECT_TRUE(result.value().pattern.constraints()[ab].relations.Contains(
      Relation::kStarts));
  EXPECT_TRUE(result.value().pattern.constraints()[ab].relations.Contains(
      Relation::kMetBy));
}

TEST(ParserTest, BooleanConnectivesInDefine) {
  const Schema schema(
      {Field{"x", ValueType::kInt}, Field{"y", ValueType::kInt}});
  auto result = query::ParseQuery(
      "FROM S DEFINE A AS x > 1 AND NOT y > 5 OR y == 2, B AS x < 0 "
      "PATTERN A before B WITHIN 100",
      schema);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& pred = *result.value().definitions[0].predicate;
  EXPECT_TRUE(EvalPredicate(pred, {Value(int64_t{2}), Value(int64_t{3})}));
  EXPECT_FALSE(EvalPredicate(pred, {Value(int64_t{2}), Value(int64_t{7})}));
  EXPECT_TRUE(EvalPredicate(pred, {Value(int64_t{0}), Value(int64_t{2})}));
}

TEST(ParserTest, ReportsErrors) {
  const Schema schema({Field{"x", ValueType::kInt}});
  // Unknown field.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS speed > 1, B AS x < 0 "
                   "PATTERN A before B WITHIN 10",
                   schema)
                   .ok());
  // Unknown relation.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS x > 1, B AS x < 0 "
                   "PATTERN A sideways B WITHIN 10",
                   schema)
                   .ok());
  // Undefined pattern symbol.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS x > 1, B AS x < 0 "
                   "PATTERN A before Z WITHIN 10",
                   schema)
                   .ok());
  // Mixed pairs within one alternative group.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS x > 1, B AS x < 0, C AS x == 0 "
                   "PATTERN A before B; A before C WITHIN 10",
                   schema)
                   .ok());
  // Missing WITHIN.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS x > 1, B AS x < 0 PATTERN A before B",
                   schema)
                   .ok());
  // Zero-length window.
  EXPECT_FALSE(query::ParseQuery(
                   "FROM S DEFINE A AS x > 1, B AS x < 0 "
                   "PATTERN A before B WITHIN 0",
                   schema)
                   .ok());
}

TEST(ParserTest, IntervalAccessorsInReturn) {
  const Schema schema({Field{"x", ValueType::kInt}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS x > 1, B AS x < 0 "
      "PATTERN A before B WITHIN 100 "
      "RETURN start(A) AS a_start, end(A) AS a_end, duration(A), "
      "       count(B) AS n",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto& returns = spec.value().returns;
  ASSERT_EQ(returns.size(), 4u);
  EXPECT_EQ(returns[0].source, ReturnItem::Source::kStartTime);
  EXPECT_EQ(returns[0].name, "a_start");
  EXPECT_EQ(returns[1].source, ReturnItem::Source::kEndTime);
  EXPECT_EQ(returns[2].source, ReturnItem::Source::kDuration);
  EXPECT_EQ(returns[2].name, "duration_A");
  EXPECT_EQ(returns[3].source, ReturnItem::Source::kAggregate);

  // End-to-end: A = [2,5), B = [7,9); detection at B.ts = 7 (before),
  // A's interval fully known by then.
  std::vector<Event> outputs;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });
  for (TimePoint t = 1; t <= 10; ++t) {
    const int64_t x = (t >= 2 && t < 5) ? 7 : ((t >= 7 && t < 9) ? -3 : 0);
    op.Push(Event({Value(x)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 7);
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 2);  // start(A)
  EXPECT_EQ(outputs[0].payload[1].AsInt(), 5);  // end(A)
  EXPECT_EQ(outputs[0].payload[2].AsInt(), 3);  // duration(A)
  // B is still ongoing at detection: end(B)/duration(B) would be null.
}

TEST(ParserTest, IntervalAccessorOfOngoingSituationIsNull) {
  const Schema schema({Field{"x", ValueType::kInt}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS x > 1, B AS x < 0 "
      "PATTERN A before B WITHIN 100 "
      "RETURN end(B) AS b_end, duration(B) AS b_dur, start(B) AS b_start",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  std::vector<Event> outputs;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });
  for (TimePoint t = 1; t <= 10; ++t) {
    const int64_t x = (t >= 2 && t < 5) ? 7 : ((t >= 7 && t < 9) ? -3 : 0);
    op.Push(Event({Value(x)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_TRUE(outputs[0].payload[0].is_null());   // end(B) unknown
  EXPECT_TRUE(outputs[0].payload[1].is_null());   // duration(B) unknown
  EXPECT_EQ(outputs[0].payload[2].AsInt(), 7);    // start(B)
}

TEST(ParserTest, DurationUnits) {
  const Schema schema({Field{"x", ValueType::kInt}});
  auto q = [&](const std::string& within) {
    return query::ParseQuery("FROM S DEFINE A AS x > 1, B AS x < 0 "
                             "PATTERN A before B WITHIN " +
                                 within,
                             schema);
  };
  EXPECT_EQ(q("90").value().window, 90);
  EXPECT_EQ(q("90s").value().window, 90);
  EXPECT_EQ(q("2 minutes").value().window, 120);
  EXPECT_EQ(q("1 hour").value().window, 3600);
  EXPECT_FALSE(q("10 parsecs").ok());
}

}  // namespace
}  // namespace tpstream
