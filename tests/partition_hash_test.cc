// ValueHash sits on the per-event partition-routing path of
// ParallelTPStream. This suite pins down its two contractual properties:
// it never allocates (the old path materialized Value::ToString() for
// every non-int key), and it is deterministic, so a given key always
// lands on the same worker. A differential run with a double partition
// key checks end-to-end routing against the sequential reference.

#include "common/value.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioned_operator.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"

// Counting global allocator: every operator new in this binary bumps the
// counter, so a test can assert a region of code performs none.
namespace {
std::atomic<size_t> g_allocation_count{0};

void* CountedAlloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpstream {
namespace {

TEST(ValueHashTest, HashingIsAllocationFreeForEveryType) {
  const Value values[] = {
      Value(),
      Value(static_cast<int64_t>(1234567)),
      Value(3.14159),
      Value(true),
      Value(std::string(64, 'x')),  // longer than any SSO buffer
  };
  size_t sink = 0;
  const size_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    for (const Value& v : values) sink ^= ValueHash{}(v);
  }
  const size_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "ValueHash allocated on the hot path";
  // Defeat dead-code elimination of the hash loop.
  EXPECT_NE(sink, static_cast<size_t>(0x5eed));
}

TEST(ValueHashTest, EqualValuesHashEqually) {
  EXPECT_EQ(ValueHash{}(Value(2.5)), ValueHash{}(Value(2.5)));
  EXPECT_EQ(ValueHash{}(Value(0.0)), ValueHash{}(Value(-0.0)));
  EXPECT_EQ(ValueHash{}(Value(static_cast<int64_t>(-7))),
            ValueHash{}(Value(static_cast<int64_t>(-7))));
  EXPECT_EQ(ValueHash{}(Value(std::string("sensor-17"))),
            ValueHash{}(Value(std::string("sensor-17"))));
  EXPECT_EQ(ValueHash{}(Value(true)), ValueHash{}(Value(true)));
  EXPECT_EQ(ValueHash{}(Value()), ValueHash{}(Value()));
}

QuerySpec DoubleKeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kDouble}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(150)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

using Signature = std::vector<std::pair<TimePoint, double>>;

TEST(ValueHashTest, DoubleKeyedPartitioningIsStableAndMatchesSequential) {
  const QuerySpec spec = DoubleKeyedSpec();

  // 11 distinct double keys including negatives and fractions.
  std::vector<double> keys;
  for (int k = 0; k < 11; ++k) keys.push_back(0.5 * k - 2.25);
  std::mt19937_64 rng(7);
  std::vector<bool> value(keys.size(), false);
  std::bernoulli_distribution flip(0.08);
  std::vector<Event> events;
  for (TimePoint t = 1; t <= 600; ++t) {
    for (size_t k = 0; k < keys.size(); ++k) {
      if (flip(rng)) value[k] = !value[k];
      events.push_back(Event({Value(keys[k]), Value(value[k])}, t));
    }
  }

  Signature sequential;
  {
    PartitionedTPStream op(spec, {}, [&](const Event& e) {
      sequential.emplace_back(e.t, e.payload[0].AsDouble());
    });
    for (const Event& e : events) op.Push(e);
  }
  ASSERT_FALSE(sequential.empty());
  std::sort(sequential.begin(), sequential.end());

  // Two independent parallel runs: identical results (routing is a pure
  // function of the key) and both equal to the sequential reference.
  Signature runs[2];
  for (Signature& out : runs) {
    std::mutex mutex;
    parallel::ParallelTPStream::Options options;
    options.num_workers = 3;
    options.batch_size = 16;
    parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
      std::lock_guard<std::mutex> lock(mutex);
      out.emplace_back(e.t, e.payload[0].AsDouble());
    });
    for (const Event& e : events) op.Push(e);
    op.Flush();
    EXPECT_EQ(op.num_partitions(), keys.size());
    std::sort(out.begin(), out.end());
  }
  EXPECT_EQ(runs[0], sequential);
  EXPECT_EQ(runs[1], sequential);
}

}  // namespace
}  // namespace tpstream
