// Differential test for the observability subsystem: the same keyed
// workload runs through the sequential PartitionedTPStream (one shared
// registry) and through ParallelTPStream (per-worker registries merged on
// read). Every per-component counter and the detection-latency histogram
// must agree exactly — partitions are evaluated independently, so the
// split across workers must not change what is measured. The test also
// snapshots the parallel metrics concurrently with ingestion (the
// merge-on-read path the TSan job exercises).
#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioned_operator.h"
#include "obs/metrics.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"

namespace tpstream {
namespace {

QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(200)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> KeyedWorkload(int keys, TimePoint horizon,
                                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  std::vector<Event> events;
  std::bernoulli_distribution flip(0.07);
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < keys; ++k) {
      if (flip(rng)) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

/// Counters attributable to the engine itself (identical no matter how
/// partitions are spread over threads). The parallel.* routing-layer
/// counters are excluded by construction.
const char* const kEngineCounterPrefixes[] = {
    "deriver.", "matcher.", "operator.", "optimizer.", "partitioned."};

std::map<std::string, int64_t> EngineCounters(
    const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, int64_t> out;
  for (const auto& [name, value] : snapshot.counters) {
    for (const char* prefix : kEngineCounterPrefixes) {
      if (name.rfind(prefix, 0) == 0) {
        out.emplace(name, value);
        break;
      }
    }
  }
  return out;
}

TEST(MetricsDifferentialTest, SequentialAndParallelCountersAgree) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedWorkload(17, 1500, 9);

  obs::MetricsRegistry sequential_registry;
  int64_t sequential_matches = 0;
  {
    TPStreamOperator::Options options;
    options.metrics = &sequential_registry;
    PartitionedTPStream op(spec, options,
                           [&](const Event&) { ++sequential_matches; });
    for (const Event& e : events) op.Push(e);
  }
  const obs::MetricsSnapshot sequential = sequential_registry.Snapshot();
  const auto sequential_counters = EngineCounters(sequential);
  ASSERT_FALSE(sequential_counters.empty());
  ASSERT_GT(sequential_matches, 0);

  // Sanity anchors: the counters measure what their names promise.
  EXPECT_EQ(sequential_counters.at("operator.matches"), sequential_matches);
  EXPECT_EQ(sequential_counters.at("partitioned.events"),
            static_cast<int64_t>(events.size()));
  EXPECT_EQ(sequential_counters.at("operator.events"),
            static_cast<int64_t>(events.size()));
  EXPECT_GT(sequential_counters.at("deriver.situations_finished"), 0);

  const auto sequential_latency =
      sequential.histograms.at("matcher.detection_latency");
  EXPECT_EQ(sequential_latency.count, sequential_matches);

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    obs::MetricsRegistry enable;  // sentinel: turns worker metrics on
    parallel::ParallelTPStream::Options options;
    options.num_workers = workers;
    options.batch_size = 64;
    options.operator_options.metrics = &enable;

    obs::MetricsSnapshot merged;
    std::atomic<int64_t> parallel_matches{0};
    {
      parallel::ParallelTPStream op(spec, options, [&](const Event&) {
        parallel_matches.fetch_add(1, std::memory_order_relaxed);
      });

      // Concurrent reader: merge-on-read must be safe (and monotone)
      // while the workers are ingesting.
      std::atomic<bool> done{false};
      std::thread reader([&] {
        int64_t last_events = 0;
        while (!done.load(std::memory_order_acquire)) {
          const obs::MetricsSnapshot live = op.Metrics();
          const auto it = live.counters.find("operator.events");
          const int64_t now =
              it == live.counters.end() ? 0 : it->second;
          EXPECT_GE(now, last_events);  // counters only grow
          last_events = now;
          std::this_thread::yield();
        }
      });

      for (const Event& e : events) op.Push(e);
      op.Flush();
      done.store(true, std::memory_order_release);
      reader.join();

      merged = op.Metrics();
      EXPECT_EQ(op.num_matches(), sequential_matches);
    }

    EXPECT_EQ(EngineCounters(merged), sequential_counters);
    EXPECT_EQ(parallel_matches.load(), sequential_matches);

    // The detection-latency histogram records the same per-match values
    // regardless of which worker concluded them: full equality, not just
    // count/sum.
    const auto parallel_latency =
        merged.histograms.at("matcher.detection_latency");
    EXPECT_EQ(parallel_latency, sequential_latency);
    EXPECT_EQ(parallel_latency.count, sequential_latency.count);
    EXPECT_EQ(parallel_latency.sum, sequential_latency.sum);

    // Routing-layer counters exist only on the parallel side.
    EXPECT_EQ(merged.counters.at("parallel.events"),
              static_cast<int64_t>(events.size()));
    EXPECT_EQ(merged.counters.at("parallel.matches"), sequential_matches);
    // The sentinel registry must stay untouched: workers record into
    // their own registries, never through the caller's pointer.
    EXPECT_TRUE(enable.Snapshot().counters.empty());
  }
}

// Sharded output path: every worker buffers its matches locally and
// drains them at batch boundaries under the output mutex. Because a
// partition lives on exactly one worker and drains preserve the engine's
// emission order, the *sequence* of matches within each partition must
// equal the sequential PartitionedTPStream's — not just the multiset.
// Match-heavy on purpose: many matches per batch exercise the buffered
// drain, several workers interleave their drains.
TEST(MetricsDifferentialTest, ShardedOutputPreservesPerPartitionOrder) {
  const QuerySpec spec = KeyedSpec();
  // High flip probability => frequent phase changes => match-heavy.
  std::vector<Event> events;
  {
    std::mt19937_64 rng(123);
    const int keys = 13;
    std::vector<bool> value(keys, false);
    std::bernoulli_distribution flip(0.35);
    for (TimePoint t = 1; t <= 2000; ++t) {
      for (int k = 0; k < keys; ++k) {
        if (flip(rng)) value[k] = !value[k];
        events.push_back(
            Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
      }
    }
  }

  // Per-key emission sequences, in callback arrival order. The match
  // payload is (key, n): include both fields plus the timestamp so
  // reordering within a key cannot cancel out.
  using KeyedSequences =
      std::map<int64_t, std::vector<std::pair<TimePoint, int64_t>>>;
  KeyedSequences sequential;
  {
    PartitionedTPStream op(spec, {}, [&](const Event& e) {
      sequential[e.payload[0].AsInt()].emplace_back(e.t,
                                                    e.payload[1].AsInt());
    });
    for (const Event& e : events) op.Push(e);
  }
  ASSERT_FALSE(sequential.empty());
  size_t total_matches = 0;
  for (const auto& [key, seq] : sequential) total_matches += seq.size();
  ASSERT_GT(total_matches, 500u) << "workload is not match-heavy enough";

  for (int workers : {1, 2, 4}) {
    for (const size_t ring_capacity : {size_t{2}, size_t{8}}) {
      SCOPED_TRACE(testing::Message() << "workers=" << workers
                                      << " ring_capacity=" << ring_capacity);
      parallel::ParallelTPStream::Options options;
      options.num_workers = workers;
      options.batch_size = 32;
      options.ring_capacity = ring_capacity;
      KeyedSequences parallel_seqs;
      {
        // The callback fires serialized under the operator's output
        // mutex, so the map needs no extra locking; Flush() orders the
        // writes before the read below.
        parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
          parallel_seqs[e.payload[0].AsInt()].emplace_back(
              e.t, e.payload[1].AsInt());
        });
        for (const Event& e : events) op.Push(e);
        op.Flush();
      }
      EXPECT_EQ(parallel_seqs, sequential);
    }
  }
}

TEST(MetricsDifferentialTest, ParallelPartitionCountersMatchSequential) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedWorkload(11, 400, 21);

  obs::MetricsRegistry sequential_registry;
  TPStreamOperator::Options seq_options;
  seq_options.metrics = &sequential_registry;
  PartitionedTPStream sequential(spec, seq_options, nullptr);
  for (const Event& e : events) sequential.Push(e);
  EXPECT_EQ(sequential_registry.Snapshot().gauges.at(
                "partitioned.partitions"),
            11.0);

  obs::MetricsRegistry enable;
  parallel::ParallelTPStream::Options options;
  options.num_workers = 3;
  options.operator_options.metrics = &enable;
  parallel::ParallelTPStream op(spec, options, nullptr);
  for (const Event& e : events) op.Push(e);
  op.Flush();
  EXPECT_EQ(op.num_partitions(), 11u);
  // Per-worker partition gauges sum to the sequential total (gauges
  // merge additively across registries).
  EXPECT_EQ(op.Metrics().gauges.at("partitioned.partitions"), 11.0);
  EXPECT_EQ(op.num_matches(), sequential.num_matches());
}

}  // namespace
}  // namespace tpstream
