#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "derive/deriver.h"
#include "expr/expression.h"
#include "expr/simd.h"
#include "multi/query_group.h"
#include "obs/metrics.h"
#include "query/parser.h"

// Program-cache coherence: compiled predicate programs are keyed by the
// same structural fingerprint (ExprFingerprint) that the multi-query
// engine uses to deduplicate definitions. These tests pin both directions
// of the contract — fingerprint-equal predicates share ONE program,
// fingerprint-distinct predicates NEVER do — via the deriver/group
// counters and the `deriver.compiled_programs` /
// `deriver.program_cache_hits` metrics.

namespace tpstream {
namespace {

Schema TestSchema() {
  return Schema({Field{"x", ValueType::kDouble},
                 Field{"y", ValueType::kDouble},
                 Field{"lane", ValueType::kInt}});
}

SituationDefinition Def(const std::string& sym, ExprPtr pred,
                        Duration min_dur = 0) {
  SituationDefinition def(sym, std::move(pred));
  def.duration.min = min_dur;
  return def;
}

TEST(BytecodeSharingTest, FingerprintEqualPredicatesShareOneProgram) {
  // Four definitions, two distinct predicate structures. A and C differ
  // in symbol name and duration constraint — irrelevant to the predicate
  // fingerprint — so they must share; B's structure is distinct.
  const ExprPtr p1 = Gt(FieldRef(0), Literal(10.0));
  const ExprPtr p1_clone = Gt(FieldRef(0), Literal(10.0));  // fresh tree
  const ExprPtr p2 = Lt(FieldRef(1), Literal(10.0));

  Deriver deriver({Def("A", p1), Def("B", p2), Def("C", p1_clone, 5),
                   Def("D", p2)},
                  /*announce_starts=*/true, /*metrics=*/nullptr,
                  DeriveOptions{/*compiled_predicates=*/true});
  EXPECT_TRUE(deriver.compiled());
  EXPECT_EQ(deriver.num_compiled_programs(), 2);
  EXPECT_EQ(deriver.program_cache_hits(), 2);  // C reused p1, D reused p2
}

TEST(BytecodeSharingTest, DistinctPredicatesNeverShare) {
  // Structurally different predicates — even semantically equivalent ones
  // like commuted operands — compile separately. Sharing is keyed on the
  // fingerprint only; a false positive here would be a correctness bug,
  // a false negative merely costs memory.
  Deriver deriver(
      {Def("A", Gt(FieldRef(0), Literal(10.0))),
       Def("B", Lt(Literal(10.0), FieldRef(0))),  // commuted: distinct
       Def("C", Gt(FieldRef(0), Literal(int64_t{10}))),  // int literal
       Def("D", Gt(FieldRef(1), Literal(10.0)))},        // other field
      /*announce_starts=*/true, /*metrics=*/nullptr,
      DeriveOptions{/*compiled_predicates=*/true});
  EXPECT_EQ(deriver.num_compiled_programs(), 4);
  EXPECT_EQ(deriver.program_cache_hits(), 0);
}

TEST(BytecodeSharingTest, InterpreterModeCompilesNothing) {
  Deriver deriver({Def("A", Gt(FieldRef(0), Literal(10.0)))},
                  /*announce_starts=*/true);
  EXPECT_FALSE(deriver.compiled());
  EXPECT_EQ(deriver.num_compiled_programs(), 0);
  EXPECT_EQ(deriver.program_cache_hits(), 0);
}

TEST(BytecodeSharingTest, QueryGroupCompilesEachDistinctPredicateOnce) {
  const Schema schema = TestSchema();
  const char* kQueryA =
      "FROM S DEFINE A AS x > 10.0, B AS y < 5.0 "
      "PATTERN A overlaps B WITHIN 100";
  const char* kQueryB =
      "FROM S DEFINE A AS x > 10.0, B AS lane == 2 "
      "PATTERN A before B WITHIN 100";

  obs::MetricsRegistry metrics;
  multi::QueryGroup::Options options;
  options.compiled_predicates = true;
  options.metrics = &metrics;
  multi::QueryGroup group(options);

  // 3 copies of query A and 2 of query B: 10 definitions total, 3
  // distinct predicates (x > 10.0 appears in both query texts).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(group
                    .AddQuery(query::ParseQuery(kQueryA, schema).value(),
                              [](const Event&) {})
                    .ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(group
                    .AddQuery(query::ParseQuery(kQueryB, schema).value(),
                              [](const Event&) {})
                    .ok());
  }

  // Before sealing nothing is compiled.
  EXPECT_EQ(group.num_compiled_programs(), 0);
  group.Seal();

  EXPECT_EQ(group.total_definitions(), 10);
  EXPECT_EQ(group.num_distinct_definitions(), 3);
  EXPECT_EQ(group.num_compiled_programs(), 3);
  // Definition-level dedup happens first, so the program cache only sees
  // the 3 distinct definitions — their predicates are all distinct here.
  EXPECT_EQ(group.program_cache_hits(), 0);
  EXPECT_EQ(metrics.GetGauge("deriver.compiled_programs")->value(), 3.0);
  EXPECT_EQ(metrics.GetCounter("deriver.program_cache_hits")->value(), 0);
}

TEST(BytecodeSharingTest, QueryGroupSharesAcrossDurationVariants) {
  // Same predicate under different duration constraints: distinct
  // definitions (the definition fingerprint includes tau) but ONE
  // compiled program (the program key is the predicate fingerprint only).
  const Schema schema = TestSchema();
  obs::MetricsRegistry metrics;
  multi::QueryGroup::Options options;
  options.compiled_predicates = true;
  options.metrics = &metrics;
  multi::QueryGroup group(options);

  ASSERT_TRUE(
      group
          .AddQuery(query::ParseQuery(
                        "FROM S DEFINE A AS x > 10.0, B AS y < 5.0 "
                        "PATTERN A overlaps B WITHIN 100",
                        schema)
                        .value(),
                    [](const Event&) {})
          .ok());
  ASSERT_TRUE(
      group
          .AddQuery(query::ParseQuery(
                        "FROM S DEFINE A AS x > 10.0 AT LEAST 5s, "
                        "B AS y < 5.0 AT LEAST 3s "
                        "PATTERN A overlaps B WITHIN 100",
                        schema)
                        .value(),
                    [](const Event&) {})
          .ok());
  group.Seal();

  EXPECT_EQ(group.num_distinct_definitions(), 4);  // tau differs
  EXPECT_EQ(group.num_compiled_programs(), 2);     // phi does not
  EXPECT_EQ(group.program_cache_hits(), 2);
  EXPECT_EQ(metrics.GetGauge("deriver.compiled_programs")->value(), 2.0);
  EXPECT_EQ(metrics.GetCounter("deriver.program_cache_hits")->value(), 2);
}

TEST(BytecodeSharingTest, SharedProgramsProduceIsolatedIdenticalMatches) {
  // End-to-end coherence: a compiled group and an interpreted group over
  // the same stream agree per query, and fingerprint-shared programs
  // don't leak state across subscribing queries.
  const Schema schema = TestSchema();
  const char* kQuery =
      "FROM S DEFINE A AS x > 50.0, B AS y > 50.0 "
      "PATTERN A overlaps B WITHIN 200";

  auto run = [&](bool compiled) {
    multi::QueryGroup::Options options;
    options.compiled_predicates = compiled;
    multi::QueryGroup group(options);
    for (int q = 0; q < 3; ++q) {
      EXPECT_TRUE(group
                      .AddQuery(query::ParseQuery(kQuery, schema).value(),
                                [](const Event&) {})
                      .ok());
    }
    std::vector<Event> batch;
    uint64_t s = 7;
    for (TimePoint t = 1; t <= 400; ++t) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      batch.emplace_back(
          Tuple{Value(static_cast<double>((s >> 33) % 100)),
                Value(static_cast<double>((s >> 13) % 100)),
                Value(static_cast<int64_t>(s % 4))},
          t);
      if (batch.size() == 64) {
        group.PushBatch(std::span<const Event>(batch));
        batch.clear();
      }
    }
    group.PushBatch(std::span<const Event>(batch));
    group.Flush();
    std::vector<int64_t> matches;
    for (int q = 0; q < group.num_queries(); ++q) {
      matches.push_back(group.num_matches(q));
    }
    EXPECT_EQ(group.num_compiled_programs(), compiled ? 2 : 0);
    return matches;
  };

  const auto interpreted = run(false);
  const auto compiled = run(true);
  ASSERT_EQ(interpreted.size(), compiled.size());
  EXPECT_EQ(interpreted, compiled);
  EXPECT_GT(interpreted[0], 0);  // the stream actually matched something
  EXPECT_EQ(interpreted[0], interpreted[1]);
  EXPECT_EQ(interpreted[1], interpreted[2]);
}

TEST(BytecodeSharingTest, SimdOptionPlumbsThroughAndLevelsAgree) {
  // The `simd` option string reaches the executor (simd_level() reports
  // the clamped tier), and a batch-driven deriver pinned to the scalar
  // fallback derives the identical situation stream as one at the
  // machine's best tier — over batch sizes that straddle the vector
  // widths and the bitmap word so tail paths are on the measured path.
  auto defs = [] {
    std::vector<SituationDefinition> out;
    out.push_back(Def("A", Gt(FieldRef(0), Literal(50.0))));
    out.push_back(Def("B", Lt(FieldRef(1), Literal(30.0)), 3));
    out.push_back(
        Def("C", And(Ge(FieldRef(2), Literal(int64_t{1})),
                     Lt(FieldRef(0), Literal(90.0)))));
    return out;
  };

  auto run = [&](const std::string& simd) {
    DeriveOptions options;
    options.compiled_predicates = true;
    options.simd = simd;
    Deriver deriver(defs(), /*announce_starts=*/true, /*metrics=*/nullptr,
                    options);
    EXPECT_STREQ(deriver.simd_level(),
                 simd == "off" ? "off"
                               : simd::SimdLevelName(simd::BestSimdLevel()));
    std::vector<std::tuple<int, TimePoint, TimePoint>> log;
    std::vector<Event> batch;
    uint64_t s = 11;
    TimePoint t = 1;
    for (size_t size : {1u, 7u, 16u, 33u, 64u, 65u, 100u}) {
      batch.clear();
      for (size_t i = 0; i < size; ++i, ++t) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        batch.emplace_back(
            Tuple{Value(static_cast<double>((s >> 33) % 100)),
                  Value(static_cast<double>((s >> 13) % 100)),
                  Value(static_cast<int64_t>(s % 4))},
            t);
      }
      deriver.PrepareBatch(std::span<const Event>(batch));
      for (const Event& e : batch) {
        auto& update = deriver.Process(e);
        for (const auto& started : update.started) {
          log.emplace_back(started.symbol, started.situation.ts,
                           TimePoint{-1});
        }
        for (const auto& finished : update.finished) {
          log.emplace_back(finished.symbol, finished.situation.ts,
                           finished.situation.te);
        }
      }
    }
    return log;
  };

  const auto scalar = run("off");
  const auto best = run("native");
  EXPECT_FALSE(scalar.empty());
  EXPECT_EQ(scalar, best);
}

}  // namespace
}  // namespace tpstream
