#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace tpstream {
namespace {

TEST(StatusCodeTest, EveryCodeHasAStableName) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "TYPE_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusCodeTest, UnknownValuesDoNotCrash) {
  EXPECT_STREQ(StatusCodeToString(static_cast<StatusCode>(999)), "UNKNOWN");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::ParseError("b"), StatusCode::kParseError},
      {Status::TypeError("c"), StatusCode::kTypeError},
      {Status::NotFound("d"), StatusCode::kNotFound},
      {Status::Internal("e"), StatusCode::kInternal},
      {Status::ResourceExhausted("f"), StatusCode::kResourceExhausted},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
    EXPECT_EQ(c.status.ToString(), c.status.message());
  }
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().code(), StatusCode::kOk);
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, ResourceExhaustedIsDistinctFromInternal) {
  const Status s = Status::ResourceExhausted("cap hit");
  EXPECT_NE(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "cap hit");
}

}  // namespace
}  // namespace tpstream
