// Durability contract unit suite (docs/architecture.md): the checkpoint
// wire format round-trips exactly (doubles bit-exact, hostile inputs
// rejected with Status errors, never UB), component Restore() validates
// structural compatibility with the configured instance, and the
// Reset()/Restore() lifecycle interactions pinned by this PR's bug sweep
// stay fixed — notably the exactly-once fingerprint table surviving
// Reset() and suppressing legitimate re-emission.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "matcher/stats.h"
#include "multi/query_group.h"
#include "ooo/reorder_buffer.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"

namespace tpstream {
namespace {

// ---------------------------------------------------------------------------
// Wire format primitives

TEST(CkptSerde, PrimitivesRoundTrip) {
  ckpt::Writer w;
  w.U8(0xab);
  w.Bool(true);
  w.Bool(false);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Str("hello");
  w.Str("");

  ckpt::Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CkptSerde, DoublesRoundTripBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -1e300,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  ckpt::Writer w;
  for (double v : values) w.F64(v);
  ckpt::Reader r(w.buffer());
  for (double v : values) {
    const double got = r.F64();
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &got, sizeof(got));
    EXPECT_EQ(got_bits, want_bits);  // bit identity, not numeric equality
  }
  EXPECT_TRUE(r.ok());
}

TEST(CkptSerde, ValuesTuplesSituationsEventsRoundTrip) {
  ckpt::Writer w;
  w.WriteValue(Value::Null());
  w.WriteValue(Value(int64_t{-7}));
  w.WriteValue(Value(2.75));
  w.WriteValue(Value(true));
  w.WriteValue(Value(std::string("xyz")));
  const Tuple tuple{Value(int64_t{1}), Value(std::string("two")),
                    Value::Null()};
  w.WriteTuple(tuple);
  const Situation situation(Tuple{Value(3.5)}, 10, 20);
  w.WriteSituation(situation);
  const Event event(Tuple{Value(false), Value(int64_t{9})}, 99);
  w.WriteEvent(event);

  ckpt::Reader r(w.buffer());
  // Null obeys SQL comparison semantics (Null == Null is *false*), so
  // null round-trips are checked by type, not by operator==.
  EXPECT_TRUE(r.ReadValue().is_null());
  EXPECT_EQ(r.ReadValue(), Value(int64_t{-7}));
  EXPECT_EQ(r.ReadValue(), Value(2.75));
  EXPECT_EQ(r.ReadValue(), Value(true));
  EXPECT_EQ(r.ReadValue(), Value(std::string("xyz")));
  const Tuple got = r.ReadTuple();
  ASSERT_EQ(got.size(), tuple.size());
  EXPECT_EQ(got[0], tuple[0]);
  EXPECT_EQ(got[1], tuple[1]);
  EXPECT_TRUE(got[2].is_null());
  const Situation s = r.ReadSituation();
  EXPECT_EQ(s.payload, situation.payload);
  EXPECT_EQ(s.ts, situation.ts);
  EXPECT_EQ(s.te, situation.te);
  const Event e = r.ReadEvent();
  EXPECT_EQ(e.payload, event.payload);
  EXPECT_EQ(e.t, event.t);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CkptSerde, TruncatedReadLatchesErrorAndReturnsZeros) {
  ckpt::Writer w;
  w.U32(7);
  ckpt::Reader r(w.buffer());
  EXPECT_EQ(r.U64(), 0u);  // needs 8 bytes, only 4 present
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  // Latched: later reads keep returning zeros, no further state change.
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(CkptSerde, EnvelopeRejectsBadMagicAndVersion) {
  {
    ckpt::Writer w;
    w.U32(0x12345678);
    w.U32(ckpt::kFormatVersion);
    w.U64(0);
    ckpt::Reader r(w.buffer());
    EXPECT_EQ(r.Envelope(nullptr).code(), StatusCode::kParseError);
  }
  {
    ckpt::Writer w;
    w.U32(ckpt::kMagic);
    w.U32(ckpt::kFormatVersion + 1);  // future format
    w.U64(0);
    ckpt::Reader r(w.buffer());
    EXPECT_EQ(r.Envelope(nullptr).code(), StatusCode::kInvalidArgument);
  }
  {
    ckpt::Reader r(std::string_view("TP"));  // shorter than the envelope
    EXPECT_FALSE(r.Envelope(nullptr).ok());
  }
  {
    ckpt::Writer w;
    w.Envelope(1234);
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    EXPECT_TRUE(r.Envelope(&offset).ok());
    EXPECT_EQ(offset, 1234u);
  }
}

TEST(CkptSerde, SectionTagMismatchFails) {
  ckpt::Writer w;
  const size_t cookie = w.BeginSection(ckpt::Tag::kJoiner);
  w.U32(5);
  w.EndSection(cookie);

  ckpt::Reader r(w.buffer());
  (void)r.BeginSection(ckpt::Tag::kDeriver);  // wrong component
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CkptSerde, SectionUnderAndOverConsumptionFails) {
  ckpt::Writer w;
  const size_t cookie = w.BeginSection(ckpt::Tag::kJoiner);
  w.U32(5);
  w.U32(6);
  w.EndSection(cookie);

  {
    ckpt::Reader r(w.buffer());  // under-consumes: one field unread
    const size_t end = r.BeginSection(ckpt::Tag::kJoiner);
    EXPECT_EQ(r.U32(), 5u);
    EXPECT_FALSE(r.EndSection(end).ok());
  }
  {
    ckpt::Reader r(w.buffer());  // exact consumption passes
    const size_t end = r.BeginSection(ckpt::Tag::kJoiner);
    EXPECT_EQ(r.U32(), 5u);
    EXPECT_EQ(r.U32(), 6u);
    EXPECT_TRUE(r.EndSection(end).ok());
  }
}

TEST(CkptSerde, HostileSizesAreRejectedNotAllocated) {
  // A tuple claiming ~2^64 entries must fail fast instead of reserving.
  ckpt::Writer w;
  w.U64(std::numeric_limits<uint64_t>::max());
  ckpt::Reader r(w.buffer());
  (void)r.ReadTuple();
  EXPECT_FALSE(r.ok());

  // A section claiming to extend past the input is rejected up front.
  ckpt::Writer w2;
  w2.U32(1u << 30);
  w2.U32(static_cast<uint32_t>(ckpt::Tag::kJoiner));
  ckpt::Reader r2(w2.buffer());
  (void)r2.BeginSection(ckpt::Tag::kJoiner);
  EXPECT_FALSE(r2.ok());
}

// ---------------------------------------------------------------------------
// Component round-trips

Schema TwoBoolSchema() {
  return Schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
}

QuerySpec OverlapSpec() {
  QueryBuilder qb(TwoBoolSchema());
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n_a", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

/// One a-overlaps-b episode on [base+2, base+9); concludes at base+6.
void PushEpisode(const std::function<void(const Event&)>& push,
                 TimePoint base) {
  for (TimePoint t = 1; t <= 10; ++t) {
    push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, base + t));
  }
}

TEST(CkptComponents, MatcherStatsRoundTripBitExact) {
  QuerySpec spec = OverlapSpec();
  MatcherStats stats(spec.pattern, 0.25);
  stats.UpdateBufferSize(0, 17.5);
  stats.UpdateBufferSize(1, 3.0);
  stats.UpdateSelectivity(0, 0.125);

  ckpt::Writer w;
  stats.Checkpoint(w);

  MatcherStats restored(spec.pattern, 0.25);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(restored.Restore(r).ok());
  EXPECT_EQ(restored.alpha(), stats.alpha());
  EXPECT_EQ(restored.buffer_emas(), stats.buffer_emas());
  EXPECT_EQ(restored.selectivity_emas(), stats.selectivity_emas());

  // Restore into a differently-sized instance is a structural error.
  QueryBuilder qb(Schema({Field{"a", ValueType::kBool}}));
  qb.Define("A", FieldRef(0, "a")).Within(10).Return("n", "A",
                                                     AggKind::kCount);
  auto single = qb.Build();
  ASSERT_TRUE(single.ok());
  MatcherStats wrong(single.value().pattern, 0.25);
  ckpt::Reader r2(w.buffer());
  EXPECT_FALSE(wrong.Restore(r2).ok());
}

TEST(CkptComponents, ReorderBufferRoundTripPreservesReleaseOrder) {
  ooo::ReorderBuffer::Options options;
  options.slack = 50;
  ooo::ReorderBuffer original(options);

  std::vector<Event> sink_a;
  const auto sink = [&](const Event& e) { sink_a.push_back(e); };
  // Buffer several events, including an equal-timestamp tie, without
  // releasing any (all within slack).
  original.Push(Event({Value(int64_t{1})}, 30), sink);
  original.Push(Event({Value(int64_t{2})}, 10), sink);
  original.Push(Event({Value(int64_t{3})}, 10), sink);  // tie on t=10
  original.Push(Event({Value(int64_t{4})}, 20), sink);
  ASSERT_TRUE(sink_a.empty());

  ckpt::Writer w;
  original.Checkpoint(w);

  ooo::ReorderBuffer restored(options);
  ckpt::Reader r(w.buffer());
  ASSERT_TRUE(restored.Restore(r).ok());
  EXPECT_EQ(restored.buffered(), original.buffered());
  EXPECT_EQ(restored.watermark(), original.watermark());

  // Draining both must produce identical streams — including the order
  // of the equal-timestamp pair, which only holds because the heap array
  // is serialized verbatim.
  std::vector<Event> sink_b;
  original.Flush(sink);
  restored.Flush([&](const Event& e) { sink_b.push_back(e); });
  ASSERT_EQ(sink_a.size(), sink_b.size());
  for (size_t i = 0; i < sink_a.size(); ++i) {
    EXPECT_EQ(sink_a[i].t, sink_b[i].t);
    EXPECT_EQ(sink_a[i].payload, sink_b[i].payload);
  }
}

TEST(CkptComponents, ReorderBufferRejectsNonHeapArray) {
  // Hand-craft a checkpoint whose event array violates the min-heap
  // invariant; Restore must reject it rather than release out of order.
  ckpt::Writer w;
  const size_t cookie = w.BeginSection(ckpt::Tag::kReorderBuffer);
  w.U64(2);  // two buffered events
  w.WriteEvent(Event({}, 50));
  w.WriteEvent(Event({}, 10));  // child earlier than parent: not a heap
  w.I64(50);       // max_seen
  w.I64(kTimeMin); // last_released
  w.I64(0);        // watermark
  w.I64(0);        // num_reordered
  w.I64(0);        // num_dropped
  w.EndSection(cookie);

  ooo::ReorderBuffer buffer({});
  ckpt::Reader r(w.buffer());
  EXPECT_FALSE(buffer.Restore(r).ok());
}

TEST(CkptComponents, OperatorRoundTripAndByteDeterminism) {
  const QuerySpec spec = OverlapSpec();
  std::vector<Event> outputs;
  TPStreamOperator op(spec, {}, [&](const Event& e) { outputs.push_back(e); });
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  // Leave a half-open episode so live state (open situations, partial
  // buffers) is actually at stake.
  op.Push(Event({Value(true), Value(false)}, 42));

  ckpt::Writer w1;
  op.Checkpoint(w1);

  std::vector<Event> restored_outputs;
  TPStreamOperator restored(spec, {}, [&](const Event& e) {
    restored_outputs.push_back(e);
  });
  ckpt::Reader r(w1.buffer());
  uint64_t offset = 0;
  ASSERT_TRUE(restored.Restore(r, &offset).ok());
  EXPECT_EQ(offset, static_cast<uint64_t>(op.num_events()));
  EXPECT_EQ(restored.num_events(), op.num_events());
  EXPECT_EQ(restored.num_matches(), op.num_matches());
  EXPECT_EQ(restored.BufferedCount(), op.BufferedCount());
  EXPECT_EQ(restored.CurrentOrder(), op.CurrentOrder());
  EXPECT_EQ(restored.stats().buffer_emas(), op.stats().buffer_emas());

  // Checkpoint-of-restore is byte-identical to the original checkpoint:
  // serialization is a pure function of logical state.
  ckpt::Writer w2;
  restored.Checkpoint(w2);
  EXPECT_EQ(w1.buffer(), w2.buffer());
}

TEST(CkptComponents, OperatorRestoreValidatesMatcherMode) {
  const QuerySpec spec = OverlapSpec();
  TPStreamOperator ll_op(spec, {}, nullptr);
  PushEpisode([&](const Event& e) { ll_op.Push(e); }, 0);
  ckpt::Writer w;
  ll_op.Checkpoint(w);

  TPStreamOperator::Options baseline;
  baseline.low_latency = false;
  TPStreamOperator baseline_op(spec, baseline, nullptr);
  ckpt::Reader r(w.buffer());
  EXPECT_FALSE(baseline_op.Restore(r).ok());

  TPStreamOperator::Options non_adaptive;
  non_adaptive.adaptive = false;
  TPStreamOperator non_adaptive_op(spec, non_adaptive, nullptr);
  ckpt::Reader r2(w.buffer());
  EXPECT_FALSE(non_adaptive_op.Restore(r2).ok());
}

TEST(CkptComponents, QueryGroupRestoreValidatesRegisteredQueries) {
  multi::QueryGroup group;
  ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr).ok());
  PushEpisode([&](const Event& e) { group.Push(e); }, 0);
  ckpt::Writer w;
  group.Checkpoint(w);

  multi::QueryGroup two;
  ASSERT_TRUE(two.AddQuery(OverlapSpec(), nullptr).ok());
  ASSERT_TRUE(two.AddQuery(OverlapSpec(), nullptr).ok());
  ckpt::Reader r(w.buffer());
  EXPECT_FALSE(two.Restore(r).ok());

  multi::QueryGroup same;
  ASSERT_TRUE(same.AddQuery(OverlapSpec(), nullptr).ok());
  ckpt::Reader r2(w.buffer());
  uint64_t offset = 0;
  ASSERT_TRUE(same.Restore(r2, &offset).ok());
  EXPECT_EQ(offset, 10u);
  EXPECT_EQ(same.num_events(), group.num_events());
  EXPECT_EQ(same.num_matches(0), group.num_matches(0));
}

TEST(CkptComponents, PipelineRestoreValidatesStageChain) {
  pipeline::Pipeline p(TwoBoolSchema());
  p.Detect(OverlapSpec());
  ASSERT_TRUE(p.Finalize().ok());
  PushEpisode([&](const Event& e) { p.Push(e); }, 0);
  ckpt::Writer w;
  p.Checkpoint(w);

  pipeline::Pipeline longer(TwoBoolSchema());
  longer.Reorder(5).Detect(OverlapSpec());
  ASSERT_TRUE(longer.Finalize().ok());
  ckpt::Reader r(w.buffer());
  EXPECT_FALSE(longer.Restore(r).ok());

  pipeline::Pipeline unfinalized(TwoBoolSchema());
  unfinalized.Detect(OverlapSpec());
  ckpt::Reader r2(w.buffer());
  EXPECT_FALSE(unfinalized.Restore(r2).ok());

  pipeline::Pipeline same(TwoBoolSchema());
  same.Detect(OverlapSpec());
  ASSERT_TRUE(same.Finalize().ok());
  ckpt::Reader r3(w.buffer());
  uint64_t offset = 0;
  ASSERT_TRUE(same.Restore(r3, &offset).ok());
  EXPECT_EQ(offset, 10u);
  EXPECT_EQ(same.num_pushed(), 10);
}

// ---------------------------------------------------------------------------
// Reset lifecycle bug sweep

// Satellite regression (pinned): LowLatencyMatcher::Reset() used to keep
// the exactly-once fingerprint map, so replaying the same stream after a
// Reset silently suppressed every match the first run had emitted.
TEST(MatcherReset, ReplayAfterResetReEmits) {
  std::vector<Event> outputs;
  TPStreamOperator op(OverlapSpec(), {},
                      [&](const Event& e) { outputs.push_back(e); });
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  ASSERT_EQ(outputs.size(), 1u);

  op.Reset();
  EXPECT_EQ(op.num_events(), 0);
  EXPECT_EQ(op.num_matches(), 0);
  EXPECT_EQ(op.BufferedCount(), 0u);

  // Identical replay: with a stale fingerprint table this found 0.
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].t, outputs[0].t);
  EXPECT_EQ(outputs[1].payload, outputs[0].payload);
}

TEST(MatcherReset, ResetMatchesFreshOperatorByteForByte) {
  const QuerySpec spec = OverlapSpec();
  TPStreamOperator reused(spec, {}, nullptr);
  PushEpisode([&](const Event& e) { reused.Push(e); }, 0);
  reused.Reset();
  PushEpisode([&](const Event& e) { reused.Push(e); }, 7);

  TPStreamOperator fresh(spec, {}, nullptr);
  PushEpisode([&](const Event& e) { fresh.Push(e); }, 7);

  ckpt::Writer wa, wb;
  reused.Checkpoint(wa);
  fresh.Checkpoint(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

// Satellite regression (pinned): UpdateBufferSize/UpdateSelectivity on a
// default-constructed MatcherStats wrote through empty vectors (an OOB
// store). Now: debug assert, release-safe no-op.
TEST(MatcherStatsGuard, UnsizedUpdateIsRejected) {
  MatcherStats unsized;
  EXPECT_DEBUG_DEATH(unsized.UpdateBufferSize(0, 1.0), "not sized");
  EXPECT_DEBUG_DEATH(unsized.UpdateSelectivity(0, 1.0), "not sized");
#ifdef NDEBUG
  // Release builds: the guarded no-op leaves the instance untouched.
  unsized.UpdateBufferSize(3, 1.0);
  unsized.UpdateSelectivity(3, 1.0);
  EXPECT_TRUE(unsized.buffer_emas().empty());
  EXPECT_TRUE(unsized.selectivity_emas().empty());
#endif
}

TEST(MatcherStatsGuard, OutOfRangeSymbolOnSizedInstance) {
  MatcherStats stats(OverlapSpec().pattern, 0.5);
  const std::vector<double> before = stats.buffer_emas();
  EXPECT_DEBUG_DEATH(stats.UpdateBufferSize(-1, 9.0), "not sized");
  EXPECT_DEBUG_DEATH(stats.UpdateBufferSize(99, 9.0), "not sized");
#ifdef NDEBUG
  stats.UpdateBufferSize(-1, 9.0);
  stats.UpdateBufferSize(99, 9.0);
  EXPECT_EQ(stats.buffer_emas(), before);
#endif
}

TEST(RestoreLifecycle, FailedRestoreThenResetRecovers) {
  const QuerySpec spec = OverlapSpec();
  std::vector<Event> outputs;
  TPStreamOperator op(spec, {}, [&](const Event& e) { outputs.push_back(e); });
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);

  ckpt::Writer w;
  op.Checkpoint(w);
  // Truncate mid-blob: Restore fails and leaves the operator in an
  // unspecified state — the documented escape hatch is Reset().
  const std::string truncated = w.buffer().substr(0, w.buffer().size() / 2);
  ckpt::Reader r(truncated);
  ASSERT_FALSE(op.Restore(r).ok());

  op.Reset();
  outputs.clear();
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  EXPECT_EQ(outputs.size(), 1u);
}

}  // namespace
}  // namespace tpstream
