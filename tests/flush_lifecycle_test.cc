// Flush/Finish lifecycle contract, audited across every engine front-end:
// Flush is an idempotent synchronization point (double Flush changes
// nothing), the stream may continue after it (Push after Flush is
// well-defined and still detects), and Flush on an empty stream is a
// no-op rather than an error.

#include <algorithm>
#include <mutex>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "multi/query_group.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema TwoBoolSchema() {
  return Schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
}

QuerySpec OverlapSpec() {
  QueryBuilder qb(TwoBoolSchema());
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n_a", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

void ExpectSameSnapshot(const obs::MetricsSnapshot& a,
                        const obs::MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.histograms, b.histograms);
}

/// One a-overlaps-b episode on [base+2, base+9); concludes at base+6.
void PushEpisode(const std::function<void(const Event&)>& push,
                 TimePoint base) {
  for (TimePoint t = 1; t <= 10; ++t) {
    push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)},
               base + t));
  }
}

TEST(FlushLifecycleTest, OperatorFlushOnEmptyAndDoubleFlush) {
  obs::MetricsRegistry metrics;
  TPStreamOperator::Options options;
  options.metrics = &metrics;
  TPStreamOperator op(OverlapSpec(), options, nullptr);

  op.Flush();  // empty stream: well-defined no-op
  EXPECT_EQ(op.num_events(), 0);

  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  op.Flush();
  const obs::MetricsSnapshot once = metrics.Snapshot();
  op.Flush();  // idempotent: second flush observes no new input
  ExpectSameSnapshot(once, metrics.Snapshot());
  // Flush published the matcher gauges.
  EXPECT_EQ(once.gauges.count("matcher.buffer_ema.s0"), 1u);
}

TEST(FlushLifecycleTest, OperatorPushAfterFlushKeepsDetecting) {
  std::vector<Event> outputs;
  TPStreamOperator op(OverlapSpec(), {},
                      [&](const Event& e) { outputs.push_back(e); });
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  op.Flush();
  ASSERT_EQ(outputs.size(), 1u);

  // The stream resumes with later timestamps; detection must continue
  // with undisturbed state.
  PushEpisode([&](const Event& e) { op.Push(e); }, 100);
  op.Flush();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].t, 106);
  EXPECT_EQ(outputs[1].payload[0].AsInt(), 4);
  EXPECT_EQ(op.num_events(), 20);
}

TEST(FlushLifecycleTest, PartitionedFlushLifecycle) {
  Schema schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  PartitionedTPStream op(spec.value(), {},
                         [&](const Event& e) { outputs.push_back(e); });
  op.Flush();  // no partitions exist yet
  for (int64_t key : {1, 2}) {
    PushEpisode(
        [&](const Event& e) {
          Event keyed({e.payload[0], e.payload[1], Value(key)}, e.t);
          op.Push(keyed);
        },
        key * 100);
  }
  op.Flush();
  op.Flush();
  ASSERT_EQ(outputs.size(), 2u);

  PushEpisode(
      [&](const Event& e) {
        Event keyed({e.payload[0], e.payload[1], Value(int64_t{1})}, e.t);
        op.Push(keyed);
      },
      300);
  EXPECT_EQ(outputs.size(), 3u);
}

TEST(FlushLifecycleTest, ParallelFlushLifecycle) {
  Schema schema({Field{"key", ValueType::kInt}, Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "a"))
      .Define("B", FieldRef(2, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  std::mutex mutex;
  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;
  parallel::ParallelTPStream op(spec.value(), options, [&](const Event& e) {
    std::lock_guard<std::mutex> lock(mutex);
    outputs.push_back(e);
  });

  op.Flush();  // empty stream
  EXPECT_EQ(op.num_events(), 0);

  for (TimePoint t = 1; t <= 10; ++t) {
    for (int64_t key : {1, 2, 3}) {
      op.Push(Event({Value(key), Value(t >= 2 && t < 6),
                     Value(t >= 4 && t < 9)},
                    t));
    }
  }
  op.Flush();
  op.Flush();  // idempotent
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(op.num_events(), 30);

  // Stream resumes after the synchronization point.
  for (TimePoint t = 101; t <= 110; ++t) {
    const TimePoint r = t - 100;
    op.Push(Event({Value(int64_t{1}), Value(r >= 2 && r < 6),
                   Value(r >= 4 && r < 9)},
                  t));
  }
  op.Flush();
  EXPECT_EQ(outputs.size(), 4u);
}

TEST(FlushLifecycleTest, PipelineFinishLifecycle) {
  obs::MetricsRegistry metrics;
  pipeline::Pipeline p(TwoBoolSchema(), &metrics);
  std::vector<Event> matches;
  p.Detect(OverlapSpec()).Sink([&](const Event& e) { matches.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());

  p.Finish();  // empty stream
  PushEpisode([&](const Event& e) { p.Push(e); }, 0);
  p.Finish();
  ASSERT_EQ(matches.size(), 1u);
  // Finish now settles the detect engine's published gauges.
  EXPECT_EQ(metrics.Snapshot().gauges.count("matcher.buffer_ema.s0"), 1u);

  const obs::MetricsSnapshot once = metrics.Snapshot();
  p.Finish();  // idempotent
  ExpectSameSnapshot(once, metrics.Snapshot());

  // Finish is a synchronization point, not a terminator: later events
  // still flow and detect.
  PushEpisode([&](const Event& e) { p.Push(e); }, 100);
  p.Finish();
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[1].t, 106);
}

TEST(FlushLifecycleTest, QueryGroupFlushLifecycle) {
  std::vector<Event> outputs;
  multi::QueryGroup group;
  ASSERT_TRUE(group
                  .AddQuery(OverlapSpec(),
                            [&](const Event& e) { outputs.push_back(e); })
                  .ok());

  group.Flush();  // before sealing: well-defined no-op
  EXPECT_FALSE(group.sealed());

  PushEpisode([&](const Event& e) { group.Push(e); }, 0);
  group.Flush();
  group.Flush();  // idempotent
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(group.engine(0)->num_events(), group.num_events());

  PushEpisode([&](const Event& e) { group.Push(e); }, 100);
  group.Flush();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].t, 106);
  EXPECT_EQ(group.num_events(), 20);
}

}  // namespace
}  // namespace tpstream
