// Flush/Finish lifecycle contract, audited across every engine front-end:
// Flush is an idempotent synchronization point (double Flush changes
// nothing), the stream may continue after it (Push after Flush is
// well-defined and still detects), and Flush on an empty stream is a
// no-op rather than an error.
//
// The RestoreLifecycle suite audits the companion durability contract on
// the same surfaces: restore into a fresh instance, restore into an
// instance mid-way through a different stream (full overwrite), double
// restore (idempotent, byte-stable), and restore followed by Reset
// (back to a fresh stream).

#include <algorithm>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "multi/query_group.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema TwoBoolSchema() {
  return Schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
}

QuerySpec OverlapSpec() {
  QueryBuilder qb(TwoBoolSchema());
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n_a", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

void ExpectSameSnapshot(const obs::MetricsSnapshot& a,
                        const obs::MetricsSnapshot& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.histograms, b.histograms);
}

/// One a-overlaps-b episode on [base+2, base+9); concludes at base+6.
void PushEpisode(const std::function<void(const Event&)>& push,
                 TimePoint base) {
  for (TimePoint t = 1; t <= 10; ++t) {
    push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)},
               base + t));
  }
}

TEST(FlushLifecycleTest, OperatorFlushOnEmptyAndDoubleFlush) {
  obs::MetricsRegistry metrics;
  TPStreamOperator::Options options;
  options.metrics = &metrics;
  TPStreamOperator op(OverlapSpec(), options, nullptr);

  op.Flush();  // empty stream: well-defined no-op
  EXPECT_EQ(op.num_events(), 0);

  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  op.Flush();
  const obs::MetricsSnapshot once = metrics.Snapshot();
  op.Flush();  // idempotent: second flush observes no new input
  ExpectSameSnapshot(once, metrics.Snapshot());
  // Flush published the matcher gauges.
  EXPECT_EQ(once.gauges.count("matcher.buffer_ema.s0"), 1u);
}

TEST(FlushLifecycleTest, OperatorPushAfterFlushKeepsDetecting) {
  std::vector<Event> outputs;
  TPStreamOperator op(OverlapSpec(), {},
                      [&](const Event& e) { outputs.push_back(e); });
  PushEpisode([&](const Event& e) { op.Push(e); }, 0);
  op.Flush();
  ASSERT_EQ(outputs.size(), 1u);

  // The stream resumes with later timestamps; detection must continue
  // with undisturbed state.
  PushEpisode([&](const Event& e) { op.Push(e); }, 100);
  op.Flush();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].t, 106);
  EXPECT_EQ(outputs[1].payload[0].AsInt(), 4);
  EXPECT_EQ(op.num_events(), 20);
}

TEST(FlushLifecycleTest, PartitionedFlushLifecycle) {
  Schema schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  PartitionedTPStream op(spec.value(), {},
                         [&](const Event& e) { outputs.push_back(e); });
  op.Flush();  // no partitions exist yet
  for (int64_t key : {1, 2}) {
    PushEpisode(
        [&](const Event& e) {
          Event keyed({e.payload[0], e.payload[1], Value(key)}, e.t);
          op.Push(keyed);
        },
        key * 100);
  }
  op.Flush();
  op.Flush();
  ASSERT_EQ(outputs.size(), 2u);

  PushEpisode(
      [&](const Event& e) {
        Event keyed({e.payload[0], e.payload[1], Value(int64_t{1})}, e.t);
        op.Push(keyed);
      },
      300);
  EXPECT_EQ(outputs.size(), 3u);
}

TEST(FlushLifecycleTest, ParallelFlushLifecycle) {
  Schema schema({Field{"key", ValueType::kInt}, Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "a"))
      .Define("B", FieldRef(2, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  std::mutex mutex;
  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;
  parallel::ParallelTPStream op(spec.value(), options, [&](const Event& e) {
    std::lock_guard<std::mutex> lock(mutex);
    outputs.push_back(e);
  });

  op.Flush();  // empty stream
  EXPECT_EQ(op.num_events(), 0);

  for (TimePoint t = 1; t <= 10; ++t) {
    for (int64_t key : {1, 2, 3}) {
      op.Push(Event({Value(key), Value(t >= 2 && t < 6),
                     Value(t >= 4 && t < 9)},
                    t));
    }
  }
  op.Flush();
  op.Flush();  // idempotent
  ASSERT_EQ(outputs.size(), 3u);
  EXPECT_EQ(op.num_events(), 30);

  // Stream resumes after the synchronization point.
  for (TimePoint t = 101; t <= 110; ++t) {
    const TimePoint r = t - 100;
    op.Push(Event({Value(int64_t{1}), Value(r >= 2 && r < 6),
                   Value(r >= 4 && r < 9)},
                  t));
  }
  op.Flush();
  EXPECT_EQ(outputs.size(), 4u);
}

TEST(FlushLifecycleTest, PipelineFinishLifecycle) {
  obs::MetricsRegistry metrics;
  pipeline::Pipeline p(TwoBoolSchema(), &metrics);
  std::vector<Event> matches;
  p.Detect(OverlapSpec()).Sink([&](const Event& e) { matches.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());

  p.Finish();  // empty stream
  PushEpisode([&](const Event& e) { p.Push(e); }, 0);
  p.Finish();
  ASSERT_EQ(matches.size(), 1u);
  // Finish now settles the detect engine's published gauges.
  EXPECT_EQ(metrics.Snapshot().gauges.count("matcher.buffer_ema.s0"), 1u);

  const obs::MetricsSnapshot once = metrics.Snapshot();
  p.Finish();  // idempotent
  ExpectSameSnapshot(once, metrics.Snapshot());

  // Finish is a synchronization point, not a terminator: later events
  // still flow and detect.
  PushEpisode([&](const Event& e) { p.Push(e); }, 100);
  p.Finish();
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[1].t, 106);
}

TEST(FlushLifecycleTest, QueryGroupFlushLifecycle) {
  std::vector<Event> outputs;
  multi::QueryGroup group;
  ASSERT_TRUE(group
                  .AddQuery(OverlapSpec(),
                            [&](const Event& e) { outputs.push_back(e); })
                  .ok());

  group.Flush();  // before sealing: well-defined no-op
  EXPECT_FALSE(group.sealed());

  PushEpisode([&](const Event& e) { group.Push(e); }, 0);
  group.Flush();
  group.Flush();  // idempotent
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(group.engine(0)->num_events(), group.num_events());

  PushEpisode([&](const Event& e) { group.Push(e); }, 100);
  group.Flush();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].t, 106);
  EXPECT_EQ(group.num_events(), 20);
}

// ---------------------------------------------------------------------------
// Restore lifecycle matrix.

/// Checkpoint an operator-shaped engine after the base-0 episode and
/// return the blob (10 events pushed, one match emitted at t=6).
template <typename Engine>
std::string CheckpointAfterEpisode(Engine& engine) {
  PushEpisode([&](const Event& e) { engine.Push(e); }, 0);
  ckpt::Writer w;
  engine.Checkpoint(w);
  return w.Take();
}

TEST(RestoreLifecycle, OperatorMatrix) {
  const QuerySpec spec = OverlapSpec();
  std::vector<Event> source_outputs;
  TPStreamOperator source(spec, {},
                          [&](const Event& e) { source_outputs.push_back(e); });
  const std::string blob = CheckpointAfterEpisode(source);
  ASSERT_EQ(source_outputs.size(), 1u);

  // Restore into a fresh instance: the stream continues where the
  // checkpoint left off and the next episode still detects.
  std::vector<Event> outputs;
  TPStreamOperator fresh(spec, {},
                         [&](const Event& e) { outputs.push_back(e); });
  {
    ckpt::Reader r(blob);
    uint64_t offset = 0;
    ASSERT_TRUE(fresh.Restore(r, &offset).ok()) << r.status().ToString();
    EXPECT_EQ(offset, 10u);  // events pushed before the checkpoint
  }
  EXPECT_EQ(fresh.num_events(), 10);
  PushEpisode([&](const Event& e) { fresh.Push(e); }, 100);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 106);
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 4);

  // Restore into a used instance mid-way through a *different* stream:
  // the old stream's state (buffers, counters, pending triggers) must be
  // fully overwritten, not merged.
  std::vector<Event> used_outputs;
  TPStreamOperator used(spec, {},
                        [&](const Event& e) { used_outputs.push_back(e); });
  for (TimePoint t = 1; t <= 7; ++t) {
    used.Push(Event({Value(t >= 2), Value(t >= 3)}, 1000 + t));
  }
  used_outputs.clear();
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(used.Restore(r).ok());
  }
  EXPECT_EQ(used.num_events(), 10);
  PushEpisode([&](const Event& e) { used.Push(e); }, 100);
  ASSERT_EQ(used_outputs.size(), outputs.size());
  EXPECT_EQ(used_outputs[0].t, outputs[0].t);
  EXPECT_EQ(used_outputs[0].payload, outputs[0].payload);

  // Double restore is idempotent: re-checkpointing reproduces the blob
  // byte for byte.
  TPStreamOperator twice(spec, {}, nullptr);
  for (int i = 0; i < 2; ++i) {
    ckpt::Reader r(blob);
    ASSERT_TRUE(twice.Restore(r).ok()) << "restore " << i;
  }
  ckpt::Writer w;
  twice.Checkpoint(w);
  EXPECT_EQ(w.buffer(), blob);

  // Restore then Reset: back to a fresh stream — replaying from t=0
  // re-detects (and re-emits) the original episode.
  std::vector<Event> reset_outputs;
  TPStreamOperator cycled(spec, {},
                          [&](const Event& e) { reset_outputs.push_back(e); });
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(cycled.Restore(r).ok());
  }
  cycled.Reset();
  EXPECT_EQ(cycled.num_events(), 0);
  PushEpisode([&](const Event& e) { cycled.Push(e); }, 0);
  ASSERT_EQ(reset_outputs.size(), 1u);
  EXPECT_EQ(reset_outputs[0].t, 6);
}

TEST(RestoreLifecycle, PartitionedMatrix) {
  Schema schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto built = qb.Build();
  ASSERT_TRUE(built.ok());
  const QuerySpec spec = built.value();

  const auto push_keyed = [](PartitionedTPStream& op, int64_t key,
                             TimePoint base) {
    PushEpisode(
        [&](const Event& e) {
          op.Push(Event({e.payload[0], e.payload[1], Value(key)}, e.t));
        },
        base);
  };

  PartitionedTPStream source(spec, {}, nullptr);
  push_keyed(source, 1, 100);
  push_keyed(source, 2, 200);
  ckpt::Writer w;
  source.Checkpoint(w);
  const std::string blob = w.Take();

  // Fresh restore: both partitions come back; key 1 continues its stream.
  std::vector<Event> outputs;
  PartitionedTPStream fresh(spec, {},
                            [&](const Event& e) { outputs.push_back(e); });
  uint64_t offset = 0;
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(fresh.Restore(r, &offset).ok()) << r.status().ToString();
  }
  EXPECT_EQ(offset, 20u);
  EXPECT_EQ(fresh.num_partitions(), 2u);
  push_keyed(fresh, 1, 300);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 306);

  // Restore into an instance holding *different* partitions: the old
  // partition map must be dropped wholesale.
  std::vector<Event> used_outputs;
  PartitionedTPStream used(spec, {},
                           [&](const Event& e) { used_outputs.push_back(e); });
  push_keyed(used, 7, 50);
  push_keyed(used, 8, 50);
  used_outputs.clear();
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(used.Restore(r).ok());
  }
  EXPECT_EQ(used.num_partitions(), 2u);
  EXPECT_EQ(used.num_events(), 20);
  push_keyed(used, 1, 300);
  ASSERT_EQ(used_outputs.size(), 1u);
  EXPECT_EQ(used_outputs[0].t, 306);

  // Double restore reproduces the blob; restore-then-Reset starts over.
  PartitionedTPStream cycled(spec, {}, nullptr);
  for (int i = 0; i < 2; ++i) {
    ckpt::Reader r(blob);
    ASSERT_TRUE(cycled.Restore(r).ok()) << "restore " << i;
  }
  ckpt::Writer again;
  cycled.Checkpoint(again);
  EXPECT_EQ(again.buffer(), blob);
  cycled.Reset();
  EXPECT_EQ(cycled.num_partitions(), 0u);
  EXPECT_EQ(cycled.num_events(), 0);
}

TEST(RestoreLifecycle, ParallelMatrix) {
  Schema schema({Field{"key", ValueType::kInt}, Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "a"))
      .Define("B", FieldRef(2, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto built = qb.Build();
  ASSERT_TRUE(built.ok());
  const QuerySpec spec = built.value();

  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;

  const auto push_round = [](parallel::ParallelTPStream& op, TimePoint base) {
    for (TimePoint t = 1; t <= 10; ++t) {
      for (int64_t key : {1, 2, 3}) {
        op.Push(Event({Value(key), Value(t >= 2 && t < 6),
                       Value(t >= 4 && t < 9)},
                      base + t));
      }
    }
  };

  parallel::ParallelTPStream source(spec, options, nullptr);
  push_round(source, 0);
  ckpt::Writer w;
  source.Checkpoint(w);  // quiescent: flushes the workers first
  const std::string blob = w.Take();

  // Fresh restore with the same worker count resumes all partitions.
  std::vector<Event> outputs;
  std::mutex mutex;
  parallel::ParallelTPStream fresh(spec, options, [&](const Event& e) {
    std::lock_guard<std::mutex> lock(mutex);
    outputs.push_back(e);
  });
  uint64_t offset = 0;
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(fresh.Restore(r, &offset).ok()) << r.status().ToString();
  }
  EXPECT_EQ(offset, 30u);
  EXPECT_EQ(fresh.num_events(), 30);
  push_round(fresh, 100);
  fresh.Flush();
  ASSERT_EQ(outputs.size(), 3u);  // one per key, from the resumed round

  // Double restore re-checkpoints byte-identically; Reset then replays
  // the stream from scratch.
  parallel::ParallelTPStream cycled(spec, options, nullptr);
  for (int i = 0; i < 2; ++i) {
    ckpt::Reader r(blob);
    ASSERT_TRUE(cycled.Restore(r).ok()) << "restore " << i;
  }
  ckpt::Writer again;
  cycled.Checkpoint(again);
  EXPECT_EQ(again.buffer(), blob);
  cycled.Reset();
  EXPECT_EQ(cycled.num_events(), 0);
  push_round(cycled, 0);
  cycled.Flush();
  EXPECT_EQ(cycled.num_events(), 30);
}

TEST(RestoreLifecycle, PipelineMatrix) {
  const auto build = [](std::vector<Event>* matches) {
    auto p = std::make_unique<pipeline::Pipeline>(TwoBoolSchema());
    p->Reorder(4).Detect(OverlapSpec());
    if (matches != nullptr) {
      p->Sink([matches](const Event& e) { matches->push_back(e); });
    } else {
      p->Sink([](const Event&) {});
    }
    EXPECT_TRUE(p->Finalize().ok());
    return p;
  };

  auto source = build(nullptr);
  const std::string blob = CheckpointAfterEpisode(*source);

  // Fresh restore on an identically built chain: the reorder stage's
  // buffered tail and the detect engine both come back, and the stream
  // continues from the checkpoint offset.
  std::vector<Event> matches;
  auto fresh = build(&matches);
  uint64_t offset = 0;
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(fresh->Restore(r, &offset).ok()) << r.status().ToString();
  }
  EXPECT_EQ(offset, 10u);
  EXPECT_EQ(fresh->num_pushed(), 10);
  PushEpisode([&](const Event& e) { fresh->Push(e); }, 100);
  fresh->Finish();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].t, 106);

  // Restore into a pipeline mid-way through a different stream.
  std::vector<Event> used_matches;
  auto used = build(&used_matches);
  for (TimePoint t = 1; t <= 6; ++t) {
    used->Push(Event({Value(true), Value(false)}, 1000 + t));
  }
  used_matches.clear();
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(used->Restore(r).ok());
  }
  PushEpisode([&](const Event& e) { used->Push(e); }, 100);
  used->Finish();
  ASSERT_EQ(used_matches.size(), 1u);
  EXPECT_EQ(used_matches[0].t, 106);

  // Double restore: byte-stable. Restore-then-Reset: fresh stream.
  auto cycled = build(nullptr);
  for (int i = 0; i < 2; ++i) {
    ckpt::Reader r(blob);
    ASSERT_TRUE(cycled->Restore(r).ok()) << "restore " << i;
  }
  ckpt::Writer again;
  cycled->Checkpoint(again);
  EXPECT_EQ(again.buffer(), blob);
  cycled->Reset();
  EXPECT_EQ(cycled->num_pushed(), 0);
}

TEST(RestoreLifecycle, QueryGroupMatrix) {
  const auto build = [](std::vector<Event>* outputs) {
    auto group = std::make_unique<multi::QueryGroup>();
    auto added = group->AddQuery(OverlapSpec(), [outputs](const Event& e) {
      if (outputs != nullptr) outputs->push_back(e);
    });
    EXPECT_TRUE(added.ok()) << added.status().ToString();
    return group;
  };

  auto source = build(nullptr);
  const std::string blob = CheckpointAfterEpisode(*source);

  // Restore seals an unsealed group with the same registered queries.
  std::vector<Event> outputs;
  auto fresh = build(&outputs);
  EXPECT_FALSE(fresh->sealed());
  uint64_t offset = 0;
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(fresh->Restore(r, &offset).ok()) << r.status().ToString();
  }
  EXPECT_TRUE(fresh->sealed());
  EXPECT_EQ(offset, 10u);
  EXPECT_EQ(fresh->num_events(), 10);
  PushEpisode([&](const Event& e) { fresh->Push(e); }, 100);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 106);

  // Restore into a group mid-way through another stream overwrites it.
  std::vector<Event> used_outputs;
  auto used = build(&used_outputs);
  for (TimePoint t = 1; t <= 5; ++t) {
    used->Push(Event({Value(true), Value(true)}, 500 + t));
  }
  used_outputs.clear();
  {
    ckpt::Reader r(blob);
    ASSERT_TRUE(used->Restore(r).ok());
  }
  EXPECT_EQ(used->num_events(), 10);
  PushEpisode([&](const Event& e) { used->Push(e); }, 100);
  ASSERT_EQ(used_outputs.size(), 1u);
  EXPECT_EQ(used_outputs[0].t, 106);

  // Double restore: byte-stable. Restore-then-Reset: replay from zero
  // re-emits (the Reset fingerprint bug would suppress this).
  std::vector<Event> cycled_outputs;
  auto cycled = build(&cycled_outputs);
  for (int i = 0; i < 2; ++i) {
    ckpt::Reader r(blob);
    ASSERT_TRUE(cycled->Restore(r).ok()) << "restore " << i;
  }
  ckpt::Writer again;
  cycled->Checkpoint(again);
  EXPECT_EQ(again.buffer(), blob);
  cycled->Reset();
  EXPECT_EQ(cycled->num_events(), 0);
  cycled_outputs.clear();
  PushEpisode([&](const Event& e) { cycled->Push(e); }, 0);
  ASSERT_EQ(cycled_outputs.size(), 1u);
  EXPECT_EQ(cycled_outputs[0].t, 6);
}

}  // namespace
}  // namespace tpstream
