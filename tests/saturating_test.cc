// Overflow-safe overload accounting: the lost-match upper bound and the
// counters multiplied out of it saturate at int64 max instead of
// wrapping into meaningless (possibly negative) values, and the `robust.*`
// registry counters stay consistent with the operator accessors.

#include "robust/saturating.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "obs/metrics.h"
#include "query/builder.h"
#include "tests/fault_injection.h"

namespace tpstream {
namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

TEST(SaturatingTest, AddSaturatesAtBoundary) {
  EXPECT_EQ(robust::SaturatingAdd(0, 0), 0);
  EXPECT_EQ(robust::SaturatingAdd(2, 3), 5);
  EXPECT_EQ(robust::SaturatingAdd(kMax, 0), kMax);
  EXPECT_EQ(robust::SaturatingAdd(kMax - 1, 1), kMax);
  EXPECT_EQ(robust::SaturatingAdd(kMax - 1, 2), kMax);
  EXPECT_EQ(robust::SaturatingAdd(kMax, kMax), kMax);
  EXPECT_EQ(robust::SaturatingAdd(kMax / 2, kMax / 2 + 1), kMax);
}

TEST(SaturatingTest, MulSaturatesAtBoundary) {
  EXPECT_EQ(robust::SaturatingMul(0, kMax), 0);
  EXPECT_EQ(robust::SaturatingMul(kMax, 0), 0);
  EXPECT_EQ(robust::SaturatingMul(3, 4), 12);
  EXPECT_EQ(robust::SaturatingMul(kMax, 1), kMax);
  EXPECT_EQ(robust::SaturatingMul(1, kMax), kMax);
  EXPECT_EQ(robust::SaturatingMul(kMax / 2, 3), kMax);
  EXPECT_EQ(robust::SaturatingMul(kMax, kMax), kMax);
}

TEST(SaturatingTest, CounterIncSaturatingPinsAtMax) {
  obs::MetricsRegistry registry;
  obs::Counter* ctr = registry.GetCounter("robust.test");
  ctr->IncSaturating(5);
  EXPECT_EQ(registry.Snapshot().counters.at("robust.test"), 5);
  ctr->IncSaturating(kMax - 5);
  EXPECT_EQ(registry.Snapshot().counters.at("robust.test"), kMax);
  // Further increments stay pinned instead of wrapping negative.
  ctr->IncSaturating(kMax);
  ctr->IncSaturating(1);
  EXPECT_EQ(registry.Snapshot().counters.at("robust.test"), kMax);
}

// End to end: an overload-capped operator keeps its registry counter
// bit-equal to the lost_match_upper_bound() accessor while evictions
// multiply the bound upward.
TEST(SaturatingTest, LostMatchBoundCounterTracksAccessor) {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(Duration{1} << 30)  // nothing purges; only the cap bounds
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  obs::MetricsRegistry registry;
  TPStreamOperator::Options options;
  options.low_latency = false;
  options.metrics = &registry;
  options.overload.max_situations_per_buffer = 16;
  TPStreamOperator op(spec.value(), options, nullptr);

  for (const Event& e : testing::FloodWorkload(1, 4000, 77)) op.Push(e);

  ASSERT_GT(op.shed_situations(), 0) << "flood did not reach the cap";
  EXPECT_GT(op.lost_match_upper_bound(), 0);
  const auto snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("robust.shed_situations"),
            op.shed_situations());
  EXPECT_EQ(snap.counters.at("robust.lost_match_upper_bound"),
            op.lost_match_upper_bound());
}

}  // namespace
}  // namespace tpstream
