#include "expr/expression.h"

#include <gtest/gtest.h>

#include "expr/aggregate.h"

namespace tpstream {
namespace {

TEST(ExpressionTest, FieldAndLiteral) {
  Tuple tuple = {Value(int64_t{7}), Value(2.5)};
  EXPECT_EQ(FieldRef(0)->Eval(tuple).AsInt(), 7);
  EXPECT_DOUBLE_EQ(FieldRef(1)->Eval(tuple).AsDouble(), 2.5);
  EXPECT_TRUE(FieldRef(9)->Eval(tuple).is_null());  // out of range: null
  EXPECT_EQ(Literal(int64_t{3})->Eval(tuple).AsInt(), 3);
}

TEST(ExpressionTest, NamedFieldResolution) {
  Schema schema({Field{"x", ValueType::kInt}});
  auto ok = FieldRef(schema, "x");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()->Eval({Value(int64_t{4})}).AsInt(), 4);
  EXPECT_FALSE(FieldRef(schema, "nope").ok());
}

TEST(ExpressionTest, ComparisonAndLogic) {
  Tuple tuple = {Value(5.0), Value(int64_t{10})};
  const ExprPtr x = FieldRef(0);
  const ExprPtr y = FieldRef(1);
  EXPECT_TRUE(EvalPredicate(*Gt(y, x), tuple));
  EXPECT_FALSE(EvalPredicate(*Lt(y, x), tuple));
  EXPECT_TRUE(EvalPredicate(*Ge(x, Literal(5.0)), tuple));
  EXPECT_TRUE(EvalPredicate(*Le(x, Literal(5.0)), tuple));
  EXPECT_TRUE(EvalPredicate(*Eq(y, Literal(int64_t{10})), tuple));
  EXPECT_TRUE(EvalPredicate(*And(Gt(y, x), Gt(x, Literal(0.0))), tuple));
  EXPECT_FALSE(EvalPredicate(*And(Gt(y, x), Gt(x, Literal(9.0))), tuple));
  EXPECT_TRUE(EvalPredicate(*Or(Lt(y, x), Gt(x, Literal(0.0))), tuple));
  EXPECT_TRUE(EvalPredicate(*Not(Lt(y, x)), tuple));
}

TEST(ExpressionTest, ArithmeticAndNegation) {
  Tuple tuple = {Value(6.0)};
  const ExprPtr x = FieldRef(0);
  EXPECT_DOUBLE_EQ(
      Binary(BinaryOp::kMul, x, Literal(2.0))->Eval(tuple).AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(
      Binary(BinaryOp::kSub, x, Literal(1.5))->Eval(tuple).AsDouble(), 4.5);
  EXPECT_DOUBLE_EQ(Negate(x)->Eval(tuple).AsDouble(), -6.0);
  // Comparison against an arithmetic result.
  EXPECT_TRUE(EvalPredicate(
      *Gt(Binary(BinaryOp::kDiv, x, Literal(2.0)), Literal(2.9)), tuple));
}

TEST(ExpressionTest, NullPropagationIsFalsy) {
  Tuple tuple = {Value()};  // null field
  const ExprPtr x = FieldRef(0);
  EXPECT_FALSE(EvalPredicate(*Gt(x, Literal(1.0)), tuple));
  EXPECT_FALSE(EvalPredicate(*Eq(x, Literal(1.0)), tuple));
  // NOT null-comparison is true (null is falsy).
  EXPECT_TRUE(EvalPredicate(*Not(Gt(x, Literal(1.0))), tuple));
}

TEST(ExpressionTest, ShortCircuit) {
  // AND short-circuits: the right side (which would compare incomparable
  // types) is never evaluated when the left is false.
  Tuple tuple = {Value(false), Value(std::string("x"))};
  const ExprPtr bad = Gt(FieldRef(1), Literal(1.0));
  EXPECT_FALSE(EvalPredicate(*And(FieldRef(0), bad), tuple));
  EXPECT_TRUE(EvalPredicate(*Or(Literal(true), bad), tuple));
}

TEST(ExpressionTest, ToStringIsReadable) {
  const ExprPtr e = And(Gt(FieldRef(0, "speed"), Literal(70.0)),
                        Lt(FieldRef(1, "accel"), Literal(-9.0)));
  EXPECT_EQ(e->ToString(), "((speed > 70) AND (accel < -9))");
}

TEST(AggregateTest, AllKinds) {
  const Tuple t1 = {Value(4.0)};
  const Tuple t2 = {Value(9.0)};
  const Tuple t3 = {Value(2.0)};

  auto run = [&](AggKind kind) {
    AggregateState state(AggregateSpec{kind, 0, "x"});
    state.Init(t1);
    state.Update(t2);
    state.Update(t3);
    return state.Result();
  };
  EXPECT_EQ(run(AggKind::kCount).AsInt(), 3);
  EXPECT_DOUBLE_EQ(run(AggKind::kSum).AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(run(AggKind::kAvg).AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(run(AggKind::kMin).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(run(AggKind::kMax).AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(run(AggKind::kFirst).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(run(AggKind::kLast).AsDouble(), 2.0);
}

TEST(AggregateTest, AggregatorSetSnapshot) {
  AggregatorSet set({AggregateSpec{AggKind::kMin, 0, "lo"},
                     AggregateSpec{AggKind::kMax, 0, "hi"}});
  set.Init({Value(5.0)});
  set.Update({Value(1.0)});
  set.Update({Value(8.0)});
  const Tuple snapshot = set.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot[0].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(snapshot[1].AsDouble(), 8.0);
}

TEST(AggregateTest, NamesRoundTrip) {
  EXPECT_EQ(AggKindFromName("AVG"), AggKind::kAvg);
  EXPECT_EQ(AggKindFromName("first"), AggKind::kFirst);
  EXPECT_EQ(AggKindFromName("mean"), AggKind::kAvg);
  EXPECT_FALSE(AggKindFromName("median").has_value());
  EXPECT_STREQ(AggKindName(AggKind::kSum), "sum");
}

}  // namespace
}  // namespace tpstream
