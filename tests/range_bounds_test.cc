#include "algebra/range_bounds.h"

#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::Sit;

TEST(TimeRangeTest, Constructors) {
  EXPECT_TRUE(TimeRange::All().Contains(kTimeMin));
  EXPECT_TRUE(TimeRange::All().Contains(kTimeMax));
  EXPECT_TRUE(TimeRange::Below(5).Contains(4));
  EXPECT_FALSE(TimeRange::Below(5).Contains(5));
  EXPECT_TRUE(TimeRange::Above(5).Contains(6));
  EXPECT_FALSE(TimeRange::Above(5).Contains(5));
  EXPECT_TRUE(TimeRange::Exactly(5).Contains(5));
  EXPECT_FALSE(TimeRange::Exactly(5).Contains(4));
  EXPECT_TRUE(TimeRange::Below(kTimeMin).empty());
  EXPECT_TRUE(TimeRange::Above(kTimeMax).empty());
  EXPECT_TRUE((TimeRange{3, 2}).empty());
}

// The bounds must be exact: a finished candidate satisfies the relation
// with the fixed situation iff both its endpoints fall into the ranges.
TEST(RangeBoundsTest, BoundsEquivalentToDefinitionFixedFinished) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<TimePoint> point(0, 14);

  for (int trial = 0; trial < 3000; ++trial) {
    TimePoint f1 = point(rng), f2 = point(rng);
    if (f1 == f2) continue;
    const Situation fixed = Sit(std::min(f1, f2), std::max(f1, f2));

    for (int r = 0; r < kNumRelations; ++r) {
      const Relation rel = static_cast<Relation>(r);
      for (const bool fixed_is_a : {false, true}) {
        const auto bounds = BoundsForCounterpart(rel, fixed, fixed_is_a);
        TimePoint c1 = point(rng), c2 = point(rng);
        if (c1 == c2) continue;
        const Situation candidate = Sit(std::min(c1, c2), std::max(c1, c2));

        const bool holds = fixed_is_a ? Holds(rel, fixed, candidate)
                                      : Holds(rel, candidate, fixed);
        const bool in_bounds = bounds.has_value() &&
                               bounds->ts_range.Contains(candidate.ts) &&
                               bounds->te_range.Contains(candidate.te);
        EXPECT_EQ(holds, in_bounds)
            << RelationName(rel) << " fixed=" << fixed.ToString()
            << " cand=" << candidate.ToString()
            << " fixed_is_a=" << fixed_is_a;
      }
    }
  }
}

// With an ongoing fixed situation, the bounds must select exactly the
// finished candidates for which the relation is already certain.
TEST(RangeBoundsTest, BoundsEquivalentToCertaintyFixedOngoing) {
  std::mt19937_64 rng(8);
  constexpr TimePoint kHorizon = 14;
  std::uniform_int_distribution<TimePoint> point(0, kHorizon);

  for (int trial = 0; trial < 3000; ++trial) {
    const Situation fixed = Sit(point(rng), kTimeUnknown);

    for (int r = 0; r < kNumRelations; ++r) {
      const Relation rel = static_cast<Relation>(r);
      for (const bool fixed_is_a : {false, true}) {
        const auto bounds = BoundsForCounterpart(rel, fixed, fixed_is_a);
        TimePoint c1 = point(rng), c2 = point(rng);
        if (c1 == c2) continue;
        const Situation candidate = Sit(std::min(c1, c2), std::max(c1, c2));

        const Certainty certainty =
            fixed_is_a ? CheckRelation(rel, fixed, candidate)
                       : CheckRelation(rel, candidate, fixed);
        const bool in_bounds = bounds.has_value() &&
                               bounds->ts_range.Contains(candidate.ts) &&
                               bounds->te_range.Contains(candidate.te);
        EXPECT_EQ(certainty == Certainty::kCertain, in_bounds)
            << RelationName(rel) << " fixed=[" << fixed.ts << ",?) cand="
            << candidate.ToString() << " fixed_is_a=" << fixed_is_a;
      }
    }
  }
}

TEST(RangeBoundsTest, FigureThreeExample) {
  // Figure 3: A1 = [2, 6), relation A overlaps B. Matching B must start
  // inside (2, 6) and end after 6.
  const Situation a1 = Sit(2, 6);
  const auto bounds =
      BoundsForCounterpart(Relation::kOverlaps, a1, /*fixed_is_a=*/true);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->ts_range.lo, 3);
  EXPECT_EQ(bounds->ts_range.hi, 5);
  EXPECT_EQ(bounds->te_range.lo, 7);
  EXPECT_EQ(bounds->te_range.hi, kTimeMax);
}

}  // namespace
}  // namespace tpstream
