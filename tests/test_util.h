#ifndef TPSTREAM_TESTS_TEST_UTIL_H_
#define TPSTREAM_TESTS_TEST_UTIL_H_

#include <functional>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "algebra/pattern.h"
#include "common/situation.h"

namespace tpstream {
namespace testing {

inline Situation Sit(TimePoint ts, TimePoint te) {
  return Situation({}, ts, te);
}

/// A configuration key: per-symbol start timestamps (unique per stream).
using ConfigKey = std::vector<TimePoint>;

inline ConfigKey KeyOf(const std::vector<Situation>& config) {
  ConfigKey key;
  key.reserve(config.size());
  for (const Situation& s : config) key.push_back(s.ts);
  return key;
}

/// Reference implementation of Definition 13: all configurations from the
/// cross product of the (finished) situation streams that match the
/// pattern and the window. Returns key -> max end timestamp (the baseline
/// detection time).
inline std::map<ConfigKey, TimePoint> BruteForceMatches(
    const TemporalPattern& pattern, Duration window,
    const std::vector<std::vector<Situation>>& streams) {
  std::map<ConfigKey, TimePoint> out;
  std::vector<Situation> config(streams.size());
  std::vector<size_t> idx(streams.size(), 0);

  // Recursive cross product.
  std::function<void(size_t)> rec = [&](size_t sym) {
    if (sym == streams.size()) {
      TimePoint min_ts = kTimeMax;
      TimePoint max_te = kTimeMin;
      for (const Situation& s : config) {
        min_ts = std::min(min_ts, s.ts);
        max_te = std::max(max_te, s.te);
      }
      if (max_te - min_ts > window) return;
      if (!pattern.Matches(config)) return;
      out.emplace(KeyOf(config), max_te);
      return;
    }
    for (const Situation& s : streams[sym]) {
      config[sym] = s;
      rec(sym + 1);
    }
  };
  rec(0);
  return out;
}

/// Random connected pattern over `n` symbols: a random spanning tree plus
/// optional extra edges, each constraint holding 1..4 random relations.
inline TemporalPattern RandomPattern(std::mt19937_64& rng, int n,
                                     double extra_edge_prob = 0.3) {
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back(std::string(1, 'A' + i));
  TemporalPattern pattern(names);

  std::uniform_int_distribution<int> rel_dist(0, kNumRelations - 1);
  std::uniform_int_distribution<int> count_dist(1, 4);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  auto add_constraint = [&](int a, int b) {
    const int k = count_dist(rng);
    for (int i = 0; i < k; ++i) {
      (void)pattern.AddRelation(a, static_cast<Relation>(rel_dist(rng)), b);
    }
  };

  for (int v = 1; v < n; ++v) {
    std::uniform_int_distribution<int> parent(0, v - 1);
    add_constraint(parent(rng), v);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (pattern.ConstraintIndex(a, b) < 0 && uni(rng) < extra_edge_prob) {
        add_constraint(a, b);
      }
    }
  }
  return pattern;
}

/// Random disjoint situation stream: durations U[min_d,max_d], gaps
/// U[min_g,max_g], until `horizon`.
inline std::vector<Situation> RandomStream(std::mt19937_64& rng,
                                           TimePoint horizon,
                                           Duration min_d = 2,
                                           Duration max_d = 20,
                                           Duration min_g = 1,
                                           Duration max_g = 15) {
  std::vector<Situation> out;
  std::uniform_int_distribution<Duration> dur(min_d, max_d);
  std::uniform_int_distribution<Duration> gap(min_g, max_g);
  TimePoint t = gap(rng);
  while (true) {
    const TimePoint ts = t;
    const TimePoint te = ts + dur(rng);
    if (te > horizon) break;
    out.push_back(Sit(ts, te));
    t = te + gap(rng);
  }
  return out;
}

/// Interleaves finished situations of several streams into per-timestamp
/// batches ordered by end timestamp, the input format of Matcher::Update.
inline std::map<TimePoint, std::vector<SymbolSituation>> BatchByEnd(
    const std::vector<std::vector<Situation>>& streams) {
  std::map<TimePoint, std::vector<SymbolSituation>> batches;
  for (int sym = 0; sym < static_cast<int>(streams.size()); ++sym) {
    for (const Situation& s : streams[sym]) {
      batches[s.te].push_back(SymbolSituation{sym, s});
    }
  }
  return batches;
}

/// Start/end event timeline for the low-latency matcher: at ts the
/// situation is announced, at te it finishes.
struct Timeline {
  std::map<TimePoint, std::vector<SymbolSituation>> started;
  std::map<TimePoint, std::vector<SymbolSituation>> finished;
  std::set<TimePoint> instants;
};

inline Timeline BuildTimeline(
    const std::vector<std::vector<Situation>>& streams) {
  Timeline tl;
  for (int sym = 0; sym < static_cast<int>(streams.size()); ++sym) {
    for (const Situation& s : streams[sym]) {
      Situation ongoing = s;
      ongoing.te = kTimeUnknown;
      tl.started[s.ts].push_back(SymbolSituation{sym, ongoing});
      tl.finished[s.te].push_back(SymbolSituation{sym, s});
      tl.instants.insert(s.ts);
      tl.instants.insert(s.te);
    }
  }
  return tl;
}

}  // namespace testing
}  // namespace tpstream

#endif  // TPSTREAM_TESTS_TEST_UTIL_H_
