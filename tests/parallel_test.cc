#include "parallel/parallel_operator.h"

#include <algorithm>
#include <mutex>
#include <random>

#include <gtest/gtest.h>

#include "query/builder.h"

namespace tpstream {
namespace {

QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(200)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> KeyedWorkload(int keys, TimePoint horizon,
                                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  std::vector<Event> events;
  std::bernoulli_distribution flip(0.07);
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < keys; ++k) {
      if (flip(rng)) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

// Output signature: (timestamp, key) pairs, sorted.
using Signature = std::vector<std::pair<TimePoint, int64_t>>;

TEST(ParallelTPStreamTest, MatchesSequentialResults) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedWorkload(17, 1500, 9);

  Signature sequential;
  {
    PartitionedTPStream op(spec, {}, [&](const Event& e) {
      sequential.emplace_back(e.t, e.payload[0].AsInt());
    });
    for (const Event& e : events) op.Push(e);
  }
  ASSERT_FALSE(sequential.empty());

  for (int workers : {1, 2, 4}) {
    Signature parallel_out;
    std::mutex mutex;
    parallel::ParallelTPStream::Options options;
    options.num_workers = workers;
    options.batch_size = 64;
    {
      parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
        std::lock_guard<std::mutex> lock(mutex);
        parallel_out.emplace_back(e.t, e.payload[0].AsInt());
      });
      for (const Event& e : events) op.Push(e);
      op.Flush();
      EXPECT_EQ(op.num_matches(),
                static_cast<int64_t>(sequential.size()));
      EXPECT_EQ(op.num_partitions(), 17u);
    }
    std::sort(parallel_out.begin(), parallel_out.end());
    Signature expected = sequential;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(parallel_out, expected) << "workers=" << workers;
  }
}

TEST(ParallelTPStreamTest, FlushIsIdempotentAndDestructorSafe) {
  const QuerySpec spec = KeyedSpec();
  parallel::ParallelTPStream::Options options;
  options.num_workers = 3;
  options.batch_size = 8;
  parallel::ParallelTPStream op(spec, options, nullptr);
  const std::vector<Event> events = KeyedWorkload(5, 100, 3);
  for (const Event& e : events) op.Push(e);
  op.Flush();
  op.Flush();
  EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()));
  // Destructor runs another flush + joins the workers.
}

TEST(ParallelTPStreamTest, UnpartitionedFallsBackToOneWorkerStream) {
  // Without PARTITION BY all events go to worker 0; results must still
  // be correct.
  Schema schema({Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "flag"))
      .Define("B", Not(FieldRef(0, "flag")))
      .Relate("A", Relation::kMeets, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  parallel::ParallelTPStream::Options options;
  options.num_workers = 4;
  parallel::ParallelTPStream op(spec.value(), options, nullptr);
  for (TimePoint t = 1; t <= 20; ++t) {
    op.Push(Event({Value(t <= 10)}, t));
  }
  op.Flush();
  EXPECT_EQ(op.num_matches(), 1);
}

}  // namespace
}  // namespace tpstream
