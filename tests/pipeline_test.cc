#include "pipeline/pipeline.h"

#include <random>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "query/builder.h"
#include "workload/market.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"flag", ValueType::kBool},
                 Field{"quality", ValueType::kDouble}});
}

QuerySpec FlagQuery(const Schema& schema) {
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(schema, "flag").value())
      .Define("B", Not(FieldRef(schema, "flag").value()))
      .Relate("A", Relation::kMeets, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

TEST(PipelineTest, FilterDetectSink) {
  const Schema schema = SensorSchema();
  pipeline::Pipeline p(schema);
  std::vector<Event> matches;
  p.Filter(Gt(FieldRef(schema, "quality").value(), Literal(0.5)))
      .Detect(FlagQuery(schema))
      .Sink([&](const Event& e) { matches.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());

  // flag true on [1,5); a low-quality glitch at t=3 claims flag=false but
  // is filtered out, so the situation stays contiguous.
  for (TimePoint t = 1; t <= 8; ++t) {
    const bool flag = t < 5;
    const double quality = (t == 3) ? 0.1 : 0.9;
    p.Push(Event({Value(t == 3 ? !flag : flag), Value(quality)}, t));
  }
  p.Finish();
  ASSERT_EQ(matches.size(), 1u);
  // count(A) covers the three surviving flag events (t = 1, 2, 4).
  EXPECT_EQ(matches[0].payload[0].AsInt(), 3);
}

TEST(PipelineTest, MapReshapesPayload) {
  const Schema schema = SensorSchema();
  pipeline::Pipeline p(schema);
  std::vector<Event> out;
  p.Map({{"scaled", Binary(BinaryOp::kMul,
                           FieldRef(schema, "quality").value(),
                           Literal(10.0))}})
      .Sink([&](const Event& e) { out.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());
  EXPECT_EQ(p.output_schema().IndexOf("scaled"), 0);

  p.Push(Event({Value(true), Value(0.7)}, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].payload[0].AsDouble(), 7.0);
}

TEST(PipelineTest, ReorderRepairsDisorder) {
  const Schema schema = SensorSchema();
  pipeline::Pipeline p(schema);
  std::vector<TimePoint> seen;
  p.Reorder(5).Sink([&](const Event& e) { seen.push_back(e.t); });
  ASSERT_TRUE(p.Finalize().ok());
  for (TimePoint t : {3, 1, 2, 9, 7}) {
    p.Push(Event({Value(true), Value(1.0)}, t));
  }
  p.Finish();
  EXPECT_EQ(seen, (std::vector<TimePoint>{1, 2, 3, 7, 9}));
}

TEST(PipelineTest, DetectRemapsFieldPositions) {
  // Pipeline schema has the fields in a different order than the query's
  // input schema; Detect must remap them positionally.
  const Schema pipeline_schema({Field{"quality", ValueType::kDouble},
                                Field{"flag", ValueType::kBool}});
  const Schema query_schema = SensorSchema();  // flag first

  pipeline::Pipeline p(pipeline_schema);
  std::vector<Event> matches;
  p.Detect(FlagQuery(query_schema))
      .Sink([&](const Event& e) { matches.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());

  for (TimePoint t = 1; t <= 8; ++t) {
    p.Push(Event({Value(0.9), Value(t < 5)}, t));  // quality, flag
  }
  p.Finish();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].payload[0].AsInt(), 4);
}

TEST(PipelineTest, FinalizeReportsConstructionErrors) {
  const Schema schema = SensorSchema();
  {
    pipeline::Pipeline p(schema);
    p.Filter(nullptr);
    EXPECT_FALSE(p.Finalize().ok());
  }
  {
    pipeline::Pipeline p(schema);
    EXPECT_FALSE(p.Finalize().ok());  // no stages
  }
  {
    // Query expects a field the pipeline does not produce.
    const Schema other({Field{"nope", ValueType::kBool}});
    QueryBuilder qb(other);
    qb.Define("A", FieldRef(other, "nope").value())
        .Define("B", Not(FieldRef(other, "nope").value()))
        .Relate("A", Relation::kMeets, "B")
        .Within(10)
        .Return("n", "A", AggKind::kCount);
    pipeline::Pipeline p(schema);
    p.Detect(qb.Build().value());
    EXPECT_FALSE(p.Finalize().ok());
  }
}

TEST(PipelineTest, ResetRestoresFreshEngineState) {
  const Schema schema = SensorSchema();
  obs::MetricsRegistry registry;
  pipeline::Pipeline p(schema, &registry);
  std::vector<Event> matches;
  p.Reorder(2)
      .Detect(FlagQuery(schema))
      .Sink([&](const Event& e) { matches.push_back(e); });
  ASSERT_TRUE(p.Finalize().ok());

  auto run = [&] {
    for (TimePoint t = 1; t <= 8; ++t) {
      p.Push(Event({Value(t < 5), Value(0.9)}, t));
    }
    p.Finish();
  };
  run();
  const size_t first = matches.size();
  ASSERT_EQ(first, 1u);

  // Replaying the same (time-rewound) workload against stale matcher and
  // reorder state would misbehave; Reset rebuilds the detect engine (and
  // its adaptive MatcherStats, which used to leak across restarts) and
  // the reorder buffer, so the second run is bit-identical to the first.
  p.Reset();
  matches.clear();
  run();
  EXPECT_EQ(matches.size(), first);

  // Per-stage counters aggregate across restarts: both runs are visible.
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("pipeline.stage0.reorder.events"), 16);
  EXPECT_EQ(snap.counters.at("pipeline.stage1.detect.events"), 16);
  EXPECT_EQ(snap.counters.at("pipeline.stage2.sink.events"),
            static_cast<int64_t>(2 * first));
  EXPECT_EQ(snap.counters.at("operator.events"), 16);
  EXPECT_EQ(snap.counters.at("operator.matches"),
            static_cast<int64_t>(2 * first));
}

TEST(PipelineTest, MarketSurveillanceEndToEnd) {
  // Pump-and-dump style pattern on the market generator: a sustained
  // rally overlapping a volume burst, followed by a selloff.
  MarketDataGenerator::Options options;
  options.num_symbols = 5;
  MarketDataGenerator gen(options);
  const Schema& schema = gen.schema();

  QueryBuilder qb(schema);
  qb.Define("RAMP", Gt(FieldRef(schema, "ret").value(), Literal(0.03)),
            AtLeast(5))
      .Define("BURST",
              Gt(FieldRef(schema, "volume").value(), Literal(int64_t{160})),
              AtLeast(5))
      .Define("DUMP", Lt(FieldRef(schema, "ret").value(), Literal(-0.05)),
              AtLeast(3))
      .Relate("RAMP",
              {Relation::kOverlaps, Relation::kDuring, Relation::kStarts,
               Relation::kFinishes, Relation::kEquals, Relation::kContains},
              "BURST")
      .Relate("RAMP", {Relation::kBefore, Relation::kMeets}, "DUMP")
      .Within(600)
      .Return("symbol", "RAMP", AggKind::kFirst, "symbol")
      .PartitionBy("symbol");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  pipeline::Pipeline p(schema);
  int64_t alerts = 0;
  p.Detect(spec.value()).Sink([&](const Event&) { ++alerts; });
  ASSERT_TRUE(p.Finalize().ok());
  for (int i = 0; i < 200000; ++i) p.Push(gen.Next());
  p.Finish();
  EXPECT_GT(alerts, 0);
}

}  // namespace
}  // namespace tpstream
