#include "algebra/interval_relation.h"

#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::Sit;

TEST(IntervalRelationTest, DefinitionsMatchTable1) {
  // Visual layout of Table 1, one representative pair per relation.
  EXPECT_TRUE(Holds(Relation::kBefore, Sit(0, 2), Sit(4, 6)));
  EXPECT_FALSE(Holds(Relation::kBefore, Sit(0, 4), Sit(4, 6)));

  EXPECT_TRUE(Holds(Relation::kMeets, Sit(0, 4), Sit(4, 6)));
  EXPECT_FALSE(Holds(Relation::kMeets, Sit(0, 3), Sit(4, 6)));

  EXPECT_TRUE(Holds(Relation::kOverlaps, Sit(0, 5), Sit(3, 8)));
  EXPECT_FALSE(Holds(Relation::kOverlaps, Sit(0, 5), Sit(5, 8)));
  EXPECT_FALSE(Holds(Relation::kOverlaps, Sit(3, 8), Sit(0, 5)));

  EXPECT_TRUE(Holds(Relation::kStarts, Sit(2, 5), Sit(2, 9)));
  EXPECT_FALSE(Holds(Relation::kStarts, Sit(2, 9), Sit(2, 5)));

  EXPECT_TRUE(Holds(Relation::kDuring, Sit(3, 5), Sit(1, 9)));
  EXPECT_FALSE(Holds(Relation::kDuring, Sit(1, 9), Sit(3, 5)));

  // Paper orientation: A finishes B <=> A starts first, both end together.
  EXPECT_TRUE(Holds(Relation::kFinishes, Sit(1, 9), Sit(4, 9)));
  EXPECT_FALSE(Holds(Relation::kFinishes, Sit(4, 9), Sit(1, 9)));

  EXPECT_TRUE(Holds(Relation::kEquals, Sit(2, 7), Sit(2, 7)));
  EXPECT_FALSE(Holds(Relation::kEquals, Sit(2, 7), Sit(2, 8)));

  EXPECT_TRUE(Holds(Relation::kAfter, Sit(4, 6), Sit(0, 2)));
  EXPECT_TRUE(Holds(Relation::kMetBy, Sit(4, 6), Sit(0, 4)));
  EXPECT_TRUE(Holds(Relation::kOverlappedBy, Sit(3, 8), Sit(0, 5)));
  EXPECT_TRUE(Holds(Relation::kStartedBy, Sit(2, 9), Sit(2, 5)));
  EXPECT_TRUE(Holds(Relation::kContains, Sit(1, 9), Sit(3, 5)));
  EXPECT_TRUE(Holds(Relation::kFinishedBy, Sit(4, 9), Sit(1, 9)));
}

TEST(IntervalRelationTest, InverseIsAnInvolutionAndMirrors) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<TimePoint> point(0, 20);
  for (int r = 0; r < kNumRelations; ++r) {
    const Relation rel = static_cast<Relation>(r);
    EXPECT_EQ(Inverse(Inverse(rel)), rel);
    for (int trial = 0; trial < 200; ++trial) {
      TimePoint a1 = point(rng), a2 = point(rng);
      TimePoint b1 = point(rng), b2 = point(rng);
      if (a1 == a2 || b1 == b2) continue;
      const Situation a = Sit(std::min(a1, a2), std::max(a1, a2));
      const Situation b = Sit(std::min(b1, b2), std::max(b1, b2));
      EXPECT_EQ(Holds(rel, a, b), Holds(Inverse(rel), b, a));
    }
  }
}

// Allen's algebra partitions all interval pairs: exactly one of the 13
// relations holds for any two intervals.
TEST(IntervalRelationTest, ExactlyOneRelationHolds) {
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<TimePoint> point(0, 15);
  for (int trial = 0; trial < 5000; ++trial) {
    TimePoint a1 = point(rng), a2 = point(rng);
    TimePoint b1 = point(rng), b2 = point(rng);
    if (a1 == a2 || b1 == b2) continue;
    const Situation a = Sit(std::min(a1, a2), std::max(a1, a2));
    const Situation b = Sit(std::min(b1, b2), std::max(b1, b2));
    int holding = 0;
    for (int r = 0; r < kNumRelations; ++r) {
      if (Holds(static_cast<Relation>(r), a, b)) ++holding;
    }
    EXPECT_EQ(holding, 1) << "a=" << a.ToString() << " b=" << b.ToString();
  }
}

TEST(IntervalRelationTest, NamesRoundTrip) {
  for (int r = 0; r < kNumRelations; ++r) {
    const Relation rel = static_cast<Relation>(r);
    const auto parsed = RelationFromName(RelationName(rel));
    ASSERT_TRUE(parsed.has_value()) << RelationName(rel);
    EXPECT_EQ(*parsed, rel);
  }
  EXPECT_EQ(RelationFromName("Overlapped-By"), Relation::kOverlappedBy);
  EXPECT_EQ(RelationFromName("equal"), Relation::kEquals);
  EXPECT_EQ(RelationFromName("metby"), Relation::kMetBy);
  EXPECT_FALSE(RelationFromName("sideways").has_value());
}

TEST(IntervalRelationTest, SelectivitiesMatchTable3) {
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kBefore), 0.445);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kAfter), 0.445);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kDuring), 0.03);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kContains), 0.03);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kOverlaps), 0.01);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kStarts), 0.0049);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kFinishes), 0.0049);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kMeets), 0.0049);
  EXPECT_DOUBLE_EQ(DefaultSelectivity(Relation::kEquals), 0.0006);
}

TEST(IntervalRelationTest, DetectionTriggersMatchTable2) {
  EXPECT_EQ(DetectionTrigger(Relation::kBefore), TriggerPoint::kStartOfB);
  EXPECT_EQ(DetectionTrigger(Relation::kMeets), TriggerPoint::kStartOfB);
  EXPECT_EQ(DetectionTrigger(Relation::kAfter), TriggerPoint::kStartOfA);
  EXPECT_EQ(DetectionTrigger(Relation::kMetBy), TriggerPoint::kStartOfA);
  EXPECT_EQ(DetectionTrigger(Relation::kStarts), TriggerPoint::kEndOfA);
  EXPECT_EQ(DetectionTrigger(Relation::kOverlaps), TriggerPoint::kEndOfA);
  EXPECT_EQ(DetectionTrigger(Relation::kDuring), TriggerPoint::kEndOfA);
  EXPECT_EQ(DetectionTrigger(Relation::kStartedBy), TriggerPoint::kEndOfB);
  EXPECT_EQ(DetectionTrigger(Relation::kContains), TriggerPoint::kEndOfB);
  EXPECT_EQ(DetectionTrigger(Relation::kOverlappedBy),
            TriggerPoint::kEndOfB);
  EXPECT_EQ(DetectionTrigger(Relation::kEquals), TriggerPoint::kBothEnds);
  EXPECT_EQ(DetectionTrigger(Relation::kFinishes), TriggerPoint::kBothEnds);
  EXPECT_EQ(DetectionTrigger(Relation::kFinishedBy),
            TriggerPoint::kBothEnds);
}

// Three-valued evaluation: kCertain must imply the relation holds for
// every admissible completion of the unknown ends, kImpossible that it
// holds for none, and kUnknown that completions disagree.
TEST(IntervalRelationTest, CheckRelationSoundOnSampledCompletions) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<TimePoint> point(0, 12);
  constexpr TimePoint kHorizon = 12;  // "now": all known points are <= now

  for (int trial = 0; trial < 4000; ++trial) {
    const bool a_ongoing = trial % 2 == 0;
    const bool b_ongoing = trial % 4 < 2;

    TimePoint a_ts = point(rng);
    TimePoint b_ts = point(rng);
    TimePoint a_te = a_ts + 1 + point(rng) % 5;
    TimePoint b_te = b_ts + 1 + point(rng) % 5;
    if (!a_ongoing && a_te > kHorizon) continue;
    if (!b_ongoing && b_te > kHorizon) continue;

    Situation a = Sit(a_ts, a_ongoing ? kTimeUnknown : a_te);
    Situation b = Sit(b_ts, b_ongoing ? kTimeUnknown : b_te);

    for (int r = 0; r < kNumRelations; ++r) {
      const Relation rel = static_cast<Relation>(r);
      const Certainty c = CheckRelation(rel, a, b);

      // Enumerate completions: unknown ends range over (horizon, ...].
      bool any_true = false;
      bool any_false = false;
      for (TimePoint ae = a_ongoing ? kHorizon + 1 : a.te;
           ae <= (a_ongoing ? kHorizon + 6 : a.te); ++ae) {
        for (TimePoint be = b_ongoing ? kHorizon + 1 : b.te;
             be <= (b_ongoing ? kHorizon + 6 : b.te); ++be) {
          const bool holds = Holds(rel, a.ts, ae, b.ts, be);
          any_true |= holds;
          any_false |= !holds;
        }
      }
      if (c == Certainty::kCertain) {
        EXPECT_FALSE(any_false)
            << RelationName(rel) << " a=" << a.ToString()
            << " b=" << b.ToString();
      }
      if (c == Certainty::kImpossible) {
        EXPECT_FALSE(any_true)
            << RelationName(rel) << " a=" << a.ToString()
            << " b=" << b.ToString();
      }
      if (c == Certainty::kUnknown) {
        EXPECT_TRUE(any_true && any_false)
            << RelationName(rel) << " a=" << a.ToString()
            << " b=" << b.ToString();
      }
    }
  }
}

TEST(IntervalRelationTest, PrefixGroupMasksMatchTable2) {
  const uint16_t start_equal = PrefixGroupMask(PrefixGroup::kStartEqual);
  EXPECT_TRUE(start_equal & (1u << static_cast<int>(Relation::kStarts)));
  EXPECT_TRUE(start_equal & (1u << static_cast<int>(Relation::kEquals)));
  EXPECT_TRUE(start_equal & (1u << static_cast<int>(Relation::kStartedBy)));
  EXPECT_EQ(__builtin_popcount(start_equal), 3);

  const uint16_t a_first = PrefixGroupMask(PrefixGroup::kAStartsFirst);
  EXPECT_TRUE(a_first & (1u << static_cast<int>(Relation::kOverlaps)));
  EXPECT_TRUE(a_first & (1u << static_cast<int>(Relation::kFinishes)));
  EXPECT_TRUE(a_first & (1u << static_cast<int>(Relation::kContains)));

  const uint16_t b_first = PrefixGroupMask(PrefixGroup::kBStartsFirst);
  EXPECT_TRUE(b_first & (1u << static_cast<int>(Relation::kOverlappedBy)));
  EXPECT_TRUE(b_first & (1u << static_cast<int>(Relation::kFinishedBy)));
  EXPECT_TRUE(b_first & (1u << static_cast<int>(Relation::kDuring)));
}

// For two ongoing situations with a known start order, the three relations
// of the matching prefix group are exactly the completions that can occur.
TEST(IntervalRelationTest, PrefixGroupsCoverOngoingCompletions) {
  constexpr TimePoint kHorizon = 10;
  const Situation a = Sit(2, kTimeUnknown);
  const Situation b = Sit(5, kTimeUnknown);  // a.ts < b.ts
  uint16_t possible = 0;
  for (TimePoint ae = kHorizon + 1; ae <= kHorizon + 5; ++ae) {
    for (TimePoint be = kHorizon + 1; be <= kHorizon + 5; ++be) {
      for (int r = 0; r < kNumRelations; ++r) {
        if (Holds(static_cast<Relation>(r), a.ts, ae, b.ts, be)) {
          possible |= 1u << r;
        }
      }
    }
  }
  EXPECT_EQ(possible, PrefixGroupMask(PrefixGroup::kAStartsFirst));
}

}  // namespace
}  // namespace tpstream
