#ifndef TPSTREAM_TESTS_FAULT_INJECTION_H_
#define TPSTREAM_TESTS_FAULT_INJECTION_H_

// Deterministic, seedable fault-injection harness for the chaos suite
// (tests/chaos_test.cc). Every generator takes an explicit seed and is a
// pure function of it, so a failing configuration reproduces exactly from
// the SCOPED_TRACE line.
//
// Faults covered:
//  * malformed CSV rows interleaved into well-formed input (MalformedCsv)
//  * late-event bursts beyond a reorder slack (LateBurstWorkload)
//  * open-situation floods that grow matcher state (FloodWorkload)
//  * stalled consumers (StallingSink)
//  * allocation failures at a chosen point (ScopedAllocFailure; honored
//    by the counting allocator a test binary installs — see
//    tests/chaos_alloc.h)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/event.h"

namespace tpstream {
namespace testing {

// ---------------------------------------------------------------------------
// Malformed CSV generation
// ---------------------------------------------------------------------------

struct MalformedCsvInput {
  /// Full CSV text: header plus `rows` data rows.
  std::string text;
  /// 1-based data row numbers that are malformed (matches
  /// CsvEventReader::rows_read() / DeadLetterItem::row).
  std::vector<int64_t> bad_rows;
  /// Timestamps of the well-formed rows, in file order (the expected
  /// delivery under kSkipAndQuarantine).
  std::vector<TimePoint> good_timestamps;
};

/// CSV input over schema {key:int, flag:bool} with timestamp column
/// first. Each data row is independently malformed with probability
/// `bad_fraction`, drawing uniformly from four corruption shapes: a bad
/// timestamp, a bad int cell, an unterminated quote, and a missing
/// timestamp column.
inline MalformedCsvInput MalformedCsv(uint64_t seed, int rows,
                                      double bad_fraction) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution corrupt(bad_fraction);
  std::uniform_int_distribution<int> shape(0, 3);

  MalformedCsvInput out;
  out.text = "timestamp,key,flag\n";
  for (int i = 1; i <= rows; ++i) {
    const TimePoint t = i;
    const int64_t key = static_cast<int64_t>(rng() % 7);
    if (corrupt(rng)) {
      out.bad_rows.push_back(i);
      switch (shape(rng)) {
        case 0:  // non-numeric timestamp
          out.text += "t" + std::to_string(t) + "," + std::to_string(key) +
                      ",true\n";
          break;
        case 1:  // bad int in a typed column
          out.text += std::to_string(t) + ",12x,true\n";
          break;
        case 2:  // unterminated quoted field
          out.text += std::to_string(t) + ",\"" + std::to_string(key) +
                      ",true\n";
          break;
        default:  // row too short: timestamp column missing entirely
          out.text += "\n,\n";  // blank line is skipped; ",\n" has no ts
          // The blank first line is ignored by the reader, so only one
          // bad row was actually added.
          break;
      }
    } else {
      out.text += std::to_string(t) + "," + std::to_string(key) + "," +
                  (rng() % 2 == 0 ? "true" : "false") + "\n";
      out.good_timestamps.push_back(t);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Late bursts
// ---------------------------------------------------------------------------

struct LateBurstWorkload {
  /// Events in arrival order (mostly in-order, with seeded bursts of
  /// events older than `slack` allows).
  std::vector<Event> events;
  /// Timestamps guaranteed to be dropped by a ReorderBuffer with the
  /// given slack (strictly older than an already-released event).
  std::vector<TimePoint> late_timestamps;
};

/// In-order stream of `count` single-field events at t = 1..count, with
/// `bursts` injected groups of `burst_len` events whose timestamps lie
/// `slack + margin` behind the current front — unconditionally late.
inline LateBurstWorkload MakeLateBursts(uint64_t seed, int count,
                                        Duration slack, int bursts,
                                        int burst_len) {
  std::mt19937_64 rng(seed);
  LateBurstWorkload out;
  std::set<int> burst_at;
  // Burst positions far enough in that the watermark has advanced.
  while (static_cast<int>(burst_at.size()) < bursts) {
    burst_at.insert(static_cast<int>(slack) + 2 + burst_len +
                    static_cast<int>(rng() % count));
  }
  for (int t = 1; t <= count; ++t) {
    out.events.push_back(Event({Value(true)}, t));
    if (burst_at.count(t) != 0) {
      for (int b = 0; b < burst_len; ++b) {
        // Older than (t - slack), i.e. beyond the slack for sure, and
        // older than the released front.
        const TimePoint late_t = t - slack - 2 - b;
        if (late_t < 1) break;
        out.events.push_back(Event({Value(true)}, late_t));
        out.late_timestamps.push_back(late_t);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Open-situation floods
// ---------------------------------------------------------------------------

/// Adversarial workload for the {key:int, flag:bool} two-symbol query
/// (A = flag, B = !flag): every key flips its flag every tick, so each
/// tick finishes one situation per key — with a window wider than the
/// horizon, matcher buffers grow linearly unless capped.
inline std::vector<Event> FloodWorkload(int keys, TimePoint horizon,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  for (int k = 0; k < keys; ++k) value[k] = rng() % 2 == 0;
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(keys) * static_cast<size_t>(horizon));
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < keys; ++k) {
      value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

// ---------------------------------------------------------------------------
// Stalled consumers
// ---------------------------------------------------------------------------

/// Output callback wrapper that busy-sleeps when `should_stall` says so,
/// simulating a slow downstream consumer. The stall can be switched off
/// at runtime (the recovery phase of a chaos scenario). Thread-safe: the
/// wrapped sink is invoked as-is, the flag is atomic.
class StallingSink {
 public:
  StallingSink(std::function<void(const Event&)> inner,
               std::function<bool(const Event&)> should_stall,
               std::chrono::microseconds stall)
      : inner_(std::move(inner)),
        should_stall_(std::move(should_stall)),
        stall_(stall) {}

  void operator()(const Event& e) {
    if (armed_.load(std::memory_order_relaxed) && should_stall_(e)) {
      std::this_thread::sleep_for(stall_);
    }
    if (inner_) inner_(e);
  }

  void Disarm() { armed_.store(false, std::memory_order_relaxed); }

 private:
  std::function<void(const Event&)> inner_;
  std::function<bool(const Event&)> should_stall_;
  std::chrono::microseconds stall_;
  std::atomic<bool> armed_{true};
};

// ---------------------------------------------------------------------------
// Allocation failures
// ---------------------------------------------------------------------------

/// Countdown honored by the chaos binary's counting allocator (see
/// tests/chaos_alloc.h): when positive, each allocation on any thread
/// decrements it and the allocation that reaches zero throws
/// std::bad_alloc. 0 = disarmed.
inline std::atomic<int64_t> g_fail_alloc_countdown{0};

/// Arms an allocation failure for the enclosing scope: the `after`-th
/// allocation (1 = the very next one) fails with std::bad_alloc.
/// Disarms on destruction (also when the failure already fired).
class ScopedAllocFailure {
 public:
  explicit ScopedAllocFailure(int64_t after = 1) {
    g_fail_alloc_countdown.store(after, std::memory_order_relaxed);
  }
  ~ScopedAllocFailure() {
    g_fail_alloc_countdown.store(0, std::memory_order_relaxed);
  }
};

}  // namespace testing
}  // namespace tpstream

#endif  // TPSTREAM_TESTS_FAULT_INJECTION_H_
