// Exporter tests: ToText() is byte-for-byte stable (golden string) with a
// deterministic section/name ordering, and ToJson() round-trips through a
// minimal standalone JSON parser — structure, values and string escaping.
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tpstream {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// A deliberately tiny recursive-descent JSON parser, independent of the
// exporter under test. Supports exactly what the exporter emits: objects,
// arrays, numbers, and escaped strings.

struct Json {
  enum class Kind { kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNumber;
  double number = 0;
  std::string string;
  std::map<std::string, std::unique_ptr<Json>> object;
  std::vector<std::unique_ptr<Json>> array;

  const Json& At(const std::string& key) const {
    const auto it = object.find(key);
    EXPECT_TRUE(it != object.end()) << "missing key: " << key;
    static const Json empty;
    return it == object.end() ? empty : *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<Json> Parse() {
    auto value = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
    return value;
  }

  bool ok() const { return ok_; }

 private:
  void Fail(const std::string& why) {
    if (ok_) ADD_FAILURE() << why << " at offset " << pos_;
    ok_ = false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<Json> ParseValue() {
    SkipSpace();
    auto value = std::make_unique<Json>();
    if (!ok_ || pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return value;
    }
    const char c = text_[pos_];
    if (c == '{') {
      value->kind = Json::Kind::kObject;
      ++pos_;
      if (!Consume('}')) {
        do {
          auto key = ParseString();
          if (!Consume(':')) Fail("expected ':'");
          value->object.emplace(std::move(key), ParseValue());
        } while (ok_ && Consume(','));
        if (!Consume('}')) Fail("expected '}'");
      }
    } else if (c == '[') {
      value->kind = Json::Kind::kArray;
      ++pos_;
      if (!Consume(']')) {
        do {
          value->array.push_back(ParseValue());
        } while (ok_ && Consume(','));
        if (!Consume(']')) Fail("expected ']'");
      }
    } else if (c == '"') {
      value->kind = Json::Kind::kString;
      value->string = ParseString();
    } else {
      value->kind = Json::Kind::kNumber;
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
              text_[end] == 'e' || text_[end] == 'E')) {
        ++end;
      }
      if (end == pos_) {
        Fail("expected a value");
      } else {
        value->number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
      }
    }
    return value;
  }

  std::string ParseString() {
    SkipSpace();
    std::string out;
    if (!Consume('"')) {
      Fail("expected '\"'");
      return out;
    }
    while (ok_ && pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("dangling escape");
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("short \\u escape");
            break;
          }
          const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          EXPECT_LT(code, 0x80) << "exporter only escapes control chars";
          out.push_back(static_cast<char>(code));
          break;
        }
        default: Fail("unknown escape");
      }
    }
    if (!Consume('"')) Fail("unterminated string");
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

MetricsSnapshot SampleSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("b.two")->Inc(2);
  registry.GetCounter("a.one")->Inc(7);
  registry.GetGauge("z.depth")->Set(1.5);
  registry.GetGauge("m.ratio")->Set(0.25);
  LatencyHistogram* hist = registry.GetHistogram("lat");
  hist->Record(3);
  hist->Record(3);
  hist->Record(20);
  return registry.Snapshot();
}

TEST(MetricsExportTest, TextOutputMatchesGolden) {
  // Deterministic ordering: counters, then gauges, then histograms, each
  // sorted by name. Byte-for-byte golden — a change here is a contract
  // change for everything scraping the text exporter.
  const std::string expected =
      "counter a.one 7\n"
      "counter b.two 2\n"
      "gauge m.ratio 0.25\n"
      "gauge z.depth 1.5\n"
      "histogram lat count=3 sum=26 min=3 max=20 p50=3 p95=20 p99=20\n";
  EXPECT_EQ(SampleSnapshot().ToText(), expected);
}

TEST(MetricsExportTest, TextOutputIsStableAcrossRegistrationOrder) {
  // Registration order must not leak into the export (std::map ordering).
  MetricsRegistry reversed;
  reversed.GetGauge("z.depth")->Set(1.5);
  LatencyHistogram* hist = reversed.GetHistogram("lat");
  hist->Record(20);
  hist->Record(3);
  hist->Record(3);
  reversed.GetGauge("m.ratio")->Set(0.25);
  reversed.GetCounter("a.one")->Inc(7);
  reversed.GetCounter("b.two")->Inc(2);
  EXPECT_EQ(reversed.Snapshot().ToText(), SampleSnapshot().ToText());
}

TEST(MetricsExportTest, EmptySnapshotExports) {
  const MetricsSnapshot empty;
  EXPECT_EQ(empty.ToText(), "");
  EXPECT_EQ(empty.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsExportTest, JsonRoundTrips) {
  const MetricsSnapshot snapshot = SampleSnapshot();
  const std::string json = snapshot.ToJson();
  JsonParser parser(json);
  const std::unique_ptr<Json> root = parser.Parse();
  ASSERT_TRUE(parser.ok()) << json;
  ASSERT_EQ(root->kind, Json::Kind::kObject);

  const Json& counters = root->At("counters");
  ASSERT_EQ(counters.kind, Json::Kind::kObject);
  ASSERT_EQ(counters.object.size(), snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_EQ(counters.At(name).number, static_cast<double>(value)) << name;
  }

  const Json& gauges = root->At("gauges");
  ASSERT_EQ(gauges.object.size(), snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    EXPECT_EQ(gauges.At(name).number, value) << name;
  }

  const Json& histograms = root->At("histograms");
  ASSERT_EQ(histograms.object.size(), snapshot.histograms.size());
  for (const auto& [name, hist] : snapshot.histograms) {
    const Json& h = histograms.At(name);
    ASSERT_EQ(h.kind, Json::Kind::kObject);
    EXPECT_EQ(h.At("count").number, static_cast<double>(hist.count));
    EXPECT_EQ(h.At("sum").number, static_cast<double>(hist.sum));
    EXPECT_EQ(h.At("min").number, static_cast<double>(hist.min));
    EXPECT_EQ(h.At("max").number, static_cast<double>(hist.max));
    EXPECT_EQ(h.At("underflow").number,
              static_cast<double>(hist.underflow));
    EXPECT_EQ(h.At("overflow").number, static_cast<double>(hist.overflow));
    EXPECT_EQ(h.At("p50").number,
              static_cast<double>(hist.Quantile(50)));
    EXPECT_EQ(h.At("p95").number,
              static_cast<double>(hist.Quantile(95)));
    EXPECT_EQ(h.At("p99").number,
              static_cast<double>(hist.Quantile(99)));
    const Json& buckets = h.At("buckets");
    ASSERT_EQ(buckets.kind, Json::Kind::kArray);
    ASSERT_EQ(buckets.array.size(), hist.buckets.size());
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      const Json& b = *buckets.array[i];
      ASSERT_EQ(b.kind, Json::Kind::kArray);
      ASSERT_EQ(b.array.size(), 3u);
      EXPECT_EQ(b.array[0]->number,
                static_cast<double>(hist.buckets[i].lower));
      EXPECT_EQ(b.array[1]->number,
                static_cast<double>(hist.buckets[i].upper));
      EXPECT_EQ(b.array[2]->number,
                static_cast<double>(hist.buckets[i].count));
    }
  }
}

TEST(MetricsExportTest, JsonEscapesHostileNames) {
  // Metric names are engine-chosen, but the exporter must not produce
  // broken JSON even for hostile ones.
  MetricsSnapshot snapshot;
  const std::string name = "we\"ird\\name\nwith\tcontrol\x01chars";
  snapshot.counters[name] = 42;
  const std::string json = snapshot.ToJson();
  JsonParser parser(json);
  const std::unique_ptr<Json> root = parser.Parse();
  ASSERT_TRUE(parser.ok()) << json;
  EXPECT_EQ(root->At("counters").At(name).number, 42.0);
}

TEST(MetricsExportTest, JsonHandlesNonFiniteGauges) {
  // Non-finite doubles are not valid JSON; the exporter flattens them to
  // 0 rather than emitting "inf"/"nan" tokens.
  MetricsSnapshot snapshot;
  snapshot.gauges["bad.inf"] = std::numeric_limits<double>::infinity();
  snapshot.gauges["bad.nan"] = std::numeric_limits<double>::quiet_NaN();
  const std::string json = snapshot.ToJson();
  JsonParser parser(json);
  const std::unique_ptr<Json> root = parser.Parse();
  ASSERT_TRUE(parser.ok()) << json;
  EXPECT_EQ(root->At("gauges").At("bad.inf").number, 0.0);
  EXPECT_EQ(root->At("gauges").At("bad.nan").number, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace tpstream
