// Randomized concurrency stress suite for the partition-parallel
// operator (carried by the `concurrency` ctest label, so the TSan CI job
// runs exactly these binaries). Three properties are exercised:
//
//  1. Differential correctness: across randomized worker counts, batch
//     sizes, key counts, partition skews, and interleaved Flush() calls,
//     the parallel match multiset must equal the single-threaded
//     PartitionedTPStream reference exactly.
//  2. Stats safety: num_matches()/num_partitions()/num_events() must be
//     callable from a second thread while ingestion is running (TSan
//     verifies freedom from data races) and must be monotone snapshots.
//  3. Shutdown: destruction from any state — pending batches, never
//     flushed, zero events — must deliver every match and join cleanly.

#include "parallel/parallel_operator.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioned_operator.h"
#include "obs/metrics.h"
#include "query/builder.h"

namespace tpstream {
namespace {

QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(200)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

// Per-key boolean phases with tunable skew: key 0 emits every tick (the
// hot key), every other key emits with probability `emit_prob`. Small
// probabilities concentrate nearly all traffic on one partition (and so
// one worker); 1.0 is uniform. At most one event per key per tick keeps
// timestamps strictly increasing per partition.
std::vector<Event> SkewedWorkload(int keys, TimePoint horizon,
                                  double emit_prob, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<bool> value(keys, false);
  std::bernoulli_distribution flip(0.07);
  std::bernoulli_distribution emit(emit_prob);
  std::vector<Event> events;
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < keys; ++k) {
      if (k != 0 && !emit(rng)) continue;
      if (flip(rng)) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

// Match multiset signature: (timestamp, key) pairs, sorted.
using Signature = std::vector<std::pair<TimePoint, int64_t>>;

Signature SequentialReference(const QuerySpec& spec,
                              const std::vector<Event>& events) {
  Signature out;
  PartitionedTPStream op(spec, {}, [&](const Event& e) {
    out.emplace_back(e.t, e.payload[0].AsInt());
  });
  for (const Event& e : events) op.Push(e);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ConcurrencyStressTest, ParallelMatchesSequentialAcrossRandomConfigs) {
  const QuerySpec spec = KeyedSpec();
  std::mt19937_64 rng(20260806);

  const int kKeys[] = {1, 2, 3, 17, 33};
  const size_t kBatches[] = {1, 2, 7, 33, 256};
  const double kEmitProbs[] = {1.0, 0.5, 0.1};
  // 0 = never flush mid-stream; otherwise flush every N pushed events.
  const size_t kFlushEvery[] = {0, 97, 389, 1021};

  int configs = 0;
  for (int iter = 0; iter < 24; ++iter) {
    const int keys = kKeys[rng() % std::size(kKeys)];
    const size_t batch = kBatches[rng() % std::size(kBatches)];
    const double emit_prob = kEmitProbs[rng() % std::size(kEmitProbs)];
    const size_t flush_every = kFlushEvery[rng() % std::size(kFlushEvery)];
    const int workers = 1 + static_cast<int>(rng() % 6);
    const TimePoint horizon = 150 + static_cast<TimePoint>(rng() % 300);
    const uint64_t seed = rng();
    SCOPED_TRACE(testing::Message()
                 << "config " << iter << ": keys=" << keys
                 << " workers=" << workers << " batch=" << batch
                 << " emit_prob=" << emit_prob
                 << " flush_every=" << flush_every
                 << " horizon=" << horizon << " seed=" << seed);

    const std::vector<Event> events =
        SkewedWorkload(keys, horizon, emit_prob, seed);
    const Signature expected = SequentialReference(spec, events);

    Signature parallel_out;
    std::mutex mutex;
    parallel::ParallelTPStream::Options options;
    options.num_workers = workers;
    options.batch_size = batch;
    {
      parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
        std::lock_guard<std::mutex> lock(mutex);
        parallel_out.emplace_back(e.t, e.payload[0].AsInt());
      });
      size_t pushed = 0;
      for (const Event& e : events) {
        op.Push(e);
        if (flush_every != 0 && ++pushed % flush_every == 0) op.Flush();
      }
      op.Flush();
      EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()));
      EXPECT_EQ(op.num_matches(), static_cast<int64_t>(expected.size()));
      EXPECT_EQ(op.num_partitions(), static_cast<size_t>(keys));
    }
    std::sort(parallel_out.begin(), parallel_out.end());
    EXPECT_EQ(parallel_out, expected);
    ++configs;
  }
  EXPECT_GE(configs, 20);
}

TEST(ConcurrencyStressTest, StatsGettersAreSafeDuringIngestion) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = SkewedWorkload(8, 2500, 1.0, 42);
  const Signature expected = SequentialReference(spec, events);

  parallel::ParallelTPStream::Options options;
  options.num_workers = 4;
  options.batch_size = 32;
  std::atomic<int64_t> delivered{0};
  parallel::ParallelTPStream op(spec, options,
                                [&](const Event&) { ++delivered; });

  // Hammer the getters from a second thread for the whole ingestion run;
  // each must be race-free (TSan) and monotone.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    int64_t last_matches = 0;
    int64_t last_events = 0;
    size_t last_partitions = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const int64_t m = op.num_matches();
      const int64_t e = op.num_events();
      const size_t p = op.num_partitions();
      EXPECT_GE(m, last_matches);
      EXPECT_GE(e, last_events);
      EXPECT_GE(p, last_partitions);
      last_matches = m;
      last_events = e;
      last_partitions = p;
      std::this_thread::yield();
    }
  });

  size_t pushed = 0;
  for (const Event& e : events) {
    op.Push(e);
    if (++pushed % 1000 == 0) op.Flush();  // interleaved quiesce points
  }
  op.Flush();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()));
  EXPECT_EQ(op.num_matches(), static_cast<int64_t>(expected.size()));
  EXPECT_EQ(op.num_matches(), delivered.load());
  EXPECT_EQ(op.num_partitions(), 8u);
}

// Heavy skew (key 0 emits every tick, other keys rarely) funnels ~90% of
// the traffic through one worker while tiny rings force the producer
// into its backpressure path (ring_full -> spin -> park) and drive the
// ring indices around the 2^k wrap many times. Results must still match
// the sequential reference exactly, and the ring metrics must be
// coherent: `parallel.ring_full` counts stalled submits with
// `parallel.merge_stalls` as its legacy alias, and the occupancy gauges
// read zero once Flush() has drained everything.
TEST(ConcurrencyStressTest, SkewedBackpressureWithTinyRings) {
  const QuerySpec spec = KeyedSpec();
  for (const size_t ring_capacity : {size_t{1}, size_t{2}}) {
    for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      SCOPED_TRACE(testing::Message() << "ring_capacity=" << ring_capacity
                                      << " batch=" << batch);
      // emit_prob 0.012 with 10 keys: key 0 carries ~90% of all events.
      const std::vector<Event> events =
          SkewedWorkload(10, 3000, 0.012, 7000 + ring_capacity * 10 + batch);
      const Signature expected = SequentialReference(spec, events);

      Signature parallel_out;
      std::mutex mutex;
      parallel::ParallelTPStream::Options options;
      options.num_workers = 4;
      options.batch_size = batch;
      options.ring_capacity = ring_capacity;
      obs::MetricsSnapshot metrics;
      {
        parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
          std::lock_guard<std::mutex> lock(mutex);
          parallel_out.emplace_back(e.t, e.payload[0].AsInt());
        });
        for (const Event& e : events) op.Push(e);
        op.Flush();
        EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()));
        EXPECT_EQ(op.num_matches(), static_cast<int64_t>(expected.size()));
        metrics = op.Metrics();
      }
      std::sort(parallel_out.begin(), parallel_out.end());
      EXPECT_EQ(parallel_out, expected);

      // Alias contract: the retired merge_stalls name tracks ring_full.
      EXPECT_EQ(metrics.counters.at("parallel.ring_full"),
                metrics.counters.at("parallel.merge_stalls"));
      // Recycling keeps the steady state allocation-free: the free ring
      // only misses in pathological visibility races, never sustainably.
      EXPECT_LE(metrics.counters.at("parallel.free_ring_allocs"),
                metrics.counters.at("parallel.batches") / 10 + 2);
      // After Flush() the rings are empty and the gauges say so.
      for (const auto& [name, value] : metrics.gauges) {
        if (name.rfind("parallel.queue_depth.", 0) == 0) {
          EXPECT_EQ(value, 0.0) << name;
        }
      }
    }
  }
}

// Regression: destroying the operator from a thread other than the
// producer is legitimate once pushing has stopped (ownership hand-off);
// the destructor must release the producer claim before its final flush
// instead of tripping the debug single-producer assert — and still
// deliver every match.
TEST(ConcurrencyStressTest, DestructionFromSecondThreadAfterProducerStops) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = SkewedWorkload(9, 600, 0.7, 77);
  const Signature expected = SequentialReference(spec, events);
  ASSERT_FALSE(expected.empty());

  parallel::ParallelTPStream::Options options;
  options.num_workers = 3;
  options.batch_size = 1 << 20;  // everything still pending at destruction
  std::atomic<int64_t> delivered{0};
  auto op = std::make_unique<parallel::ParallelTPStream>(
      spec, options, [&](const Event&) { ++delivered; });

  // The pushing thread becomes the producer; this test's main thread is
  // a different thread by construction.
  std::thread producer([&] {
    for (const Event& e : events) op->Push(e);
  });
  producer.join();

  op.reset();  // destruction from a non-producer thread
  EXPECT_EQ(delivered.load(), static_cast<int64_t>(expected.size()));
}

TEST(ConcurrencyStressTest, DestructionFromAnyStateIsCleanAndLossless) {
  const QuerySpec spec = KeyedSpec();
  // Large batch size => everything still pending producer-side when the
  // destructor runs; it must flush and deliver every match.
  for (int workers = 1; workers <= 5; ++workers) {
    const std::vector<Event> events =
        SkewedWorkload(7, 400, 0.8, 100 + workers);
    const Signature expected = SequentialReference(spec, events);
    std::atomic<int64_t> delivered{0};
    {
      parallel::ParallelTPStream::Options options;
      options.num_workers = workers;
      options.batch_size = 1 << 20;
      parallel::ParallelTPStream op(spec, options,
                                    [&](const Event&) { ++delivered; });
      for (const Event& e : events) op.Push(e);
      // No Flush(): the destructor owns delivery.
    }
    EXPECT_EQ(delivered.load(), static_cast<int64_t>(expected.size()))
        << "workers=" << workers;
  }
  // Idle construct/destruct: workers park on their condition variables
  // and must still shut down promptly.
  for (int i = 0; i < 8; ++i) {
    parallel::ParallelTPStream::Options options;
    options.num_workers = 1 + i % 4;
    parallel::ParallelTPStream op(spec, options, nullptr);
  }
}

}  // namespace
}  // namespace tpstream
