#include "derive/deriver.h"

#include <random>

#include <gtest/gtest.h>

#include "expr/expression.h"

namespace tpstream {
namespace {

// Reference implementation of Definition 8 on a boolean trace: the longest
// maximal runs of `true`, closed by the first `false` event, filtered by
// the duration constraint. Events at times 1..trace.size().
std::vector<Situation> ReferenceDerive(const std::vector<bool>& trace,
                                       DurationConstraint tau) {
  std::vector<Situation> out;
  int start = -1;
  for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
    const TimePoint t = i + 1;
    if (trace[i]) {
      if (start < 0) start = static_cast<int>(t);
    } else if (start >= 0) {
      if (tau.Contains(t - start)) out.push_back(Situation({}, start, t));
      start = -1;
    }
  }
  return out;
}

std::vector<bool> RandomTrace(std::mt19937_64& rng, int n) {
  std::vector<bool> trace(n);
  std::bernoulli_distribution flip(0.3);
  bool value = false;
  for (int i = 0; i < n; ++i) {
    if (flip(rng)) value = !value;
    trace[i] = value;
  }
  return trace;
}

SituationDefinition BoolDef(const std::string& name,
                            DurationConstraint tau = {}) {
  return SituationDefinition(name, FieldRef(0, "flag"), {}, tau);
}

TEST(DeriverTest, MatchesAlgebraicReferenceOnRandomTraces) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<bool> trace = RandomTrace(rng, 200);
    Deriver deriver({BoolDef("S")}, /*announce_starts=*/false);

    std::vector<Situation> derived;
    for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
      const auto& update =
          deriver.Process(Event({Value(trace[i])}, i + 1));
      EXPECT_TRUE(update.started.empty());  // baseline mode
      for (const SymbolSituation& ss : update.finished) {
        derived.push_back(ss.situation);
      }
    }
    const std::vector<Situation> expected = ReferenceDerive(trace, {});
    ASSERT_EQ(derived.size(), expected.size());
    for (size_t i = 0; i < derived.size(); ++i) {
      EXPECT_EQ(derived[i].ts, expected[i].ts);
      EXPECT_EQ(derived[i].te, expected[i].te);
    }
  }
}

TEST(DeriverTest, DurationConstraintsFilter) {
  std::mt19937_64 rng(12);
  DurationConstraint tau;
  tau.min = 4;
  tau.max = 9;
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<bool> trace = RandomTrace(rng, 300);
    Deriver deriver({BoolDef("S", tau)}, /*announce_starts=*/false);
    std::vector<Situation> derived;
    for (int i = 0; i < static_cast<int>(trace.size()); ++i) {
      for (const SymbolSituation& ss :
           deriver.Process(Event({Value(trace[i])}, i + 1)).finished) {
        derived.push_back(ss.situation);
      }
    }
    const std::vector<Situation> expected = ReferenceDerive(trace, tau);
    ASSERT_EQ(derived.size(), expected.size());
    for (size_t i = 0; i < derived.size(); ++i) {
      EXPECT_EQ(derived[i].ts, expected[i].ts);
      EXPECT_EQ(derived[i].te, expected[i].te);
      EXPECT_GE(derived[i].duration(), tau.min);
      EXPECT_LE(derived[i].duration(), tau.max);
    }
  }
}

TEST(DeriverTest, AnnouncesStartImmediatelyWithoutConstraints) {
  Deriver deriver({BoolDef("S")}, /*announce_starts=*/true);
  auto& u1 = deriver.Process(Event({Value(true)}, 5));
  ASSERT_EQ(u1.started.size(), 1u);
  EXPECT_EQ(u1.started[0].situation.ts, 5);
  EXPECT_TRUE(u1.started[0].situation.ongoing());
  EXPECT_TRUE(deriver.IsOngoing(0));

  auto& u2 = deriver.Process(Event({Value(false)}, 9));
  ASSERT_EQ(u2.finished.size(), 1u);
  EXPECT_EQ(u2.finished[0].situation.ts, 5);
  EXPECT_EQ(u2.finished[0].situation.te, 9);
  EXPECT_FALSE(deriver.IsOngoing(0));
}

TEST(DeriverTest, MinimumDurationDefersAnnouncement) {
  DurationConstraint tau;
  tau.min = 3;
  Deriver deriver({BoolDef("S", tau)}, /*announce_starts=*/true);
  // Events at 1, 2, 3: guaranteed durations 1, 2, 3 (end is at least t+1).
  EXPECT_TRUE(deriver.Process(Event({Value(true)}, 1)).started.empty());
  EXPECT_TRUE(deriver.Process(Event({Value(true)}, 2)).started.empty());
  auto& u3 = deriver.Process(Event({Value(true)}, 3));
  ASSERT_EQ(u3.started.size(), 1u);
  EXPECT_EQ(u3.started[0].situation.ts, 1);  // original start, not t-bar

  // A run too short to be announced is silently dropped if it also fails
  // the constraint at its end.
  Deriver d2({BoolDef("S", tau)}, /*announce_starts=*/true);
  EXPECT_TRUE(d2.Process(Event({Value(true)}, 1)).started.empty());
  const auto& end = d2.Process(Event({Value(false)}, 2));
  EXPECT_TRUE(end.finished.empty());
  EXPECT_TRUE(end.started.empty());
}

TEST(DeriverTest, MaximumDurationSuppressesAnnouncement) {
  DurationConstraint tau;
  tau.max = 5;
  Deriver deriver({BoolDef("S", tau)}, /*announce_starts=*/true);
  for (TimePoint t = 1; t <= 4; ++t) {
    EXPECT_TRUE(deriver.Process(Event({Value(true)}, t)).started.empty());
  }
  auto& end = deriver.Process(Event({Value(false)}, 5));
  ASSERT_EQ(end.finished.size(), 1u);  // duration 4 <= 5: kept

  // Over-long situations are discarded entirely.
  Deriver d2({BoolDef("S", tau)}, /*announce_starts=*/true);
  for (TimePoint t = 1; t <= 8; ++t) {
    d2.Process(Event({Value(true)}, t));
  }
  EXPECT_TRUE(d2.Process(Event({Value(false)}, 9)).finished.empty());
}

TEST(DeriverTest, AggregatesOverSituationEvents) {
  Schema schema({Field{"flag", ValueType::kBool},
                 Field{"speed", ValueType::kDouble}});
  std::vector<AggregateSpec> aggs = {
      AggregateSpec{AggKind::kAvg, 1, "avg_speed"},
      AggregateSpec{AggKind::kMax, 1, "max_speed"},
      AggregateSpec{AggKind::kCount, -1, "n"},
  };
  SituationDefinition def("S", FieldRef(0, "flag"), aggs, {});
  Deriver deriver({def}, /*announce_starts=*/true);

  deriver.Process(Event({Value(true), Value(10.0)}, 1));
  deriver.Process(Event({Value(true), Value(20.0)}, 2));
  const Tuple snapshot = deriver.SnapshotOngoing(0);
  EXPECT_DOUBLE_EQ(snapshot[0].ToDouble(), 15.0);
  EXPECT_DOUBLE_EQ(snapshot[1].ToDouble(), 20.0);
  EXPECT_EQ(snapshot[2].AsInt(), 2);

  deriver.Process(Event({Value(true), Value(60.0)}, 3));
  const auto& end = deriver.Process(Event({Value(false), Value(0.0)}, 4));
  ASSERT_EQ(end.finished.size(), 1u);
  const Tuple& payload = end.finished[0].situation.payload;
  EXPECT_DOUBLE_EQ(payload[0].ToDouble(), 30.0);  // avg of 10, 20, 60
  EXPECT_DOUBLE_EQ(payload[1].ToDouble(), 60.0);  // max
  EXPECT_EQ(payload[2].AsInt(), 3);               // count
}

TEST(DeriverTest, MultipleIndependentDefinitions) {
  Schema schema({Field{"x", ValueType::kInt}});
  SituationDefinition high("H", Gt(FieldRef(0, "x"), Literal(int64_t{5})));
  SituationDefinition low("L", Lt(FieldRef(0, "x"), Literal(int64_t{2})));
  Deriver deriver({high, low}, /*announce_starts=*/false);

  // x: 7 7 0 0 7 -> H = [1,3), L = [3,5)
  const int64_t xs[] = {7, 7, 0, 0, 7};
  std::vector<SymbolSituation> finished;
  for (int i = 0; i < 5; ++i) {
    for (const auto& ss :
         deriver.Process(Event({Value(xs[i])}, i + 1)).finished) {
      finished.push_back(ss);
    }
  }
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_EQ(finished[0].symbol, 0);
  EXPECT_EQ(finished[0].situation.ts, 1);
  EXPECT_EQ(finished[0].situation.te, 3);
  EXPECT_EQ(finished[1].symbol, 1);
  EXPECT_EQ(finished[1].situation.ts, 3);
  EXPECT_EQ(finished[1].situation.te, 5);
}

}  // namespace
}  // namespace tpstream
