#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expr/bytecode.h"
#include "expr/expression.h"
#include "expr/simd.h"

// Differential fuzzer: random predicate trees evaluated by the tree
// interpreter (the oracle) and the bytecode VM must agree bit-for-bit —
// same result type, same integer value, same double *bit pattern* (so
// NaN payloads and signed zeros count), same null propagation — on
// random tuples that deliberately include nulls, wrong types, short
// tuples and adversarial numerics (NaN, ±inf, int64 extremes, values
// that overflow int multiplication).
//
// Reproduction: every case derives its RNG stream from (base seed, case
// index) only. A failure prints the one-line replay environment, e.g.
//     TPSTREAM_FUZZ_SEED=20260807 TPSTREAM_FUZZ_CASE=1729 ./bytecode_fuzz_test
// which re-runs exactly the failing case (and dumps the expression, the
// disassembled program and the tuple).
//
// Knobs (environment):
//   TPSTREAM_FUZZ_SEED   base seed (default 20260807)
//   TPSTREAM_FUZZ_CASES  number of random expression trees (default 12000)
//   TPSTREAM_FUZZ_CASE   run exactly this one case index

namespace tpstream {
namespace {

// --- Deterministic RNG (splitmix64: identical on every platform) --------

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  double UnitDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoll(s, nullptr, 10) : fallback;
}

// --- Random values / tuples ---------------------------------------------

Value RandomInt(Rng& rng) {
  switch (rng.Below(6)) {
    case 0:
      return Value(int64_t{0});
    case 1:
      return Value(static_cast<int64_t>(rng.Below(10)) - 5);
    case 2:
      return Value(std::numeric_limits<int64_t>::max());
    case 3:
      return Value(std::numeric_limits<int64_t>::min());
    case 4:  // big enough that products overflow
      return Value(static_cast<int64_t>(rng.Next() >> 1));
    default:
      return Value(static_cast<int64_t>(rng.Next()));
  }
}

Value RandomDouble(Rng& rng) {
  switch (rng.Below(8)) {
    case 0:
      return Value(0.0);
    case 1:
      return Value(-0.0);
    case 2:
      return Value(std::numeric_limits<double>::quiet_NaN());
    case 3:
      return Value(std::numeric_limits<double>::infinity());
    case 4:
      return Value(-std::numeric_limits<double>::infinity());
    case 5:
      return Value(std::numeric_limits<double>::max());
    case 6:
      return Value(std::numeric_limits<double>::denorm_min());
    default:
      return Value((rng.UnitDouble() - 0.5) * 200.0);
  }
}

Value RandomString(Rng& rng) {
  static const char* kStrings[] = {"", "a", "b", "stop", "GO", "0", "1.5"};
  return Value(std::string(kStrings[rng.Below(7)]));
}

Value RandomValue(Rng& rng) {
  switch (rng.Below(10)) {
    case 0:
      return Value();  // null
    case 1:
    case 2:
      return Value(rng.Chance(1, 2));
    case 3:
      return RandomString(rng);
    case 4:
    case 5:
    case 6:
      return RandomInt(rng);
    default:
      return RandomDouble(rng);
  }
}

// A tuple for a nominally `num_fields`-wide schema, but adversarial:
// sometimes short (missing trailing fields), each cell of random type.
Tuple RandomTuple(Rng& rng, int num_fields) {
  const int len = rng.Chance(1, 5)
                      ? static_cast<int>(rng.Below(num_fields + 1))
                      : num_fields;
  Tuple tuple;
  tuple.reserve(len);
  for (int i = 0; i < len; ++i) tuple.push_back(RandomValue(rng));
  return tuple;
}

// --- Random expression trees --------------------------------------------

constexpr BinaryOp kAllOps[] = {
    BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
    BinaryOp::kEq,  BinaryOp::kNe,  BinaryOp::kLt,  BinaryOp::kLe,
    BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd, BinaryOp::kOr,
};

ExprPtr RandomExpr(Rng& rng, int depth, int num_fields) {
  if (depth <= 0 || rng.Chance(1, 4)) {
    // Leaf: field reference (sometimes deliberately out of range, which
    // both evaluators must fold to null) or literal.
    if (rng.Chance(1, 2)) {
      const int index = static_cast<int>(rng.Below(num_fields + 3)) - 1;
      return FieldRef(index);
    }
    return Literal(RandomValue(rng));
  }
  switch (rng.Below(8)) {
    case 0:
      return Not(RandomExpr(rng, depth - 1, num_fields));
    case 1:
      return Negate(RandomExpr(rng, depth - 1, num_fields));
    default:
      return Binary(kAllOps[rng.Below(12)],
                    RandomExpr(rng, depth - 1, num_fields),
                    RandomExpr(rng, depth - 1, num_fields));
  }
}

// --- Bit-exact comparison -----------------------------------------------

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
      return a.AsInt() == b.AsInt();
    case ValueType::kDouble:
      return DoubleBits(a.AsDouble()) == DoubleBits(b.AsDouble());
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

std::string Describe(const Value& v) {
  std::ostringstream os;
  os << ValueTypeName(v.type()) << ":" << v.ToString();
  if (v.type() == ValueType::kDouble) {
    os << " (bits 0x" << std::hex << DoubleBits(v.AsDouble()) << ")";
  }
  return os.str();
}

std::string DescribeTuple(const Tuple& tuple) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) os << ", ";
    os << Describe(tuple[i]);
  }
  os << "]";
  return os.str();
}

// --- SIMD level sweep ----------------------------------------------------

// Levels the columnar checks run at: every tier this machine supports
// (off, sse2, ..., best) — the scalar path and each kernel width must be
// bit-identical. When TPSTREAM_SIMD is set, only that (clamped) level
// runs, which is how CI re-runs the suite per tier and how a failure is
// replayed at the exact level that produced it.
std::vector<simd::SimdLevel> SimdLevelsToTest() {
  std::vector<simd::SimdLevel> levels;
  if (const char* env = std::getenv("TPSTREAM_SIMD");
      env != nullptr && *env != '\0') {
    simd::SimdLevel parsed;
    if (simd::ParseSimdLevel(env, &parsed)) {
      levels.push_back(simd::Effective(parsed));
      return levels;
    }
  }
  for (int l = 0; l <= static_cast<int>(simd::BestSimdLevel()); ++l) {
    levels.push_back(static_cast<simd::SimdLevel>(l));
  }
  return levels;
}

// Checks one batch at every SIMD level under test: the byte and bitmap
// columnar APIs must both agree with the per-tuple oracle on every row,
// and the bitmap's tail bits past the row count must be zero. Failure
// messages name the level as a TPSTREAM_SIMD=... replay setting.
void CheckColumnar(const BytecodeProgram& program, const Expression& expr,
                   const std::vector<Event>& events,
                   const std::string& context) {
  ColumnarBatch batch;
  batch.Assign({events.data(), events.size()},
               program.referenced_fields());
  const size_t rows = events.size();
  const size_t words = (rows + 63) / 64;
  for (simd::SimdLevel level : SimdLevelsToTest()) {
    ExecScratch scratch;
    scratch.simd = level;
    std::vector<uint8_t> bytes(rows, 0xAA);
    program.RunPredicateColumn(batch, &scratch, bytes.data());
    std::vector<uint64_t> bits(words, ~uint64_t{0});
    program.RunPredicateColumnBits(batch, &scratch, bits.data());
    for (size_t row = 0; row < rows; ++row) {
      const bool want = EvalPredicate(expr, events[row].payload);
      ASSERT_EQ(want, bytes[row] != 0)
          << "columnar row " << row
          << " TPSTREAM_SIMD=" << simd::SimdLevelName(level) << "\n  "
          << context << "\n  tuple: " << DescribeTuple(events[row].payload);
      ASSERT_EQ(want, (bits[row >> 6] >> (row & 63) & 1) != 0)
          << "bitmap row " << row
          << " TPSTREAM_SIMD=" << simd::SimdLevelName(level) << "\n  "
          << context << "\n  tuple: " << DescribeTuple(events[row].payload);
    }
    if (rows % 64 != 0) {
      ASSERT_EQ(bits[words - 1] >> (rows % 64), 0u)
          << "bitmap tail bits set past row count"
          << " TPSTREAM_SIMD=" << simd::SimdLevelName(level) << "\n  "
          << context;
    }
  }
}

// --- The fuzz loop ------------------------------------------------------

constexpr uint64_t kDefaultSeed = 20260807;
constexpr int kDefaultCases = 12000;
constexpr int kMaxDepth = 6;
constexpr int kNumFields = 5;
constexpr int kTuplesPerExpr = 4;

// Runs one case; returns false (with gtest failure) on divergence.
void RunCase(uint64_t base_seed, int64_t case_index) {
  Rng rng(base_seed ^ (static_cast<uint64_t>(case_index) *
                       0x9e3779b97f4a7c15ull));
  const int depth = 1 + static_cast<int>(rng.Below(kMaxDepth));
  const ExprPtr expr = RandomExpr(rng, depth, kNumFields);

  auto compiled = CompilePredicate(*expr);
  ASSERT_TRUE(compiled.ok())
      << "compile failed: " << compiled.status().message()
      << "\n  expr: " << expr->ToString()
      << "\n  replay: TPSTREAM_FUZZ_SEED=" << base_seed
      << " TPSTREAM_FUZZ_CASE=" << case_index;
  const auto& program = *compiled.value();

  const auto fail_header = [&](const Tuple& tuple) {
    std::ostringstream os;
    os << "expr: " << expr->ToString()
       << "\n  tuple: " << DescribeTuple(tuple)
       << "\n  replay: TPSTREAM_FUZZ_SEED=" << base_seed
       << " TPSTREAM_FUZZ_CASE=" << case_index << "\n"
       << program.Disassemble();
    return os.str();
  };

  // Per-tuple: Run() must be bit-identical to Eval(), and RunPredicate()
  // to EvalPredicate().
  ExecScratch scratch;
  std::vector<Event> events;
  events.reserve(kTuplesPerExpr);
  for (int i = 0; i < kTuplesPerExpr; ++i) {
    events.emplace_back(RandomTuple(rng, kNumFields),
                        static_cast<TimePoint>(i + 1));
    const Tuple& tuple = events.back().payload;

    const Value want = expr->Eval(tuple);
    const Value got = program.Run(tuple, &scratch);
    ASSERT_TRUE(BitIdentical(want, got))
        << "interpreter=" << Describe(want) << " bytecode=" << Describe(got)
        << "\n  " << fail_header(tuple);
    ASSERT_EQ(EvalPredicate(*expr, tuple),
              program.RunPredicate(tuple, &scratch))
        << fail_header(tuple);
  }

  // Columnar: one batch pass over the same events must agree with the
  // per-tuple predicate on every row, at every SIMD level this machine
  // supports (byte and bitmap output APIs alike).
  std::ostringstream ctx;
  ctx << "expr: " << expr->ToString()
      << "\n  replay: TPSTREAM_FUZZ_SEED=" << base_seed
      << " TPSTREAM_FUZZ_CASE=" << case_index << "\n"
      << program.Disassemble();
  CheckColumnar(program, *expr, events, ctx.str());
}

TEST(BytecodeFuzzTest, DifferentialAgainstInterpreter) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("TPSTREAM_FUZZ_SEED", kDefaultSeed));
  const int64_t only_case = EnvInt("TPSTREAM_FUZZ_CASE", -1);
  if (only_case >= 0) {
    RunCase(seed, only_case);
    return;
  }
  const int64_t cases = EnvInt("TPSTREAM_FUZZ_CASES", kDefaultCases);
  for (int64_t i = 0; i < cases; ++i) {
    RunCase(seed, i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A second stream under a different seed exercises deeper trees with a
// wider-than-default schema, so CI covers register pressure beyond what
// the main loop's depth cap reaches.
TEST(BytecodeFuzzTest, DeepTreesRegisterPressure) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("TPSTREAM_FUZZ_SEED", kDefaultSeed)) ^
      0xdeadbeefull;
  for (int64_t i = 0; i < 300; ++i) {
    Rng rng(seed ^ (static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    const ExprPtr expr = RandomExpr(rng, 12, 8);
    auto compiled = CompilePredicate(*expr);
    ASSERT_TRUE(compiled.ok()) << compiled.status().message();
    ExecScratch scratch;
    for (int t = 0; t < 2; ++t) {
      const Tuple tuple = RandomTuple(rng, 8);
      const Value want = expr->Eval(tuple);
      const Value got = compiled.value()->Run(tuple, &scratch);
      ASSERT_TRUE(BitIdentical(want, got))
          << "case " << i << " interpreter=" << Describe(want)
          << " bytecode=" << Describe(got)
          << "\n  expr: " << expr->ToString()
          << "\n  tuple: " << DescribeTuple(tuple) << "\n"
          << compiled.value()->Disassemble();
    }
  }
}

// A third stream with homogeneous columns: every event shares one
// per-field type profile, so ColumnarBatch::Assign reports uniform
// ColClasses and the typed kernels (integer-domain compares, widened
// double arithmetic, NaN guards, division-by-zero nulls) run instead of
// the generic fallbacks the mixed-tuple loop above mostly exercises.
// 64-row batches also stress intra-batch value variety (NaN next to
// finite doubles in one column) that 4-row batches rarely produce.
TEST(BytecodeFuzzTest, TypedColumnKernels) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("TPSTREAM_FUZZ_SEED", kDefaultSeed)) ^
      0xc0117777ull;
  constexpr int kRows = 64;
  for (int64_t i = 0; i < 400; ++i) {
    Rng rng(seed ^ (static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull));
    int profile[kNumFields];
    for (int f = 0; f < kNumFields; ++f) {
      profile[f] = static_cast<int>(rng.Below(3));
    }
    const ExprPtr expr = RandomExpr(rng, 5, kNumFields);
    auto compiled = CompilePredicate(*expr);
    ASSERT_TRUE(compiled.ok()) << compiled.status().message();
    const auto& program = *compiled.value();

    std::vector<Event> events;
    events.reserve(kRows);
    for (int r = 0; r < kRows; ++r) {
      Tuple tuple;
      tuple.reserve(kNumFields);
      for (int f = 0; f < kNumFields; ++f) {
        switch (profile[f]) {
          case 0:
            tuple.push_back(RandomInt(rng));
            break;
          case 1:
            tuple.push_back(RandomDouble(rng));
            break;
          default:
            tuple.push_back(Value(rng.Chance(1, 2)));
            break;
        }
      }
      events.emplace_back(std::move(tuple), static_cast<TimePoint>(r + 1));
    }

    std::ostringstream ctx;
    ctx << "typed column case " << i << "\n  expr: " << expr->ToString()
        << "\n" << program.Disassemble();
    CheckColumnar(program, *expr, events, ctx.str());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Batch widths straddling the 16- and 32-byte vector widths and the
// 64-row bitmap word: full vectors plus every scalar-tail length, exact
// word boundaries, and the one-row degenerate case. Each width runs the
// full byte/bitmap columnar check at every SIMD level, over columns that
// mix uniform-typed and deliberately mixed profiles.
TEST(BytecodeFuzzTest, BatchWidthBoundaries) {
  constexpr int kWidths[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,
                             15, 16, 17, 31, 32, 33, 63, 64, 65};
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("TPSTREAM_FUZZ_SEED", kDefaultSeed)) ^
      0xb17b0c1eull;
  int case_id = 0;
  for (int rows : kWidths) {
    for (int rep = 0; rep < 12; ++rep, ++case_id) {
      Rng rng(seed ^
              (static_cast<uint64_t>(case_id) * 0x9e3779b97f4a7c15ull));
      int profile[kNumFields];
      for (int f = 0; f < kNumFields; ++f) {
        profile[f] = static_cast<int>(rng.Below(4));
      }
      const ExprPtr expr = RandomExpr(rng, 4, kNumFields);
      auto compiled = CompilePredicate(*expr);
      ASSERT_TRUE(compiled.ok()) << compiled.status().message();

      std::vector<Event> events;
      events.reserve(rows);
      for (int r = 0; r < rows; ++r) {
        Tuple tuple;
        tuple.reserve(kNumFields);
        for (int f = 0; f < kNumFields; ++f) {
          switch (profile[f]) {
            case 0:
              tuple.push_back(RandomInt(rng));
              break;
            case 1:
              tuple.push_back(RandomDouble(rng));
              break;
            case 2:
              tuple.push_back(Value(rng.Chance(1, 2)));
              break;
            default:  // mixed column: forces the AoS fallback per row
              tuple.push_back(RandomValue(rng));
              break;
          }
        }
        events.emplace_back(std::move(tuple),
                            static_cast<TimePoint>(r + 1));
      }

      std::ostringstream ctx;
      ctx << "width " << rows << " rep " << rep
          << "\n  expr: " << expr->ToString();
      CheckColumnar(*compiled.value(), *expr, events, ctx.str());
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace tpstream
