#include "multi/query_group.h"

#include <gtest/gtest.h>

#include "core/operator.h"
#include "derive/fingerprint.h"
#include "expr/expression.h"
#include "query/builder.h"
#include "query/group_builder.h"

namespace tpstream {
namespace {

Schema TwoBoolSchema() {
  return Schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
}

QuerySpec OverlapSpec() {
  QueryBuilder qb(TwoBoolSchema());
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n_a", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

// --- Expression fingerprints ---------------------------------------------

TEST(ExprFingerprintTest, StructurallyIdenticalTreesEncodeEqually) {
  const ExprPtr a = Gt(FieldRef(0, "speed"), Literal(70.0));
  const ExprPtr b = Gt(FieldRef(0, "velocity"), Literal(70.0));
  // Field names are diagnostics; position decides semantics.
  EXPECT_EQ(ExprFingerprint(*a), ExprFingerprint(*b));
}

TEST(ExprFingerprintTest, DistinguishesPositionLiteralsAndOperators) {
  const std::string base = ExprFingerprint(*Gt(FieldRef(0), Literal(70.0)));
  EXPECT_NE(base, ExprFingerprint(*Gt(FieldRef(1), Literal(70.0))));
  EXPECT_NE(base, ExprFingerprint(*Gt(FieldRef(0), Literal(71.0))));
  EXPECT_NE(base, ExprFingerprint(*Ge(FieldRef(0), Literal(70.0))));
  // Type-tagged literals: int 70 and double 70.0 evaluate differently
  // under division, so they must not alias.
  EXPECT_NE(base, ExprFingerprint(*Gt(FieldRef(0), Literal(int64_t{70}))));
}

TEST(ExprFingerprintTest, CommutedOperandsEncodeDifferently) {
  // Semantically equal but structurally different: only costs sharing.
  const ExprPtr ab = And(FieldRef(0), FieldRef(1));
  const ExprPtr ba = And(FieldRef(1), FieldRef(0));
  EXPECT_NE(ExprFingerprint(*ab), ExprFingerprint(*ba));
}

TEST(ExprFingerprintTest, StringLiteralsAreLengthPrefixed) {
  // Without length prefixes, "ab" and "a"+"b"-shaped encodings could
  // collide across tree shapes.
  const ExprPtr a = Eq(FieldRef(0), Literal(Value(std::string("x)y"))));
  const ExprPtr b = Eq(FieldRef(0), Literal(Value(std::string("x)z"))));
  EXPECT_NE(ExprFingerprint(*a), ExprFingerprint(*b));
}

// --- Definition fingerprints ---------------------------------------------

TEST(DefinitionFingerprintTest, SymbolAndAggregateNamesExcluded) {
  SituationDefinition a("A", Gt(FieldRef(0), Literal(1.0)),
                        {AggregateSpec{AggKind::kAvg, 0, "avg_x"}},
                        DurationConstraint{});
  SituationDefinition b("B", Gt(FieldRef(0), Literal(1.0)),
                        {AggregateSpec{AggKind::kAvg, 0, "other_name"}},
                        DurationConstraint{});
  EXPECT_EQ(DefinitionFingerprint(a), DefinitionFingerprint(b));
}

TEST(DefinitionFingerprintTest, DistinguishesSemantics) {
  const SituationDefinition base("A", Gt(FieldRef(0), Literal(1.0)),
                                 {AggregateSpec{AggKind::kAvg, 0, "v"}},
                                 DurationConstraint{});
  SituationDefinition other_kind = base;
  other_kind.aggregates[0].kind = AggKind::kMax;
  SituationDefinition other_field = base;
  other_field.aggregates[0].field = 1;
  SituationDefinition other_duration = base;
  other_duration.duration.min = 5;
  SituationDefinition extra_agg = base;
  extra_agg.aggregates.push_back(AggregateSpec{AggKind::kCount, -1, "n"});

  const std::string fp = DefinitionFingerprint(base);
  EXPECT_NE(fp, DefinitionFingerprint(other_kind));
  EXPECT_NE(fp, DefinitionFingerprint(other_field));
  EXPECT_NE(fp, DefinitionFingerprint(other_duration));
  EXPECT_NE(fp, DefinitionFingerprint(extra_agg));
}

// --- QueryGroup ----------------------------------------------------------

TEST(QueryGroupTest, DeduplicatesIdenticalDefinitions) {
  multi::QueryGroup group;
  for (int i = 0; i < 5; ++i) {
    auto id = group.AddQuery(OverlapSpec(), nullptr);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.value(), i);
  }
  // Five copies of a two-definition query share two distinct definitions.
  EXPECT_EQ(group.num_distinct_definitions(), 2);
  EXPECT_EQ(group.total_definitions(), 10);
}

TEST(QueryGroupTest, MatchesEqualStandaloneOperator) {
  std::vector<Event> standalone;
  TPStreamOperator op(OverlapSpec(), {},
                      [&](const Event& e) { standalone.push_back(e); });

  multi::QueryGroup group;
  std::vector<Event> grouped;
  ASSERT_TRUE(
      group.AddQuery(OverlapSpec(), [&](const Event& e) {
        grouped.push_back(e);
      }).ok());

  for (TimePoint t = 1; t <= 10; ++t) {
    const Event e({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, t);
    op.Push(e);
    group.Push(e);
  }
  ASSERT_EQ(standalone.size(), 1u);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].t, standalone[0].t);
  EXPECT_EQ(grouped[0].payload[0].AsInt(), standalone[0].payload[0].AsInt());
  EXPECT_EQ(group.num_matches(0), op.num_matches());
  EXPECT_EQ(group.num_events(), op.num_events());
}

TEST(QueryGroupTest, RejectsRegistrationAfterSealing) {
  multi::QueryGroup group;
  ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr).ok());
  group.Push(Event({Value(false), Value(false)}, 1));
  auto late = group.AddQuery(OverlapSpec(), nullptr);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryGroupTest, RejectsSchemaMismatch) {
  multi::QueryGroup group;
  ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr).ok());

  Schema other({Field{"a", ValueType::kBool}, Field{"b", ValueType::kInt}});
  QueryBuilder qb(other);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", Gt(FieldRef(1, "b"), Literal(int64_t{0})))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());
  auto bad = group.AddQuery(spec.value(), nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryGroupTest, RejectsPartitionedQueries) {
  Schema schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool},
                 Field{"key", ValueType::kInt}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());
  multi::QueryGroup group;
  auto bad = group.AddQuery(spec.value(), nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryGroupTest, SharedPlanCacheHitsForIdenticalQueries) {
  multi::QueryGroup group;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr).ok());
  }
  group.Seal();
  // Every engine installs an initial plan at construction; queries 1..7
  // reuse query 0's subset-DP result.
  EXPECT_EQ(group.plan_cache_misses(), 1);
  EXPECT_EQ(group.plan_cache_hits(), 7);
}

TEST(QueryGroupTest, GroupMetricsAndSharedDeriverNamespace) {
  obs::MetricsRegistry group_metrics;
  obs::MetricsRegistry q0_metrics;
  obs::MetricsRegistry q1_metrics;

  multi::QueryGroup::Options options;
  options.metrics = &group_metrics;
  multi::QueryGroup group(options);

  multi::QueryGroup::QueryOptions q0;
  q0.metrics = &q0_metrics;
  multi::QueryGroup::QueryOptions q1;
  q1.metrics = &q1_metrics;
  ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr, q0).ok());
  ASSERT_TRUE(group.AddQuery(OverlapSpec(), nullptr, q1).ok());

  for (TimePoint t = 1; t <= 10; ++t) {
    group.Push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, t));
  }
  group.Flush();

  const auto group_snap = group_metrics.Snapshot();
  // Shared derivation is recorded once, in the group registry.
  EXPECT_EQ(group_snap.counters.at("multi.events"), 10);
  EXPECT_GT(group_snap.counters.at("deriver.events"), 0);
  EXPECT_EQ(group_snap.gauges.at("multi.queries"), 2.0);
  EXPECT_EQ(group_snap.gauges.at("multi.distinct_definitions"), 2.0);

  // Per-query namespaces carry the matcher/operator counters and no
  // deriver counters (those would double count under sharing).
  for (const auto* reg : {&q0_metrics, &q1_metrics}) {
    const auto snap = reg->Snapshot();
    EXPECT_EQ(snap.counters.at("operator.events"), 10);
    EXPECT_EQ(snap.counters.at("operator.matches"), 1);
    EXPECT_EQ(snap.counters.count("deriver.events"), 0u);
  }
}

TEST(QueryGroupBuilderTest, ParsesAndRunsTextQueries) {
  Schema schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
  query::QueryGroupBuilder gb(schema);

  std::vector<Event> outputs;
  auto id = gb.AddQueryText(
      "FROM Stream S DEFINE A AS S.a, B AS S.b "
      "PATTERN A overlaps B WITHIN 100 RETURN count(A.a) AS n_a",
      [&](const Event& e) { outputs.push_back(e); });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto bad = gb.AddQueryText("DEFINE nonsense", nullptr);
  EXPECT_FALSE(bad.ok());

  auto group = gb.Build();
  ASSERT_NE(group, nullptr);
  for (TimePoint t = 1; t <= 10; ++t) {
    group->Push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 6);
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 4);
}

}  // namespace
}  // namespace tpstream
