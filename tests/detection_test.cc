#include "algebra/detection.h"

#include <gtest/gtest.h>

namespace tpstream {
namespace {

TemporalPattern TwoSymbolPattern(Relation r) {
  TemporalPattern p({"A", "B"});
  EXPECT_TRUE(p.AddRelation(0, r, 1).ok());
  return p;
}

std::vector<DurationConstraint> NoDurations(int n) {
  return std::vector<DurationConstraint>(n);
}

TEST(DetectionAnalysisTest, PerRelationTriggers) {
  struct Case {
    Relation relation;
    bool a_start, a_end, b_start, b_end;
  };
  const Case cases[] = {
      {Relation::kBefore, false, false, true, false},
      {Relation::kMeets, false, false, true, false},
      {Relation::kAfter, true, false, false, false},
      {Relation::kMetBy, true, false, false, false},
      {Relation::kStarts, false, true, false, false},
      {Relation::kOverlaps, false, true, false, false},
      {Relation::kDuring, false, true, false, false},
      {Relation::kStartedBy, false, false, false, true},
      {Relation::kContains, false, false, false, true},
      {Relation::kOverlappedBy, false, false, false, true},
      {Relation::kEquals, false, true, false, true},
      {Relation::kFinishes, false, true, false, true},
      {Relation::kFinishedBy, false, true, false, true},
  };
  for (const Case& c : cases) {
    const TemporalPattern p = TwoSymbolPattern(c.relation);
    const DetectionAnalysis analysis(p, NoDurations(2));
    EXPECT_EQ(analysis.match_on_start(0), c.a_start)
        << RelationName(c.relation);
    EXPECT_EQ(analysis.match_on_end(0), c.a_end) << RelationName(c.relation);
    EXPECT_EQ(analysis.match_on_start(1), c.b_start)
        << RelationName(c.relation);
    EXPECT_EQ(analysis.match_on_end(1), c.b_end) << RelationName(c.relation);
  }
}

TEST(DetectionAnalysisTest, FullPrefixGroupShiftsToStart) {
  // {overlaps, finishes, contains} = complete "A starts first" group:
  // detection shifts to B's start; no end trigger remains.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kContains, 1).ok());
  const DetectionAnalysis analysis(p, NoDurations(2));
  EXPECT_TRUE(analysis.match_on_start(1));
  EXPECT_FALSE(analysis.match_on_end(0));
  EXPECT_FALSE(analysis.match_on_end(1));
}

TEST(DetectionAnalysisTest, PartialGroupKeepsEndTriggers) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kContains, 1).ok());
  const DetectionAnalysis analysis(p, NoDurations(2));
  EXPECT_FALSE(analysis.match_on_start(1));
  EXPECT_TRUE(analysis.match_on_end(0));  // overlaps
  EXPECT_TRUE(analysis.match_on_end(1));  // contains
}

TEST(DetectionAnalysisTest, MaxDurationExcludesAndDefers) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  std::vector<DurationConstraint> durations(2);
  durations[1].max = 30;  // B has a maximum duration
  const DetectionAnalysis analysis(p, durations);
  EXPECT_TRUE(analysis.excluded_while_ongoing(1));
  EXPECT_FALSE(analysis.excluded_while_ongoing(0));
  // B's start trigger (before -> B.ts) is deferred to its end.
  EXPECT_FALSE(analysis.match_on_start(1));
  EXPECT_TRUE(analysis.match_on_end(1));
}

TEST(DetectionAnalysisTest, MinDurationAddsDeferredStartTrigger) {
  // The paper's example: A during B with a minimum duration on B requires
  // a matcher invocation at B's deferred start.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kDuring, 1).ok());
  std::vector<DurationConstraint> durations(2);
  durations[1].min = 10;
  const DetectionAnalysis analysis(p, durations);
  EXPECT_TRUE(analysis.match_on_start(1));
  EXPECT_TRUE(analysis.match_on_end(0));
}

TEST(DetectionAnalysisTest, NeedsDedupAnalysis) {
  // "A before B AND B overlaps C": one end-triggered symbol (B), which is
  // provably finished at every emission -> exactly-once holds statically.
  {
    TemporalPattern p({"A", "B", "C"});
    ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
    ASSERT_TRUE(p.AddRelation(1, Relation::kOverlaps, 2).ok());
    EXPECT_FALSE(DetectionAnalysis(p, NoDurations(3)).needs_dedup());
  }
  // Simultaneous ends: several enders can re-derive the configuration.
  {
    TemporalPattern p({"A", "B"});
    ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());
    EXPECT_TRUE(DetectionAnalysis(p, NoDurations(2)).needs_dedup());
  }
  // Two end-triggered symbols may end at the same instant.
  {
    TemporalPattern p({"X", "M", "Y", "N"});
    ASSERT_TRUE(p.AddRelation(0, Relation::kDuring, 1).ok());
    ASSERT_TRUE(p.AddRelation(2, Relation::kDuring, 3).ok());
    ASSERT_TRUE(p.AddRelation(1, Relation::kBefore, 3).ok());
    EXPECT_TRUE(DetectionAnalysis(p, NoDurations(4)).needs_dedup());
  }
  // End trigger on a symbol that can be ongoing at emission: "A contains
  // B AND A before C" — A triggers on... contains triggers on B's end,
  // where A is still ongoing; A's end never triggers, so this one is
  // safe. Adding "A overlaps C" puts an end trigger on A itself while it
  // can be ongoing at a B-end emission.
  {
    TemporalPattern p({"A", "B", "C"});
    ASSERT_TRUE(p.AddRelation(0, Relation::kContains, 1).ok());
    ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 2).ok());
    EXPECT_FALSE(DetectionAnalysis(p, NoDurations(3)).needs_dedup());

    ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 2).ok());
    EXPECT_TRUE(DetectionAnalysis(p, NoDurations(3)).needs_dedup());
  }
}

TEST(DetectionAnalysisTest, SimultaneousEndFlags) {
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());
  ASSERT_TRUE(p.AddRelation(1, Relation::kBefore, 2).ok());
  const DetectionAnalysis analysis(p, NoDurations(3));
  EXPECT_TRUE(analysis.has_simultaneous_end(0));
  EXPECT_TRUE(analysis.has_simultaneous_end(1));
  EXPECT_FALSE(analysis.has_simultaneous_end(2));
}

}  // namespace
}  // namespace tpstream
