#include "matcher/low_latency_matcher.h"

#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::BruteForceMatches;
using testing::BuildTimeline;
using testing::ConfigKey;
using testing::KeyOf;
using testing::RandomPattern;
using testing::RandomStream;
using testing::Sit;
using testing::Timeline;

struct LlResult {
  std::map<ConfigKey, TimePoint> detections;
  int duplicates = 0;
};

LlResult RunLowLatency(const TemporalPattern& pattern, Duration window,
                       const std::vector<std::vector<Situation>>& streams) {
  LlResult result;
  DetectionAnalysis analysis(
      pattern, std::vector<DurationConstraint>(pattern.num_symbols()));
  LowLatencyMatcher matcher(pattern, analysis, window, [&](const Match& m) {
    auto [it, inserted] =
        result.detections.emplace(KeyOf(m.config), m.detected_at);
    if (!inserted) ++result.duplicates;
  });
  const Timeline tl = BuildTimeline(streams);
  for (TimePoint t : tl.instants) {
    const auto s_it = tl.started.find(t);
    const auto f_it = tl.finished.find(t);
    static const std::vector<SymbolSituation> kNone;
    matcher.Update(s_it == tl.started.end() ? kNone : s_it->second,
                   f_it == tl.finished.end() ? kNone : f_it->second, t);
  }
  return result;
}

// The central correctness property (Section 5.3): the low-latency matcher
// finds exactly the configurations of Definition 13, never emits
// duplicates, and concludes every match no later than the baseline (the
// last end timestamp) and no earlier than situations can be related.
TEST(LowLatencyMatcherTest, AgreesWithBruteForceAndDetectsEarlier) {
  std::mt19937_64 rng(41);
  int early = 0;
  int total = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 3);
    const TemporalPattern pattern = RandomPattern(rng, n);
    // Generous window (see DESIGN.md on low-latency window semantics).
    const Duration window = 400;

    std::vector<std::vector<Situation>> streams(n);
    for (auto& s : streams) s = RandomStream(rng, 300);

    const auto expected = BruteForceMatches(pattern, window, streams);
    const LlResult got = RunLowLatency(pattern, window, streams);

    EXPECT_EQ(got.duplicates, 0) << pattern.ToString();
    EXPECT_EQ(got.detections.size(), expected.size())
        << "trial " << trial << " pattern " << pattern.ToString();
    for (const auto& [key, baseline_te] : expected) {
      auto it = got.detections.find(key);
      ASSERT_NE(it, got.detections.end())
          << pattern.ToString() << " missing config";
      EXPECT_LE(it->second, baseline_te) << pattern.ToString();
      // A match cannot be concluded before every situation has started.
      TimePoint max_ts = kTimeMin;
      for (TimePoint ts : key) max_ts = std::max(max_ts, ts);
      EXPECT_GE(it->second, max_ts) << pattern.ToString();
      if (it->second < baseline_te) ++early;
      ++total;
    }
  }
  // The whole point of Section 5.3: a substantial share of matches must be
  // concluded strictly earlier than the baseline.
  EXPECT_GT(early, total / 10);
}

// The detection time reported by the matcher must equal the analytic
// earliest detection time t_d(P) of Section 5.3.1 for every match.
TEST(LowLatencyMatcherTest, DetectionTimeEqualsAnalyticTd) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 3);
    const TemporalPattern pattern = RandomPattern(rng, n);
    std::vector<std::vector<Situation>> streams(n);
    for (auto& s : streams) s = RandomStream(rng, 250);

    std::map<ConfigKey, std::vector<Situation>> configs;
    std::map<ConfigKey, TimePoint> detections;
    DetectionAnalysis analysis(pattern,
                               std::vector<DurationConstraint>(n));
    LowLatencyMatcher matcher(pattern, analysis, /*window=*/1000,
                              [&](const Match& m) {
                                configs.emplace(KeyOf(m.config), m.config);
                                detections.emplace(KeyOf(m.config),
                                                   m.detected_at);
                              });
    const Timeline tl = BuildTimeline(streams);
    for (TimePoint t : tl.instants) {
      const auto s_it = tl.started.find(t);
      const auto f_it = tl.finished.find(t);
      static const std::vector<SymbolSituation> kNone;
      matcher.Update(s_it == tl.started.end() ? kNone : s_it->second,
                     f_it == tl.finished.end() ? kNone : f_it->second, t);
    }
    for (const auto& [key, config] : configs) {
      // Reconstruct the full (finished) configuration for the analysis.
      std::vector<Situation> full = config;
      for (int s = 0; s < n; ++s) {
        if (!full[s].ongoing()) continue;
        for (const Situation& cand : streams[s]) {
          if (cand.ts == full[s].ts) {
            full[s] = cand;
            break;
          }
        }
      }
      EXPECT_EQ(detections[key], EarliestDetection(pattern, full))
          << pattern.ToString();
    }
  }
}

TEST(LowLatencyMatcherTest, PerRelationDetectionTimesMatchTable2) {
  struct Case {
    Relation relation;
    Situation a, b;
    TimePoint expected_td;
  };
  const std::vector<Case> cases = {
      {Relation::kBefore, Sit(1, 4), Sit(8, 15), 8},         // B.ts
      {Relation::kMeets, Sit(1, 8), Sit(8, 15), 8},          // B.ts
      {Relation::kOverlaps, Sit(1, 10), Sit(5, 15), 10},     // A.te
      {Relation::kStarts, Sit(5, 10), Sit(5, 15), 10},       // A.te
      {Relation::kDuring, Sit(6, 10), Sit(5, 15), 10},       // A.te
      {Relation::kStartedBy, Sit(5, 15), Sit(5, 10), 10},    // B.te
      {Relation::kContains, Sit(5, 15), Sit(6, 10), 10},     // B.te
      {Relation::kOverlappedBy, Sit(5, 15), Sit(1, 10), 10}, // B.te
      {Relation::kEquals, Sit(5, 15), Sit(5, 15), 15},       // both ends
      {Relation::kFinishes, Sit(5, 15), Sit(8, 15), 15},     // both ends
      {Relation::kFinishedBy, Sit(8, 15), Sit(5, 15), 15},   // both ends
      {Relation::kAfter, Sit(8, 15), Sit(1, 4), 8},          // A.ts
      {Relation::kMetBy, Sit(8, 15), Sit(1, 8), 8},          // A.ts
  };
  for (const Case& c : cases) {
    TemporalPattern p({"A", "B"});
    ASSERT_TRUE(p.AddRelation(0, c.relation, 1).ok());
    const auto result = RunLowLatency(p, 1000, {{c.a}, {c.b}});
    ASSERT_EQ(result.detections.size(), 1u) << RelationName(c.relation);
    EXPECT_EQ(result.detections.begin()->second, c.expected_td)
        << RelationName(c.relation);
  }
}

TEST(LowLatencyMatcherTest, PrefixGroupDetectsAtLaterStart) {
  // Complete group {overlaps, finishes, contains}: certain as soon as B
  // starts while A is ongoing.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kContains, 1).ok());

  const auto result = RunLowLatency(p, 1000, {{Sit(2, 20)}, {Sit(6, 11)}});
  ASSERT_EQ(result.detections.size(), 1u);
  EXPECT_EQ(result.detections.begin()->second, 6);  // t_d(G) = B.ts
}

TEST(LowLatencyMatcherTest, FigureFourScenarios) {
  // Pattern: A before B AND A before C AND A before D AND
  //          (D during C OR C finishes D OR C meets D).
  // Note "C finishes D" and "C meets D" with the paper's orientation.
  TemporalPattern p({"A", "B", "C", "D"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 2).ok());
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 3).ok());
  ASSERT_TRUE(p.AddRelation(3, Relation::kDuring, 2).ok());
  ASSERT_TRUE(p.AddRelation(2, Relation::kFinishes, 3).ok());
  ASSERT_TRUE(p.AddRelation(2, Relation::kMeets, 3).ok());

  // Configuration 1 (trigger B.ts): C meets D decided early, B starts last.
  {
    const auto r = RunLowLatency(
        p, 1000, {{Sit(1, 3)}, {Sit(20, 25)}, {Sit(5, 10)}, {Sit(10, 18)}});
    ASSERT_EQ(r.detections.size(), 1u);
    EXPECT_EQ(r.detections.begin()->second, 20);  // B.ts
  }
  // Configuration 2 (trigger D.ts via meets): B and D still ongoing.
  {
    const auto r = RunLowLatency(
        p, 1000, {{Sit(1, 3)}, {Sit(5, 30)}, {Sit(6, 12)}, {Sit(12, 28)}});
    ASSERT_EQ(r.detections.size(), 1u);
    EXPECT_EQ(r.detections.begin()->second, 12);  // D.ts
  }
  // Configuration with D during C: decided at D.te.
  {
    const auto r = RunLowLatency(
        p, 1000, {{Sit(1, 3)}, {Sit(5, 30)}, {Sit(6, 20)}, {Sit(8, 12)}});
    ASSERT_EQ(r.detections.size(), 1u);
    EXPECT_EQ(r.detections.begin()->second, 12);  // D.te
  }
}

TEST(LowLatencyMatcherTest, SimultaneousEndsResolveOnce) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());
  // A = [2, 10), B = [5, 10): both end at 10.
  const auto r = RunLowLatency(p, 1000, {{Sit(2, 10)}, {Sit(5, 10)}});
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.duplicates, 0);
  EXPECT_EQ(r.detections.begin()->second, 10);
}

TEST(LowLatencyMatcherTest, EqualsNeverMatchedWhileOngoing) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kEquals, 1).ok());
  // Both start together but end differently: no match may ever fire while
  // their (equal-looking) temporary ends coincide.
  const auto r = RunLowLatency(p, 1000, {{Sit(3, 9)}, {Sit(3, 14)}});
  EXPECT_TRUE(r.detections.empty());

  const auto r2 = RunLowLatency(p, 1000, {{Sit(3, 9)}, {Sit(3, 9)}});
  ASSERT_EQ(r2.detections.size(), 1u);
  EXPECT_EQ(r2.detections.begin()->second, 9);
}

TEST(LowLatencyMatcherTest, DedupSurvivesFingerprintPurgeSweep) {
  // Regression guard for the amortized sweep of the exactly-once
  // fingerprint table: once it holds 1024 entries, entries older than the
  // purge horizon (now - window) are erased. Duplicate suppression for
  // configurations *inside* the window must keep working across sweeps.
  //
  // "A finishes B" ends simultaneously, so every configuration is
  // re-derived by both end triggers and only the fingerprint table keeps
  // the second emission out. 1400 matches with a 50-tick window force the
  // sweep (threshold 1024) while each configuration is still deduped at
  // its own emission instant.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kFinishes, 1).ok());

  const int kPairs = 1400;
  std::vector<std::vector<Situation>> streams(2);
  for (int i = 0; i < kPairs; ++i) {
    const TimePoint base = 1 + static_cast<TimePoint>(i) * 10;
    streams[0].push_back(Sit(base, base + 6));
    streams[1].push_back(Sit(base + 3, base + 6));  // B finishes A's end
  }

  const auto r = RunLowLatency(p, /*window=*/50, streams);
  EXPECT_EQ(r.duplicates, 0);
  ASSERT_EQ(r.detections.size(), static_cast<size_t>(kPairs));
  for (const auto& [key, detected_at] : r.detections) {
    // Each pair concludes exactly at its shared end timestamp.
    EXPECT_EQ(detected_at, key[0] + 6);
  }
}

TEST(LowLatencyMatcherTest, WindowSemanticsForOngoingConfigs) {
  // "A before B" with window 10: B starts within the window, so the match
  // is emitted at B.ts even though B's eventual end exceeds the window.
  // This is the documented low-latency window semantics.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  const auto r = RunLowLatency(p, 10, {{Sit(1, 3)}, {Sit(7, 40)}});
  ASSERT_EQ(r.detections.size(), 1u);
  EXPECT_EQ(r.detections.begin()->second, 7);
}

}  // namespace
}  // namespace tpstream
