// One-call recovery differential across every engine surface (operator,
// partitioned, parallel, pipeline, query group): run with a durable log
// and a RecoveryManager, kill at arbitrary offsets — including with a
// torn (unsynced) log tail and with the newest checkpoint corrupted —
// recover with one call, and require the final re-checkpoint bytes to be
// identical to an uninterrupted run. Also pins the ReorderBuffer replay
// interaction: late-event quarantines are exactly-once across a crash.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "log/event_log.h"
#include "log/memfs.h"
#include "log/recovery.h"
#include "multi/query_group.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
}

QuerySpec SensorSpec(bool partitioned = false) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> MakeStream(int n, uint64_t seed, int num_keys = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Event> events;
  events.reserve(n);
  double speed = 0.5, temp = 0.5;
  for (int i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    const int64_t key = static_cast<int64_t>(i % num_keys);
    events.push_back(Event({Value(speed), Value(temp), Value(key)}, i + 1));
  }
  return events;
}

std::vector<Event> Disorder(std::vector<Event> events, int k) {
  for (size_t i = 0; i + k <= events.size(); i += k) {
    std::reverse(events.begin() + i, events.begin() + i + k);
  }
  return events;
}

constexpr char kLogDir[] = "/wal";
constexpr char kCkptDir[] = "/wal/ckpt";
constexpr int kStreamLen = 400;
const std::vector<size_t> kKillOffsets = {1, 133, 257, 399};

std::unique_ptr<log::EventLog> MustOpenLog(
    log::FileSystem* fs, const log::EventLogOptions& options = {}) {
  std::unique_ptr<log::EventLog> log;
  Status s = log::EventLog::Open(fs, kLogDir, options, &log);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return log;
}

std::unique_ptr<log::RecoveryManager> MustOpenManager(
    log::FileSystem* fs, log::EventLog* log,
    const log::RecoveryManager::Options& options = {}) {
  std::unique_ptr<log::RecoveryManager> mgr;
  Status s = log::RecoveryManager::Open(fs, kCkptDir, log, options, &mgr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return mgr;
}

template <typename Engine>
void Feed(log::EventLog& log, Engine& engine, const Event& event) {
  auto r = log.Append(std::span<const Event>(&event, 1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  engine.Push(event);
}

enum class CrashMode {
  kClean,          // log synced per record: nothing lost
  kTornTail,       // unsynced log tail wiped by the crash
  kCorruptNewest,  // newest checkpoint file bit-flipped post-crash
};

/// The generic per-surface differential. `make` returns a fresh engine
/// (same construction every incarnation); `finish` quiesces an engine
/// before its state is compared (pipeline Finish / parallel Flush).
template <typename Engine, typename MakeFn, typename FinishFn>
void RunRecoveryDifferential(MakeFn make, FinishFn finish,
                             const std::vector<Event>& events,
                             CrashMode mode,
                             log::RecoveryManager::Options mgr_options = {}) {
  std::string ref_final;
  {
    auto ref = make();
    for (const Event& e : events) ref->Push(e);
    finish(*ref);
    ckpt::Writer w;
    ref->Checkpoint(w);
    ref_final = w.Take();
  }

  log::EventLogOptions log_options;
  if (mode == CrashMode::kTornTail) {
    log_options.sync.mode = log::SyncMode::kEveryBytes;
    log_options.sync.sync_bytes = 1 << 20;  // crash loses the tail
  }

  for (const size_t kill : kKillOffsets) {
    log::MemFileSystem fs;
    {
      auto log = MustOpenLog(&fs, log_options);
      auto mgr = MustOpenManager(&fs, log.get(), mgr_options);
      auto first = make();
      for (size_t i = 0; i < kill; ++i) {
        Feed(*log, *first, events[i]);
        // Two checkpoints before the kill (when it is far enough in):
        // recovery exercises restore + replay, and kCorruptNewest has a
        // previous generation to fall back to.
        if (kill >= 4 && (i + 1 == kill / 2 || i + 1 == kill / 4)) {
          auto info = mgr->Checkpoint(*first);
          ASSERT_TRUE(info.ok()) << info.status().ToString();
        }
      }
    }
    if (mode == CrashMode::kTornTail) fs.SimulateCrash();
    if (mode == CrashMode::kCorruptNewest) {
      std::vector<std::string> names;
      ASSERT_TRUE(fs.ListDir(kCkptDir, &names).ok());
      std::sort(names.begin(), names.end());
      if (!names.empty()) {
        const std::string path = std::string(kCkptDir) + "/" + names.back();
        fs.CorruptByte(path, fs.FileSize(path) / 2, 0x10);
      }
    }

    auto log = MustOpenLog(&fs, log_options);
    auto mgr = MustOpenManager(&fs, log.get(), mgr_options);
    auto second = make();
    auto report = mgr->Recover(*second);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (mode == CrashMode::kClean) {
      // Per-record fsync: the log holds every fed event.
      ASSERT_EQ(log->end_offset(), kill);
    }
    // The source re-sends from the log's end (at-least-once upstream).
    for (size_t i = log->end_offset(); i < events.size(); ++i) {
      Feed(*log, *second, events[i]);
    }
    finish(*second);
    ckpt::Writer final_ckpt;
    second->Checkpoint(final_ckpt);
    ASSERT_EQ(final_ckpt.buffer(), ref_final)
        << "kill@" << kill << " mode=" << static_cast<int>(mode);
  }
}

// --- operator surface ------------------------------------------------------

class RecoveryDifferential : public ::testing::TestWithParam<CrashMode> {};

INSTANTIATE_TEST_SUITE_P(AllCrashModes, RecoveryDifferential,
                         ::testing::Values(CrashMode::kClean,
                                           CrashMode::kTornTail,
                                           CrashMode::kCorruptNewest),
                         [](const auto& info) {
                           switch (info.param) {
                             case CrashMode::kClean: return "Clean";
                             case CrashMode::kTornTail: return "TornTail";
                             default: return "CorruptNewest";
                           }
                         });

TEST_P(RecoveryDifferential, Operator) {
  const QuerySpec spec = SensorSpec();
  RunRecoveryDifferential<TPStreamOperator>(
      [&] { return std::make_unique<TPStreamOperator>(spec, TPStreamOperator::Options{}, nullptr); },
      [](TPStreamOperator&) {}, MakeStream(kStreamLen, 51), GetParam());
}

TEST_P(RecoveryDifferential, Partitioned) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  log::RecoveryManager::Options mopts;
  mopts.full_snapshot_interval = 2;  // every other checkpoint is a delta
  RunRecoveryDifferential<PartitionedTPStream>(
      [&] {
        return std::make_unique<PartitionedTPStream>(
            spec, TPStreamOperator::Options{}, nullptr);
      },
      [](PartitionedTPStream&) {}, MakeStream(kStreamLen, 52, /*keys=*/7),
      GetParam(), mopts);
}

TEST_P(RecoveryDifferential, Parallel) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  parallel::ParallelTPStream::Options popts;
  popts.num_workers = 2;
  popts.batch_size = 16;
  RunRecoveryDifferential<parallel::ParallelTPStream>(
      [&] {
        return std::make_unique<parallel::ParallelTPStream>(spec, popts,
                                                            nullptr);
      },
      [](parallel::ParallelTPStream& p) { p.Flush(); },
      MakeStream(kStreamLen, 53, /*keys=*/5), GetParam());
}

TEST_P(RecoveryDifferential, Pipeline) {
  const Schema schema = SensorSchema();
  const QuerySpec spec = SensorSpec();
  const auto make = [&] {
    auto p = std::make_unique<pipeline::Pipeline>(schema);
    p->Reorder(8).Detect(spec).Sink([](const Event&) {});
    EXPECT_TRUE(p->Finalize().ok());
    return p;
  };
  RunRecoveryDifferential<pipeline::Pipeline>(
      make, [](pipeline::Pipeline&) {},
      Disorder(MakeStream(kStreamLen, 54), /*k=*/4), GetParam());
}

TEST_P(RecoveryDifferential, QueryGroup) {
  const auto make = [] {
    auto group = std::make_unique<multi::QueryGroup>();
    EXPECT_TRUE(group->AddQuery(SensorSpec(), [](const Event&) {}).ok());
    QueryBuilder qb(SensorSchema());
    qb.Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
        .Within(40)
        .Return("n_b", "B", AggKind::kCount);
    auto spec = qb.Build();
    EXPECT_TRUE(spec.ok());
    EXPECT_TRUE(group->AddQuery(spec.value(), [](const Event&) {}).ok());
    return group;
  };
  log::RecoveryManager::Options mopts;
  mopts.full_snapshot_interval = 2;
  RunRecoveryDifferential<multi::QueryGroup>(
      make, [](multi::QueryGroup&) {}, MakeStream(kStreamLen, 55), GetParam(),
      mopts);
}

// --- reorder-buffer replay interaction (regression) ------------------------

TEST(RecoveryReplay, LateEventQuarantineIsExactlyOnceAcrossCrash) {
  const Schema schema = SensorSchema();
  const QuerySpec spec = SensorSpec();
  // Disorder groups of 6 against slack 2: some events are genuinely too
  // late and get dropped + quarantined.
  const std::vector<Event> events =
      Disorder(MakeStream(kStreamLen, 56), /*k=*/6);
  const Duration slack = 2;

  const auto make = [&](robust::DeadLetterSink* dead) {
    auto p = std::make_unique<pipeline::Pipeline>(schema);
    ooo::ReorderBuffer::Options ropts;
    ropts.slack = slack;
    ropts.dead_letter = dead;
    p->Reorder(ropts).Detect(spec).Sink([](const Event&) {});
    EXPECT_TRUE(p->Finalize().ok());
    return p;
  };

  // Uninterrupted reference: every late drop quarantines exactly once.
  robust::CollectingDeadLetterSink ref_dead;
  std::string ref_final;
  {
    auto ref = make(&ref_dead);
    for (const Event& e : events) ref->Push(e);
    ckpt::Writer w;
    ref->Checkpoint(w);
    ref_final = w.Take();
  }
  ASSERT_GT(ref_dead.accepted(), 0) << "stream produced no late drops; the "
                                       "regression scenario is vacuous";

  // Crashed run: the dead-letter sink survives the crash (it models a
  // durable quarantine channel), the pipeline does not.
  robust::CollectingDeadLetterSink dead;
  log::MemFileSystem fs;
  constexpr size_t kKill = 257;
  {
    auto log = MustOpenLog(&fs);
    auto mgr = MustOpenManager(&fs, log.get());
    auto first = make(&dead);
    for (size_t i = 0; i < kKill; ++i) {
      Feed(*log, *first, events[i]);
      if (i + 1 == 150) ASSERT_TRUE(mgr->Checkpoint(*first).ok());
    }
  }
  // Sanity: late drops happened in the to-be-replayed window (150, 257],
  // otherwise replay suppression is not actually exercised.
  const int64_t before_recovery = dead.accepted();
  ASSERT_GT(before_recovery, 0);

  auto log = MustOpenLog(&fs);
  auto mgr = MustOpenManager(&fs, log.get());
  auto second = make(&dead);
  auto report = mgr->Recover(*second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().offset, 150u);
  EXPECT_EQ(report.value().replayed_events, kKill - 150);
  // Replay re-dropped the same late events but must NOT have delivered
  // them to the sink again.
  EXPECT_EQ(dead.accepted(), before_recovery)
      << "recovery replay double-delivered late-event quarantines";

  for (size_t i = kKill; i < events.size(); ++i) Feed(*log, *second, events[i]);

  // Exactly-once overall: same quarantine count as the uninterrupted
  // run, and the same items (compare by detail + payload timestamp).
  EXPECT_EQ(dead.accepted(), ref_dead.accepted());
  const auto got = dead.Items();
  const auto want = ref_dead.Items();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].detail, want[i].detail) << "item " << i;
    ASSERT_EQ(got[i].events.size(), want[i].events.size());
    for (size_t j = 0; j < got[i].events.size(); ++j) {
      EXPECT_EQ(got[i].events[j].t, want[i].events[j].t);
    }
  }

  // And the engine state converged: counters (num_dropped included, via
  // the serialized reorder stage) are byte-identical to the reference.
  ckpt::Writer final_ckpt;
  second->Checkpoint(final_ckpt);
  EXPECT_EQ(final_ckpt.buffer(), ref_final);
}

}  // namespace
}  // namespace tpstream
