#include "core/operator.h"

#include <random>

#include <gtest/gtest.h>

#include "core/partitioned_operator.h"
#include "query/builder.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

Schema TwoBoolSchema() {
  return Schema({Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});
}

QuerySpec OverlapSpec() {
  QueryBuilder qb(TwoBoolSchema());
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", FieldRef(1, "b"))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(100)
      .Return("n_a", "A", AggKind::kCount);
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

TEST(TPStreamOperatorTest, EndToEndLowLatencyDetection) {
  std::vector<Event> outputs;
  TPStreamOperator::Options options;
  options.low_latency = true;
  TPStreamOperator op(OverlapSpec(), options,
                      [&](const Event& e) { outputs.push_back(e); });

  // a: [2,6), b: [4,9). "A overlaps B" concludes at A.te = 6, not at 9.
  for (TimePoint t = 1; t <= 10; ++t) {
    op.Push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 6);
  // count(A) over events 2..5 = 4.
  EXPECT_EQ(outputs[0].payload[0].AsInt(), 4);
  EXPECT_EQ(op.num_matches(), 1);
}

TEST(TPStreamOperatorTest, BaselineModeDetectsAtLastEnd) {
  std::vector<Event> outputs;
  TPStreamOperator::Options options;
  options.low_latency = false;
  TPStreamOperator op(OverlapSpec(), options,
                      [&](const Event& e) { outputs.push_back(e); });
  for (TimePoint t = 1; t <= 10; ++t) {
    op.Push(Event({Value(t >= 2 && t < 6), Value(t >= 4 && t < 9)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 9);
}

TEST(TPStreamOperatorTest, OngoingAggregateSnapshotAtDetection) {
  Schema schema(
      {Field{"a", ValueType::kBool}, Field{"v", ValueType::kDouble}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "a"))
      .Define("B", Gt(FieldRef(1, "v"), Literal(10.0)))
      .Relate("A", Relation::kBefore, "B")
      .Within(100)
      .Return("avg_v", "B", AggKind::kAvg, "v");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });
  // A on [1,3); B starts at 5 with v = 20 (detection instant!), later 40.
  op.Push(Event({Value(true), Value(0.0)}, 1));
  op.Push(Event({Value(true), Value(0.0)}, 2));
  op.Push(Event({Value(false), Value(0.0)}, 3));
  op.Push(Event({Value(false), Value(20.0)}, 5));  // B starts: match here
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].t, 5);
  // The aggregate snapshot of the *ongoing* B covers only the first event.
  EXPECT_DOUBLE_EQ(outputs[0].payload[0].ToDouble(), 20.0);
}

TEST(TPStreamOperatorTest, AdaptiveAndFixedOrderAgree) {
  std::mt19937_64 rng(71);
  // Random three-symbol query over three boolean attributes.
  Schema schema({Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool},
                 Field{"c", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0))
      .Define("B", FieldRef(1))
      .Define("C", FieldRef(2))
      .Relate("A", {Relation::kBefore, Relation::kOverlaps}, "B")
      .Relate("B", {Relation::kBefore, Relation::kDuring}, "C")
      .Within(80)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  auto run = [&](TPStreamOperator::Options options) {
    std::mt19937_64 local(123);
    int64_t matches = 0;
    TPStreamOperator op(spec.value(), options, [&](const Event&) {});
    std::bernoulli_distribution flip(0.08);
    bool va = false, vb = false, vc = false;
    for (TimePoint t = 1; t <= 4000; ++t) {
      if (flip(local)) va = !va;
      if (flip(local)) vb = !vb;
      if (flip(local)) vc = !vc;
      op.Push(Event({Value(va), Value(vb), Value(vc)}, t));
    }
    matches = op.num_matches();
    return matches;
  };

  TPStreamOperator::Options adaptive;
  adaptive.adaptive = true;
  adaptive.reopt_interval = 8;
  TPStreamOperator::Options fixed;
  fixed.fixed_order = std::vector<int>{2, 1, 0};
  TPStreamOperator::Options fixed2;
  fixed2.fixed_order = std::vector<int>{0, 1, 2};

  const int64_t m1 = run(adaptive);
  const int64_t m2 = run(fixed);
  const int64_t m3 = run(fixed2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m2, m3);
  EXPECT_GT(m1, 0);
}

TEST(PartitionedOperatorTest, IndependentPerKeyEvaluation) {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", Relation::kMeets, "B")
      .Within(50)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  std::vector<Event> outputs;
  PartitionedTPStream op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });

  // Key 1: flag true on [1,4). Key 2: flag true on [2,6).
  // Each key gets its own A meets B match; cross-key interleaving must
  // not create spurious matches.
  for (TimePoint t = 1; t <= 8; ++t) {
    op.Push(Event({Value(int64_t{1}), Value(t < 4)}, t));
    op.Push(Event({Value(int64_t{2}), Value(t >= 2 && t < 6)}, t));
  }
  EXPECT_EQ(op.num_partitions(), 2u);
  EXPECT_EQ(op.num_matches(), 2);
}

TEST(TPStreamOperatorTest, ParsedQueryRunsEndToEnd) {
  Schema schema(
      {Field{"temp", ValueType::kDouble}, Field{"hr", ValueType::kDouble}});
  auto spec = query::ParseQuery(
      "FROM Vitals DEFINE F AS temp > 38.0 AT LEAST 2s, "
      "T AS hr > 100 "
      "PATTERN F overlaps T; F contains T; F finishes T "
      "WITHIN 60s "
      "RETURN max(T.hr) AS peak_hr, count(F) AS fever_events",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  std::vector<Event> outputs;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    outputs.push_back(e);
  });
  // Fever [2,9); tachycardia [5,8) (during fever -> F contains T).
  for (TimePoint t = 1; t <= 10; ++t) {
    const double temp = (t >= 2 && t < 9) ? 38.5 : 36.5;
    const double hr = (t >= 5 && t < 8) ? 120.0 + t : 80.0;
    op.Push(Event({Value(temp), Value(hr)}, t));
  }
  ASSERT_EQ(outputs.size(), 1u);
  // Full prefix group {overlaps, finishes, contains}: detected when T
  // starts while F is ongoing.
  EXPECT_EQ(outputs[0].t, 5);
  EXPECT_DOUBLE_EQ(outputs[0].payload[0].ToDouble(), 125.0);  // snapshot
}

}  // namespace
}  // namespace tpstream
