#include "algebra/pattern.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::Sit;

TEST(RelationSetTest, BasicOperations) {
  RelationSet set;
  EXPECT_TRUE(set.empty());
  set.Add(Relation::kBefore);
  set.Add(Relation::kMeets);
  set.Add(Relation::kBefore);  // idempotent
  EXPECT_EQ(set.size(), 2);
  EXPECT_TRUE(set.Contains(Relation::kBefore));
  EXPECT_FALSE(set.Contains(Relation::kAfter));

  const RelationSet inv = set.Inverted();
  EXPECT_TRUE(inv.Contains(Relation::kAfter));
  EXPECT_TRUE(inv.Contains(Relation::kMetBy));
  EXPECT_EQ(inv.size(), 2);
}

TEST(TemporalPatternTest, AddRelationNormalizesOrientation) {
  TemporalPattern p({"A", "B"});
  // "B after A" must merge into the constraint (A, B) as "A before B"...
  // here: AddRelation(1, kAfter, 0) == B after A == A before B.
  ASSERT_TRUE(p.AddRelation(1, Relation::kAfter, 0).ok());
  ASSERT_EQ(p.constraints().size(), 1u);
  const TemporalConstraint& c = p.constraints()[0];
  EXPECT_EQ(c.a, 0);
  EXPECT_EQ(c.b, 1);
  EXPECT_TRUE(c.relations.Contains(Relation::kBefore));

  // Same pair again merges instead of adding a second constraint.
  ASSERT_TRUE(p.AddRelation(0, Relation::kMeets, 1).ok());
  EXPECT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0].relations.size(), 2);
}

TEST(TemporalPatternTest, RejectsInvalidSymbols) {
  TemporalPattern p({"A", "B"});
  EXPECT_FALSE(p.AddRelation(0, Relation::kBefore, 0).ok());
  EXPECT_FALSE(p.AddRelation(0, Relation::kBefore, 2).ok());
  EXPECT_FALSE(p.AddRelation(-1, Relation::kBefore, 1).ok());
}

TEST(TemporalPatternTest, Connectivity) {
  TemporalPattern p({"A", "B", "C"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  EXPECT_FALSE(p.IsConnected());  // C unreachable
  ASSERT_TRUE(p.AddRelation(1, Relation::kOverlaps, 2).ok());
  EXPECT_TRUE(p.IsConnected());
  EXPECT_EQ(p.RelatedSymbols(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(p.RelatedSymbols(0), (std::vector<int>{1}));
}

TEST(TemporalPatternTest, MatchesListingOneShapes) {
  // The two example matches of Figure 1: acceleration (A), speeding (B),
  // deceleration (C).
  TemporalPattern p({"A", "B", "C"});
  for (Relation r : {Relation::kMeets, Relation::kOverlaps, Relation::kStarts,
                     Relation::kDuring}) {
    ASSERT_TRUE(p.AddRelation(0, r, 1).ok());
  }
  ASSERT_TRUE(p.AddRelation(2, Relation::kDuring, 1).ok());
  for (Relation r :
       {Relation::kFinishes, Relation::kOverlaps, Relation::kMeets}) {
    ASSERT_TRUE(p.AddRelation(1, r, 2).ok());
  }
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 2).ok());

  // Match 1: all three overlap (A overlaps B, C during B, A before C).
  EXPECT_TRUE(p.Matches({Sit(0, 10), Sit(5, 30), Sit(20, 28)}));
  // Match 2: deceleration during speeding, B overlaps C variant.
  EXPECT_TRUE(p.Matches({Sit(0, 10), Sit(5, 25), Sit(20, 30)}));
  // Violation: deceleration before speeding ends but accel after decel.
  EXPECT_FALSE(p.Matches({Sit(21, 29), Sit(5, 30), Sit(20, 28)}));
}

TEST(TemporalConstraintTest, PrefixGroupCertaintyForOngoingPairs) {
  TemporalConstraint c;
  c.a = 0;
  c.b = 1;
  c.relations.Add(Relation::kOverlaps);
  c.relations.Add(Relation::kFinishes);

  const Situation a = Sit(2, kTimeUnknown);
  const Situation b = Sit(5, kTimeUnknown);
  // Incomplete group: overlaps/finishes without contains stays unknown.
  EXPECT_EQ(c.Check(a, b), Certainty::kUnknown);

  c.relations.Add(Relation::kContains);
  EXPECT_EQ(c.Check(a, b), Certainty::kCertain);
  // Wrong start order: group prefix not satisfied.
  EXPECT_EQ(c.Check(b, a), Certainty::kImpossible);
}

TEST(TemporalConstraintTest, DisjunctionSemantics) {
  TemporalConstraint c;
  c.a = 0;
  c.b = 1;
  c.relations.Add(Relation::kBefore);
  c.relations.Add(Relation::kMeets);

  EXPECT_EQ(c.Check(Sit(0, 2), Sit(5, 8)), Certainty::kCertain);  // before
  EXPECT_EQ(c.Check(Sit(0, 5), Sit(5, 8)), Certainty::kCertain);  // meets
  EXPECT_EQ(c.Check(Sit(0, 6), Sit(5, 8)), Certainty::kImpossible);
}

TEST(TemporalPatternTest, CheckPropagatesUnknown) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kOverlaps, 1).ok());
  EXPECT_EQ(p.Check({Sit(0, kTimeUnknown), Sit(3, kTimeUnknown)}),
            Certainty::kUnknown);
  EXPECT_EQ(p.Check({Sit(0, 5), Sit(3, kTimeUnknown)}), Certainty::kCertain);
  EXPECT_EQ(p.Check({Sit(3, kTimeUnknown), Sit(0, 5)}),
            Certainty::kImpossible);
}

}  // namespace
}  // namespace tpstream
