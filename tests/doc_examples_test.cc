// Guards the documentation against drift: the complete queries shown in
// docs/query_language.md and README.md must parse and run.
#include <gtest/gtest.h>

#include "core/partitioned_operator.h"
#include "query/parser.h"
#include "workload/linear_road.h"

namespace tpstream {
namespace {

TEST(DocExamplesTest, QueryLanguageReferenceExample) {
  LinearRoadGenerator gen({});
  constexpr char kQuery[] = R"(
    FROM CarSensors CS PARTITION BY CS.car_id
    DEFINE A AS CS.accel > 8m/s^2 AT LEAST 5s,
           B AS CS.speed > 70mph BETWEEN 4s AND 30s,
           C AS CS.accel < -9m/s^2 AT LEAST 3s
    PATTERN A meets B; A overlaps B; A starts B; A during B
        AND C during B; B finishes C; B overlaps C; B meets C
        AND A before C
    WITHIN 5 MINUTES
    RETURN first(B.car_id) AS id,
           avg(B.speed) AS avg_speed,
           start(A) AS accel_started,
           duration(C) AS braking_s
  )";
  auto spec = query::ParseQuery(kQuery, gen.schema());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().window, 300);
  EXPECT_EQ(spec.value().returns.size(), 4u);

  // It must also deploy and process events without issue.
  PartitionedTPStream op(spec.value(), {}, nullptr);
  LinearRoadGenerator source({});
  for (int i = 0; i < 20000; ++i) op.Push(source.Next());
  EXPECT_EQ(op.num_events(), 20000);
}

TEST(DocExamplesTest, CommentsAndCaseInsensitivity) {
  const Schema schema({Field{"x", ValueType::kInt}});
  auto spec = query::ParseQuery(
      "from S  -- the input stream\n"
      "define A as x > 1,  -- first situation\n"
      "       B as x < 0\n"
      "pattern A Before B; A MEETS B\n"
      "within 2 MINUTES\n"
      "return COUNT(A) as n",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().window, 120);
  const int ab = spec.value().pattern.ConstraintIndex(0, 1);
  ASSERT_GE(ab, 0);
  EXPECT_EQ(spec.value().pattern.constraints()[ab].relations.size(), 2);
}

}  // namespace
}  // namespace tpstream
