// Parameterized property sweeps: broad invariants checked across every
// temporal relation, pattern shape, window size, duration constraint and
// operator mode.
#include <random>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/matcher.h"
#include "query/builder.h"
#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::BatchByEnd;
using testing::BruteForceMatches;
using testing::BuildTimeline;
using testing::ConfigKey;
using testing::KeyOf;
using testing::RandomStream;
using testing::Sit;
using testing::Timeline;

// ---------------------------------------------------------------------
// Sweep 1: every temporal relation, both matchers, random streams.
// ---------------------------------------------------------------------

class RelationSweep : public ::testing::TestWithParam<int> {};

TEST_P(RelationSweep, BothMatchersAgreeWithBruteForce) {
  const Relation relation = static_cast<Relation>(GetParam());
  TemporalPattern pattern({"A", "B"});
  ASSERT_TRUE(pattern.AddRelation(0, relation, 1).ok());

  std::mt19937_64 rng(100 + static_cast<int>(relation));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<Situation>> streams(2);
    // Mixed granularities make endpoint-equality relations achievable.
    streams[0] = RandomStream(rng, 400, 2, 12, 1, 6);
    streams[1] = RandomStream(rng, 400, 2, 12, 1, 6);
    const Duration window = 1000;
    const auto expected = BruteForceMatches(pattern, window, streams);

    // Baseline matcher.
    std::map<ConfigKey, TimePoint> baseline;
    Matcher matcher(pattern, window, [&](const Match& m) {
      baseline.emplace(KeyOf(m.config), m.detected_at);
    });
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    EXPECT_EQ(baseline.size(), expected.size()) << RelationName(relation);

    // Low-latency matcher: same matches, detection at analytic t_d.
    std::map<ConfigKey, TimePoint> low_latency;
    DetectionAnalysis analysis(pattern,
                               std::vector<DurationConstraint>(2));
    LowLatencyMatcher ll(pattern, analysis, window, [&](const Match& m) {
      low_latency.emplace(KeyOf(m.config), m.detected_at);
    });
    const Timeline tl = BuildTimeline(streams);
    for (TimePoint t : tl.instants) {
      static const std::vector<SymbolSituation> kNone;
      const auto s_it = tl.started.find(t);
      const auto f_it = tl.finished.find(t);
      ll.Update(s_it == tl.started.end() ? kNone : s_it->second,
                f_it == tl.finished.end() ? kNone : f_it->second, t);
    }
    EXPECT_EQ(low_latency.size(), expected.size()) << RelationName(relation);
    for (const auto& [key, te] : expected) {
      ASSERT_TRUE(low_latency.count(key)) << RelationName(relation);
      EXPECT_LE(low_latency[key], te) << RelationName(relation);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRelations, RelationSweep, ::testing::Range(0, kNumRelations),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name = RelationName(static_cast<Relation>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: alternatives are disjunctive — growing a constraint's relation
// set can only grow the match set (Definition 10).
// ---------------------------------------------------------------------

class AlternativeGrowthSweep : public ::testing::TestWithParam<int> {};

TEST_P(AlternativeGrowthSweep, MoreAlternativesNeverLoseMatches) {
  const int seed = GetParam();
  std::mt19937_64 rng(seed);
  std::vector<std::vector<Situation>> streams(2);
  streams[0] = RandomStream(rng, 400);
  streams[1] = RandomStream(rng, 400);

  // Incrementally add relations in random order; match sets must be
  // monotonically non-decreasing.
  std::vector<Relation> order;
  for (int r = 0; r < kNumRelations; ++r) {
    order.push_back(static_cast<Relation>(r));
  }
  std::shuffle(order.begin(), order.end(), rng);

  size_t previous = 0;
  TemporalPattern pattern({"A", "B"});
  for (Relation r : order) {
    ASSERT_TRUE(pattern.AddRelation(0, r, 1).ok());
    const auto matches = BruteForceMatches(pattern, 1000, streams);

    std::map<ConfigKey, TimePoint> got;
    Matcher matcher(pattern, 1000, [&](const Match& m) {
      got.emplace(KeyOf(m.config), m.detected_at);
    });
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    EXPECT_EQ(got.size(), matches.size());
    EXPECT_GE(matches.size(), previous);
    previous = matches.size();
  }
  // With all 13 relations the constraint is a tautology: every pair
  // within the window matches.
  const auto all = BruteForceMatches(pattern, 1000, streams);
  EXPECT_EQ(all.size(), streams[0].size() * streams[1].size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlternativeGrowthSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Sweep 3: window sizes — purge + window check against brute force.
// ---------------------------------------------------------------------

class WindowSweep : public ::testing::TestWithParam<Duration> {};

TEST_P(WindowSweep, BaselineMatcherRespectsWindow) {
  const Duration window = GetParam();
  std::mt19937_64 rng(7000 + window);
  for (int trial = 0; trial < 10; ++trial) {
    const TemporalPattern pattern = testing::RandomPattern(rng, 3);
    std::vector<std::vector<Situation>> streams(3);
    for (auto& s : streams) s = RandomStream(rng, 500);

    std::map<ConfigKey, TimePoint> got;
    Matcher matcher(pattern, window, [&](const Match& m) {
      got.emplace(KeyOf(m.config), m.detected_at);
    });
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    const auto expected = BruteForceMatches(pattern, window, streams);
    EXPECT_EQ(got.size(), expected.size())
        << "window " << window << " " << pattern.ToString();
    for (const auto& [key, te] : got) {
      // Emitted configurations satisfy the span condition.
      TimePoint min_ts = kTimeMax;
      for (TimePoint ts : key) min_ts = std::min(min_ts, ts);
      EXPECT_LE(te - min_ts, window);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(5, 15, 40, 120, 1000));

// ---------------------------------------------------------------------
// Sweep 4: duration constraints — low-latency and baseline operators see
// identical matches under min/max deferral rules.
// ---------------------------------------------------------------------

struct DurationCase {
  const char* name;
  Duration min_a, max_a;
  Duration min_b, max_b;
};

class DurationSweep : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationSweep, LowLatencyAgreesWithBaselineOperator) {
  const DurationCase& param = GetParam();
  Schema schema(
      {Field{"a", ValueType::kBool}, Field{"b", ValueType::kBool}});

  auto build = [&](bool low_latency) {
    QueryBuilder qb(schema);
    DurationConstraint da;
    da.min = param.min_a;
    da.max = param.max_a;
    DurationConstraint db;
    db.min = param.min_b;
    db.max = param.max_b;
    qb.Define("A", FieldRef(0, "a"), da)
        .Define("B", FieldRef(1, "b"), db)
        .Relate("A", {Relation::kBefore, Relation::kOverlaps,
                      Relation::kDuring, Relation::kContains},
                "B")
        .Within(300)
        .Return("n", "A", AggKind::kCount);
    auto spec = qb.Build();
    EXPECT_TRUE(spec.ok());
    TPStreamOperator::Options options;
    options.low_latency = low_latency;
    return std::make_unique<TPStreamOperator>(spec.value(), options,
                                              nullptr);
  };

  std::mt19937_64 rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    auto baseline = build(false);
    auto low_latency = build(true);

    std::set<ConfigKey> base_keys;
    std::set<ConfigKey> ll_keys;
    baseline->SetMatchObserver(
        [&](const Match& m) { base_keys.insert(KeyOf(m.config)); });
    low_latency->SetMatchObserver(
        [&](const Match& m) { ll_keys.insert(KeyOf(m.config)); });

    bool va = false;
    bool vb = false;
    std::bernoulli_distribution flip(0.15);
    for (TimePoint t = 1; t <= 3000; ++t) {
      if (flip(rng)) va = !va;
      if (flip(rng)) vb = !vb;
      Event e({Value(va), Value(vb)}, t);
      baseline->Push(e);
      low_latency->Push(e);
    }
    // Generous window relative to phase lengths: the match sets must be
    // identical except for configurations still ongoing at stream end.
    for (const ConfigKey& key : base_keys) {
      EXPECT_TRUE(ll_keys.count(key)) << param.name;
    }
    EXPECT_GE(ll_keys.size(), base_keys.size()) << param.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Constraints, DurationSweep,
    ::testing::Values(
        DurationCase{"unconstrained", 1, kTimeMax, 1, kTimeMax},
        DurationCase{"min_on_a", 5, kTimeMax, 1, kTimeMax},
        DurationCase{"max_on_b", 1, kTimeMax, 1, 12},
        DurationCase{"min_and_max", 3, 20, 2, 15},
        DurationCase{"tight", 6, 8, 6, 8}),
    [](const ::testing::TestParamInfo<DurationCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Sweep 5: operator modes — every execution strategy yields the same
// match count on the same workload.
// ---------------------------------------------------------------------

struct ModeCase {
  const char* name;
  bool low_latency;
  bool adaptive;
  std::optional<std::vector<int>> fixed_order;
};

class OperatorModeSweep : public ::testing::TestWithParam<ModeCase> {};

TEST_P(OperatorModeSweep, MatchCountIndependentOfStrategy) {
  const ModeCase& mode = GetParam();
  Schema schema({Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool},
                 Field{"c", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0))
      .Define("B", FieldRef(1))
      .Define("C", FieldRef(2))
      .Relate("A", {Relation::kBefore, Relation::kMeets}, "B")
      .Relate("B", {Relation::kOverlaps, Relation::kContains,
                    Relation::kFinishes},
              "C")
      .Within(150)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  auto run = [&](const TPStreamOperator::Options& options) {
    TPStreamOperator op(spec.value(), options, nullptr);
    std::set<ConfigKey> keys;
    op.SetMatchObserver(
        [&](const Match& m) { keys.insert(KeyOf(m.config)); });
    std::mt19937_64 rng(777);  // identical workload for every mode
    bool va = false, vb = false, vc = false;
    std::bernoulli_distribution flip(0.1);
    for (TimePoint t = 1; t <= 5000; ++t) {
      if (flip(rng)) va = !va;
      if (flip(rng)) vb = !vb;
      if (flip(rng)) vc = !vc;
      op.Push(Event({Value(va), Value(vb), Value(vc)}, t));
    }
    return keys;
  };

  TPStreamOperator::Options reference_options;
  reference_options.low_latency = false;
  reference_options.fixed_order = std::vector<int>{0, 1, 2};
  const std::set<ConfigKey> reference = run(reference_options);

  TPStreamOperator::Options options;
  options.low_latency = mode.low_latency;
  options.adaptive = mode.adaptive;
  options.fixed_order = mode.fixed_order;
  const std::set<ConfigKey> keys = run(options);

  if (mode.low_latency) {
    // Low latency may add matches concluded before stream end cut-offs.
    for (const ConfigKey& key : reference) {
      EXPECT_TRUE(keys.count(key)) << mode.name;
    }
    EXPECT_GE(keys.size(), reference.size()) << mode.name;
  } else {
    EXPECT_EQ(keys, reference) << mode.name;
  }
  EXPECT_GT(keys.size(), 0u) << mode.name;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, OperatorModeSweep,
    ::testing::Values(
        ModeCase{"baseline_fixed", false, false, std::vector<int>{0, 1, 2}},
        ModeCase{"baseline_fixed_rev", false, false,
                 std::vector<int>{2, 1, 0}},
        ModeCase{"baseline_adaptive", false, true, std::nullopt},
        ModeCase{"lowlatency_fixed", true, false, std::vector<int>{1, 0, 2}},
        ModeCase{"lowlatency_adaptive", true, true, std::nullopt}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tpstream
