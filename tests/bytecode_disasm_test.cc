#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expr/bytecode.h"
#include "expr/expression.h"
#include "query/parser.h"

// Golden disassembly tests: the compiled form of representative DEFINE
// predicates is pinned as checked-in text. Codegen changes (register
// allocation, short-circuit lowering, constant interning) then surface as
// reviewable golden-file diffs instead of silent perf or semantics
// shifts. Regenerate after an intentional change with
//     TPSTREAM_REGEN_GOLDEN=1 ./bytecode_disasm_test
// and commit the diff.

namespace tpstream {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(TPSTREAM_TEST_GOLDEN_DIR) + "/" + name;
}

void CheckGolden(const std::string& name, const BytecodeProgram& program) {
  const std::string got = program.Disassemble();
  const std::string path = GoldenPath(name);
  if (std::getenv("TPSTREAM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " (regenerate with TPSTREAM_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "disassembly of " << name << " changed; if intentional, "
      << "regenerate with TPSTREAM_REGEN_GOLDEN=1 and commit the diff";
}

std::shared_ptr<const BytecodeProgram> Compile(const ExprPtr& expr) {
  auto result = CompilePredicate(*expr);
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.ok() ? result.value() : nullptr;
}

// A DEFINE predicate as the parser produces it: left-associative
// comparison chain under AND.
TEST(BytecodeDisasmTest, ComparisonChain) {
  Schema schema({Field{"speed", ValueType::kDouble},
                 Field{"limit", ValueType::kDouble}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS speed > 70.0 AND speed <= limit AND limit != 0, "
      "B AS speed < 1.0 PATTERN A before B WITHIN 100",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto program = Compile(spec.value().definitions[0].predicate);
  ASSERT_NE(program, nullptr);
  CheckGolden("comparison_chain.disasm", *program);
}

// AND/OR short-circuit lowering with a string constant in the pool.
TEST(BytecodeDisasmTest, ShortCircuitMix) {
  Schema schema({Field{"flag", ValueType::kBool},
                 Field{"x", ValueType::kDouble},
                 Field{"y", ValueType::kDouble},
                 Field{"name", ValueType::kString}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS flag AND x / y > 1.5 OR NOT name == 'stop', "
      "B AS x < 0.0 PATTERN A before B WITHIN 100",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto program = Compile(spec.value().definitions[0].predicate);
  ASSERT_NE(program, nullptr);
  CheckGolden("short_circuit.disasm", *program);
}

// Arithmetic with unary negation and mixed int/double literals.
TEST(BytecodeDisasmTest, ArithmeticTree) {
  const ExprPtr a = FieldRef(0, "a");
  const ExprPtr b = FieldRef(1, "b");
  const ExprPtr expr =
      Ge(Negate(Binary(
             BinaryOp::kSub,
             Binary(BinaryOp::kAdd,
                    Binary(BinaryOp::kMul, a, Literal(int64_t{2})),
                    Binary(BinaryOp::kDiv, b, Literal(4.0))),
             Literal(int64_t{1}))),
         Literal(3.5));
  auto program = Compile(expr);
  ASSERT_NE(program, nullptr);
  CheckGolden("arithmetic.disasm", *program);
}

// Repeated and adjacent field references: the referenced-field list must
// come out deduplicated and ascending, and equal constants must intern to
// one pool slot.
TEST(BytecodeDisasmTest, FieldAndConstDedup) {
  const ExprPtr x = FieldRef(2, "x");
  const ExprPtr y = FieldRef(0, "y");
  const ExprPtr expr =
      And(And(Gt(x, Literal(0.0)), Lt(x, Literal(100.0))),
          And(Binary(BinaryOp::kNe, y, x), Gt(y, Literal(0.0))));
  auto program = Compile(expr);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->referenced_fields(), (std::vector<int>{0, 2}));
  CheckGolden("field_dedup.disasm", *program);
}

// Structural invariants that hold for every golden program, pinned here
// so a regen can't silently bake in a regression.
TEST(BytecodeDisasmTest, ProgramShapeInvariants) {
  Schema schema({Field{"speed", ValueType::kDouble},
                 Field{"limit", ValueType::kDouble}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS speed > 70.0 AND speed <= limit AND limit != 0, "
      "B AS speed < 1.0 PATTERN A before B WITHIN 100",
      schema);
  ASSERT_TRUE(spec.ok());
  auto program = Compile(spec.value().definitions[0].predicate);
  ASSERT_NE(program, nullptr);
  // Stack-shaped allocation: an AND chain of binary comparisons never
  // needs more than operand depth + 1 registers.
  EXPECT_LE(program->num_registers(), 3);
  EXPECT_EQ(program->referenced_fields(), (std::vector<int>{0, 1}));
  // Last instruction is the single kRet.
  ASSERT_GT(program->num_instructions(), 0);
  EXPECT_EQ(program->code().back().op, OpCode::kRet);
  int rets = 0;
  for (int pc = 0; pc < program->num_instructions(); ++pc) {
    const Instr& in = program->code()[pc];
    if (in.op == OpCode::kRet) ++rets;
    if (in.op == OpCode::kJump || in.op == OpCode::kJumpIfFalsy ||
        in.op == OpCode::kJumpIfTruthy) {
      // Jumps stay in bounds and only ever go forward: expression trees
      // have no loops, so every program terminates by construction.
      EXPECT_GT(in.b, pc);
      EXPECT_LT(in.b, program->num_instructions());
    }
  }
  EXPECT_EQ(rets, 1);
}

}  // namespace
}  // namespace tpstream
