#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "expr/bytecode.h"
#include "expr/expression.h"
#include "query/builder.h"
#include "query/parser.h"

// Edge-case semantics pinned across BOTH evaluators: every assertion here
// states what the tree interpreter does AND checks that the bytecode VM
// does the bit-identical thing. If either evaluator drifts — NaN handling,
// int<->double coercion, division by zero, null propagation, integer
// wraparound — a test in this file fails before the fuzzer has to find it.

namespace tpstream {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr int64_t kIntMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kIntMin = std::numeric_limits<int64_t>::min();

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// Evaluates `expr` with both evaluators, asserts they agree bit-for-bit,
// and returns the (shared) result for assertions about the semantics
// themselves.
Value Both(const ExprPtr& expr, const Tuple& tuple) {
  const Value interpreted = expr->Eval(tuple);
  auto compiled = CompilePredicate(*expr);
  EXPECT_TRUE(compiled.ok()) << compiled.status().message() << "\n  "
                             << expr->ToString();
  if (!compiled.ok()) return interpreted;
  const Value vm = compiled.value()->Run(tuple);
  EXPECT_EQ(interpreted.type(), vm.type())
      << expr->ToString() << "\n" << compiled.value()->Disassemble();
  if (interpreted.type() == vm.type()) {
    switch (interpreted.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt:
        EXPECT_EQ(interpreted.AsInt(), vm.AsInt()) << expr->ToString();
        break;
      case ValueType::kDouble:
        EXPECT_EQ(DoubleBits(interpreted.AsDouble()),
                  DoubleBits(vm.AsDouble()))
            << expr->ToString();
        break;
      case ValueType::kBool:
        EXPECT_EQ(interpreted.AsBool(), vm.AsBool()) << expr->ToString();
        break;
      case ValueType::kString:
        EXPECT_EQ(interpreted.AsString(), vm.AsString()) << expr->ToString();
        break;
    }
  }
  EXPECT_EQ(EvalPredicate(*expr, tuple),
            compiled.value()->RunPredicate(tuple))
      << expr->ToString();
  return interpreted;
}

TEST(BytecodeSemanticsTest, NanComparisonsAreIncomparable) {
  const Tuple t = {Value(kNaN), Value(1.0)};
  // Any comparison against NaN is three-valued null, not false — so both
  // `x > y` and `NOT (x > y)` behave differently from an ordinary miss.
  EXPECT_TRUE(Both(Gt(FieldRef(0), FieldRef(1)), t).is_null());
  EXPECT_TRUE(Both(Lt(FieldRef(0), FieldRef(1)), t).is_null());
  EXPECT_TRUE(Both(Eq(FieldRef(0), FieldRef(0)), t).is_null());  // NaN == NaN
  EXPECT_TRUE(Both(Binary(BinaryOp::kNe, FieldRef(0), FieldRef(0)), t)
                  .is_null());
  // Null is falsy, so NOT(null comparison) is true.
  EXPECT_TRUE(Both(Not(Gt(FieldRef(0), FieldRef(1))), t).AsBool());
  // NaN itself is truthy (numeric != 0), pinned for AND/OR.
  EXPECT_TRUE(Both(Binary(BinaryOp::kAnd, FieldRef(0), Literal(true)), t)
                  .AsBool());
}

TEST(BytecodeSemanticsTest, InfinityComparesAndPropagates) {
  const Tuple t = {Value(kInf), Value(-kInf), Value(int64_t{7})};
  EXPECT_TRUE(Both(Gt(FieldRef(0), FieldRef(2)), t).AsBool());
  EXPECT_TRUE(Both(Lt(FieldRef(1), FieldRef(2)), t).AsBool());
  EXPECT_TRUE(Both(Eq(FieldRef(0), FieldRef(0)), t).AsBool());
  EXPECT_TRUE(Both(Gt(FieldRef(0), FieldRef(1)), t).AsBool());
  // inf + (-inf) = NaN flows through arithmetic identically (bit-compared
  // inside Both); the result is truthy but incomparable.
  const Value nan_sum =
      Both(Binary(BinaryOp::kAdd, FieldRef(0), FieldRef(1)), t);
  EXPECT_TRUE(std::isnan(nan_sum.AsDouble()));
  // 7 / inf widens to 0.0.
  EXPECT_EQ(Both(Binary(BinaryOp::kDiv, FieldRef(2), FieldRef(0)), t)
                .AsDouble(),
            0.0);
}

TEST(BytecodeSemanticsTest, IntDoubleCoercion) {
  const Tuple t = {};
  // Mixed numeric comparison goes through double.
  EXPECT_TRUE(Both(Eq(Literal(int64_t{1}), Literal(1.0)), t).AsBool());
  EXPECT_TRUE(
      Both(Lt(Literal(int64_t{1}), Literal(1.5)), t).AsBool());
  // 2^53 + 1 is not representable as double: the widening comparison
  // cannot tell it from 2^53. Pinned deliberately — both evaluators must
  // share the precision loss, not fix it unilaterally.
  const int64_t big = (int64_t{1} << 53) + 1;
  EXPECT_TRUE(
      Both(Eq(Literal(big), Literal(9007199254740992.0)), t).AsBool());
  // int op int stays int; int op double widens.
  EXPECT_EQ(Both(Binary(BinaryOp::kAdd, Literal(int64_t{2}),
                        Literal(int64_t{3})),
                 t)
                .type(),
            ValueType::kInt);
  EXPECT_EQ(Both(Binary(BinaryOp::kAdd, Literal(int64_t{2}), Literal(3.0)),
                 t)
                .type(),
            ValueType::kDouble);
  // Division always widens, even int / int.
  const Value q =
      Both(Binary(BinaryOp::kDiv, Literal(int64_t{7}), Literal(int64_t{2})),
           t);
  EXPECT_EQ(q.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(q.AsDouble(), 3.5);
}

TEST(BytecodeSemanticsTest, DivisionByZeroIsNull) {
  const Tuple t = {Value(int64_t{0}), Value(0.0), Value(-0.0)};
  const ExprPtr five = Literal(int64_t{5});
  EXPECT_TRUE(Both(Binary(BinaryOp::kDiv, five, FieldRef(0)), t).is_null());
  EXPECT_TRUE(Both(Binary(BinaryOp::kDiv, five, FieldRef(1)), t).is_null());
  // -0.0 == 0.0, so it divides to null too (not -inf).
  EXPECT_TRUE(Both(Binary(BinaryOp::kDiv, five, FieldRef(2)), t).is_null());
  EXPECT_TRUE(
      Both(Binary(BinaryOp::kDiv, FieldRef(1), FieldRef(1)), t).is_null());
  // The null then poisons downstream comparisons to null (falsy).
  EXPECT_TRUE(
      Both(Gt(Binary(BinaryOp::kDiv, five, FieldRef(0)), Literal(0.0)), t)
          .is_null());
}

TEST(BytecodeSemanticsTest, IntegerOverflowWrapsInBothEvaluators) {
  const Tuple t = {Value(kIntMax), Value(kIntMin), Value(int64_t{-1})};
  const ExprPtr one = Literal(int64_t{1});
  EXPECT_EQ(Both(Binary(BinaryOp::kAdd, FieldRef(0), one), t).AsInt(),
            kIntMin);
  EXPECT_EQ(Both(Binary(BinaryOp::kSub, FieldRef(1), one), t).AsInt(),
            kIntMax);
  EXPECT_EQ(Both(Binary(BinaryOp::kMul, FieldRef(1), FieldRef(2)), t)
                .AsInt(),
            kIntMin);
  EXPECT_EQ(Both(Negate(FieldRef(1)), t).AsInt(), kIntMin);
}

TEST(BytecodeSemanticsTest, MissingAndNullFieldsPropagate) {
  const Tuple t = {Value()};  // one null field; index 1+ missing
  for (const int field : {0, 1, 7, -1}) {
    EXPECT_TRUE(Both(FieldRef(field), t).is_null()) << field;
    EXPECT_TRUE(Both(Gt(FieldRef(field), Literal(1.0)), t).is_null())
        << field;
    EXPECT_TRUE(
        Both(Binary(BinaryOp::kAdd, FieldRef(field), Literal(1.0)), t)
            .is_null())
        << field;
    EXPECT_TRUE(Both(Negate(FieldRef(field)), t).is_null()) << field;
    // Null is falsy: NOT null -> true; null AND x short-circuits false.
    EXPECT_TRUE(Both(Not(FieldRef(field)), t).AsBool()) << field;
    EXPECT_FALSE(
        Both(Binary(BinaryOp::kAnd, FieldRef(field), Literal(true)), t)
            .AsBool())
        << field;
  }
}

TEST(BytecodeSemanticsTest, StringsCompareAndNeverCoerce) {
  const Tuple t = {Value(std::string("abc")), Value(std::string("abd")),
                   Value(int64_t{0})};
  EXPECT_TRUE(Both(Lt(FieldRef(0), FieldRef(1)), t).AsBool());
  EXPECT_TRUE(Both(Eq(FieldRef(0), FieldRef(0)), t).AsBool());
  EXPECT_FALSE(Both(Eq(FieldRef(0), FieldRef(1)), t).AsBool());
  // String vs number is incomparable -> null, and strings are falsy.
  EXPECT_TRUE(Both(Eq(FieldRef(0), FieldRef(2)), t).is_null());
  EXPECT_FALSE(Both(Binary(BinaryOp::kOr, FieldRef(0), FieldRef(2)), t)
                   .AsBool());
  // Arithmetic on strings is a type error -> null.
  EXPECT_TRUE(
      Both(Binary(BinaryOp::kAdd, FieldRef(0), FieldRef(1)), t).is_null());
}

TEST(BytecodeSemanticsTest, ShortCircuitSkipsPoisonedOperand) {
  // The right operand divides by zero; AND/OR must not evaluate it when
  // the left side already decides. (Observable through the result: the
  // skipped side would yield null, making the AND false-not-null.)
  const Tuple t = {Value(false), Value(true), Value(int64_t{0})};
  const ExprPtr poison =
      Gt(Binary(BinaryOp::kDiv, Literal(int64_t{1}), FieldRef(2)),
         Literal(0.0));
  EXPECT_FALSE(
      Both(Binary(BinaryOp::kAnd, FieldRef(0), poison), t).AsBool());
  EXPECT_TRUE(Both(Binary(BinaryOp::kOr, FieldRef(1), poison), t).AsBool());
  // When the left does NOT decide, the poisoned side is evaluated and its
  // null collapses to the AND/OR's truthiness result.
  EXPECT_FALSE(
      Both(Binary(BinaryOp::kAnd, FieldRef(1), poison), t).AsBool());
  EXPECT_FALSE(
      Both(Binary(BinaryOp::kOr, FieldRef(0), poison), t).AsBool());
}

TEST(BytecodeSemanticsTest, HugeParsedLiteralsStayDouble) {
  // A literal beyond int64 takes the lexer's strtod path; integer-shaped
  // or not, it must reach both evaluators as the same double.
  Schema schema({Field{"x", ValueType::kDouble}});
  const std::string huge_int(30, '9');  // ~1e30, integer-shaped
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS x < " + huge_int +
          ", B AS x > 123456789012345678901234567890.5 "
          "PATTERN A overlaps B WITHIN 100",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  const ExprPtr a = spec.value().definitions[0].predicate;
  const ExprPtr b = spec.value().definitions[1].predicate;
  const Tuple big = {Value(1e31)};
  const Tuple small = {Value(1.0)};
  EXPECT_FALSE(Both(a, big).AsBool());
  EXPECT_TRUE(Both(a, small).AsBool());
  EXPECT_TRUE(Both(b, big).AsBool());
  EXPECT_FALSE(Both(b, small).AsBool());
  // Integer-shaped literals in range parse back to int — but they ride
  // the same strtod path, so above 2^53 the lexer has already rounded to
  // the nearest double. 4611686018427387903 (2^62 - 1) therefore means
  // the int literal 4611686018427387904 (2^62): pinned, shared by both
  // evaluators, and exact int==int from there on.
  auto exact_spec = query::ParseQuery(
      "FROM S DEFINE A AS x == 4611686018427387903, B AS x < 0 "
      "PATTERN A before B WITHIN 10",
      schema);
  ASSERT_TRUE(exact_spec.ok());
  const ExprPtr exact = exact_spec.value().definitions[0].predicate;
  EXPECT_FALSE(Both(exact, {Value(int64_t{4611686018427387903})}).AsBool());
  EXPECT_TRUE(Both(exact, {Value(int64_t{4611686018427387904})}).AsBool());
}

// End-to-end: a full operator run over a mixed-shape query must produce
// identical matches and RETURN payloads with compiled_predicates on and
// off, through both Push() and the batch-prepared PushBatch() path.
TEST(BytecodeSemanticsTest, OperatorDifferentialCompiledVsInterpreted) {
  Schema schema({Field{"speed", ValueType::kDouble},
                 Field{"accel", ValueType::kDouble},
                 Field{"lane", ValueType::kInt}});
  auto spec = query::ParseQuery(
      "FROM S DEFINE A AS speed > 50.0 AND accel > 0.0, "
      "B AS lane == 2 OR speed / accel > 100.0 "
      "PATTERN A overlaps B WITHIN 200",
      schema);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  std::vector<Event> stream;
  uint64_t s = 42;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (TimePoint t = 1; t <= 600; ++t) {
    Tuple payload = {Value(static_cast<double>(next() % 100)),
                     Value(static_cast<double>(next() % 7) - 3.0),
                     Value(static_cast<int64_t>(next() % 4))};
    if (next() % 19 == 0) payload[1] = Value();           // null accel
    if (next() % 23 == 0) payload[0] = Value(kNaN);       // NaN speed
    if (next() % 29 == 0) payload.resize(next() % 3);     // short tuple
    stream.emplace_back(std::move(payload), t);
  }

  struct RunResult {
    std::vector<Event> outputs;
    int64_t matches = 0;
    int programs = 0;
  };
  auto run = [&](bool compiled, bool batched) {
    RunResult r;
    TPStreamOperator::Options options;
    options.compiled_predicates = compiled;
    TPStreamOperator op(spec.value(), options,
                        [&](const Event& e) { r.outputs.push_back(e); });
    if (batched) {
      // Uneven chunks so batches end mid-situation.
      for (size_t i = 0; i < stream.size();) {
        const size_t len = std::min<size_t>(1 + i % 37, stream.size() - i);
        op.PushBatch(std::span<const Event>(stream.data() + i, len));
        i += len;
      }
    } else {
      for (const Event& e : stream) op.Push(e);
    }
    op.Flush();
    r.matches = op.num_matches();
    r.programs = op.num_compiled_programs();
    return r;
  };

  const RunResult oracle = run(/*compiled=*/false, /*batched=*/false);
  EXPECT_EQ(oracle.programs, 0);
  for (const bool batched : {false, true}) {
    const RunResult got = run(/*compiled=*/true, batched);
    EXPECT_EQ(got.programs, 2);
    EXPECT_EQ(got.matches, oracle.matches) << "batched=" << batched;
    ASSERT_EQ(got.outputs.size(), oracle.outputs.size())
        << "batched=" << batched;
    for (size_t i = 0; i < got.outputs.size(); ++i) {
      EXPECT_EQ(got.outputs[i].t, oracle.outputs[i].t);
      ASSERT_EQ(got.outputs[i].payload.size(),
                oracle.outputs[i].payload.size());
      for (size_t j = 0; j < got.outputs[i].payload.size(); ++j) {
        EXPECT_TRUE(Value::Compare(got.outputs[i].payload[j],
                                   oracle.outputs[i].payload[j]) == 0 ||
                    (got.outputs[i].payload[j].is_null() &&
                     oracle.outputs[i].payload[j].is_null()))
            << "output " << i << " field " << j;
      }
    }
  }
}

}  // namespace
}  // namespace tpstream
