// Checkpoint chaos suite (`chaos` ctest label; CI re-runs it under
// ASan+UBSan): randomized kill-and-recover cycles must never lose or
// duplicate matches, and hostile checkpoint bytes — truncated at every
// boundary, bit-flipped at random positions — must surface as Status
// errors, never as crashes, hangs, OOB access or silent mis-restores.

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
}

QuerySpec SensorSpec(bool partitioned = false) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> MakeStream(int n, uint64_t seed, int num_keys = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Event> events;
  events.reserve(n);
  double speed = 0.5, temp = 0.5;
  for (int i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    events.push_back(Event({Value(speed), Value(temp),
                            Value(static_cast<int64_t>(i % num_keys))},
                           i + 1));
  }
  return events;
}

// Kill the operator at random offsets, over and over, chaining recovery
// on recovery (each incarnation is itself killed later). The survivors'
// concatenated output must equal the uninterrupted run exactly.
TEST(CheckpointChaos, RepeatedKillAndRecoverPreservesMatchStream) {
  const QuerySpec spec = SensorSpec();
  TPStreamOperator::Options options;
  options.overload.max_situations_per_buffer = 4;  // eviction in the mix
  const std::vector<Event> events = MakeStream(600, 21);

  std::vector<Event> ref_outputs;
  TPStreamOperator ref(spec, options,
                       [&](const Event& e) { ref_outputs.push_back(e); });
  for (const Event& e : events) ref.Push(e);

  std::mt19937_64 rng(22);
  for (int round = 0; round < 5; ++round) {
    std::vector<Event> outputs;
    const auto sink = [&](const Event& e) { outputs.push_back(e); };
    std::string blob;  // checkpoint of the previous incarnation
    size_t cursor = 0;
    while (cursor < events.size()) {
      TPStreamOperator incarnation(spec, options, sink);
      if (!blob.empty()) {
        ckpt::Reader r(blob);
        uint64_t offset = 0;
        ASSERT_TRUE(incarnation.Restore(r, &offset).ok())
            << r.status().ToString();
        ASSERT_EQ(offset, cursor);
      }
      // Survive a random number of events, then die post-checkpoint.
      const size_t survive = 1 + rng() % (events.size() - cursor);
      for (size_t i = 0; i < survive; ++i) {
        incarnation.Push(events[cursor + i]);
      }
      cursor += survive;
      ckpt::Writer w;
      incarnation.Checkpoint(w);
      blob = w.Take();
    }
    ASSERT_EQ(outputs.size(), ref_outputs.size()) << "round " << round;
    for (size_t i = 0; i < outputs.size(); ++i) {
      EXPECT_EQ(outputs[i].t, ref_outputs[i].t);
      EXPECT_EQ(outputs[i].payload, ref_outputs[i].payload);
    }
  }
}

// Every proper prefix of a real checkpoint must restore with an error —
// never a crash, never a false success.
TEST(CheckpointChaos, TruncationAtEveryBoundaryFailsCleanly) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  PartitionedTPStream source(spec, {}, nullptr);
  for (const Event& e : MakeStream(200, 23, /*keys=*/3)) source.Push(e);
  ckpt::Writer w;
  source.Checkpoint(w);
  const std::string& blob = w.buffer();
  ASSERT_GT(blob.size(), 0u);

  for (size_t len = 0; len < blob.size(); ++len) {
    PartitionedTPStream target(spec, {}, nullptr);
    ckpt::Reader r(std::string_view(blob).substr(0, len));
    const Status status = target.Restore(r);
    EXPECT_FALSE(status.ok()) << "prefix of " << len << " bytes restored";
  }

  // The untruncated blob still restores (the loop above didn't prove the
  // blob was simply unreadable).
  PartitionedTPStream target(spec, {}, nullptr);
  ckpt::Reader r(blob);
  EXPECT_TRUE(target.Restore(r).ok());
}

// Random single-byte corruptions: restore may fail (typical) or succeed
// (the flip hit a value with no structural meaning), but must never
// crash; and after a failed restore, Reset() must return the instance to
// a usable state.
TEST(CheckpointChaos, BitFlipFuzzNeverCrashes) {
  const QuerySpec spec = SensorSpec();
  TPStreamOperator source(spec, {}, nullptr);
  const std::vector<Event> events = MakeStream(200, 24);
  for (const Event& e : events) source.Push(e);
  ckpt::Writer w;
  source.Checkpoint(w);
  const std::string blob = w.buffer();

  std::mt19937_64 rng(25);
  int failures = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::string corrupted = blob;
    const size_t pos = rng() % corrupted.size();
    corrupted[pos] = static_cast<char>(
        static_cast<uint8_t>(corrupted[pos]) ^ (1u << (rng() % 8)));

    TPStreamOperator target(spec, {}, nullptr);
    ckpt::Reader r(corrupted);
    const Status status = target.Restore(r);
    if (!status.ok()) {
      ++failures;
      // The documented recovery path after a failed restore: Reset()
      // returns the instance to a usable (fresh) state.
      target.Reset();
      for (size_t i = 0; i < 20; ++i) target.Push(events[i]);
    }
    // A *successful* restore of flipped bytes may hold semantically
    // corrupt (yet well-formed) state; the durability contract only
    // covers blobs produced by Checkpoint, so such instances are
    // discarded here, not driven further.
  }
  // Most flips hit structure (magic, lengths, tags, counts) and must
  // have been rejected; a fuzzer that "passes" everything tests nothing.
  EXPECT_GT(failures, kTrials / 4);
}

// Garbage that is not a checkpoint at all.
TEST(CheckpointChaos, ArbitraryBytesAreRejected) {
  const QuerySpec spec = SensorSpec();
  std::mt19937_64 rng(26);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage(rng() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xff);
    TPStreamOperator target(spec, {}, nullptr);
    ckpt::Reader r(garbage);
    EXPECT_FALSE(target.Restore(r).ok());
  }
}

}  // namespace
}  // namespace tpstream
