#ifndef TPSTREAM_TESTS_CHAOS_ALLOC_H_
#define TPSTREAM_TESTS_CHAOS_ALLOC_H_

// Live-byte counting allocator for the chaos suite's bounded-memory
// proofs, plus the allocation-failure hook of tests/fault_injection.h.
//
// This header DEFINES the replacement global operator new/delete, so it
// must be included from exactly ONE translation unit per binary
// (tests/chaos_test.cc). A size header is stored in front of every
// allocation so delete can subtract the exact live bytes — no reliance
// on malloc_usable_size, which keeps the accounting identical under
// ASan/TSan (their interceptors see the inner malloc/free as usual).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "tests/fault_injection.h"

namespace tpstream {
namespace testing {

inline std::atomic<int64_t> g_live_bytes{0};
inline std::atomic<int64_t> g_high_water{0};

inline int64_t LiveBytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
inline int64_t HighWaterBytes() {
  return g_high_water.load(std::memory_order_relaxed);
}
/// Restarts the high-water mark from the current live volume (call after
/// warmup so the mark measures only the phase under test).
inline void ResetHighWater() {
  g_high_water.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

namespace chaos_alloc_internal {

// Big enough for the {raw pointer, size} aligned-path header and a
// multiple of the worst-case fundamental alignment, so offsetting the
// malloc result keeps it suitably aligned.
constexpr size_t kHeader = 2 * sizeof(void*) >= alignof(std::max_align_t)
                               ? 2 * sizeof(void*)
                               : alignof(std::max_align_t);

inline void MaybeInjectFailure() {
  int64_t c = g_fail_alloc_countdown.load(std::memory_order_relaxed);
  while (c > 0 && !g_fail_alloc_countdown.compare_exchange_weak(
                      c, c - 1, std::memory_order_relaxed)) {
  }
  if (c == 1) throw std::bad_alloc();
}

inline void AddLive(int64_t bytes) {
  const int64_t live =
      g_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t hw = g_high_water.load(std::memory_order_relaxed);
  while (live > hw && !g_high_water.compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
}

/// Plain-alignment path: [size_t size | pad][user data...]; the user
/// pointer sits kHeader past the malloc result.
inline void* Alloc(size_t size) {
  MaybeInjectFailure();
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<size_t*>(raw) = size;
  AddLive(static_cast<int64_t>(size));
  return static_cast<char*>(raw) + kHeader;
}

inline void Free(void* p) {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  AddLive(-static_cast<int64_t>(*static_cast<size_t*>(raw)));
  std::free(raw);
}

/// Over-aligned path: the user pointer is aligned up inside an oversized
/// block, with {raw pointer, size} stored immediately below it.
inline void* AllocAligned(size_t size, size_t alignment) {
  MaybeInjectFailure();
  if (alignment < kHeader) alignment = kHeader;
  void* raw = std::malloc(size + alignment + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  uintptr_t user = reinterpret_cast<uintptr_t>(raw) + kHeader;
  user = (user + alignment - 1) & ~(static_cast<uintptr_t>(alignment) - 1);
  void** header = reinterpret_cast<void**>(user) - 2;
  header[0] = raw;
  header[1] = reinterpret_cast<void*>(size);
  AddLive(static_cast<int64_t>(size));
  return reinterpret_cast<void*>(user);
}

inline void FreeAligned(void* p) {
  if (p == nullptr) return;
  void** header = static_cast<void**>(p) - 2;
  AddLive(-static_cast<int64_t>(reinterpret_cast<uintptr_t>(header[1])));
  std::free(header[0]);
}

}  // namespace chaos_alloc_internal
}  // namespace testing
}  // namespace tpstream

void* operator new(std::size_t size) {
  return tpstream::testing::chaos_alloc_internal::Alloc(size);
}
void* operator new[](std::size_t size) {
  return tpstream::testing::chaos_alloc_internal::Alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tpstream::testing::chaos_alloc_internal::AllocAligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tpstream::testing::chaos_alloc_internal::AllocAligned(
      size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept {
  tpstream::testing::chaos_alloc_internal::Free(p);
}
void operator delete[](void* p) noexcept {
  tpstream::testing::chaos_alloc_internal::Free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  tpstream::testing::chaos_alloc_internal::Free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  tpstream::testing::chaos_alloc_internal::Free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  tpstream::testing::chaos_alloc_internal::FreeAligned(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  tpstream::testing::chaos_alloc_internal::FreeAligned(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tpstream::testing::chaos_alloc_internal::FreeAligned(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tpstream::testing::chaos_alloc_internal::FreeAligned(p);
}

#endif  // TPSTREAM_TESTS_CHAOS_ALLOC_H_
