// Soak/robustness tests: long randomized runs checking global invariants
// (bounded state, strictly ordered output, graceful handling of
// adversarial parser input).
#include <random>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "query/builder.h"
#include "query/parser.h"

namespace tpstream {
namespace {

TEST(StressTest, LongRunKeepsStateBoundedAndOutputOrdered) {
  Schema schema({Field{"a", ValueType::kBool},
                 Field{"b", ValueType::kBool},
                 Field{"c", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0), AtLeast(2))
      .Define("B", FieldRef(1))
      .Define("C", FieldRef(2), AtMost(40))
      .Relate("A", {Relation::kBefore, Relation::kOverlaps,
                    Relation::kMeets},
              "B")
      .Relate("B", {Relation::kContains, Relation::kOverlaps,
                    Relation::kFinishes, Relation::kEquals},
              "C")
      .Within(120)
      .Return("n", "A", AggKind::kCount)
      .Return("b_start", "B", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  TimePoint last_output = kTimeMin;
  int64_t outputs = 0;
  TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
    // Detection times never go backwards.
    EXPECT_GE(e.t, last_output);
    last_output = e.t;
    ++outputs;
  });

  std::mt19937_64 rng(20260704);
  bool va = false, vb = false, vc = false;
  std::bernoulli_distribution flip(0.12);
  size_t max_buffered = 0;
  for (TimePoint t = 1; t <= 200000; ++t) {
    if (flip(rng)) va = !va;
    if (flip(rng)) vb = !vb;
    if (flip(rng)) vc = !vc;
    op.Push(Event({Value(va), Value(vb), Value(vc)}, t));
    if (t % 1024 == 0) max_buffered = std::max(max_buffered,
                                               op.BufferedCount());
  }
  EXPECT_GT(outputs, 0);
  // Window purging keeps buffers bounded: with a 120-tick window and
  // phases of ~8 ticks, a few hundred situations at most.
  EXPECT_LT(max_buffered, 500u);
}

TEST(StressTest, ParserSurvivesAdversarialInput) {
  const Schema schema({Field{"x", ValueType::kInt}});
  // Mutations of a valid query: truncations and random charset noise.
  const std::string base =
      "FROM S DEFINE A AS x > 1, B AS x < 0 "
      "PATTERN A before B WITHIN 10 RETURN count(A) AS n";
  for (size_t cut = 0; cut < base.size(); cut += 3) {
    // Must never crash. (Truncations that end after WITHIN are complete
    // queries — RETURN is optional — so only short prefixes must fail.)
    const auto result = query::ParseQuery(base.substr(0, cut), schema);
    if (cut < base.find("WITHIN")) EXPECT_FALSE(result.ok()) << cut;
  }

  std::mt19937_64 rng(99);
  const std::string charset =
      "ABCdef0123 ()<>=.;,+-*/'\"_" "\n\t";
  for (int trial = 0; trial < 500; ++trial) {
    std::string junk;
    const int len = 1 + static_cast<int>(rng() % 120);
    for (int i = 0; i < len; ++i) {
      junk.push_back(charset[rng() % charset.size()]);
    }
    // Must return a Status, never crash or hang.
    (void)query::ParseQuery(junk, schema);
  }

  // Valid clauses in the wrong order fail cleanly too.
  EXPECT_FALSE(query::ParseQuery(
                   "DEFINE A AS x > 1 FROM S PATTERN A before A WITHIN 5",
                   schema)
                   .ok());
}

TEST(StressTest, ManyPartitionsStayIndependent) {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1))
      .Define("B", Not(FieldRef(1)))
      .Relate("A", Relation::kMeets, "B")
      .Within(64)
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  PartitionedTPStream op(spec.value(), {}, nullptr);
  std::mt19937_64 rng(5);
  constexpr int kKeys = 500;
  std::vector<bool> value(kKeys, false);
  std::bernoulli_distribution flip(0.2);
  for (TimePoint t = 1; t <= 400; ++t) {
    for (int k = 0; k < kKeys; ++k) {
      if (flip(rng)) value[k] = !value[k];
      op.Push(Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  EXPECT_EQ(op.num_partitions(), static_cast<size_t>(kKeys));
  EXPECT_GT(op.num_matches(), kKeys);  // every key produces matches
}

}  // namespace
}  // namespace tpstream
