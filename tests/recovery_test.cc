// RecoveryManager mechanics: checkpoint generation files, the full/delta
// cadence, chain validation and degradation, corrupt-newest fallback,
// disk-full behaviour, and the checkpoint checksum footer (including the
// legacy unchecksummed path).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "log/event_log.h"
#include "log/memfs.h"
#include "log/recovery.h"
#include "query/builder.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
}

QuerySpec SensorSpec(bool partitioned = false) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> MakeStream(int n, uint64_t seed, int num_keys = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Event> events;
  events.reserve(n);
  double speed = 0.5, temp = 0.5;
  for (int i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    const int64_t key = static_cast<int64_t>(i % num_keys);
    events.push_back(Event({Value(speed), Value(temp), Value(key)}, i + 1));
  }
  return events;
}

std::unique_ptr<log::EventLog> MustOpenLog(log::FileSystem* fs,
                                           const std::string& dir) {
  std::unique_ptr<log::EventLog> log;
  Status s = log::EventLog::Open(fs, dir, {}, &log);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return log;
}

std::unique_ptr<log::RecoveryManager> MustOpenManager(
    log::FileSystem* fs, const std::string& dir, log::EventLog* log,
    const log::RecoveryManager::Options& options = {}) {
  std::unique_ptr<log::RecoveryManager> mgr;
  Status s = log::RecoveryManager::Open(fs, dir, log, options, &mgr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return mgr;
}

/// Appends one event to the log and pushes it into the engine — the
/// write path every durable deployment runs.
template <typename Engine>
void Feed(log::EventLog& log, Engine& engine, const Event& event) {
  auto r = log.Append(std::span<const Event>(&event, 1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  engine.Push(event);
}

constexpr char kLogDir[] = "/wal";
constexpr char kCkptDir[] = "/wal/ckpt";

// --- operator surface ------------------------------------------------------

TEST(RecoveryManager, OperatorCheckpointRecoverReplay) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(400, 21);

  // Expected tail outputs: a reference that pushes the prefix silently,
  // then collects from event 200 on (replay re-emits those matches).
  std::vector<Event> want_tail;
  {
    bool collect = false;
    TPStreamOperator ref(spec, {}, [&](const Event& e) {
      if (collect) want_tail.push_back(e);
    });
    for (size_t i = 0; i < events.size(); ++i) {
      if (i == 200) collect = true;
      ref.Push(events[i]);
    }
  }
  ckpt::Writer ref_final;
  {
    TPStreamOperator ref(spec, {}, nullptr);
    for (const Event& e : events) ref.Push(e);
    ref.Checkpoint(ref_final);
  }

  log::MemFileSystem fs;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get());
    TPStreamOperator first(spec, {}, nullptr);
    for (size_t i = 0; i < 300; ++i) {
      Feed(*log, first, events[i]);
      if (i + 1 == 100 || i + 1 == 200) {
        auto info = mgr->Checkpoint(first);
        ASSERT_TRUE(info.ok()) << info.status().ToString();
        EXPECT_EQ(info.value().offset, i + 1);
        EXPECT_FALSE(info.value().incremental);  // no incremental surface
      }
    }
  }  // crash: engine and manager die; the log was synced per record

  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get());
  std::vector<Event> outputs;
  TPStreamOperator second(spec, {},
                          [&](const Event& e) { outputs.push_back(e); });
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().restored);
  EXPECT_EQ(report.value().generation, 2u);
  EXPECT_EQ(report.value().offset, 200u);
  EXPECT_EQ(report.value().replayed_events, 100u);
  EXPECT_EQ(report.value().corrupt_skipped, 0);

  for (size_t i = 300; i < events.size(); ++i) Feed(*log, second, events[i]);

  ASSERT_EQ(outputs.size(), want_tail.size());
  for (size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[i].t, want_tail[i].t);
    EXPECT_EQ(outputs[i].payload, want_tail[i].payload);
  }
  ckpt::Writer final_ckpt;
  second.Checkpoint(final_ckpt);
  EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer());
}

TEST(RecoveryManager, ColdStartReplaysWholeLog) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(150, 22);

  log::MemFileSystem fs;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    TPStreamOperator first(spec, {}, nullptr);
    for (const Event& e : events) Feed(*log, first, e);
  }  // crash before any checkpoint

  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get());
  TPStreamOperator second(spec, {}, nullptr);
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().restored);
  EXPECT_EQ(report.value().offset, 0u);
  EXPECT_EQ(report.value().replayed_events, events.size());

  TPStreamOperator ref(spec, {}, nullptr);
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer a, b;
  second.Checkpoint(a);
  ref.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(RecoveryManager, CorruptNewestCheckpointFallsBackToPrevious) {
  const QuerySpec spec = SensorSpec();
  const std::vector<Event> events = MakeStream(300, 23);

  log::MemFileSystem fs;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get());
    TPStreamOperator first(spec, {}, nullptr);
    for (size_t i = 0; i < events.size(); ++i) {
      Feed(*log, first, events[i]);
      if (i + 1 == 100 || i + 1 == 200) {
        ASSERT_TRUE(mgr->Checkpoint(first).ok());
      }
    }
  }

  // Flip one byte inside the newest (generation 2) checkpoint file: its
  // checksum footer must catch it and recovery must fall back to gen 1.
  fs.CorruptByte("/wal/ckpt/ckpt-00000000000000000002-full.tpc", 60, 0x40);

  robust::CollectingDeadLetterSink dead;
  log::RecoveryManager::Options options;
  options.dead_letter = &dead;
  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  TPStreamOperator second(spec, {}, nullptr);
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().restored);
  EXPECT_EQ(report.value().generation, 1u);
  EXPECT_EQ(report.value().offset, 100u);
  EXPECT_EQ(report.value().replayed_events, 200u);
  EXPECT_EQ(report.value().corrupt_skipped, 1);
  ASSERT_EQ(dead.accepted(), 1);
  EXPECT_EQ(dead.Items()[0].kind, robust::DeadLetterKind::kCorruptCheckpoint);

  TPStreamOperator ref(spec, {}, nullptr);
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer a, b;
  second.Checkpoint(a);
  ref.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());

  // New checkpoints must not clobber the (still on disk) corrupt file's
  // generation number.
  auto info = mgr->Checkpoint(second);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().generation, 3u);
}

// --- incremental cadence (partitioned surface) -----------------------------

TEST(RecoveryManager, IncrementalCadenceAndByteIdenticalRestore) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(400, 24, /*keys=*/40);

  ckpt::Writer ref_final;
  {
    PartitionedTPStream ref(spec, {}, nullptr);
    for (const Event& e : events) ref.Push(e);
    ref.Checkpoint(ref_final);
  }

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 4;
  std::vector<bool> kinds;
  uint64_t full_bytes = 0, delta_bytes = 0;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
    PartitionedTPStream first(spec, {}, nullptr);
    for (size_t i = 0; i < 350; ++i) {
      Feed(*log, first, events[i]);
      if ((i + 1) % 25 == 0) {
        auto info = mgr->Checkpoint(first);
        ASSERT_TRUE(info.ok()) << info.status().ToString();
        kinds.push_back(info.value().incremental);
        (info.value().incremental ? delta_bytes : full_bytes) =
            std::max(info.value().incremental ? delta_bytes : full_bytes,
                     info.value().bytes);
      }
    }
  }
  // K=4 cadence: every 4th generation is full (1, 5, 9, 13), the three
  // between are deltas.
  ASSERT_EQ(kinds.size(), 14u);
  for (size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(kinds[i], i % 4 != 0) << "checkpoint " << i;
  }
  // Deltas cover <= 25 of 40 partitions, so they must be smaller.
  EXPECT_LT(delta_bytes, full_bytes);

  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().restored);
  EXPECT_EQ(report.value().generation, 14u);
  EXPECT_EQ(report.value().offset, 350u);
  EXPECT_EQ(report.value().deltas_applied, 1);  // gen 14 on full 13
  for (size_t i = 350; i < events.size(); ++i) Feed(*log, second, events[i]);

  ckpt::Writer final_ckpt;
  second.Checkpoint(final_ckpt);
  EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer())
      << "incremental restore diverged from the uninterrupted run";
}

TEST(RecoveryManager, MissingDeltaDegradesToValidPrefix) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(300, 25, /*keys=*/20);

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 8;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
    PartitionedTPStream first(spec, {}, nullptr);
    for (size_t i = 0; i < events.size(); ++i) {
      Feed(*log, first, events[i]);
      if ((i + 1) % 50 == 0) ASSERT_TRUE(mgr->Checkpoint(first).ok());
    }
  }
  // Generations: 1 full @50, 2..6 delta @100..300. Remove the delta at
  // generation 3: generations 4..6 can no longer attach to the chain.
  ASSERT_TRUE(
      fs.DeleteFile("/wal/ckpt/ckpt-00000000000000000003-delta.tpc").ok());

  robust::CollectingDeadLetterSink dead;
  options.dead_letter = &dead;
  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().restored);
  EXPECT_EQ(report.value().generation, 2u);  // full@1 + delta@2 only
  EXPECT_EQ(report.value().offset, 100u);
  EXPECT_EQ(report.value().deltas_applied, 1);
  EXPECT_EQ(report.value().replayed_events, 200u);
  EXPECT_GE(dead.accepted(), 1);  // the chain break is quarantined

  ckpt::Writer a, b;
  second.Checkpoint(a);
  PartitionedTPStream ref(spec, {}, nullptr);
  for (const Event& e : events) ref.Push(e);
  ref.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(RecoveryManager, PruningKeepsPreviousFullAsFallback) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(400, 26, /*keys=*/10);

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 3;
  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream engine(spec, {}, nullptr);
  for (size_t i = 0; i < events.size(); ++i) {
    Feed(*log, engine, events[i]);
    if ((i + 1) % 40 == 0) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
  }
  // 10 checkpoints at K=3: fulls at 1,4,7,10. Pruning after the full at
  // 10 keeps generations >= 7 (previous full + its chain) only.
  EXPECT_FALSE(
      fs.HasFile("/wal/ckpt/ckpt-00000000000000000001-full.tpc"));
  EXPECT_FALSE(
      fs.HasFile("/wal/ckpt/ckpt-00000000000000000004-full.tpc"));
  EXPECT_TRUE(fs.HasFile("/wal/ckpt/ckpt-00000000000000000007-full.tpc"));
  EXPECT_TRUE(fs.HasFile("/wal/ckpt/ckpt-00000000000000000008-delta.tpc"));
  EXPECT_TRUE(fs.HasFile("/wal/ckpt/ckpt-00000000000000000009-delta.tpc"));
  EXPECT_TRUE(fs.HasFile("/wal/ckpt/ckpt-00000000000000000010-full.tpc"));
  EXPECT_EQ(mgr->num_checkpoint_files(), 4);

  // The fallback actually works: corrupt the newest full, recover onto
  // the previous full + its deltas + replay.
  fs.CorruptByte("/wal/ckpt/ckpt-00000000000000000010-full.tpc", 80, 0x08);
  auto log2 = MustOpenLog(&fs, kLogDir);
  auto mgr2 = MustOpenManager(&fs, kCkptDir, log2.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  auto report = mgr2->Recover(second);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().restored);
  EXPECT_EQ(report.value().generation, 9u);

  ckpt::Writer a, b;
  second.Checkpoint(a);
  engine.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(RecoveryManager, FallbackRecoveryForcesFullNextCheckpoint) {
  // After a recovery that fell back past a corrupt newest generation,
  // the chain the manager holds ends below last_generation_. A delta
  // taken then would declare a base no future recovery can re-attach to
  // (the corrupt file still sits in the chain walk), so the first
  // post-fallback checkpoint must be a full snapshot.
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(300, 31, /*keys=*/10);

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 8;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
    PartitionedTPStream first(spec, {}, nullptr);
    for (size_t i = 0; i < 150; ++i) {
      Feed(*log, first, events[i]);
      if ((i + 1) % 50 == 0) ASSERT_TRUE(mgr->Checkpoint(first).ok());
    }
  }
  // Generations: 1 full @50, 2..3 delta @100/@150. Corrupt the newest.
  fs.CorruptByte("/wal/ckpt/ckpt-00000000000000000003-delta.tpc", 60, 0x20);

  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  auto report = mgr->Recover(second);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().generation, 2u);  // fell back past gen 3
  EXPECT_EQ(report.value().corrupt_skipped, 1);

  for (size_t i = 150; i < 200; ++i) Feed(*log, second, events[i]);
  auto info = mgr->Checkpoint(second);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().generation, 4u);
  EXPECT_FALSE(info.value().incremental);  // forced full after fallback

  // The forced full re-anchors the chain: deltas on top of it attach
  // cleanly at the next recovery instead of being quarantined.
  for (size_t i = 200; i < 250; ++i) Feed(*log, second, events[i]);
  auto delta_info = mgr->Checkpoint(second);
  ASSERT_TRUE(delta_info.ok());
  EXPECT_TRUE(delta_info.value().incremental);  // gen 5, delta on gen 4

  robust::CollectingDeadLetterSink dead;
  options.dead_letter = &dead;
  auto log2 = MustOpenLog(&fs, kLogDir);
  auto mgr2 = MustOpenManager(&fs, kCkptDir, log2.get(), options);
  PartitionedTPStream third(spec, {}, nullptr);
  auto report2 = mgr2->Recover(third);
  ASSERT_TRUE(report2.ok()) << report2.status().ToString();
  EXPECT_EQ(report2.value().generation, 5u);
  EXPECT_EQ(report2.value().offset, 250u);
  EXPECT_EQ(report2.value().deltas_applied, 1);
  EXPECT_EQ(dead.accepted(), 0);  // nothing stranded, nothing quarantined

  for (size_t i = 250; i < events.size(); ++i) Feed(*log2, third, events[i]);
  ckpt::Writer a, b;
  third.Checkpoint(a);
  PartitionedTPStream ref(spec, {}, nullptr);
  for (const Event& e : events) ref.Push(e);
  ref.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(RecoveryManager, DiskFullCheckpointFailsCleanAndForcesFullNext) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(200, 27, /*keys=*/10);

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 8;
  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream engine(spec, {}, nullptr);
  for (size_t i = 0; i < 100; ++i) Feed(*log, engine, events[i]);
  ASSERT_TRUE(mgr->Checkpoint(engine).ok());  // gen 1, full
  for (size_t i = 100; i < 150; ++i) Feed(*log, engine, events[i]);
  auto info = mgr->Checkpoint(engine);  // gen 2, delta
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().incremental);

  for (size_t i = 150; i < 180; ++i) Feed(*log, engine, events[i]);
  fs.set_enospc_after_bytes(fs.total_appended() + 16);
  auto failed = mgr->Checkpoint(engine);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(failed.status().message().find("byte"), std::string::npos);
  // No half-written generation file, temp or final, may remain.
  EXPECT_FALSE(fs.HasFile("/wal/ckpt/ckpt-00000000000000000003-delta.tpc"));
  EXPECT_FALSE(
      fs.HasFile("/wal/ckpt/ckpt-00000000000000000003-delta.tpc.tmp"));

  fs.clear_enospc();
  for (size_t i = 180; i < 200; ++i) Feed(*log, engine, events[i]);
  auto after = mgr->Checkpoint(engine);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().incremental);  // forced full after failure
  EXPECT_EQ(after.value().generation, 3u);

  // And nothing was lost: recovery lands on the new full.
  auto log2 = MustOpenLog(&fs, kLogDir);
  auto mgr2 = MustOpenManager(&fs, kCkptDir, log2.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  auto report = mgr2->Recover(second);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().generation, 3u);
  EXPECT_EQ(report.value().offset, 200u);
  ckpt::Writer a, b;
  second.Checkpoint(a);
  engine.Checkpoint(b);
  EXPECT_EQ(a.buffer(), b.buffer());
}

TEST(RecoveryManager, ChainSurvivesManagerRestartBetweenCheckpoints) {
  // A manager reopened mid-chain (process restart without a crash, or a
  // crash right after a checkpoint) must not emit deltas against a chain
  // hash it no longer knows: the first post-restart checkpoint is full.
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(150, 28, /*keys=*/8);

  log::MemFileSystem fs;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 8;
  auto log = MustOpenLog(&fs, kLogDir);
  PartitionedTPStream engine(spec, {}, nullptr);
  {
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
    for (size_t i = 0; i < 100; ++i) Feed(*log, engine, events[i]);
    ASSERT_TRUE(mgr->Checkpoint(engine).ok());
  }
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  for (size_t i = 100; i < 150; ++i) Feed(*log, engine, events[i]);
  auto info = mgr->Checkpoint(engine);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().incremental);
  EXPECT_EQ(info.value().generation, 2u);
}

// --- checkpoint checksum footer (satellite) --------------------------------

TEST(CheckpointChecksum, SealedBlobRoundtripsAndDetectsFlips) {
  ckpt::Writer w;
  w.Envelope(7);
  w.Str("payload bytes");
  w.SealChecksum();
  const std::string blob = w.Take();

  std::string_view payload;
  ASSERT_TRUE(ckpt::VerifyAndStripChecksum(blob, &payload).ok());
  EXPECT_EQ(payload.size(), blob.size() - 8);

  // Any flip in the sealed body or the CRC field is a deterministic
  // checksum mismatch. A flip inside the footer *magic* is the one spot
  // auto-detection cannot tell from a legacy (unchecksummed) blob — it
  // downgrades to the legacy path instead of failing.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] ^= 0x04;
    Status s = ckpt::VerifyAndStripChecksum(bad, &payload);
    const bool in_footer_magic =
        i >= blob.size() - 8 && i < blob.size() - 4;
    if (in_footer_magic) {
      EXPECT_TRUE(s.ok()) << "flip at byte " << i;
      EXPECT_EQ(payload, std::string_view(bad));  // treated as legacy
    } else {
      EXPECT_FALSE(s.ok()) << "flip at byte " << i;
      EXPECT_EQ(s.code(), StatusCode::kParseError);
      EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
    }
  }
  ckpt::ResetLegacyUnchecksummedReads();
}

TEST(CheckpointChecksum, LegacyUnchecksummedBlobsStillReadableAndCounted) {
  const QuerySpec spec = SensorSpec();
  TPStreamOperator source(spec, {}, nullptr);
  for (const Event& e : MakeStream(80, 29)) source.Push(e);
  ckpt::Writer w;
  source.Checkpoint(w);  // component checkpoint: never sealed
  const std::string legacy = w.buffer();

  ckpt::ResetLegacyUnchecksummedReads();
  std::string_view payload;
  ASSERT_TRUE(ckpt::VerifyAndStripChecksum(legacy, &payload).ok());
  EXPECT_EQ(payload, std::string_view(legacy));  // accepted verbatim
  EXPECT_EQ(ckpt::LegacyUnchecksummedReads(), 1u);

  // The legacy bytes restore exactly as before the footer existed.
  TPStreamOperator restored(spec, {}, nullptr);
  ckpt::Reader r(payload);
  ASSERT_TRUE(restored.Restore(r).ok());
  EXPECT_EQ(restored.num_events(), source.num_events());

  // Sealed blobs do not touch the legacy counter.
  ckpt::Writer sealed;
  source.Checkpoint(sealed);
  sealed.SealChecksum();
  ASSERT_TRUE(ckpt::VerifyAndStripChecksum(sealed.buffer(), &payload).ok());
  EXPECT_EQ(ckpt::LegacyUnchecksummedReads(), 1u);
  ckpt::ResetLegacyUnchecksummedReads();
}

// --- metrics ---------------------------------------------------------------

TEST(RecoveryManager, PublishesRecoveryMetrics) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(200, 30, /*keys=*/6);

  log::MemFileSystem fs;
  obs::MetricsRegistry metrics;
  log::RecoveryManager::Options options;
  options.full_snapshot_interval = 4;
  options.metrics = &metrics;
  {
    auto log = MustOpenLog(&fs, kLogDir);
    auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
    PartitionedTPStream engine(spec, {}, nullptr);
    for (size_t i = 0; i < events.size(); ++i) {
      Feed(*log, engine, events[i]);
      if ((i + 1) % 50 == 0) ASSERT_TRUE(mgr->Checkpoint(engine).ok());
    }
  }
  EXPECT_EQ(metrics.GetCounter("recovery.checkpoints")->value(), 4);
  EXPECT_EQ(metrics.GetCounter("recovery.full_checkpoints")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("recovery.delta_checkpoints")->value(), 3);
  EXPECT_GT(metrics.GetCounter("recovery.checkpoint_bytes")->value(), 0);

  auto log = MustOpenLog(&fs, kLogDir);
  auto mgr = MustOpenManager(&fs, kCkptDir, log.get(), options);
  PartitionedTPStream second(spec, {}, nullptr);
  ASSERT_TRUE(mgr->Recover(second).ok());
  EXPECT_EQ(metrics.GetCounter("recovery.recoveries")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("recovery.replayed_events")->value(), 0);
}

}  // namespace
}  // namespace tpstream
