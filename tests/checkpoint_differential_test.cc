// Replay-from-offset recovery differential (Durability contract): kill
// the engine at an arbitrary event-log offset, restore the checkpoint
// into a fresh instance, replay the input from the recorded offset — the
// combined match stream, the logical counters/statistics and the final
// re-checkpoint bytes must all be identical to an uninterrupted run.
// Exercised across in-order, out-of-order (reorder pipeline) and
// overloaded (eviction under hard caps) workloads, and across the
// operator, partitioned, query-group and parallel surfaces.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serde.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "multi/query_group.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"speed", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble},
                 Field{"key", ValueType::kInt}});
}

/// Two-symbol overlap query with an average aggregate, so checkpoints
/// carry live aggregate state (sum/count) alongside the matcher state.
QuerySpec SensorSpec(bool partitioned = false) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", Gt(FieldRef(0, "speed"), Literal(0.55)))
      .Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
      .Relate("A", Relation::kOverlaps, "B")
      .Within(60)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_temp", "B", AggKind::kAvg, "temp");
  if (partitioned) qb.PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

/// Deterministic sensor stream: strictly increasing timestamps, values
/// random-walked so situations open and close at staggered instants.
std::vector<Event> MakeStream(int n, uint64_t seed, int num_keys = 1) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Event> events;
  events.reserve(n);
  double speed = 0.5, temp = 0.5;
  for (int i = 0; i < n; ++i) {
    speed = std::clamp(speed + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    temp = std::clamp(temp + (uni(rng) - 0.5) * 0.4, 0.0, 1.0);
    const int64_t key = static_cast<int64_t>(i % num_keys);
    events.push_back(
        Event({Value(speed), Value(temp), Value(key)}, i + 1));
  }
  return events;
}

/// Bounded disorder: reverses each group of `k` consecutive events, so
/// lateness is at most k-1 ticks (must stay within the reorder slack).
std::vector<Event> Disorder(std::vector<Event> events, int k) {
  for (size_t i = 0; i + k <= events.size(); i += k) {
    std::reverse(events.begin() + i, events.begin() + i + k);
  }
  return events;
}

void ExpectSameOutputs(const std::vector<Event>& a,
                       const std::vector<Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "output " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << "output " << i;
  }
}

constexpr int kStreamLen = 400;
const std::vector<size_t> kKillOffsets = {1, 133, 257, 399};

/// The operator-level differential: run `events` uninterrupted, then for
/// every kill offset checkpoint/kill/restore/replay and compare the
/// match stream, the counters and the final checkpoint bytes.
void RunOperatorDifferential(const QuerySpec& spec,
                             const TPStreamOperator::Options& options,
                             const std::vector<Event>& events) {
  std::vector<Event> ref_outputs;
  TPStreamOperator ref(spec, options,
                       [&](const Event& e) { ref_outputs.push_back(e); });
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer ref_final;
  ref.Checkpoint(ref_final);

  for (const size_t kill : kKillOffsets) {
    ASSERT_LT(kill, events.size());
    std::vector<Event> outputs;
    ckpt::Writer w;
    {
      // First incarnation: dies (scope exit) right after the checkpoint.
      TPStreamOperator first(spec, options,
                             [&](const Event& e) { outputs.push_back(e); });
      for (size_t i = 0; i < kill; ++i) first.Push(events[i]);
      first.Checkpoint(w);
    }
    TPStreamOperator second(spec, options,
                            [&](const Event& e) { outputs.push_back(e); });
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    ASSERT_TRUE(second.Restore(r, &offset).ok()) << r.status().ToString();
    ASSERT_EQ(offset, kill);
    for (size_t i = offset; i < events.size(); ++i) second.Push(events[i]);

    ExpectSameOutputs(outputs, ref_outputs);
    EXPECT_EQ(second.num_events(), ref.num_events());
    EXPECT_EQ(second.num_matches(), ref.num_matches());
    EXPECT_EQ(second.shed_situations(), ref.shed_situations());
    EXPECT_EQ(second.lost_match_upper_bound(), ref.lost_match_upper_bound());
    EXPECT_EQ(second.stats().buffer_emas(), ref.stats().buffer_emas());
    EXPECT_EQ(second.stats().selectivity_emas(),
              ref.stats().selectivity_emas());
    EXPECT_EQ(second.CurrentOrder(), ref.CurrentOrder());

    ckpt::Writer final_ckpt;
    second.Checkpoint(final_ckpt);
    EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer())
        << "kill@" << kill << ": recovered state diverged";
  }
}

TEST(CheckpointDifferential, OperatorInOrder) {
  RunOperatorDifferential(SensorSpec(), {}, MakeStream(kStreamLen, 11));
}

TEST(CheckpointDifferential, OperatorInOrderBaselineMatcher) {
  TPStreamOperator::Options options;
  options.low_latency = false;
  RunOperatorDifferential(SensorSpec(), options, MakeStream(kStreamLen, 12));
}

TEST(CheckpointDifferential, OperatorInOrderFixedOrder) {
  TPStreamOperator::Options options;
  options.fixed_order = std::vector<int>{1, 0};
  RunOperatorDifferential(SensorSpec(), options, MakeStream(kStreamLen, 13));
}

TEST(CheckpointDifferential, OperatorOverloaded) {
  // Hard caps small enough that eviction fires constantly: shed
  // accounting and the capped buffers must survive kill/recover too.
  TPStreamOperator::Options options;
  options.overload.max_situations_per_buffer = 3;
  options.overload.max_trigger_pool = 2;
  RunOperatorDifferential(SensorSpec(), options, MakeStream(kStreamLen, 14));
}

TEST(CheckpointDifferential, PipelineOutOfOrder) {
  const std::vector<Event> events =
      Disorder(MakeStream(kStreamLen, 15), /*k=*/4);
  const Duration slack = 8;  // covers the max lateness of 3

  const auto build = [&](pipeline::Pipeline& p, std::vector<Event>* sink) {
    p.Reorder(slack).Detect(SensorSpec()).Sink(
        [sink](const Event& e) { sink->push_back(e); });
    ASSERT_TRUE(p.Finalize().ok());
  };

  std::vector<Event> ref_outputs;
  pipeline::Pipeline ref(SensorSchema());
  build(ref, &ref_outputs);
  for (const Event& e : events) ref.Push(e);
  ref.Finish();
  ckpt::Writer ref_final;
  ref.Checkpoint(ref_final);

  for (const size_t kill : kKillOffsets) {
    std::vector<Event> outputs;
    ckpt::Writer w;
    {
      pipeline::Pipeline first(SensorSchema());
      build(first, &outputs);
      for (size_t i = 0; i < kill; ++i) first.Push(events[i]);
      // No Finish() before the checkpoint: the kill happens with events
      // still buffered inside the reorder stage.
      first.Checkpoint(w);
    }
    pipeline::Pipeline second(SensorSchema());
    build(second, &outputs);
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    ASSERT_TRUE(second.Restore(r, &offset).ok()) << r.status().ToString();
    ASSERT_EQ(offset, kill);
    for (size_t i = offset; i < events.size(); ++i) second.Push(events[i]);
    second.Finish();

    ExpectSameOutputs(outputs, ref_outputs);
    ckpt::Writer final_ckpt;
    second.Checkpoint(final_ckpt);
    EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer())
        << "kill@" << kill << ": recovered pipeline state diverged";
  }
}

TEST(CheckpointDifferential, PartitionedStream) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(kStreamLen, 16, /*keys=*/5);

  std::vector<Event> ref_outputs;
  PartitionedTPStream ref(spec, {},
                          [&](const Event& e) { ref_outputs.push_back(e); });
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer ref_final;
  ref.Checkpoint(ref_final);

  for (const size_t kill : kKillOffsets) {
    std::vector<Event> outputs;
    ckpt::Writer w;
    {
      PartitionedTPStream first(
          spec, {}, [&](const Event& e) { outputs.push_back(e); });
      for (size_t i = 0; i < kill; ++i) first.Push(events[i]);
      first.Checkpoint(w);
    }
    PartitionedTPStream second(
        spec, {}, [&](const Event& e) { outputs.push_back(e); });
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    ASSERT_TRUE(second.Restore(r, &offset).ok()) << r.status().ToString();
    ASSERT_EQ(offset, kill);
    for (size_t i = offset; i < events.size(); ++i) second.Push(events[i]);

    ExpectSameOutputs(outputs, ref_outputs);
    EXPECT_EQ(second.num_events(), ref.num_events());
    EXPECT_EQ(second.num_matches(), ref.num_matches());
    EXPECT_EQ(second.num_partitions(), ref.num_partitions());
    ckpt::Writer final_ckpt;
    second.Checkpoint(final_ckpt);
    EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer());
  }
}

TEST(CheckpointDifferential, QueryGroup) {
  const std::vector<Event> events = MakeStream(kStreamLen, 17);

  // Two queries sharing one definition (B) so the shared deriver's
  // dedup + fan-out state is exercised, not just a trivial group.
  const auto make_specs = [] {
    std::vector<QuerySpec> specs;
    specs.push_back(SensorSpec());
    QueryBuilder qb(SensorSchema());
    qb.Define("B", Gt(FieldRef(1, "temp"), Literal(0.45)))
        .Within(40)
        .Return("n_b", "B", AggKind::kCount);
    auto spec = qb.Build();
    EXPECT_TRUE(spec.ok());
    specs.push_back(spec.value());
    return specs;
  };

  const auto build = [&](multi::QueryGroup& group,
                         std::vector<std::vector<Event>>* sinks) {
    sinks->resize(2);
    int qid = 0;
    for (QuerySpec& spec : make_specs()) {
      auto* sink = &(*sinks)[qid++];
      ASSERT_TRUE(group
                      .AddQuery(std::move(spec),
                                [sink](const Event& e) {
                                  sink->push_back(e);
                                })
                      .ok());
    }
  };

  std::vector<std::vector<Event>> ref_outputs;
  multi::QueryGroup ref;
  build(ref, &ref_outputs);
  for (const Event& e : events) ref.Push(e);
  ckpt::Writer ref_final;
  ref.Checkpoint(ref_final);

  for (const size_t kill : kKillOffsets) {
    std::vector<std::vector<Event>> outputs;
    ckpt::Writer w;
    {
      multi::QueryGroup first;
      build(first, &outputs);
      for (size_t i = 0; i < kill; ++i) first.Push(events[i]);
      first.Checkpoint(w);
    }
    multi::QueryGroup second;
    std::vector<std::vector<Event>> tail_outputs;
    build(second, &tail_outputs);
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    ASSERT_TRUE(second.Restore(r, &offset).ok()) << r.status().ToString();
    ASSERT_EQ(offset, kill);
    for (size_t i = offset; i < events.size(); ++i) second.Push(events[i]);

    for (int q = 0; q < 2; ++q) {
      std::vector<Event> combined = outputs[q];
      combined.insert(combined.end(), tail_outputs[q].begin(),
                      tail_outputs[q].end());
      ExpectSameOutputs(combined, ref_outputs[q]);
      EXPECT_EQ(second.num_matches(q), ref.num_matches(q));
    }
    EXPECT_EQ(second.num_events(), ref.num_events());
    ckpt::Writer final_ckpt;
    second.Checkpoint(final_ckpt);
    EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer());
  }
}

TEST(CheckpointDifferential, ParallelQuiescent) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  const std::vector<Event> events = MakeStream(kStreamLen, 18, /*keys=*/7);

  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;
  options.batch_size = 16;

  // Worker interleaving makes the global output order nondeterministic;
  // per-partition order is deterministic, so compare sorted streams.
  const auto sorted = [](std::vector<Event> events_in) {
    std::sort(events_in.begin(), events_in.end(),
              [](const Event& a, const Event& b) {
                if (a.t != b.t) return a.t < b.t;
                return a.payload[0].AsInt() < b.payload[0].AsInt();
              });
    return events_in;
  };

  std::vector<Event> ref_outputs;
  std::mutex ref_mutex;
  ckpt::Writer ref_final;
  int64_t ref_matches = 0;
  size_t ref_partitions = 0;
  {
    parallel::ParallelTPStream ref(spec, options, [&](const Event& e) {
      std::lock_guard<std::mutex> lock(ref_mutex);
      ref_outputs.push_back(e);
    });
    for (const Event& e : events) ref.Push(e);
    ref.Checkpoint(ref_final);  // quiescent: flushes first
    ref_matches = ref.num_matches();
    ref_partitions = ref.num_partitions();
  }

  for (const size_t kill : kKillOffsets) {
    std::vector<Event> outputs;
    std::mutex mutex;
    const auto sink = [&](const Event& e) {
      std::lock_guard<std::mutex> lock(mutex);
      outputs.push_back(e);
    };
    ckpt::Writer w;
    {
      parallel::ParallelTPStream first(spec, options, sink);
      for (size_t i = 0; i < kill; ++i) first.Push(events[i]);
      first.Checkpoint(w);
    }
    parallel::ParallelTPStream second(spec, options, sink);
    ckpt::Reader r(w.buffer());
    uint64_t offset = 0;
    ASSERT_TRUE(second.Restore(r, &offset).ok()) << r.status().ToString();
    ASSERT_EQ(offset, kill);
    for (size_t i = offset; i < events.size(); ++i) second.Push(events[i]);
    second.Flush();

    ExpectSameOutputs(sorted(outputs), sorted(ref_outputs));
    EXPECT_EQ(second.num_events(), static_cast<int64_t>(events.size()));
    EXPECT_EQ(second.num_matches(), ref_matches);
    EXPECT_EQ(second.num_partitions(), ref_partitions);
    ckpt::Writer final_ckpt;
    second.Checkpoint(final_ckpt);
    EXPECT_EQ(final_ckpt.buffer(), ref_final.buffer());
  }
}

TEST(CheckpointDifferential, WorkerCountMismatchIsRejected) {
  const QuerySpec spec = SensorSpec(/*partitioned=*/true);
  parallel::ParallelTPStream::Options two;
  two.num_workers = 2;
  parallel::ParallelTPStream source(spec, two, nullptr);
  for (const Event& e : MakeStream(50, 19, 3)) source.Push(e);
  ckpt::Writer w;
  source.Checkpoint(w);

  parallel::ParallelTPStream::Options three;
  three.num_workers = 3;
  parallel::ParallelTPStream target(spec, three, nullptr);
  ckpt::Reader r(w.buffer());
  EXPECT_FALSE(target.Restore(r).ok());
}

}  // namespace
}  // namespace tpstream
