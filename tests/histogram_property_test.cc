// Property tests for obs::LatencyHistogram against a naive sorted-vector
// reference implementation: quantile error is bounded by the bucket
// geometry, merging snapshots is exactly equivalent to recording into one
// histogram, and out-of-range values saturate into the underflow/overflow
// buckets instead of invoking UB.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tpstream {
namespace obs {
namespace {

/// Exact nearest-rank quantile — the definition Quantile() approximates.
int64_t ReferenceQuantile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const int64_t n = static_cast<int64_t>(values.size());
  int64_t rank = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::clamp<int64_t>(rank, 1, n);
  return values[rank - 1];
}

std::vector<int64_t> RandomValues(std::mt19937_64& rng, int n) {
  // Mix of scales so every bucket regime is exercised: exact buckets
  // (0..15), small octaves, and large octaves near the overflow bound.
  std::vector<int64_t> values;
  values.reserve(n);
  std::uniform_int_distribution<int> shift(0, LatencyHistogram::kMaxExponent - 1);
  for (int i = 0; i < n; ++i) {
    const int64_t base = int64_t{1} << shift(rng);
    values.push_back(static_cast<int64_t>(rng() % (2 * base)));
  }
  return values;
}

TEST(HistogramPropertyTest, BucketGeometryPartitionsTheRange) {
  // Buckets tile [0, 2^40) without gaps or overlap, and BucketIndex is
  // consistent with the bounds.
  int64_t expected_lower = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t lower = LatencyHistogram::BucketLowerBound(i);
    const int64_t upper = LatencyHistogram::BucketUpperBound(i);
    ASSERT_EQ(lower, expected_lower) << "gap before bucket " << i;
    ASSERT_LE(lower, upper);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lower), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(upper), i);
    expected_lower = upper + 1;
  }
  EXPECT_EQ(expected_lower, LatencyHistogram::kOverflowThreshold);
}

TEST(HistogramPropertyTest, QuantileErrorBoundedByBucketWidth) {
  std::mt19937_64 rng(42);
  const double quantiles[] = {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0};
  for (int round = 0; round < 30; ++round) {
    const int n = 1 + static_cast<int>(rng() % 2000);
    const std::vector<int64_t> values = RandomValues(rng, n);
    LatencyHistogram hist;
    for (int64_t v : values) hist.Record(v);
    const HistogramSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, n);

    for (double p : quantiles) {
      const int64_t ref = ReferenceQuantile(values, p);
      const int64_t got = snap.Quantile(p);
      // The reported value is the upper bound of the bucket holding the
      // rank (capped at the recorded max): never below the true
      // quantile, and above it by at most that bucket's width.
      EXPECT_GE(got, ref) << "p=" << p << " n=" << n;
      const int bucket = LatencyHistogram::BucketIndex(ref);
      const int64_t width = LatencyHistogram::BucketUpperBound(bucket) -
                            LatencyHistogram::BucketLowerBound(bucket);
      EXPECT_LE(got - ref, width) << "p=" << p << " n=" << n;
      // Which implies the documented <= 1/8 relative error bound.
      if (ref > 0) {
        EXPECT_LE(static_cast<double>(got - ref),
                  static_cast<double>(ref) / 8.0 + 1.0);
      }
    }
    EXPECT_EQ(snap.min, *std::min_element(values.begin(), values.end()));
    EXPECT_EQ(snap.max, *std::max_element(values.begin(), values.end()));
    int64_t sum = 0;
    for (int64_t v : values) sum += v;
    EXPECT_EQ(snap.sum, sum);
  }
}

TEST(HistogramPropertyTest, MergeEqualsRecordingIntoOne) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::vector<int64_t> a =
        RandomValues(rng, 1 + static_cast<int>(rng() % 500));
    const std::vector<int64_t> b =
        RandomValues(rng, static_cast<int>(rng() % 500));

    LatencyHistogram ha, hb, hall;
    for (int64_t v : a) {
      ha.Record(v);
      hall.Record(v);
    }
    for (int64_t v : b) {
      hb.Record(v);
      hall.Record(v);
    }
    HistogramSnapshot merged = ha.Snapshot();
    merged.Merge(hb.Snapshot());
    EXPECT_EQ(merged, hall.Snapshot()) << "round " << round;

    // Merging with an empty snapshot is the identity, both ways.
    HistogramSnapshot id = ha.Snapshot();
    id.Merge(HistogramSnapshot{});
    EXPECT_EQ(id, ha.Snapshot());
    HistogramSnapshot from_empty;
    from_empty.Merge(ha.Snapshot());
    EXPECT_EQ(from_empty, ha.Snapshot());
  }
}

TEST(HistogramPropertyTest, OutOfRangeValuesSaturate) {
  LatencyHistogram hist;
  hist.Record(-5);
  hist.Record(-1);
  hist.Record(LatencyHistogram::kOverflowThreshold);      // 2^40
  hist.Record(LatencyHistogram::kOverflowThreshold * 2);  // 2^41
  hist.Record(std::numeric_limits<int64_t>::max());
  hist.Record(std::numeric_limits<int64_t>::min());
  hist.Record(100);  // one in-range value

  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 7);
  EXPECT_EQ(snap.underflow, 3u);
  EXPECT_EQ(snap.overflow, 3u);
  ASSERT_EQ(snap.buckets.size(), 1u);
  EXPECT_EQ(snap.buckets[0].count, 1u);
  EXPECT_LE(snap.buckets[0].lower, 100);
  EXPECT_GE(snap.buckets[0].upper, 100);
  // Raw extrema are exact even for clamped recordings.
  EXPECT_EQ(snap.min, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(snap.max, std::numeric_limits<int64_t>::max());
  // Low quantiles land in the underflow bucket -> exact minimum; high
  // quantiles land in the overflow bucket -> exact maximum.
  EXPECT_EQ(snap.Quantile(1), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(snap.Quantile(99), std::numeric_limits<int64_t>::max());
}

TEST(HistogramPropertyTest, ResetClearsEverything) {
  LatencyHistogram hist;
  for (int64_t v : {int64_t{3}, int64_t{1000}, int64_t{-2}}) hist.Record(v);
  hist.Reset();
  EXPECT_EQ(hist.Snapshot(), HistogramSnapshot{});
  hist.Record(5);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 5);
}

TEST(HistogramPropertyTest, ConcurrentRecordingMatchesSequential) {
  // N threads record disjoint slices of one value set into a shared
  // histogram; the result must equal single-threaded recording of the
  // whole set. Runs under TSan via the `concurrency` label.
  std::mt19937_64 rng(1234);
  const std::vector<int64_t> values = RandomValues(rng, 40000);
  constexpr int kThreads = 4;

  LatencyHistogram shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < values.size(); i += kThreads) {
        shared.Record(values[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  LatencyHistogram sequential;
  for (int64_t v : values) sequential.Record(v);
  EXPECT_EQ(shared.Snapshot(), sequential.Snapshot());
}

}  // namespace
}  // namespace obs
}  // namespace tpstream
