#include "ooo/reorder_buffer.h"

#include <random>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "query/builder.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace {

Event Ev(TimePoint t) { return Event({Value(true)}, t); }

TEST(ReorderBufferTest, ReordersWithinSlack) {
  ooo::ReorderBuffer reorder({/*slack=*/5});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  // Arrival order: 3, 1, 2, 9 (releases up to 9-5=4), 7, 15, flush.
  for (TimePoint t : {3, 1, 2, 9, 7, 15}) reorder.Push(Ev(t), sink);
  reorder.Flush(sink);

  EXPECT_EQ(released, (std::vector<TimePoint>{1, 2, 3, 7, 9, 15}));
  EXPECT_EQ(reorder.num_reordered(), 3);  // 1, 2 and 7 arrived late
  EXPECT_EQ(reorder.num_dropped(), 0);
}

TEST(ReorderBufferTest, DropsEventsBeyondSlack) {
  ooo::ReorderBuffer reorder({/*slack=*/2});
  std::vector<TimePoint> released;
  std::vector<TimePoint> late;
  reorder.SetLateCallback([&](const Event& e) { late.push_back(e.t); });
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  reorder.Push(Ev(10), sink);  // watermark 8
  reorder.Push(Ev(20), sink);  // releases 10; watermark 18
  reorder.Push(Ev(5), sink);   // older than last release: dropped
  reorder.Flush(sink);

  EXPECT_EQ(released, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(late, (std::vector<TimePoint>{5}));
  EXPECT_EQ(reorder.num_dropped(), 1);
}

// Regression for the move-Push late path: the late callback must observe
// the event *before* it is moved anywhere, and the dead-letter sink must
// then receive the same intact event (not a moved-from husk).
TEST(ReorderBufferTest, LateMovePushDeliversIntactEvent) {
  robust::CollectingDeadLetterSink dead_letter(8);
  ooo::ReorderBuffer::Options options;
  options.slack = 2;
  options.dead_letter = &dead_letter;
  ooo::ReorderBuffer reorder(options);

  int late_calls = 0;
  reorder.SetLateCallback([&](const Event& e) {
    ++late_calls;
    EXPECT_EQ(e.t, 5);
    ASSERT_EQ(e.payload.size(), 1u);
    EXPECT_TRUE(e.payload[0].AsBool());
  });
  auto sink = [](const Event&) {};

  reorder.Push(Ev(10), sink);
  reorder.Push(Ev(20), sink);
  Event late_event = Ev(5);
  reorder.Push(std::move(late_event), sink);  // move overload, late

  EXPECT_EQ(late_calls, 1);
  const auto items = dead_letter.Items();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, robust::DeadLetterKind::kLateEvent);
  ASSERT_EQ(items[0].events.size(), 1u);
  EXPECT_EQ(items[0].events[0].t, 5);
  ASSERT_EQ(items[0].events[0].payload.size(), 1u);
  EXPECT_TRUE(items[0].events[0].payload[0].AsBool());
  EXPECT_FALSE(items[0].detail.empty());
}

// The copy-Push overload must quarantine a copy and leave the caller's
// event untouched.
TEST(ReorderBufferTest, LateCopyPushLeavesCallerEventUntouched) {
  robust::CollectingDeadLetterSink dead_letter(8);
  ooo::ReorderBuffer::Options options;
  options.slack = 2;
  options.dead_letter = &dead_letter;
  ooo::ReorderBuffer reorder(options);
  auto sink = [](const Event&) {};

  reorder.Push(Ev(10), sink);
  reorder.Push(Ev(20), sink);
  const Event late_event = Ev(5);
  reorder.Push(late_event, sink);

  ASSERT_EQ(late_event.payload.size(), 1u);
  EXPECT_TRUE(late_event.payload[0].AsBool());
  const auto items = dead_letter.Items();
  ASSERT_EQ(items.size(), 1u);
  ASSERT_EQ(items[0].events.size(), 1u);
  EXPECT_EQ(items[0].events[0].t, 5);
}

TEST(ReorderBufferTest, TiesAcrossPartitionsPassThrough) {
  ooo::ReorderBuffer reorder({/*slack=*/0});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };
  reorder.Push(Ev(4), sink);
  reorder.Push(Ev(4), sink);  // same tick, different partition: kept
  reorder.Push(Ev(5), sink);
  reorder.Flush(sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{4, 4, 5}));
  EXPECT_EQ(reorder.num_dropped(), 0);
}

TEST(ReorderBufferTest, TieWithLastReleaseIsAcceptedStrictlyOlderDropped) {
  ooo::ReorderBuffer reorder({/*slack=*/0});
  std::vector<TimePoint> released;
  std::vector<TimePoint> late;
  reorder.SetLateCallback([&](const Event& e) { late.push_back(e.t); });
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  reorder.Push(Ev(10), sink);  // released immediately (slack 0)
  reorder.Push(Ev(10), sink);  // t == last release: accepted and released
  reorder.Push(Ev(9), sink);   // strictly older: dropped + reported
  reorder.Push(Ev(11), sink);

  EXPECT_EQ(released, (std::vector<TimePoint>{10, 10, 11}));
  EXPECT_EQ(late, (std::vector<TimePoint>{9}));
  EXPECT_EQ(reorder.num_dropped(), 1);
}

TEST(ReorderBufferTest, FlushLeavesWatermarkConsistent) {
  ooo::ReorderBuffer reorder({/*slack=*/100});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  for (TimePoint t : {10, 30, 20}) reorder.Push(Ev(t), sink);
  EXPECT_TRUE(released.empty());  // all within slack of max_seen
  EXPECT_EQ(reorder.buffered(), 3u);

  reorder.Flush(sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{10, 20, 30}));
  EXPECT_EQ(reorder.buffered(), 0u);
  // The watermark advanced to the last released timestamp: ties are
  // still accepted afterwards, strictly older events are late.
  EXPECT_EQ(reorder.watermark(), 30);
  reorder.Push(Ev(30), sink);
  reorder.Push(Ev(29), sink);
  reorder.Flush(sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{10, 20, 30, 30}));
  EXPECT_EQ(reorder.num_dropped(), 1);
}

// Regression: `watermark = max_seen - slack` used to be a raw signed
// subtraction, which is UB (and wrapped to a huge positive watermark,
// releasing everything prematurely) for timestamps within `slack` of
// kTimeMin. The subtraction must saturate. Run under UBSan to verify.
TEST(ReorderBufferTest, TimeMinAdjacentTimestampsSaturateTheWatermark) {
  ooo::ReorderBuffer reorder({/*slack=*/100});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  // kTimeMin itself ties with the initial watermark (degenerate but
  // well-defined: released immediately, like any tie).
  reorder.Push(Ev(kTimeMin), sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{kTimeMin}));

  // kTimeMin + 1 must be HELD: no event >= t + slack has been seen. The
  // wrapped watermark would have released it here.
  reorder.Push(Ev(kTimeMin + 1), sink);
  EXPECT_EQ(released.size(), 1u);
  EXPECT_EQ(reorder.buffered(), 1u);
  EXPECT_EQ(reorder.watermark(), kTimeMin);

  // Once max_seen clears kTimeMin + slack the watermark advances
  // normally and releases the held event.
  reorder.Push(Ev(kTimeMin + 150), sink);
  EXPECT_EQ(released,
            (std::vector<TimePoint>{kTimeMin, kTimeMin + 1}));
  EXPECT_EQ(reorder.watermark(), kTimeMin + 50);

  reorder.Flush(sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{kTimeMin, kTimeMin + 1,
                                              kTimeMin + 150}));
  EXPECT_EQ(reorder.num_dropped(), 0);
}

TEST(ReorderBufferTest, NegativeSlackIsClampedToZero) {
  ooo::ReorderBuffer reorder({/*slack=*/-5});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };
  reorder.Push(Ev(7), sink);  // slack 0: released immediately, no UB
  EXPECT_EQ(released, (std::vector<TimePoint>{7}));
  EXPECT_EQ(reorder.watermark(), 7);
}

// Shuffled stream + sufficient slack must reproduce the in-order results
// of the operator exactly.
TEST(ReorderBufferTest, OperatorResultsMatchInOrderRun) {
  Schema schema({Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "flag"))
      .Define("B", Not(FieldRef(0, "flag")))
      .Relate("A", Relation::kMeets, "B")
      .Within(500)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  // A boolean trace with several phases.
  std::mt19937_64 rng(5);
  std::vector<Event> events;
  bool value = false;
  std::bernoulli_distribution flip(0.1);
  for (TimePoint t = 1; t <= 2000; ++t) {
    if (flip(rng)) value = !value;
    events.push_back(Event({Value(value)}, t));
  }

  std::vector<TimePoint> in_order;
  {
    TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
      in_order.push_back(e.t);
    });
    for (const Event& e : events) op.Push(e);
  }

  // Shuffle within windows of 8 events, reorder with slack 8.
  std::vector<Event> shuffled = events;
  for (size_t i = 0; i + 8 <= shuffled.size(); i += 8) {
    std::shuffle(shuffled.begin() + i, shuffled.begin() + i + 8, rng);
  }
  std::vector<TimePoint> reordered_result;
  {
    TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
      reordered_result.push_back(e.t);
    });
    ooo::ReorderBuffer reorder({/*slack=*/8});
    auto sink = [&](const Event& e) { op.Push(e); };
    for (const Event& e : shuffled) reorder.Push(e, sink);
    reorder.Flush(sink);
    EXPECT_EQ(reorder.num_dropped(), 0);
    EXPECT_GT(reorder.num_reordered(), 0);
  }
  EXPECT_EQ(reordered_result, in_order);
}

}  // namespace
}  // namespace tpstream
