#include "ooo/reorder_buffer.h"

#include <random>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Event Ev(TimePoint t) { return Event({Value(true)}, t); }

TEST(ReorderBufferTest, ReordersWithinSlack) {
  ooo::ReorderBuffer reorder({/*slack=*/5});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  // Arrival order: 3, 1, 2, 9 (releases up to 9-5=4), 7, 15, flush.
  for (TimePoint t : {3, 1, 2, 9, 7, 15}) reorder.Push(Ev(t), sink);
  reorder.Flush(sink);

  EXPECT_EQ(released, (std::vector<TimePoint>{1, 2, 3, 7, 9, 15}));
  EXPECT_EQ(reorder.num_reordered(), 3);  // 1, 2 and 7 arrived late
  EXPECT_EQ(reorder.num_dropped(), 0);
}

TEST(ReorderBufferTest, DropsEventsBeyondSlack) {
  ooo::ReorderBuffer reorder({/*slack=*/2});
  std::vector<TimePoint> released;
  std::vector<TimePoint> late;
  reorder.SetLateCallback([&](const Event& e) { late.push_back(e.t); });
  auto sink = [&](const Event& e) { released.push_back(e.t); };

  reorder.Push(Ev(10), sink);  // watermark 8
  reorder.Push(Ev(20), sink);  // releases 10; watermark 18
  reorder.Push(Ev(5), sink);   // older than last release: dropped
  reorder.Flush(sink);

  EXPECT_EQ(released, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(late, (std::vector<TimePoint>{5}));
  EXPECT_EQ(reorder.num_dropped(), 1);
}

TEST(ReorderBufferTest, TiesAcrossPartitionsPassThrough) {
  ooo::ReorderBuffer reorder({/*slack=*/0});
  std::vector<TimePoint> released;
  auto sink = [&](const Event& e) { released.push_back(e.t); };
  reorder.Push(Ev(4), sink);
  reorder.Push(Ev(4), sink);  // same tick, different partition: kept
  reorder.Push(Ev(5), sink);
  reorder.Flush(sink);
  EXPECT_EQ(released, (std::vector<TimePoint>{4, 4, 5}));
  EXPECT_EQ(reorder.num_dropped(), 0);
}

// Shuffled stream + sufficient slack must reproduce the in-order results
// of the operator exactly.
TEST(ReorderBufferTest, OperatorResultsMatchInOrderRun) {
  Schema schema({Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "flag"))
      .Define("B", Not(FieldRef(0, "flag")))
      .Relate("A", Relation::kMeets, "B")
      .Within(500)
      .Return("n", "A", AggKind::kCount);
  auto spec = qb.Build();
  ASSERT_TRUE(spec.ok());

  // A boolean trace with several phases.
  std::mt19937_64 rng(5);
  std::vector<Event> events;
  bool value = false;
  std::bernoulli_distribution flip(0.1);
  for (TimePoint t = 1; t <= 2000; ++t) {
    if (flip(rng)) value = !value;
    events.push_back(Event({Value(value)}, t));
  }

  std::vector<TimePoint> in_order;
  {
    TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
      in_order.push_back(e.t);
    });
    for (const Event& e : events) op.Push(e);
  }

  // Shuffle within windows of 8 events, reorder with slack 8.
  std::vector<Event> shuffled = events;
  for (size_t i = 0; i + 8 <= shuffled.size(); i += 8) {
    std::shuffle(shuffled.begin() + i, shuffled.begin() + i + 8, rng);
  }
  std::vector<TimePoint> reordered_result;
  {
    TPStreamOperator op(spec.value(), {}, [&](const Event& e) {
      reordered_result.push_back(e.t);
    });
    ooo::ReorderBuffer reorder({/*slack=*/8});
    auto sink = [&](const Event& e) { op.Push(e); };
    for (const Event& e : shuffled) reorder.Push(e, sink);
    reorder.Flush(sink);
    EXPECT_EQ(reorder.num_dropped(), 0);
    EXPECT_GT(reorder.num_reordered(), 0);
  }
  EXPECT_EQ(reordered_result, in_order);
}

}  // namespace
}  // namespace tpstream
