#include "io/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace io {
namespace {

// Test shim over the out-param API: returns the fields, asserting success.
std::vector<std::string> Split(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  const Status s = SplitCsvLine(line, delimiter, &fields);
  EXPECT_TRUE(s.ok()) << s.message();
  return fields;
}

TEST(CsvSplitTest, HandlesQuotingAndEscapes) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,\"b,c\",d", ','),
            (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_EQ(Split("\"he said \"\"hi\"\"\",2", ','),
            (std::vector<std::string>{"he said \"hi\"", "2"}));
  EXPECT_EQ(Split("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("x\r", ','), (std::vector<std::string>{"x"}));
}

TEST(CsvSplitTest, ReusesFieldStorageAcrossCalls) {
  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvLine("a,b,c", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_TRUE(SplitCsvLine("longer,than,before", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"longer", "than", "before"}));
  ASSERT_TRUE(SplitCsvLine("x", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"x"}));
}

TEST(CsvSplitTest, RejectsTrailingCharactersAfterClosingQuote) {
  std::vector<std::string> fields;
  // `"ab"cd` used to silently concatenate to `abcd`.
  EXPECT_EQ(SplitCsvLine("\"ab\"cd", ',', &fields).code(),
            StatusCode::kParseError);
  EXPECT_EQ(SplitCsvLine("x,\"ab\"cd,y", ',', &fields).code(),
            StatusCode::kParseError);
  // A delimiter directly after the closing quote is fine.
  EXPECT_EQ(Split("\"ab\",cd", ','),
            (std::vector<std::string>{"ab", "cd"}));
  // CRLF after a quoted last field is fine.
  EXPECT_EQ(Split("\"ab\"\r", ','), (std::vector<std::string>{"ab"}));
}

TEST(CsvSplitTest, RejectsUnterminatedQuotedField) {
  std::vector<std::string> fields;
  EXPECT_EQ(SplitCsvLine("\"abc", ',', &fields).code(),
            StatusCode::kParseError);
  EXPECT_EQ(SplitCsvLine("a,\"b,c", ',', &fields).code(),
            StatusCode::kParseError);
}

TEST(CsvQuoteTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvQuote("plain", ','), "plain");
  EXPECT_EQ(CsvQuote("with,comma", ','), "\"with,comma\"");
  EXPECT_EQ(CsvQuote("with\"quote", ','), "\"with\"\"quote\"");
}

TEST(CsvQuoteTest, RoundTripsThroughSplit) {
  const std::vector<std::string> values = {
      "plain", "with,comma", "with\"quote", "\"fully quoted\"",
      "trailing\"", "a,\"b\",c", ""};
  for (const std::string& value : values) {
    const std::string quoted = CsvQuote(value, ',');
    std::vector<std::string> fields;
    ASSERT_TRUE(SplitCsvLine(quoted, ',', &fields).ok())
        << "value: " << value << " quoted: " << quoted;
    ASSERT_EQ(fields.size(), 1u) << "value: " << value;
    EXPECT_EQ(fields[0], value);
  }
}

TEST(CsvEventReaderTest, ReadsTypedEvents) {
  const Schema schema({
      Field{"car_id", ValueType::kInt},
      Field{"speed", ValueType::kDouble},
      Field{"active", ValueType::kBool},
      Field{"plate", ValueType::kString},
  });
  std::istringstream input(
      "timestamp,car_id,speed,active,plate,extra\n"
      "10,7,62.5,true,MR-X 1,ignored\n"
      "11,8,59.0,0,\"AB,12\",ignored\n"
      "12,9,,false,,\n");
  CsvEventReader reader(input, schema);

  Event e;
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(e.t, 10);
  EXPECT_EQ(e.payload[0].AsInt(), 7);
  EXPECT_DOUBLE_EQ(e.payload[1].AsDouble(), 62.5);
  EXPECT_TRUE(e.payload[2].AsBool());
  EXPECT_EQ(e.payload[3].AsString(), "MR-X 1");

  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(e.t, 11);
  EXPECT_FALSE(e.payload[2].AsBool());
  EXPECT_EQ(e.payload[3].AsString(), "AB,12");

  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_TRUE(e.payload[1].is_null());  // empty cell
  EXPECT_TRUE(e.payload[3].is_null());

  EXPECT_EQ(reader.Next(&e).code(), StatusCode::kNotFound);
  EXPECT_EQ(reader.rows_read(), 3);
}

TEST(CsvEventReaderTest, ErrorsAreReported) {
  const Schema schema({Field{"x", ValueType::kInt}});
  {
    std::istringstream input("time,x\n1,2\n");  // wrong timestamp column
    CsvEventReader reader(input, schema);
    Event e;
    EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  }
  {
    std::istringstream input("x,timestamp\n5,abc\n");
    CsvEventReader reader(input, schema);
    Event e;
    EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  }
  {
    std::istringstream input("");
    CsvEventReader reader(input, schema);
    Event e;
    EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  }
}

TEST(CsvEventReaderTest, RejectsMalformedInts) {
  const Schema schema({Field{"x", ValueType::kInt}});
  // Partial consumption used to be silently coerced ("12x" -> 12).
  {
    std::istringstream input("timestamp,x\n1,12x\n");
    CsvEventReader reader(input, schema);
    Event e;
    const Status s = reader.Next(&e);
    EXPECT_EQ(s.code(), StatusCode::kParseError);
    EXPECT_NE(s.message().find("row 1"), std::string::npos) << s.message();
    EXPECT_NE(s.message().find("'x'"), std::string::npos) << s.message();
  }
  // Overflow used to clamp to INT64_MAX.
  {
    std::istringstream input("timestamp,x\n1,99999999999999999999999\n");
    CsvEventReader reader(input, schema);
    Event e;
    EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  }
  // An empty cell stays a null value, not an error.
  {
    std::istringstream input("timestamp,x\n1,\n");
    CsvEventReader reader(input, schema);
    Event e;
    ASSERT_TRUE(reader.Next(&e).ok());
    EXPECT_TRUE(e.payload[0].is_null());
  }
}

TEST(CsvEventReaderTest, RejectsMalformedDoubles) {
  const Schema schema({Field{"x", ValueType::kDouble}});
  {
    std::istringstream input("timestamp,x\n1,3.5mph\n");
    CsvEventReader reader(input, schema);
    Event e;
    const Status s = reader.Next(&e);
    EXPECT_EQ(s.code(), StatusCode::kParseError);
    EXPECT_NE(s.message().find("column 'x'"), std::string::npos)
        << s.message();
  }
  {
    std::istringstream input("timestamp,x\n1,1e999999\n");  // overflow
    CsvEventReader reader(input, schema);
    Event e;
    EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  }
}

TEST(CsvEventReaderTest, RejectsTrailingGarbageOnTimestamp) {
  const Schema schema({Field{"x", ValueType::kInt}});
  std::istringstream input("timestamp,x\n10abc,1\n");
  CsvEventReader reader(input, schema);
  Event e;
  const Status s = reader.Next(&e);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("timestamp"), std::string::npos)
      << s.message();
}

TEST(CsvEventReaderTest, ReadAllForwardsEverything) {
  const Schema schema({Field{"v", ValueType::kInt}});
  std::istringstream input("timestamp,v\n1,10\n2,20\n\n3,30\n");
  CsvEventReader reader(input, schema);
  std::vector<int64_t> values;
  ASSERT_TRUE(
      reader.ReadAll([&](const Event& e) {
        values.push_back(e.payload[0].AsInt());
      }).ok());
  EXPECT_EQ(values, (std::vector<int64_t>{10, 20, 30}));
}

TEST(CsvEventReaderTest, SkipAndQuarantineDeliversGoodRowsWithContext) {
  const Schema schema({Field{"v", ValueType::kInt}});
  std::istringstream input(
      "timestamp,v\n"
      "1,10\n"
      "oops,20\n"   // row 2: bad timestamp
      "3,not_int\n" // row 3: bad typed cell
      "4,40\n");
  robust::CollectingDeadLetterSink dead_letter(16);
  obs::MetricsRegistry registry;
  CsvEventReader::Options options;
  options.on_error = CsvEventReader::OnError::kSkipAndQuarantine;
  options.dead_letter = &dead_letter;
  options.metrics = &registry;
  CsvEventReader reader(input, schema, options);

  std::vector<TimePoint> delivered;
  Event e;
  while (reader.Next(&e).ok()) delivered.push_back(e.t);
  EXPECT_EQ(delivered, (std::vector<TimePoint>{1, 4}));
  EXPECT_EQ(reader.quarantined(), 2);
  EXPECT_EQ(registry.Snapshot().counters.at("csv.quarantined"), 2);

  const auto items = dead_letter.Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].kind, robust::DeadLetterKind::kCsvRow);
  EXPECT_EQ(items[0].row, 2);
  EXPECT_EQ(items[0].raw, "oops,20");
  EXPECT_FALSE(items[0].detail.empty());
  EXPECT_EQ(items[1].row, 3);
  EXPECT_EQ(items[1].raw, "3,not_int");
}

TEST(CsvEventReaderTest, StopModeStillFailsFastOnBadRows) {
  const Schema schema({Field{"v", ValueType::kInt}});
  std::istringstream input("timestamp,v\n1,10\noops,20\n3,30\n");
  CsvEventReader reader(input, schema);  // default: kStop
  Event e;
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(reader.Next(&e).code(), StatusCode::kParseError);
  EXPECT_EQ(reader.quarantined(), 0);
}

TEST(CsvEventReaderTest, QuarantineWorksWithoutSinkOrMetrics) {
  const Schema schema({Field{"v", ValueType::kInt}});
  std::istringstream input("timestamp,v\nbad,1\n2,20\n");
  CsvEventReader::Options options;
  options.on_error = CsvEventReader::OnError::kSkipAndQuarantine;
  CsvEventReader reader(input, schema, options);
  Event e;
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(e.t, 2);
  EXPECT_EQ(reader.quarantined(), 1);
  EXPECT_EQ(reader.Next(&e).code(), StatusCode::kNotFound);
}

TEST(CsvEventWriterTest, RoundTripsThroughReader) {
  std::ostringstream out;
  CsvEventWriter writer(out, {"id", "note"});
  writer.Write(Event({Value(int64_t{1}), Value(std::string("a,b"))}, 5));
  writer.Write(Event({Value(int64_t{2}), Value(std::string("plain"))}, 6));
  EXPECT_EQ(writer.rows_written(), 2);

  const Schema schema({Field{"id", ValueType::kInt},
                       Field{"note", ValueType::kString}});
  std::istringstream in(out.str());
  CsvEventReader reader(in, schema);
  Event e;
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(e.t, 5);
  EXPECT_EQ(e.payload[1].AsString(), "a,b");
  ASSERT_TRUE(reader.Next(&e).ok());
  EXPECT_EQ(e.payload[0].AsInt(), 2);
}

}  // namespace
}  // namespace io
}  // namespace tpstream
