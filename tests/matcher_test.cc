#include "matcher/matcher.h"

#include <random>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace tpstream {
namespace {

using testing::BatchByEnd;
using testing::BruteForceMatches;
using testing::ConfigKey;
using testing::KeyOf;
using testing::RandomPattern;
using testing::RandomStream;
using testing::Sit;

// Runs the baseline matcher over the streams and collects the emitted
// configurations with their detection times.
std::map<ConfigKey, TimePoint> RunMatcher(
    const TemporalPattern& pattern, Duration window,
    const std::vector<std::vector<Situation>>& streams,
    int* duplicates = nullptr) {
  std::map<ConfigKey, TimePoint> out;
  Matcher matcher(pattern, window, [&](const Match& m) {
    auto [it, inserted] = out.emplace(KeyOf(m.config), m.detected_at);
    if (!inserted && duplicates != nullptr) ++*duplicates;
  });
  for (const auto& [te, batch] : BatchByEnd(streams)) {
    matcher.Update(batch, te);
  }
  return out;
}

TEST(MatcherTest, SimpleBeforePattern) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  std::vector<Match> matches;
  Matcher matcher(p, 100, [&](const Match& m) { matches.push_back(m); });

  matcher.Update({{0, Sit(1, 5)}}, 5);
  EXPECT_TRUE(matches.empty());
  matcher.Update({{1, Sit(7, 12)}}, 12);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].config[0].ts, 1);
  EXPECT_EQ(matches[0].config[1].ts, 7);
  EXPECT_EQ(matches[0].detected_at, 12);
}

TEST(MatcherTest, WindowExcludesWideConfigurations) {
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  std::vector<Match> matches;
  Matcher matcher(p, 10, [&](const Match& m) { matches.push_back(m); });

  matcher.Update({{0, Sit(1, 3)}}, 3);
  matcher.Update({{1, Sit(20, 25)}}, 25);  // span 24 > 10
  EXPECT_TRUE(matches.empty());

  matcher.Update({{0, Sit(26, 28)}}, 28);
  matcher.Update({{1, Sit(30, 36)}}, 36);  // span 10 <= 10
  ASSERT_EQ(matches.size(), 1u);
}

TEST(MatcherTest, MatchesBruteForceOnRandomWorkloads) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 3);  // 2..4 streams
    const TemporalPattern pattern = RandomPattern(rng, n);
    const Duration window = 20 + static_cast<Duration>(rng() % 60);

    std::vector<std::vector<Situation>> streams(n);
    for (auto& s : streams) s = RandomStream(rng, /*horizon=*/300);

    int duplicates = 0;
    const auto got = RunMatcher(pattern, window, streams, &duplicates);
    const auto expected = BruteForceMatches(pattern, window, streams);

    EXPECT_EQ(duplicates, 0) << pattern.ToString();
    EXPECT_EQ(got.size(), expected.size())
        << "trial " << trial << " pattern " << pattern.ToString();
    for (const auto& [key, te] : expected) {
      auto it = got.find(key);
      ASSERT_NE(it, got.end()) << pattern.ToString();
      // Baseline detection happens at the last end timestamp.
      EXPECT_EQ(it->second, te);
    }
  }
}

TEST(MatcherTest, EvaluationOrderDoesNotChangeResults) {
  std::mt19937_64 rng(32);
  const TemporalPattern pattern = RandomPattern(rng, 3);
  std::vector<std::vector<Situation>> streams(3);
  for (auto& s : streams) s = RandomStream(rng, 400);

  const std::vector<std::vector<int>> orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {1, 2, 0}};
  std::vector<std::map<ConfigKey, TimePoint>> results;
  for (const auto& order : orders) {
    std::map<ConfigKey, TimePoint> out;
    Matcher matcher(pattern, 50,
                    [&](const Match& m) { out.emplace(KeyOf(m.config), 0); });
    matcher.SetEvaluationOrder(order);
    for (const auto& [te, batch] : BatchByEnd(streams)) {
      matcher.Update(batch, te);
    }
    results.push_back(std::move(out));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

TEST(MatcherTest, MidStreamOrderMigrationIsSeamless) {
  std::mt19937_64 rng(33);
  const TemporalPattern pattern = RandomPattern(rng, 3);
  std::vector<std::vector<Situation>> streams(3);
  for (auto& s : streams) s = RandomStream(rng, 400);

  std::map<ConfigKey, TimePoint> migrated;
  Matcher matcher(pattern, 60, [&](const Match& m) {
    migrated.emplace(KeyOf(m.config), m.detected_at);
  });
  int updates = 0;
  for (const auto& [te, batch] : BatchByEnd(streams)) {
    if (++updates % 7 == 0) {
      // Rotate the evaluation order mid-stream; the matcher keeps no
      // intermediate state, so results must be identical.
      std::vector<int> order = matcher.CurrentOrder();
      std::rotate(order.begin(), order.begin() + 1, order.end());
      matcher.SetEvaluationOrder(order);
    }
    matcher.Update(batch, te);
  }
  const auto expected = BruteForceMatches(pattern, 60, streams);
  EXPECT_EQ(migrated.size(), expected.size());
}

TEST(MatcherTest, NaiveScanAblationProducesIdenticalMatches) {
  std::mt19937_64 rng(34);
  for (int trial = 0; trial < 20; ++trial) {
    const TemporalPattern pattern = RandomPattern(rng, 3);
    std::vector<std::vector<Situation>> streams(3);
    for (auto& s : streams) s = RandomStream(rng, 300);

    std::map<ConfigKey, TimePoint> fast;
    std::map<ConfigKey, TimePoint> naive;
    for (const bool use_naive : {false, true}) {
      auto& out = use_naive ? naive : fast;
      Matcher matcher(pattern, 80, [&](const Match& m) {
        out.emplace(KeyOf(m.config), m.detected_at);
      });
      matcher.SetNaiveScan(use_naive);
      for (const auto& [te, batch] : BatchByEnd(streams)) {
        matcher.Update(batch, te);
      }
    }
    EXPECT_EQ(fast, naive) << pattern.ToString();
  }
}

TEST(MatcherTest, SelectivityStatsConvergeToObservations) {
  // before-pattern where A situations precede most B situations: the
  // selectivity EMA should move from the Table 3 prior toward the
  // observed value.
  TemporalPattern p({"A", "B"});
  ASSERT_TRUE(p.AddRelation(0, Relation::kBefore, 1).ok());
  Matcher matcher(p, 1000, [](const Match&) {}, /*stats_alpha=*/0.5);

  TimePoint t = 0;
  for (int i = 0; i < 50; ++i) {
    matcher.Update({{0, Sit(t + 1, t + 3)}}, t + 3);
    matcher.Update({{1, Sit(t + 5, t + 8)}}, t + 8);
    t += 10;
  }
  // Most buffered A situations are before each new B: selectivity near 1,
  // clearly above the 0.445 prior.
  EXPECT_GT(matcher.stats().selectivity_ema(0), 0.6);
  EXPECT_GT(matcher.stats().buffer_ema(0), 1.0);
}

}  // namespace
}  // namespace tpstream
