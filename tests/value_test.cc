#include "common/value.h"

#include <gtest/gtest.h>

#include "common/schema.h"
#include "common/status.h"

namespace tpstream {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(2.0).is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_TRUE(Value(true).Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(0.5).Truthy());
  EXPECT_FALSE(Value(std::string("x")).Truthy());  // strings are not truthy
}

TEST(ValueTest, CompareWithWidening) {
  EXPECT_EQ(Value::Compare(Value(int64_t{2}), Value(int64_t{3})), -1);
  EXPECT_EQ(Value::Compare(Value(int64_t{3}), Value(2.5)), 1);
  EXPECT_EQ(Value::Compare(Value(2.0), Value(int64_t{2})), 0);
  EXPECT_EQ(Value::Compare(Value(std::string("a")), Value(std::string("b"))),
            -1);
  EXPECT_EQ(Value::Compare(Value(), Value(int64_t{1})),
            Value::kIncomparable);
  EXPECT_EQ(Value::Compare(Value(std::string("a")), Value(int64_t{1})),
            Value::kIncomparable);
  EXPECT_TRUE(Value(int64_t{7}) == Value(7.0));
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(Add(Value(int64_t{2}), Value(int64_t{3})).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Add(Value(int64_t{2}), Value(0.5)).AsDouble(), 2.5);
  EXPECT_EQ(Sub(Value(int64_t{2}), Value(int64_t{5})).AsInt(), -3);
  EXPECT_EQ(Mul(Value(int64_t{4}), Value(int64_t{3})).AsInt(), 12);
  EXPECT_DOUBLE_EQ(Div(Value(int64_t{7}), Value(int64_t{2})).AsDouble(), 3.5);
  EXPECT_TRUE(Div(Value(int64_t{7}), Value(int64_t{0})).is_null());
  EXPECT_TRUE(Add(Value(true), Value(int64_t{1})).is_null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
}

TEST(SchemaTest, IndexLookup) {
  Schema schema({Field{"a", ValueType::kInt}, Field{"b", ValueType::kBool}});
  EXPECT_EQ(schema.num_fields(), 2);
  EXPECT_EQ(schema.IndexOf("a"), 0);
  EXPECT_EQ(schema.IndexOf("b"), 1);
  EXPECT_EQ(schema.IndexOf("c"), -1);
  EXPECT_EQ(schema.field(1).type, ValueType::kBool);
  EXPECT_EQ(schema.ToString(), "(a: int, b: bool)");
}

TEST(StatusTest, ResultSemantics) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 5);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err(Status::ParseError("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kParseError);
  EXPECT_EQ(err.status().message(), "boom");
}

}  // namespace
}  // namespace tpstream
