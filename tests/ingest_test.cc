// Ingestion-path contract tests for the batched, move-aware Push API:
//
//  1. Steady-state sequential ingestion performs ZERO heap allocations
//     per event (counting global operator new, in the style of
//     partition_hash_test.cc) when the static analysis proves
//     exactly-once delivery and no aggregates/metrics are attached.
//  2. PushBatch() is differentially equivalent to per-event Push() for
//     the sequential, partitioned, and parallel (1/2/4 workers)
//     operators: identical matches and identical event/match counters.
//  3. The move overloads flow through Pipeline (Reorder + Detect) with
//     results identical to copying ingestion.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/detection.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "parallel/parallel_operator.h"
#include "pipeline/pipeline.h"
#include "query/builder.h"
#include "workload/synthetic.h"

// Counting global allocator: every operator new in this binary bumps the
// counter, so a test can assert a region of code performs none.
namespace {
std::atomic<size_t> g_allocation_count{0};

void* CountedAlloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpstream {
namespace {

/// "A before B" over two boolean streams, no aggregates (interval-
/// accessor RETURN only), no partitioning: the allocation-free profile
/// (empty aggregate snapshots, dedup statically proven unnecessary).
QuerySpec BeforeSpec() {
  Schema schema(
      {Field{"s0", ValueType::kBool}, Field{"s1", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(0, "s0"))
      .Define("B", FieldRef(1, "s1"))
      .Relate("A", Relation::kBefore, "B")
      .Within(150)
      .ReturnStart("a_start", "A");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

TEST(IngestAllocationTest, SteadyStateSequentialIngestIsAllocationFree) {
  const QuerySpec spec = BeforeSpec();
  // Precondition for the strongest claim: the analysis proves
  // exactly-once delivery, so the fingerprint table is never touched.
  {
    DetectionAnalysis analysis(
        spec.pattern,
        std::vector<DurationConstraint>(spec.pattern.num_symbols()));
    ASSERT_FALSE(analysis.needs_dedup());
  }

  for (const bool low_latency : {true, false}) {
    TPStreamOperator::Options options;
    options.low_latency = low_latency;
    options.adaptive = false;  // controller re-optimization allocates
    TPStreamOperator op(spec, options, /*output=*/nullptr);

    SyntheticGenerator gen({.num_streams = 2, .seed = 9});
    Event scratch;

    // Warmup: situation buffers grow to their window-bounded size, all
    // scratch vectors reach steady capacity.
    for (int i = 0; i < 20000; ++i) {
      gen.Next(&scratch);
      op.Push(scratch);
    }

    const int64_t matches_before = op.num_matches();
    const size_t before =
        g_allocation_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 20000; ++i) {
      gen.Next(&scratch);
      op.Push(scratch);
    }
    const size_t after = g_allocation_count.load(std::memory_order_relaxed);

    EXPECT_EQ(after, before)
        << (low_latency ? "low-latency" : "baseline")
        << " ingest allocated on the hot path ("
        << (after - before) << " allocations / 20000 events)";
    // The measurement window must actually exercise the matcher.
    EXPECT_GT(op.num_matches(), matches_before);
  }
}

/// Integer-keyed partitioned query with aggregates: the differential
/// workload (allocation-freedom is not claimed here, equivalence is).
QuerySpec KeyedSpec() {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  QueryBuilder qb(schema);
  qb.Define("A", FieldRef(1, "flag"))
      .Define("B", Not(FieldRef(1, "flag")))
      .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
      .Within(120)
      .Return("key", "A", AggKind::kFirst, "key")
      .Return("n", "A", AggKind::kCount)
      .PartitionBy("key");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> KeyedEvents(int num_keys, TimePoint horizon) {
  std::vector<Event> events;
  std::vector<bool> value(num_keys, false);
  uint64_t state = 0x9e3779b97f4a7c15ull;  // deterministic LCG-ish flips
  for (TimePoint t = 1; t <= horizon; ++t) {
    for (int k = 0; k < num_keys; ++k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      if ((state >> 33) % 100 < 9) value[k] = !value[k];
      events.push_back(
          Event({Value(static_cast<int64_t>(k)), Value(value[k])}, t));
    }
  }
  return events;
}

using Signature = std::vector<std::string>;

std::string Describe(const Event& e) {
  std::string out = std::to_string(e.t);
  for (const Value& v : e.payload) out += "|" + v.ToString();
  return out;
}

TEST(PushBatchDifferentialTest, SequentialOperator) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedEvents(1, 800);

  Signature per_event;
  TPStreamOperator ref(spec, {}, [&](const Event& e) {
    per_event.push_back(Describe(e));
  });
  for (const Event& e : events) ref.Push(e);

  Signature batched;
  TPStreamOperator op(spec, {}, [&](const Event& e) {
    batched.push_back(Describe(e));
  });
  std::vector<Event> copy = events;
  for (size_t i = 0; i < copy.size(); i += 7) {
    op.PushBatch(std::span<Event>(copy.data() + i,
                                  std::min<size_t>(7, copy.size() - i)));
  }

  ASSERT_FALSE(per_event.empty());
  EXPECT_EQ(batched, per_event);
  EXPECT_EQ(op.num_events(), ref.num_events());
  EXPECT_EQ(op.num_matches(), ref.num_matches());
}

TEST(PushBatchDifferentialTest, PartitionedOperator) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedEvents(5, 500);

  Signature per_event;
  PartitionedTPStream ref(spec, {}, [&](const Event& e) {
    per_event.push_back(Describe(e));
  });
  for (const Event& e : events) ref.Push(e);

  Signature batched;
  PartitionedTPStream op(spec, {}, [&](const Event& e) {
    batched.push_back(Describe(e));
  });
  // Const span: events are not consumed.
  op.PushBatch(std::span<const Event>(events));

  ASSERT_FALSE(per_event.empty());
  EXPECT_EQ(batched, per_event);
  EXPECT_EQ(op.num_events(), ref.num_events());
  EXPECT_EQ(op.num_matches(), ref.num_matches());
  EXPECT_EQ(op.num_partitions(), ref.num_partitions());
}

TEST(PushBatchDifferentialTest, ParallelOperatorAcrossWorkerCounts) {
  const QuerySpec spec = KeyedSpec();
  const std::vector<Event> events = KeyedEvents(7, 500);

  Signature reference;
  {
    PartitionedTPStream ref(spec, {}, [&](const Event& e) {
      reference.push_back(Describe(e));
    });
    for (const Event& e : events) ref.Push(e);
  }
  ASSERT_FALSE(reference.empty());
  std::sort(reference.begin(), reference.end());

  for (const int workers : {1, 2, 4}) {
    Signature batched;
    std::mutex mutex;
    parallel::ParallelTPStream::Options options;
    options.num_workers = workers;
    options.batch_size = 32;
    parallel::ParallelTPStream op(spec, options, [&](const Event& e) {
      std::lock_guard<std::mutex> lock(mutex);
      batched.push_back(Describe(e));
    });
    // The mutable-span overload moves the payloads out, so feed a copy.
    std::vector<Event> copy = events;
    for (size_t i = 0; i < copy.size(); i += 13) {
      op.PushBatch(std::span<Event>(
          copy.data() + i, std::min<size_t>(13, copy.size() - i)));
    }
    op.Flush();

    std::sort(batched.begin(), batched.end());
    EXPECT_EQ(batched, reference) << workers << " workers";
    EXPECT_EQ(op.num_events(), static_cast<int64_t>(events.size()))
        << workers << " workers";
    EXPECT_EQ(op.num_matches(), static_cast<int64_t>(reference.size()))
        << workers << " workers";
  }
}

TEST(PushBatchDifferentialTest, PipelineWithReorderAndDetect) {
  const QuerySpec spec = KeyedSpec();
  std::vector<Event> events = KeyedEvents(3, 400);
  // Mild bounded disorder to exercise the reorder stage's move path.
  for (size_t i = 0; i + 4 < events.size(); i += 5) {
    std::swap(events[i], events[i + 2]);
  }

  auto run = [&](bool batched) {
    Signature out;
    pipeline::Pipeline p(spec.input_schema);
    p.Reorder(/*slack=*/10)
        .Detect(spec)
        .Sink([&](const Event& e) { out.push_back(Describe(e)); });
    EXPECT_TRUE(p.Finalize().ok());
    if (batched) {
      std::vector<Event> copy = events;
      p.PushBatch(std::span<Event>(copy));
    } else {
      for (const Event& e : events) p.Push(e);
    }
    p.Finish();
    return out;
  };

  const Signature per_event = run(false);
  const Signature batched = run(true);
  ASSERT_FALSE(per_event.empty());
  EXPECT_EQ(batched, per_event);
}

}  // namespace
}  // namespace tpstream
