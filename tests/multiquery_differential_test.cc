// Differential pinning of the multi-query sharing guarantee: a QueryGroup
// of N queries emits, per query, byte-identical matches and equal obs
// metrics to N independent TPStreamOperators fed the same stream. This is
// the isolation contract of src/multi — sharing is an execution strategy,
// never a semantics change.

#include <algorithm>
#include <mutex>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "multi/query_group.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"

namespace tpstream {
namespace {

Schema SensorSchema() {
  return Schema({Field{"flag_a", ValueType::kBool},
                 Field{"flag_b", ValueType::kBool},
                 Field{"v", ValueType::kDouble}});
}

/// A three-symbol query over SensorSchema; `threshold` varies the B
/// predicate so distinct-query mixes exercise partial sharing (A and C
/// dedup across all variants, B does not).
QuerySpec SensorSpec(double threshold) {
  QueryBuilder qb(SensorSchema());
  qb.Define("A", FieldRef(0, "flag_a"))
      .Define("B", Gt(FieldRef(2, "v"), Literal(threshold)))
      .Define("C", FieldRef(1, "flag_b"))
      .Relate("A", {Relation::kOverlaps, Relation::kMeets}, "B")
      .Relate("B", {Relation::kOverlaps, Relation::kBefore}, "C")
      .Within(64)
      .Return("n_a", "A", AggKind::kCount)
      .Return("avg_v", "B", AggKind::kAvg, "v");
  auto spec = qb.Build();
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.value();
}

std::vector<Event> RandomStream(TimePoint horizon, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution flip(0.12);
  std::uniform_real_distribution<double> level(0.0, 10.0);
  bool a = false;
  bool b = false;
  std::vector<Event> events;
  events.reserve(horizon);
  for (TimePoint t = 1; t <= horizon; ++t) {
    if (flip(rng)) a = !a;
    if (flip(rng)) b = !b;
    events.push_back(Event({Value(a), Value(b), Value(level(rng))}, t));
  }
  return events;
}

bool SameEvent(const Event& x, const Event& y) {
  if (x.t != y.t || x.payload.size() != y.payload.size()) return false;
  for (size_t i = 0; i < x.payload.size(); ++i) {
    if (!(x.payload[i] == y.payload[i])) return false;
  }
  return true;
}

/// Removes the shared-derivation namespace from an independent operator's
/// snapshot: under sharing those counters live once in the group registry,
/// not per query.
obs::MetricsSnapshot StripDeriver(obs::MetricsSnapshot snap) {
  std::erase_if(snap.counters, [](const auto& kv) {
    return kv.first.rfind("deriver.", 0) == 0;
  });
  return snap;
}

obs::MetricsSnapshot DeriverOnly(obs::MetricsSnapshot snap) {
  std::erase_if(snap.counters, [](const auto& kv) {
    return kv.first.rfind("deriver.", 0) != 0;
  });
  snap.gauges.clear();
  snap.histograms.clear();
  return snap;
}

struct DifferentialCase {
  std::vector<double> thresholds;  // one query per entry
  bool low_latency = true;
};

void RunDifferential(const DifferentialCase& c) {
  const std::vector<Event> events = RandomStream(4000, 17);
  const int n = static_cast<int>(c.thresholds.size());

  // Reference: N independent operators, each with its own registry.
  std::vector<std::vector<Event>> ref_outputs(n);
  std::vector<std::unique_ptr<obs::MetricsRegistry>> ref_metrics;
  {
    std::vector<std::unique_ptr<TPStreamOperator>> ops;
    for (int i = 0; i < n; ++i) {
      ref_metrics.push_back(std::make_unique<obs::MetricsRegistry>());
      TPStreamOperator::Options options;
      options.low_latency = c.low_latency;
      options.metrics = ref_metrics.back().get();
      ops.push_back(std::make_unique<TPStreamOperator>(
          SensorSpec(c.thresholds[i]), options,
          [&ref_outputs, i](const Event& e) {
            ref_outputs[i].push_back(e);
          }));
    }
    for (const Event& e : events) {
      for (auto& op : ops) op->Push(e);
    }
    for (auto& op : ops) op->Flush();
  }

  // Subject: one QueryGroup over the same queries and stream.
  std::vector<std::vector<Event>> group_outputs(n);
  std::vector<std::unique_ptr<obs::MetricsRegistry>> group_query_metrics;
  obs::MetricsRegistry group_metrics;
  multi::QueryGroup::Options options;
  options.low_latency = c.low_latency;
  options.metrics = &group_metrics;
  multi::QueryGroup group(options);
  for (int i = 0; i < n; ++i) {
    group_query_metrics.push_back(std::make_unique<obs::MetricsRegistry>());
    multi::QueryGroup::QueryOptions qo;
    qo.metrics = group_query_metrics.back().get();
    ASSERT_TRUE(group
                    .AddQuery(SensorSpec(c.thresholds[i]),
                              [&group_outputs, i](const Event& e) {
                                group_outputs[i].push_back(e);
                              },
                              qo)
                    .ok());
  }
  for (const Event& e : events) group.Push(e);
  group.Flush();

  // Byte-identical match streams, per query and in order.
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(group_outputs[i].size(), ref_outputs[i].size())
        << "query " << i;
    for (size_t m = 0; m < ref_outputs[i].size(); ++m) {
      EXPECT_TRUE(SameEvent(group_outputs[i][m], ref_outputs[i][m]))
          << "query " << i << " match " << m;
    }
  }

  // Equal per-query metrics (matcher.*, operator.*, robust.*,
  // optimizer.*); the independent operator additionally owns deriver.*
  // counters, which under sharing live once in the group registry.
  for (int i = 0; i < n; ++i) {
    const obs::MetricsSnapshot ref = ref_metrics[i]->Snapshot();
    const obs::MetricsSnapshot got = group_query_metrics[i]->Snapshot();
    EXPECT_EQ(StripDeriver(ref).counters, got.counters) << "query " << i;
    EXPECT_EQ(StripDeriver(ref).gauges, got.gauges) << "query " << i;
    EXPECT_EQ(ref.histograms, got.histograms) << "query " << i;
    EXPECT_EQ(got.counters.count("deriver.events"), 0u);
  }

  // When every query is identical, the shared deriver does exactly one
  // independent operator's derivation work.
  const bool all_identical = std::all_of(
      c.thresholds.begin(), c.thresholds.end(),
      [&](double t) { return t == c.thresholds.front(); });
  if (all_identical) {
    EXPECT_EQ(DeriverOnly(group_metrics.Snapshot()).counters,
              DeriverOnly(ref_metrics[0]->Snapshot()).counters);
  }
}

TEST(MultiQueryDifferentialTest, IdenticalQueriesN1) {
  RunDifferential({{5.0}});
}

TEST(MultiQueryDifferentialTest, IdenticalQueriesN2) {
  RunDifferential({{5.0, 5.0}});
}

TEST(MultiQueryDifferentialTest, IdenticalQueriesN16) {
  RunDifferential({std::vector<double>(16, 5.0)});
}

TEST(MultiQueryDifferentialTest, DistinctMixN16) {
  std::vector<double> thresholds;
  for (int i = 0; i < 16; ++i) thresholds.push_back(1.0 + (i % 4) * 2.0);
  RunDifferential({thresholds});
}

TEST(MultiQueryDifferentialTest, BaselineMatcherMode) {
  DifferentialCase c;
  c.thresholds = {5.0, 5.0, 7.0};
  c.low_latency = false;
  RunDifferential(c);
}

// Cross-engine leg: on a single-partition stream, a QueryGroup over the
// unpartitioned query and a ParallelTPStream over its PARTITION BY
// variant must agree (with one key, partitioned semantics coincide with
// unpartitioned).
TEST(MultiQueryDifferentialTest, AgreesWithParallelEngineOnOnePartition) {
  Schema schema(
      {Field{"key", ValueType::kInt}, Field{"flag", ValueType::kBool}});
  auto make_spec = [&](bool partitioned) {
    QueryBuilder qb(schema);
    qb.Define("A", FieldRef(1, "flag"))
        .Define("B", Not(FieldRef(1, "flag")))
        .Relate("A", {Relation::kMeets, Relation::kBefore}, "B")
        .Within(200)
        .Return("t_n", "A", AggKind::kCount);
    if (partitioned) qb.PartitionBy("key");
    auto spec = qb.Build();
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    return spec.value();
  };

  std::mt19937_64 rng(23);
  std::bernoulli_distribution flip(0.1);
  bool flag = false;
  std::vector<Event> events;
  for (TimePoint t = 1; t <= 3000; ++t) {
    if (flip(rng)) flag = !flag;
    events.push_back(Event({Value(int64_t{7}), Value(flag)}, t));
  }

  using Signature = std::vector<std::pair<TimePoint, int64_t>>;
  Signature grouped;
  multi::QueryGroup group;
  ASSERT_TRUE(group
                  .AddQuery(make_spec(false),
                            [&](const Event& e) {
                              grouped.emplace_back(e.t, e.payload[0].AsInt());
                            })
                  .ok());
  for (const Event& e : events) group.Push(e);
  group.Flush();
  ASSERT_FALSE(grouped.empty());

  Signature parallel_out;
  std::mutex mutex;
  parallel::ParallelTPStream::Options options;
  options.num_workers = 2;
  options.batch_size = 64;
  {
    parallel::ParallelTPStream op(make_spec(true), options,
                                  [&](const Event& e) {
                                    std::lock_guard<std::mutex> lock(mutex);
                                    parallel_out.emplace_back(
                                        e.t, e.payload[0].AsInt());
                                  });
    for (const Event& e : events) op.Push(e);
    op.Flush();
  }

  std::sort(grouped.begin(), grouped.end());
  std::sort(parallel_out.begin(), parallel_out.end());
  EXPECT_EQ(grouped, parallel_out);
}

}  // namespace
}  // namespace tpstream
