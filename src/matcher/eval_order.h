#ifndef TPSTREAM_MATCHER_EVAL_ORDER_H_
#define TPSTREAM_MATCHER_EVAL_ORDER_H_

#include <string>
#include <vector>

#include "algebra/pattern.h"

namespace tpstream {

/// One processing step of the matching algorithm: the symbol whose buffer
/// is joined and the constraints touching it. At runtime a constraint is
/// applicable when its other endpoint is already bound in the working set
/// (Algorithm 3).
struct EvalStep {
  struct Touching {
    int constraint = 0;    // index into pattern.constraints()
    int other_symbol = 0;  // the constraint's other endpoint
    bool symbol_is_a = false;  // whether this step's symbol plays role A
  };

  int symbol = 0;
  std::vector<Touching> constraints;
};

/// The order in which situation buffers are joined (Section 5.2/5.4).
class EvaluationOrder {
 public:
  EvaluationOrder() = default;

  /// Builds the order for visiting symbols in `permutation` (a permutation
  /// of 0..num_symbols-1).
  static EvaluationOrder Build(const TemporalPattern& pattern,
                               const std::vector<int>& permutation);

  const std::vector<EvalStep>& steps() const { return steps_; }
  std::vector<int> Permutation() const;

  std::string ToString(const TemporalPattern& pattern) const;

 private:
  std::vector<EvalStep> steps_;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_EVAL_ORDER_H_
