#include "matcher/joiner.h"

#include <numeric>

#include "robust/saturating.h"

namespace tpstream {

using robust::SaturatingAdd;
using robust::SaturatingMul;

PatternJoiner::PatternJoiner(const TemporalPattern* pattern, Duration window)
    : pattern_(pattern), window_(window) {
  buffers_.resize(pattern->num_symbols());
  std::vector<int> identity(pattern->num_symbols());
  std::iota(identity.begin(), identity.end(), 0);
  order_ = EvaluationOrder::Build(*pattern, identity);
}

void PatternJoiner::Reset() {
  for (SituationBuffer& b : buffers_) b.Clear();
  shed_situations_ = 0;
  lost_match_bound_ = 0;
}

void PatternJoiner::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kJoiner);
  w.U32(static_cast<uint32_t>(buffers_.size()));
  for (const SituationBuffer& b : buffers_) b.Checkpoint(w);
  w.I64(shed_situations_);
  w.I64(lost_match_bound_);
  const std::vector<int> perm = order_.Permutation();
  w.U32(static_cast<uint32_t>(perm.size()));
  for (int s : perm) w.U32(static_cast<uint32_t>(s));
  w.EndSection(cookie);
}

Status PatternJoiner::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kJoiner);
  const uint32_t num_buffers = r.U32();
  if (r.ok() && num_buffers != buffers_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: joiner symbol count mismatch (pattern changed?)"));
    return r.status();
  }
  for (SituationBuffer& b : buffers_) {
    Status status = b.Restore(r);
    if (!status.ok()) return status;
  }
  shed_situations_ = r.I64();
  lost_match_bound_ = r.I64();
  const uint32_t perm_size = r.U32();
  std::vector<int> perm;
  std::vector<bool> seen(buffers_.size(), false);
  for (uint32_t i = 0; i < perm_size && r.ok(); ++i) {
    const uint32_t s = r.U32();
    if (s >= buffers_.size() || seen[s]) {
      r.Fail(Status::ParseError(
          "checkpoint: evaluation order is not a permutation"));
      return r.status();
    }
    seen[s] = true;
    perm.push_back(static_cast<int>(s));
  }
  Status status = r.EndSection(end);
  if (!status.ok()) return status;
  if (perm.size() == buffers_.size()) {
    order_ = EvaluationOrder::Build(*pattern_, perm);
  }
  return Status::OK();
}

void PatternJoiner::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  shed_situations_ctr_ = registry->GetCounter("robust.shed_situations");
  lost_match_bound_ctr_ =
      registry->GetCounter("robust.lost_match_upper_bound");
  probes_ctr_ = registry->GetCounter("matcher.probes");
  range_queries_ctr_ = registry->GetCounter("matcher.range_queries");
  range_query_hits_ctr_ = registry->GetCounter("matcher.range_query_hits");
  partial_configs_ctr_ = registry->GetCounter("matcher.partial_configs");
  full_matches_ctr_ = registry->GetCounter("matcher.full_matches");
  window_rejects_ctr_ = registry->GetCounter("matcher.window_rejects");
}

size_t PatternJoiner::BufferedCount() const {
  size_t total = 0;
  for (const SituationBuffer& b : buffers_) total += b.size();
  return total;
}

void PatternJoiner::EnforceCap(int symbol) {
  if (situation_cap_ == 0) return;
  const size_t cap = situation_cap_;
  SituationBuffer& buf = buffers_[symbol];
  if (buf.size() <= cap) return;

  // Upper bound on the matches enumerable right now that each evicted
  // situation could still complete: one candidate per other symbol
  // already buffered (future arrivals are not counted — the bound
  // covers the currently-enumerable loss only).
  int64_t per_evicted = 1;
  for (size_t j = 0; j < buffers_.size(); ++j) {
    if (static_cast<int>(j) == symbol) continue;
    per_evicted = SaturatingMul(
        per_evicted,
        std::max<int64_t>(1, static_cast<int64_t>(buffers_[j].size())));
  }

  int64_t evicted = 0;
  while (buf.size() > cap) {
    buf.PopFront();
    ++evicted;
  }
  shed_situations_ += evicted;
  // Accumulate the delta actually applied after saturation, and saturate
  // the counter too: once the bound pins at int64 max, a plain Inc(kMax)
  // per eviction round would wrap the metric while the member stays
  // pinned, and the two would disagree.
  const int64_t before = lost_match_bound_;
  lost_match_bound_ =
      SaturatingAdd(lost_match_bound_, SaturatingMul(evicted, per_evicted));
  if (shed_situations_ctr_ != nullptr) {
    shed_situations_ctr_->Inc(evicted);
    lost_match_bound_ctr_->IncSaturating(lost_match_bound_ - before);
  }
}

void PatternJoiner::Enumerate(std::vector<const Situation*>& working_set,
                              TimePoint now, const EmitFn& emit,
                              MatcherStats* stats) {
  if (probes_ctr_ != nullptr) probes_ctr_->Inc();
  if (step_scratch_.size() < order_.steps().size()) {
    step_scratch_.resize(order_.steps().size());
  }
  Step(working_set, 0, now, emit, stats);
}

void PatternJoiner::Step(std::vector<const Situation*>& ws, size_t step_index,
                         TimePoint now, const EmitFn& emit,
                         MatcherStats* stats) {
  if (step_index == order_.steps().size()) {
    EmitIfWindowOk(ws, now, emit);
    return;
  }
  const EvalStep& step = order_.steps()[step_index];
  if (ws[step.symbol] != nullptr) {
    // The symbol was pre-bound by the caller (the new situation in
    // Algorithm 2, or started situations in Algorithm 4): skip its buffer
    // and verify the applicable constraints directly.
    if (CheckBound(step, ws)) {
      Step(ws, step_index + 1, now, emit, stats);
    }
    return;
  }
  // The per-depth scratch keeps the reference stable across the recursive
  // Step calls below (deeper levels use their own scratch slot).
  const IndexRanges& candidates =
      FindCandidates(step, ws, stats, step_scratch_[step_index]);
  const SituationBuffer& buf = buffers_[step.symbol];
  if (partial_configs_ctr_ != nullptr) {
    partial_configs_ctr_->Inc(
        static_cast<int64_t>(candidates.TotalSize()));
  }
  candidates.ForEach([&](uint32_t idx) {
    ws[step.symbol] = &buf.At(idx);
    Step(ws, step_index + 1, now, emit, stats);
  });
  ws[step.symbol] = nullptr;
}

bool PatternJoiner::CheckBound(const EvalStep& step,
                               const std::vector<const Situation*>& ws) const {
  const Situation& self = *ws[step.symbol];
  for (const EvalStep::Touching& t : step.constraints) {
    const Situation* other = ws[t.other_symbol];
    if (other == nullptr) continue;  // checked at the other symbol's step
    const TemporalConstraint& c = pattern_->constraints()[t.constraint];
    const Situation& sa = t.symbol_is_a ? self : *other;
    const Situation& sb = t.symbol_is_a ? *other : self;
    if (c.Check(sa, sb) != Certainty::kCertain) return false;
  }
  return true;
}

const IndexRanges& PatternJoiner::FindCandidatesNaive(
    const EvalStep& step, const std::vector<const Situation*>& ws,
    StepScratch& scratch) const {
  // Equation 1: scan the whole buffer and evaluate every applicable
  // constraint per candidate.
  const SituationBuffer& buf = buffers_[step.symbol];
  IndexRanges& result = scratch.result;
  result.Clear();
  for (uint32_t i = 0; i < buf.size(); ++i) {
    const Situation& candidate = buf.At(i);
    bool ok = true;
    for (const EvalStep::Touching& t : step.constraints) {
      const Situation* other = ws[t.other_symbol];
      if (other == nullptr) continue;
      const TemporalConstraint& c = pattern_->constraints()[t.constraint];
      const Situation& sa = t.symbol_is_a ? candidate : *other;
      const Situation& sb = t.symbol_is_a ? *other : candidate;
      if (c.Check(sa, sb) != Certainty::kCertain) {
        ok = false;
        break;
      }
    }
    if (ok) result.Add(IndexRange{i, i + 1});
  }
  return result;
}

const IndexRanges& PatternJoiner::FindCandidates(
    const EvalStep& step, const std::vector<const Situation*>& ws,
    MatcherStats* stats, StepScratch& scratch) {
  const SituationBuffer& buf = buffers_[step.symbol];
  if (naive_scan_ && !buf.empty()) {
    return FindCandidatesNaive(step, ws, scratch);
  }
  IndexRanges& result = scratch.result;
  result.Clear();
  if (buf.empty()) return result;

  bool first = true;
  IndexRanges& per_constraint = scratch.per_constraint;
  for (const EvalStep::Touching& t : step.constraints) {
    const Situation* other = ws[t.other_symbol];
    if (other == nullptr) continue;
    const TemporalConstraint& c = pattern_->constraints()[t.constraint];

    // Union of the index ranges of the constraint's relations. The
    // candidate plays role A iff this step's symbol is the constraint's A.
    per_constraint.Clear();
    c.relations.ForEach([&](Relation r) {
      const auto bounds =
          BoundsForCounterpart(r, *other, /*fixed_is_a=*/!t.symbol_is_a);
      if (!bounds) return;
      per_constraint.Add(buf.Find(*bounds));
    });

    if (range_queries_ctr_ != nullptr) {
      range_queries_ctr_->Inc();
      range_query_hits_ctr_->Inc(
          static_cast<int64_t>(per_constraint.TotalSize()));
    }
    if (stats != nullptr) {
      stats->UpdateSelectivity(
          t.constraint, static_cast<double>(per_constraint.TotalSize()) /
                            static_cast<double>(buf.size()));
    }
    if (first) {
      result.Swap(per_constraint);
      first = false;
    } else {
      result.IntersectInto(per_constraint, &scratch.tmp);
      result.Swap(scratch.tmp);
    }
    if (result.empty()) return result;
  }
  if (first) {
    // No applicable constraint: cross product over the whole buffer
    // (only reachable for disconnected patterns).
    result.Add(IndexRange{0, static_cast<uint32_t>(buf.size())});
  }
  return result;
}

void PatternJoiner::EmitIfWindowOk(const std::vector<const Situation*>& ws,
                                   TimePoint now, const EmitFn& emit) const {
  TimePoint min_ts = kTimeMax;
  TimePoint max_te = kTimeMin;
  for (const Situation* s : ws) {
    if (s->ts < min_ts) min_ts = s->ts;
    // Ongoing situations extend at least to the current time; the match
    // is emitted early under the documented low-latency window semantics.
    const TimePoint te = s->ongoing() ? now : s->te;
    if (te > max_te) max_te = te;
  }
  if (max_te - min_ts > window_) {
    if (window_rejects_ctr_ != nullptr) window_rejects_ctr_->Inc();
    return;
  }
  if (full_matches_ctr_ != nullptr) full_matches_ctr_->Inc();

  // The scratch match is reused across emissions; the reference passed to
  // the callback is only valid during the call (callbacks copy what they
  // keep).
  scratch_match_.detected_at = now;
  if (scratch_match_.config.size() != ws.size()) {
    scratch_match_.config.resize(ws.size());
  }
  for (size_t i = 0; i < ws.size(); ++i) scratch_match_.config[i] = *ws[i];
  emit(scratch_match_);
}

}  // namespace tpstream
