#ifndef TPSTREAM_MATCHER_STATS_H_
#define TPSTREAM_MATCHER_STATS_H_

#include <cassert>
#include <vector>

#include "algebra/pattern.h"
#include "ckpt/serde.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace tpstream {

/// Runtime statistics driving the adaptive optimizer (Section 5.4.1):
/// exponential moving averages of the situation buffer sizes and of the
/// observed selectivity of each temporal constraint.
class MatcherStats {
 public:
  MatcherStats() = default;

  /// Initializes per-symbol and per-constraint slots. Constraint
  /// selectivities start from the Table 3 estimates (Equation 4's inner
  /// sum over the constraint's relations, capped at 1).
  MatcherStats(const TemporalPattern& pattern, double alpha);

  /// Both update paths guard against unsized slots: a default-constructed
  /// instance (the state a partially restored engine transits through) has
  /// empty vectors, and writing through `vec[i]` there is an out-of-bounds
  /// store. Misuse asserts in debug builds and is a safe no-op in release.
  void UpdateBufferSize(int symbol, double size) {
    assert(InRange(symbol, buffer_ema_) && "MatcherStats not sized (use the pattern constructor)");
    if (!InRange(symbol, buffer_ema_)) return;
    Fold(&buffer_ema_[symbol], size);
  }
  void UpdateSelectivity(int constraint, double sample) {
    assert(InRange(constraint, selectivity_ema_) && "MatcherStats not sized (use the pattern constructor)");
    if (!InRange(constraint, selectivity_ema_)) return;
    Fold(&selectivity_ema_[constraint], sample);
  }

  double buffer_ema(int symbol) const { return buffer_ema_[symbol]; }
  double selectivity_ema(int constraint) const {
    return selectivity_ema_[constraint];
  }
  const std::vector<double>& buffer_emas() const { return buffer_ema_; }
  const std::vector<double>& selectivity_emas() const {
    return selectivity_ema_;
  }

  double alpha() const { return alpha_; }

  /// Serializes the smoothing factor and both EMA vectors bit-exact.
  void Checkpoint(ckpt::Writer& w) const;

  /// Overwrites this instance with the checkpointed statistics. When the
  /// instance is already sized (constructed from a pattern), the slot
  /// counts must match; an unsized instance adopts the checkpoint's.
  Status Restore(ckpt::Reader& r);

 private:
  static bool InRange(int i, const std::vector<double>& v) {
    return i >= 0 && static_cast<size_t>(i) < v.size();
  }

  void Fold(double* ema, double sample) {
    *ema = alpha_ * sample + (1.0 - alpha_) * *ema;
  }

  double alpha_ = 0.01;
  std::vector<double> buffer_ema_;
  std::vector<double> selectivity_ema_;
};

/// Bridges MatcherStats into the observability registry: one gauge per
/// symbol buffer EMA (`matcher.buffer_ema.s<i>`) and per constraint
/// selectivity EMA (`matcher.selectivity_ema.c<i>`). The handles are
/// resolved once; Publish() is a handful of relaxed stores and is called
/// periodically by the operator (at the adaptive controller's cadence).
/// Gauges are diagnostic last-write-wins values: with several partitions
/// sharing one registry the gauges show the most recently updated
/// partition.
class MatcherStatsPublisher {
 public:
  MatcherStatsPublisher() = default;
  MatcherStatsPublisher(obs::MetricsRegistry* registry,
                        const TemporalPattern& pattern);

  void Publish(const MatcherStats& stats);

  bool enabled() const {
    return !buffer_gauges_.empty() || !selectivity_gauges_.empty();
  }

 private:
  std::vector<obs::Gauge*> buffer_gauges_;
  std::vector<obs::Gauge*> selectivity_gauges_;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_STATS_H_
