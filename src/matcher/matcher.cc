#include "matcher/matcher.h"

namespace tpstream {

Matcher::Matcher(TemporalPattern pattern, Duration window,
                 MatchCallback callback, double stats_alpha)
    : pattern_(std::move(pattern)),
      window_(window),
      callback_(std::move(callback)),
      joiner_(&pattern_, window),
      stats_(pattern_, stats_alpha),
      working_set_(pattern_.num_symbols(), nullptr) {}

void Matcher::SetEvaluationOrder(const std::vector<int>& permutation) {
  joiner_.SetOrder(EvaluationOrder::Build(pattern_, permutation));
}

void Matcher::Reset() {
  joiner_.Reset();
  stats_ = MatcherStats(pattern_, stats_.alpha());
}

void Matcher::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kBaselineMatcher);
  joiner_.Checkpoint(w);
  stats_.Checkpoint(w);
  w.EndSection(cookie);
}

Status Matcher::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kBaselineMatcher);
  Status status = joiner_.Restore(r);
  if (!status.ok()) return status;
  status = stats_.Restore(r);
  if (!status.ok()) return status;
  return r.EndSection(end);
}

void Matcher::Update(const std::vector<SymbolSituation>& finished,
                     TimePoint now) {
  scratch_finished_.assign(finished.begin(), finished.end());
  Consume(scratch_finished_, now);
}

void Matcher::Consume(std::vector<SymbolSituation>& finished, TimePoint now) {
  joiner_.PurgeBefore(now - window_);

  for (SymbolSituation& ss : finished) {
    SituationBuffer& buf = joiner_.buffer(ss.symbol);
    buf.Append(std::move(ss.situation));
    // Overload cap: evict the oldest situations before enumerating (the
    // appended one is the newest and always survives — cap >= 1).
    joiner_.EnforceCap(ss.symbol);
    // Force the new situation into every produced configuration: this
    // yields incremental, exactly-once results (Algorithm 2).
    working_set_.assign(working_set_.size(), nullptr);
    working_set_[ss.symbol] = &buf.Back();
    joiner_.Enumerate(working_set_, now, callback_, &stats_);
  }

  for (int s = 0; s < pattern_.num_symbols(); ++s) {
    stats_.UpdateBufferSize(s, static_cast<double>(joiner_.buffer(s).size()));
  }
}

}  // namespace tpstream
