#include "matcher/stats.h"

#include <algorithm>

namespace tpstream {

MatcherStats::MatcherStats(const TemporalPattern& pattern, double alpha)
    : alpha_(alpha) {
  buffer_ema_.assign(pattern.num_symbols(), 0.0);
  selectivity_ema_.reserve(pattern.constraints().size());
  for (const TemporalConstraint& c : pattern.constraints()) {
    double sel = 0.0;
    c.relations.ForEach([&sel](Relation r) { sel += DefaultSelectivity(r); });
    selectivity_ema_.push_back(std::min(sel, 1.0));
  }
}

}  // namespace tpstream
