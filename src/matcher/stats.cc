#include "matcher/stats.h"

#include <algorithm>
#include <utility>

namespace tpstream {

MatcherStats::MatcherStats(const TemporalPattern& pattern, double alpha)
    : alpha_(alpha) {
  buffer_ema_.assign(pattern.num_symbols(), 0.0);
  selectivity_ema_.reserve(pattern.constraints().size());
  for (const TemporalConstraint& c : pattern.constraints()) {
    double sel = 0.0;
    c.relations.ForEach([&sel](Relation r) { sel += DefaultSelectivity(r); });
    selectivity_ema_.push_back(std::min(sel, 1.0));
  }
}

void MatcherStats::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kMatcherStats);
  w.F64(alpha_);
  w.U64(buffer_ema_.size());
  for (double v : buffer_ema_) w.F64(v);
  w.U64(selectivity_ema_.size());
  for (double v : selectivity_ema_) w.F64(v);
  w.EndSection(cookie);
}

Status MatcherStats::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kMatcherStats);
  const double alpha = r.F64();
  const uint64_t num_buffers = r.U64();
  if (num_buffers > r.remaining() / 8) {
    r.Fail(Status::ParseError("checkpoint: MatcherStats size exceeds input"));
    return r.status();
  }
  if (!buffer_ema_.empty() && num_buffers != buffer_ema_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: MatcherStats symbol count mismatch"));
    return r.status();
  }
  std::vector<double> buffers(num_buffers);
  for (double& v : buffers) v = r.F64();
  const uint64_t num_constraints = r.U64();
  if (num_constraints > r.remaining() / 8) {
    r.Fail(Status::ParseError("checkpoint: MatcherStats size exceeds input"));
    return r.status();
  }
  if (!selectivity_ema_.empty() && num_constraints != selectivity_ema_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: MatcherStats constraint count mismatch"));
    return r.status();
  }
  std::vector<double> selectivities(num_constraints);
  for (double& v : selectivities) v = r.F64();
  Status status = r.EndSection(end);
  if (!status.ok()) return status;
  alpha_ = alpha;
  buffer_ema_ = std::move(buffers);
  selectivity_ema_ = std::move(selectivities);
  return Status::OK();
}

MatcherStatsPublisher::MatcherStatsPublisher(obs::MetricsRegistry* registry,
                                             const TemporalPattern& pattern) {
  if (registry == nullptr) return;
  buffer_gauges_.reserve(pattern.num_symbols());
  for (int s = 0; s < pattern.num_symbols(); ++s) {
    buffer_gauges_.push_back(
        registry->GetGauge("matcher.buffer_ema.s" + std::to_string(s)));
  }
  const int num_constraints = static_cast<int>(pattern.constraints().size());
  selectivity_gauges_.reserve(num_constraints);
  for (int c = 0; c < num_constraints; ++c) {
    selectivity_gauges_.push_back(
        registry->GetGauge("matcher.selectivity_ema.c" + std::to_string(c)));
  }
}

void MatcherStatsPublisher::Publish(const MatcherStats& stats) {
  for (size_t s = 0; s < buffer_gauges_.size(); ++s) {
    buffer_gauges_[s]->Set(stats.buffer_ema(static_cast<int>(s)));
  }
  for (size_t c = 0; c < selectivity_gauges_.size(); ++c) {
    selectivity_gauges_[c]->Set(stats.selectivity_ema(static_cast<int>(c)));
  }
}

}  // namespace tpstream
