#include "matcher/stats.h"

#include <algorithm>

namespace tpstream {

MatcherStats::MatcherStats(const TemporalPattern& pattern, double alpha)
    : alpha_(alpha) {
  buffer_ema_.assign(pattern.num_symbols(), 0.0);
  selectivity_ema_.reserve(pattern.constraints().size());
  for (const TemporalConstraint& c : pattern.constraints()) {
    double sel = 0.0;
    c.relations.ForEach([&sel](Relation r) { sel += DefaultSelectivity(r); });
    selectivity_ema_.push_back(std::min(sel, 1.0));
  }
}

MatcherStatsPublisher::MatcherStatsPublisher(obs::MetricsRegistry* registry,
                                             const TemporalPattern& pattern) {
  if (registry == nullptr) return;
  buffer_gauges_.reserve(pattern.num_symbols());
  for (int s = 0; s < pattern.num_symbols(); ++s) {
    buffer_gauges_.push_back(
        registry->GetGauge("matcher.buffer_ema.s" + std::to_string(s)));
  }
  const int num_constraints = static_cast<int>(pattern.constraints().size());
  selectivity_gauges_.reserve(num_constraints);
  for (int c = 0; c < num_constraints; ++c) {
    selectivity_gauges_.push_back(
        registry->GetGauge("matcher.selectivity_ema.c" + std::to_string(c)));
  }
}

void MatcherStatsPublisher::Publish(const MatcherStats& stats) {
  for (size_t s = 0; s < buffer_gauges_.size(); ++s) {
    buffer_gauges_[s]->Set(stats.buffer_ema(static_cast<int>(s)));
  }
  for (size_t c = 0; c < selectivity_gauges_.size(); ++c) {
    selectivity_gauges_[c]->Set(stats.selectivity_ema(static_cast<int>(c)));
  }
}

}  // namespace tpstream
