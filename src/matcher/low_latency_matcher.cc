#include "matcher/low_latency_matcher.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace tpstream {

namespace {

// Fingerprint of a temporal configuration. Situations within one stream
// have unique start timestamps, so the sequence of (symbol, ts) pairs
// identifies a configuration; FNV-1a over the start timestamps suffices.
uint64_t Fingerprint(const std::vector<Situation>& config) {
  uint64_t h = 1469598103934665603ull;
  for (const Situation& s : config) {
    uint64_t x = static_cast<uint64_t>(s.ts);
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

LowLatencyMatcher::LowLatencyMatcher(TemporalPattern pattern,
                                     DetectionAnalysis analysis,
                                     Duration window, MatchCallback callback,
                                     double stats_alpha)
    : pattern_(std::move(pattern)),
      analysis_(std::move(analysis)),
      window_(window),
      callback_(std::move(callback)),
      joiner_(&pattern_, window),
      stats_(pattern_, stats_alpha),
      started_(pattern_.num_symbols()),
      working_set_(pattern_.num_symbols(), nullptr) {}

void LowLatencyMatcher::SetEvaluationOrder(
    const std::vector<int>& permutation) {
  joiner_.SetOrder(EvaluationOrder::Build(pattern_, permutation));
}

void LowLatencyMatcher::Reset() {
  joiner_.Reset();
  for (std::optional<Situation>& slot : started_) slot.reset();
  // The exactly-once guard MUST be dropped with the rest of the stream
  // state: a fingerprint left over from before the reset matches the
  // configuration a replayed stream produces again and would suppress its
  // (legitimate) emission.
  emitted_.clear();
  emitted_sweep_threshold_ = 1024;
  shed_trigger_candidates_ = 0;
  stats_ = MatcherStats(pattern_, stats_.alpha());
}

void LowLatencyMatcher::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kLowLatencyMatcher);
  joiner_.Checkpoint(w);
  stats_.Checkpoint(w);
  w.U32(static_cast<uint32_t>(started_.size()));
  for (const std::optional<Situation>& slot : started_) {
    w.Bool(slot.has_value());
    if (slot.has_value()) w.WriteSituation(*slot);
  }
  // The fingerprint table is serialized in sorted order so that two
  // checkpoints of identical state are byte-identical (the
  // checkpoint-of-restore determinism property tested in
  // checkpoint_test.cc); unordered_map iteration order is not stable
  // across processes.
  std::vector<std::pair<uint64_t, TimePoint>> entries(emitted_.begin(),
                                                      emitted_.end());
  std::sort(entries.begin(), entries.end());
  w.U64(entries.size());
  for (const auto& [fp, min_ts] : entries) {
    w.U64(fp);
    w.I64(min_ts);
  }
  w.U64(emitted_sweep_threshold_);
  w.I64(shed_trigger_candidates_);
  w.EndSection(cookie);
}

Status LowLatencyMatcher::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kLowLatencyMatcher);
  Status status = joiner_.Restore(r);
  if (!status.ok()) return status;
  status = stats_.Restore(r);
  if (!status.ok()) return status;
  const uint32_t num_slots = r.U32();
  if (r.ok() && num_slots != started_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: started-slot count mismatch (pattern changed?)"));
    return r.status();
  }
  for (std::optional<Situation>& slot : started_) {
    slot.reset();
    if (r.Bool()) slot = r.ReadSituation();
  }
  const uint64_t num_emitted = r.U64();
  if (num_emitted > r.remaining() / 16) {
    r.Fail(Status::ParseError(
        "checkpoint: fingerprint table size exceeds input"));
    return r.status();
  }
  emitted_.clear();
  emitted_.reserve(num_emitted);
  for (uint64_t i = 0; i < num_emitted && r.ok(); ++i) {
    const uint64_t fp = r.U64();
    const TimePoint min_ts = r.I64();
    emitted_.emplace(fp, min_ts);
  }
  emitted_sweep_threshold_ = r.U64();
  shed_trigger_candidates_ = r.I64();
  return r.EndSection(end);
}

void LowLatencyMatcher::EnableMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  joiner_.EnableMetrics(registry);
  triggers_ctr_ = registry->GetCounter("matcher.triggers");
  dedup_hits_ctr_ = registry->GetCounter("matcher.dedup_hits");
  shed_trigger_ctr_ = registry->GetCounter("robust.shed_trigger_candidates");
}

void LowLatencyMatcher::Update(const std::vector<SymbolSituation>& started,
                               const std::vector<SymbolSituation>& finished,
                               TimePoint now) {
  scratch_started_.assign(started.begin(), started.end());
  scratch_finished_.assign(finished.begin(), finished.end());
  Consume(scratch_started_, scratch_finished_, now);
}

void LowLatencyMatcher::Consume(std::vector<SymbolSituation>& started,
                                std::vector<SymbolSituation>& finished,
                                TimePoint now) {
  joiner_.PurgeBefore(now - window_);

  // Migrate every situation finishing now before running end triggers, so
  // that simultaneously ending counterparts (equals / finishes /
  // finished-by) are visible in the regular buffers.
  for (SymbolSituation& ss : finished) {
    started_[ss.symbol].reset();
    joiner_.buffer(ss.symbol).Append(std::move(ss.situation));
    // Overload cap: evict oldest situations; the one just appended is the
    // newest and always survives (cap >= 1), so Back() below stays valid.
    joiner_.EnforceCap(ss.symbol);
  }
  for (const SymbolSituation& ss : finished) {
    if (!analysis_.match_on_end(ss.symbol)) continue;
    // A configuration completed purely by already-finished situations can
    // only have its latest endpoint here if some relation ends
    // simultaneously with this one; otherwise an earlier trigger covered
    // it. Symbols excluded while ongoing defer all their triggers to the
    // end, so for them the bare combination is always admissible.
    const bool allow_bare = analysis_.has_simultaneous_end(ss.symbol) ||
                            analysis_.excluded_while_ongoing(ss.symbol);
    Trigger(ss.symbol, joiner_.buffer(ss.symbol).Back(), allow_bare, now);
  }

  // Start triggers run after end migration: a situation ending at `now`
  // can relate to one starting at `now` only via meets/met-by, which
  // trigger at the *start* of the later situation and find the ended
  // counterpart in its buffer.
  for (SymbolSituation& ss : started) {
    started_[ss.symbol] = std::move(ss.situation);
    if (!analysis_.match_on_start(ss.symbol)) continue;
    Trigger(ss.symbol, *started_[ss.symbol], /*allow_bare=*/true, now);
  }

  for (int s = 0; s < pattern_.num_symbols(); ++s) {
    stats_.UpdateBufferSize(s, static_cast<double>(joiner_.buffer(s).size()));
  }

  // Amortized sweep of the exactly-once guard.
  if (analysis_.needs_dedup() &&
      emitted_.size() >= emitted_sweep_threshold_) {
    const TimePoint horizon = now - window_;
    for (auto it = emitted_.begin(); it != emitted_.end();) {
      it = it->second < horizon ? emitted_.erase(it) : std::next(it);
    }
    emitted_sweep_threshold_ =
        std::max<size_t>(1024, emitted_.size() * 2);
  }
}

void LowLatencyMatcher::Trigger(int symbol, const Situation& situation,
                                bool allow_bare, TimePoint now) {
  if (triggers_ctr_ != nullptr) triggers_ctr_->Inc();
  // Candidate pool: started situations that can coexist with the trigger
  // situation in a certain configuration. A related started situation
  // whose constraint with the trigger is not yet certain cannot
  // contribute now (its configurations will be concluded by a later
  // trigger), and impossible ones never will.
  pool_.clear();
  for (int j = 0; j < pattern_.num_symbols(); ++j) {
    if (j == symbol || !started_[j].has_value()) continue;
    if (started_[j]->ts < now - window_) continue;  // window purge
    const int ci = pattern_.ConstraintIndex(symbol, j);
    if (ci >= 0) {
      const TemporalConstraint& c = pattern_.constraints()[ci];
      const Situation& sa = (c.a == symbol) ? situation : *started_[j];
      const Situation& sb = (c.a == symbol) ? *started_[j] : situation;
      if (c.Check(sa, sb) != Certainty::kCertain) continue;
    }
    pool_.push_back(j);
  }

  // Trigger-pool cap: the subset enumeration below is 2^pool, so a flood
  // of concurrently ongoing situations on a wide pattern can stall a
  // single trigger. Shed the *oldest* started candidates (smallest start
  // timestamp — closest to expiry, least likely to complete), keep the
  // newest, then restore ascending symbol order so the enumeration
  // sequence for surviving candidates is unperturbed.
  if (max_trigger_pool_ > 0 && pool_.size() > max_trigger_pool_) {
    const int64_t excess =
        static_cast<int64_t>(pool_.size() - max_trigger_pool_);
    std::sort(pool_.begin(), pool_.end(), [this](int a, int b) {
      return started_[a]->ts > started_[b]->ts;
    });
    pool_.resize(max_trigger_pool_);
    std::sort(pool_.begin(), pool_.end());
    shed_trigger_candidates_ += excess;
    if (shed_trigger_ctr_ != nullptr) shed_trigger_ctr_->Inc(excess);
  }

  const size_t subsets = size_t{1} << pool_.size();
  for (size_t mask = 0; mask < subsets; ++mask) {
    if (mask == 0 && !allow_bare) continue;
    working_set_.assign(working_set_.size(), nullptr);
    working_set_[symbol] = &situation;
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (mask & (size_t{1} << i)) {
        working_set_[pool_[i]] = &*started_[pool_[i]];
      }
    }
    joiner_.Enumerate(
        working_set_, now, [this](const Match& m) { Emit(m); }, &stats_);
  }
}

void LowLatencyMatcher::Emit(const Match& match) {
  // When the detection analysis proves exactly-once delivery, skip the
  // fingerprint table entirely — it dominates per-match cost on
  // match-heavy patterns.
  if (analysis_.needs_dedup()) {
    TimePoint min_ts = kTimeMax;
    for (const Situation& s : match.config) {
      if (s.ts < min_ts) min_ts = s.ts;
    }
    const uint64_t fp = Fingerprint(match.config);
    auto [it, inserted] = emitted_.emplace(fp, min_ts);
    if (!inserted) {
      if (dedup_hits_ctr_ != nullptr) dedup_hits_ctr_->Inc();
      return;
    }
  }
  callback_(match);
}

}  // namespace tpstream
