#ifndef TPSTREAM_MATCHER_INDEX_RANGES_H_
#define TPSTREAM_MATCHER_INDEX_RANGES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpstream {

/// Half-open range [lo, hi) of buffer positions.
struct IndexRange {
  uint32_t lo = 0;
  uint32_t hi = 0;

  bool empty() const { return lo >= hi; }
  uint32_t size() const { return empty() ? 0 : hi - lo; }

  /// Intersection of two ranges.
  IndexRange Intersect(IndexRange other) const {
    return IndexRange{lo > other.lo ? lo : other.lo,
                      hi < other.hi ? hi : other.hi};
  }
};

/// A normalized set of disjoint, ascending index ranges. Search results
/// per temporal relation are contiguous ranges (Section 5.2); unions over
/// a constraint's relations and intersections across constraints operate
/// on these sets without materializing individual indices.
class IndexRanges {
 public:
  IndexRanges() = default;

  static IndexRanges Single(IndexRange r) {
    IndexRanges out;
    out.Add(r);
    return out;
  }

  /// Adds a range, merging/normalizing as needed.
  void Add(IndexRange r);

  /// Set intersection.
  IndexRanges Intersect(const IndexRanges& other) const;

  /// Allocation-free variants for scratch reuse on the join hot path:
  /// Clear() keeps the backing capacity, IntersectInto() writes the
  /// intersection into `out` (cleared first, capacity reused), Swap()
  /// exchanges contents in O(1).
  void Clear() { ranges_.clear(); }
  void IntersectInto(const IndexRanges& other, IndexRanges* out) const;
  void Swap(IndexRanges& other) { ranges_.swap(other.ranges_); }

  bool empty() const { return ranges_.empty(); }
  uint64_t TotalSize() const;
  const std::vector<IndexRange>& ranges() const { return ranges_; }

  /// Calls fn(uint32_t) for every contained index, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const IndexRange& r : ranges_) {
      for (uint32_t i = r.lo; i < r.hi; ++i) fn(i);
    }
  }

  std::string ToString() const;

 private:
  std::vector<IndexRange> ranges_;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_INDEX_RANGES_H_
