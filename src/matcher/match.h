#ifndef TPSTREAM_MATCHER_MATCH_H_
#define TPSTREAM_MATCHER_MATCH_H_

#include <functional>
#include <vector>

#include "common/situation.h"
#include "common/time.h"

namespace tpstream {

/// A temporal configuration matching the pattern (Definition 11/12).
struct Match {
  /// One situation per pattern symbol, indexed by symbol. With low-latency
  /// matching, entries may still be ongoing (te == kTimeUnknown); their
  /// payload is the aggregate snapshot at detection time.
  std::vector<Situation> config;

  /// Application timestamp at which the match was concluded. For the
  /// baseline matcher this equals max(s.te); the low-latency matcher
  /// reports the earliest possible detection time t_d (Section 5.3).
  TimePoint detected_at = 0;
};

/// Match consumers receive a reference that is valid only for the
/// duration of the call (the matchers reuse the underlying storage);
/// copy whatever outlives the callback.
using MatchCallback = std::function<void(const Match&)>;

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_MATCH_H_
