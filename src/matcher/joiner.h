#ifndef TPSTREAM_MATCHER_JOINER_H_
#define TPSTREAM_MATCHER_JOINER_H_

#include <functional>
#include <vector>

#include "algebra/pattern.h"
#include "ckpt/serde.h"
#include "common/status.h"
#include "matcher/eval_order.h"
#include "matcher/match.h"
#include "matcher/situation_buffer.h"
#include "matcher/stats.h"
#include "obs/metrics.h"

namespace tpstream {

/// The pattern-matching join core shared by the baseline and the
/// low-latency matcher (Algorithm 3 / PerformMatch).
///
/// Owns one SituationBuffer per symbol and enumerates all temporal
/// configurations that extend a partially bound working set, following the
/// current evaluation order. For unbound symbols, candidates are found
/// with binary-search range queries per temporal relation, unioned within
/// a constraint and intersected across constraints (Section 5.2,
/// Figure 3). Bound entries may be ongoing; every emitted configuration is
/// *certain* to match (three-valued constraint evaluation).
class PatternJoiner {
 public:
  PatternJoiner(const TemporalPattern* pattern, Duration window);

  void SetOrder(EvaluationOrder order) { order_ = std::move(order); }
  const EvaluationOrder& order() const { return order_; }

  /// Ablation switch: scan buffers linearly and test every candidate
  /// against the constraints (the naive strategy of Equation 1) instead
  /// of binary-search range queries (Equation 2). Results are identical;
  /// only the cost differs. Used by bench_ablation_rangequery.
  void SetNaiveScan(bool naive) { naive_scan_ = naive; }

  /// Registers the `matcher.*` join-core counters (probes, range queries
  /// and their hits, partial configurations, full matches, window
  /// rejects) with `registry` and starts recording into them, plus the
  /// `robust.shed_situations` / `robust.lost_match_upper_bound` overload
  /// counters. Disabled (null handles, a dead branch per site) by
  /// default.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Overload protection (Degradation contract): caps every symbol
  /// buffer at `max_per_buffer` finished situations. 0 disables the cap;
  /// non-zero values are clamped to >= 1 so the newest situation always
  /// survives (incremental matching forces it into every new
  /// configuration). Enforcement happens via EnforceCap() after each
  /// append; evictions drop the *oldest* situations and are accounted.
  void SetSituationCap(size_t max_per_buffer) {
    situation_cap_ = max_per_buffer;
  }
  size_t situation_cap() const { return situation_cap_; }

  /// Evicts `symbol`'s buffer down to the cap (oldest first), updating
  /// the shed accounting. Called by the matchers right after appending.
  void EnforceCap(int symbol);

  /// Situations evicted by cap enforcement since construction.
  int64_t shed_situations() const { return shed_situations_; }
  /// Upper bound on the matches that were enumerable at shed time (one
  /// candidate per other symbol already buffered) and can no longer be
  /// emitted. Configurations completed by situations arriving *after*
  /// the shed are additionally lost and not counted here — see
  /// docs/architecture.md, "Degradation contract".
  int64_t lost_match_upper_bound() const { return lost_match_bound_; }

  SituationBuffer& buffer(int symbol) { return buffers_[symbol]; }
  const SituationBuffer& buffer(int symbol) const { return buffers_[symbol]; }

  void PurgeBefore(TimePoint min_ts) {
    for (SituationBuffer& b : buffers_) b.PurgeBefore(min_ts);
  }

  /// Total buffered situations / approximate state bytes (for the memory
  /// experiments of Section 6.2.2).
  size_t BufferedCount() const;

  /// Drops all stream-derived state: every situation buffer and the shed
  /// accounting. The installed evaluation order and configuration
  /// (window, caps, metrics handles) survive — they are plan/config, not
  /// stream state. Observability counters keep accumulating (process
  /// lifetime, Durability contract).
  void Reset();

  /// Serializes buffers, shed accounting and the evaluation order.
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores from a checkpoint taken on a joiner over the same pattern.
  Status Restore(ckpt::Reader& r);

  using EmitFn = std::function<void(const Match&)>;

  /// Enumerates every certain configuration containing all non-null
  /// entries of `working_set` (pointers indexed by symbol). `now` is the
  /// current application time, used to close the window condition for
  /// ongoing entries. Statistics are folded into `stats` when non-null.
  void Enumerate(std::vector<const Situation*>& working_set, TimePoint now,
                 const EmitFn& emit, MatcherStats* stats);

 private:
  /// Reused per evaluation depth (Step recursion level): candidate-set
  /// construction never allocates in steady state because the range
  /// vectors keep their capacity across probes.
  struct StepScratch {
    IndexRanges result;
    IndexRanges per_constraint;
    IndexRanges tmp;
  };

  void Step(std::vector<const Situation*>& ws, size_t step_index,
            TimePoint now, const EmitFn& emit, MatcherStats* stats);

  /// Checks all constraints of `step` whose other endpoint is bound,
  /// against the bound situation of the step's own symbol.
  bool CheckBound(const EvalStep& step,
                  const std::vector<const Situation*>& ws) const;

  /// Candidate indices in the step symbol's buffer satisfying every
  /// applicable constraint (Figure 3: two range queries per relation,
  /// union within a constraint, intersection across constraints). The
  /// returned reference points into `scratch` and is valid until the next
  /// call with the same scratch (i.e. the next probe at this depth).
  const IndexRanges& FindCandidates(const EvalStep& step,
                                    const std::vector<const Situation*>& ws,
                                    MatcherStats* stats,
                                    StepScratch& scratch);

  void EmitIfWindowOk(const std::vector<const Situation*>& ws, TimePoint now,
                      const EmitFn& emit) const;

  const IndexRanges& FindCandidatesNaive(
      const EvalStep& step, const std::vector<const Situation*>& ws,
      StepScratch& scratch) const;

  const TemporalPattern* pattern_;
  Duration window_;
  EvaluationOrder order_;
  std::vector<SituationBuffer> buffers_;
  bool naive_scan_ = false;
  std::vector<StepScratch> step_scratch_;  // indexed by recursion depth

  // Overload shedding state (Degradation contract).
  size_t situation_cap_ = 0;  // 0 = unbounded
  int64_t shed_situations_ = 0;
  int64_t lost_match_bound_ = 0;

  // Observability handles (null when metrics are disabled).
  obs::Counter* shed_situations_ctr_ = nullptr;
  obs::Counter* lost_match_bound_ctr_ = nullptr;
  obs::Counter* probes_ctr_ = nullptr;
  obs::Counter* range_queries_ctr_ = nullptr;
  obs::Counter* range_query_hits_ctr_ = nullptr;
  obs::Counter* partial_configs_ctr_ = nullptr;
  obs::Counter* full_matches_ctr_ = nullptr;
  obs::Counter* window_rejects_ctr_ = nullptr;
  // Reused per emission; the Match reference handed to EmitFn is valid
  // only for the duration of the call.
  mutable Match scratch_match_;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_JOINER_H_
