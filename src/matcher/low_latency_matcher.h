#ifndef TPSTREAM_MATCHER_LOW_LATENCY_MATCHER_H_
#define TPSTREAM_MATCHER_LOW_LATENCY_MATCHER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "algebra/detection.h"
#include "algebra/pattern.h"
#include "ckpt/serde.h"
#include "common/status.h"
#include "matcher/joiner.h"
#include "matcher/match.h"
#include "robust/overload_policy.h"

namespace tpstream {

/// The low-latency matcher (Algorithm 4): concludes matches at the
/// earliest possible point in time t_d(P) by matching on the starts and
/// ends of *trigger* situations (Section 5.3).
///
/// Started (ongoing) situations live in a separate per-symbol slot that is
/// invisible to the join core; every trigger explicitly seeds the working
/// set with combinations of the trigger situation and compatible started
/// situations. Certainty of all constraints is established with the
/// three-valued relation evaluation (including the prefix-group
/// relaxation), so every emitted configuration is guaranteed to match.
///
/// Deviations from the paper's presentation, chosen for robustness and
/// documented in DESIGN.md:
///  - all situations finished at the current instant are migrated to the
///    regular buffers before end-triggers run, which resolves
///    simultaneous-end configurations (equals/finishes) uniformly;
///  - a fingerprint table enforces exactly-once emission instead of the
///    paper's case analysis;
///  - the window condition for configurations containing ongoing
///    situations is evaluated against the current time.
class LowLatencyMatcher {
 public:
  LowLatencyMatcher(TemporalPattern pattern, DetectionAnalysis analysis,
                    Duration window, MatchCallback callback,
                    double stats_alpha = 0.01);

  void SetEvaluationOrder(const std::vector<int>& permutation);
  std::vector<int> CurrentOrder() const { return joiner_.order().Permutation(); }

  /// Starts recording the `matcher.*` counters into `registry`: the
  /// shared join-core counters (see PatternJoiner::EnableMetrics) plus
  /// the low-latency trigger and dedup-suppression counts.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Processes the situations started and finished at application time
  /// `now` (one deriver step).
  void Update(const std::vector<SymbolSituation>& started,
              const std::vector<SymbolSituation>& finished, TimePoint now);

  /// Move-consuming variant used by the operator hot path: situation
  /// payloads are moved (not copied) into the matcher state, leaving the
  /// input vectors with moved-from elements. Results are identical to
  /// Update(); no allocation occurs in steady state.
  void Consume(std::vector<SymbolSituation>& started,
               std::vector<SymbolSituation>& finished, TimePoint now);

  const TemporalPattern& pattern() const { return pattern_; }
  const MatcherStats& stats() const { return stats_; }
  size_t BufferedCount() const { return joiner_.BufferedCount(); }

  /// Returns the matcher to its freshly-constructed stream state: clears
  /// the situation buffers, the per-symbol started slots (the trigger
  /// pool source), the `emitted_` exactly-once fingerprint table and the
  /// shed accounting, and re-seeds the statistics EMAs. Stale fingerprints
  /// surviving a reset would silently suppress legitimate re-emissions
  /// when the same stream prefix is replayed into the same engine —
  /// pinned by MatcherReset.ReplayAfterResetReEmits. Configuration
  /// (window, evaluation order, overload caps, metrics) is retained.
  void Reset();

  /// Serializes all stream-derived state: joiner (buffers + order),
  /// statistics, started slots, the exactly-once fingerprint table (with
  /// its sweep threshold) and the trigger-shed accounting.
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a matcher over the same pattern.
  /// Replaces all stream state; on error the matcher must be Reset() or
  /// discarded before further use.
  Status Restore(ckpt::Reader& r);

  /// Installs the overload caps (Degradation contract): the per-symbol
  /// situation-buffer cap (enforced via the joiner, oldest evicted first)
  /// and the trigger-pool cap bounding the 2^pool subset enumeration per
  /// trigger (oldest started candidates shed first).
  void SetOverload(const robust::OverloadPolicy& policy) {
    joiner_.SetSituationCap(policy.max_situations_per_buffer);
    max_trigger_pool_ = policy.max_trigger_pool;
  }
  int64_t shed_situations() const { return joiner_.shed_situations(); }
  int64_t lost_match_upper_bound() const {
    return joiner_.lost_match_upper_bound();
  }
  /// Started situations dropped from trigger pools by the pool cap.
  int64_t shed_trigger_candidates() const { return shed_trigger_candidates_; }

 private:
  /// Runs the join for every admissible combination of the trigger
  /// situation and started situations (the power-set construction of
  /// Algorithm 4). `allow_bare` permits the combination containing only
  /// the trigger situation itself.
  void Trigger(int symbol, const Situation& situation, bool allow_bare,
               TimePoint now);

  void Emit(const Match& match);

  TemporalPattern pattern_;
  DetectionAnalysis analysis_;
  Duration window_;
  MatchCallback callback_;
  PatternJoiner joiner_;
  MatcherStats stats_;

  /// Ongoing situation per symbol (at most one: situations of a stream
  /// are disjoint). The payload is the aggregate snapshot at announcement.
  std::vector<std::optional<Situation>> started_;

  std::vector<const Situation*> working_set_;
  std::vector<int> pool_;  // scratch: candidate started symbols per trigger
  // Reused by Update() to hand Consume() mutable copies of the inputs.
  std::vector<SymbolSituation> scratch_started_;
  std::vector<SymbolSituation> scratch_finished_;

  /// Exactly-once guard: configuration fingerprint -> min start timestamp
  /// (for purging).
  std::unordered_map<uint64_t, TimePoint> emitted_;
  size_t emitted_sweep_threshold_ = 1024;

  // Overload shedding state (Degradation contract).
  size_t max_trigger_pool_ = 0;  // 0 = unbounded
  int64_t shed_trigger_candidates_ = 0;

  // Observability handles (null when metrics are disabled).
  obs::Counter* triggers_ctr_ = nullptr;
  obs::Counter* dedup_hits_ctr_ = nullptr;
  obs::Counter* shed_trigger_ctr_ = nullptr;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_LOW_LATENCY_MATCHER_H_
