#ifndef TPSTREAM_MATCHER_MATCHER_H_
#define TPSTREAM_MATCHER_MATCHER_H_

#include <memory>
#include <vector>

#include "algebra/pattern.h"
#include "ckpt/serde.h"
#include "common/status.h"
#include "matcher/joiner.h"
#include "matcher/match.h"
#include "robust/overload_policy.h"

namespace tpstream {

/// The baseline matcher component (Algorithms 2 and 3): consumes finished
/// situations ordered by end timestamp and reports every matching temporal
/// configuration exactly once, at the end timestamp of its last situation.
class Matcher {
 public:
  Matcher(TemporalPattern pattern, Duration window, MatchCallback callback,
          double stats_alpha = 0.01);

  /// Installs a new evaluation order. The matcher keeps no intermediate
  /// state between updates, so migration is free (Section 5.4.1).
  void SetEvaluationOrder(const std::vector<int>& permutation);
  std::vector<int> CurrentOrder() const { return joiner_.order().Permutation(); }

  /// Ablation switch: linear candidate scans instead of range queries
  /// (see PatternJoiner::SetNaiveScan).
  void SetNaiveScan(bool naive) { joiner_.SetNaiveScan(naive); }

  /// Starts recording the `matcher.*` join-core counters into `registry`
  /// (see PatternJoiner::EnableMetrics).
  void EnableMetrics(obs::MetricsRegistry* registry) {
    joiner_.EnableMetrics(registry);
  }

  /// Processes the batch of situations finished at application time `now`
  /// (Algorithm 2): purges expired situations, adds the new ones, and
  /// matches each of them.
  void Update(const std::vector<SymbolSituation>& finished, TimePoint now);

  /// Move-consuming variant used by the operator hot path: situation
  /// payloads are moved (not copied) into the matcher buffers, leaving
  /// `finished` with moved-from elements. Results are identical to
  /// Update(); no allocation occurs in steady state.
  void Consume(std::vector<SymbolSituation>& finished, TimePoint now);

  const TemporalPattern& pattern() const { return pattern_; }
  const MatcherStats& stats() const { return stats_; }
  Duration window() const { return window_; }

  /// Number of buffered situations (memory accounting, Section 6.2.2).
  size_t BufferedCount() const { return joiner_.BufferedCount(); }

  /// Returns the matcher to its freshly-constructed stream state (buffers,
  /// shed accounting, statistics EMAs). Configuration — window, evaluation
  /// order, overload caps, metrics — is retained.
  void Reset();

  /// Serializes all stream-derived state (joiner + statistics).
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a matcher over the same pattern. On
  /// error the matcher must be Reset() or discarded before further use.
  Status Restore(ckpt::Reader& r);

  /// Installs the overload caps (Degradation contract); only the
  /// situation-buffer cap applies to the baseline matcher.
  void SetOverload(const robust::OverloadPolicy& policy) {
    joiner_.SetSituationCap(policy.max_situations_per_buffer);
  }
  int64_t shed_situations() const { return joiner_.shed_situations(); }
  int64_t lost_match_upper_bound() const {
    return joiner_.lost_match_upper_bound();
  }

 private:
  TemporalPattern pattern_;
  Duration window_;
  MatchCallback callback_;
  PatternJoiner joiner_;
  MatcherStats stats_;
  std::vector<const Situation*> working_set_;
  // Reused by Update() to hand Consume() a mutable copy of the input.
  std::vector<SymbolSituation> scratch_finished_;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_MATCHER_H_
