#include "matcher/index_ranges.h"

#include <algorithm>
#include <sstream>

namespace tpstream {

void IndexRanges::Add(IndexRange r) {
  if (r.empty()) return;
  // Find insertion point by lower bound, then merge with overlapping or
  // adjacent neighbours. Range counts are tiny (<= relations per
  // constraint), so linear movement is fine.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r,
      [](const IndexRange& x, const IndexRange& y) { return x.lo < y.lo; });
  it = ranges_.insert(it, r);
  // Merge backwards.
  while (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->hi < it->lo) break;
    prev->hi = std::max(prev->hi, it->hi);
    it = std::prev(ranges_.erase(it));
  }
  // Merge forwards.
  while (std::next(it) != ranges_.end()) {
    auto next = std::next(it);
    if (it->hi < next->lo) break;
    it->hi = std::max(it->hi, next->hi);
    ranges_.erase(next);
  }
}

IndexRanges IndexRanges::Intersect(const IndexRanges& other) const {
  IndexRanges out;
  IntersectInto(other, &out);
  return out;
}

void IndexRanges::IntersectInto(const IndexRanges& other,
                                IndexRanges* out) const {
  out->ranges_.clear();
  size_t i = 0;
  size_t j = 0;
  while (i < ranges_.size() && j < other.ranges_.size()) {
    const IndexRange overlap = ranges_[i].Intersect(other.ranges_[j]);
    if (!overlap.empty()) out->ranges_.push_back(overlap);
    if (ranges_[i].hi < other.ranges_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
}

uint64_t IndexRanges::TotalSize() const {
  uint64_t total = 0;
  for (const IndexRange& r : ranges_) total += r.size();
  return total;
}

std::string IndexRanges::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << ranges_[i].lo << "," << ranges_[i].hi << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace tpstream
