#ifndef TPSTREAM_MATCHER_SITUATION_BUFFER_H_
#define TPSTREAM_MATCHER_SITUATION_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "algebra/range_bounds.h"
#include "ckpt/serde.h"
#include "common/situation.h"
#include "common/status.h"
#include "matcher/index_ranges.h"

namespace tpstream {

/// Array-backed ring buffer holding the finished situations of one stream
/// inside the evaluation window.
///
/// Derived situation streams have pairwise disjoint intervals
/// (Definition 8), so the buffer is simultaneously sorted by start and end
/// timestamp. Range queries on either endpoint therefore return one
/// contiguous index range, found with binary search (Section 5.2).
class SituationBuffer {
 public:
  SituationBuffer() : data_(16) {}

  void Append(const Situation& s) {
    assert(size_ == 0 || (s.ts >= Back().te));
    if (size_ == data_.size()) Grow();
    data_[(head_ + size_) % data_.size()] = s;
    ++size_;
  }

  /// Move-in variant for the allocation-free ingest path: the situation's
  /// payload tuple changes owner instead of being copied.
  void Append(Situation&& s) {
    assert(size_ == 0 || (s.ts >= Back().te));
    if (size_ == data_.size()) Grow();
    data_[(head_ + size_) % data_.size()] = std::move(s);
    ++size_;
  }

  /// Drops all situations with ts < min_ts (window purge, Algorithm 2).
  void PurgeBefore(TimePoint min_ts) {
    while (size_ > 0 && Front().ts < min_ts) {
      head_ = (head_ + 1) % data_.size();
      --size_;
    }
  }

  /// Drops the oldest buffered situation (overload shedding; the caller
  /// accounts for the eviction). No-op on an empty buffer. Indices from
  /// earlier range queries are invalidated; pointers to the remaining
  /// situations stay valid (no reallocation).
  void PopFront() {
    if (size_ == 0) return;
    // The slot keeps its payload capacity for reuse by a later Append
    // (allocation-free steady state); total retained storage stays
    // bounded by the ring's slot count.
    head_ = (head_ + 1) % data_.size();
    --size_;
  }

  /// Drops every buffered situation (Reset/Restore lifecycle). The ring
  /// storage is retained for reuse.
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Serializes the buffered situations in logical (timestamp) order.
  void Checkpoint(ckpt::Writer& w) const {
    const size_t cookie = w.BeginSection(ckpt::Tag::kSituationBuffer);
    w.U64(size_);
    for (size_t i = 0; i < size_; ++i) w.WriteSituation(At(i));
    w.EndSection(cookie);
  }

  /// Replaces the buffer contents with the checkpointed situations. The
  /// physical ring layout may differ from the checkpointing instance; all
  /// observable behaviour depends only on the logical sequence.
  Status Restore(ckpt::Reader& r) {
    const size_t end = r.BeginSection(ckpt::Tag::kSituationBuffer);
    Clear();
    const uint64_t n = r.U64();
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      Situation s = r.ReadSituation();
      if (!r.ok()) break;
      if (size_ > 0 && s.ts < Back().te) {
        r.Fail(Status::ParseError(
            "checkpoint: situation buffer not in timestamp order"));
        break;
      }
      Append(std::move(s));
    }
    return r.EndSection(end);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Situation& At(size_t logical_index) const {
    assert(logical_index < size_);
    return data_[(head_ + logical_index) % data_.size()];
  }
  const Situation& Front() const { return At(0); }
  const Situation& Back() const { return At(size_ - 1); }

  /// Logical index range of situations whose start timestamp falls into
  /// `range` (inclusive bounds).
  IndexRange FindTs(const TimeRange& range) const {
    return IndexRange{LowerBound(range.lo, /*by_ts=*/true),
                      UpperBound(range.hi, /*by_ts=*/true)};
  }

  /// Logical index range of situations whose end timestamp falls into
  /// `range`.
  IndexRange FindTe(const TimeRange& range) const {
    return IndexRange{LowerBound(range.lo, /*by_ts=*/false),
                      UpperBound(range.hi, /*by_ts=*/false)};
  }

  /// Index range of candidates satisfying both endpoint bounds.
  IndexRange Find(const RelationBounds& bounds) const {
    return FindTs(bounds.ts_range).Intersect(FindTe(bounds.te_range));
  }

 private:
  void Grow() {
    // Move, don't copy: payload tuples keep their heap buffers, so growth
    // costs one array allocation regardless of situation payload sizes.
    std::vector<Situation> bigger(data_.size() * 2);
    for (size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(data_[(head_ + i) % data_.size()]);
    }
    data_ = std::move(bigger);
    head_ = 0;
  }

  TimePoint Key(size_t logical_index, bool by_ts) const {
    const Situation& s = At(logical_index);
    return by_ts ? s.ts : s.te;
  }

  // First logical index with key >= t.
  uint32_t LowerBound(TimePoint t, bool by_ts) const {
    size_t lo = 0;
    size_t hi = size_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (Key(mid, by_ts) < t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<uint32_t>(lo);
  }

  // First logical index with key > t.
  uint32_t UpperBound(TimePoint t, bool by_ts) const {
    if (t == kTimeMax) return static_cast<uint32_t>(size_);
    size_t lo = 0;
    size_t hi = size_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (Key(mid, by_ts) <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<uint32_t>(lo);
  }

  std::vector<Situation> data_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace tpstream

#endif  // TPSTREAM_MATCHER_SITUATION_BUFFER_H_
