#include "matcher/eval_order.h"

#include <sstream>

namespace tpstream {

EvaluationOrder EvaluationOrder::Build(const TemporalPattern& pattern,
                                       const std::vector<int>& permutation) {
  EvaluationOrder order;
  order.steps_.reserve(permutation.size());
  const auto& constraints = pattern.constraints();
  for (int symbol : permutation) {
    EvalStep step;
    step.symbol = symbol;
    for (int ci = 0; ci < static_cast<int>(constraints.size()); ++ci) {
      const TemporalConstraint& c = constraints[ci];
      if (c.a == symbol) {
        step.constraints.push_back(EvalStep::Touching{ci, c.b, true});
      } else if (c.b == symbol) {
        step.constraints.push_back(EvalStep::Touching{ci, c.a, false});
      }
    }
    order.steps_.push_back(std::move(step));
  }
  return order;
}

std::vector<int> EvaluationOrder::Permutation() const {
  std::vector<int> out;
  out.reserve(steps_.size());
  for (const EvalStep& step : steps_) out.push_back(step.symbol);
  return out;
}

std::string EvaluationOrder::ToString(const TemporalPattern& pattern) const {
  std::ostringstream os;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << pattern.symbol_names()[steps_[i].symbol];
  }
  return os.str();
}

}  // namespace tpstream
