#ifndef TPSTREAM_TPSTREAM_H_
#define TPSTREAM_TPSTREAM_H_

/// Umbrella header: the full public API of the TPStream library.
///
/// Typical usage:
///   - describe the input with a Schema;
///   - build a query with QueryBuilder (query/builder.h) or parse the
///     textual language (query/parser.h);
///   - run it with TPStreamOperator or PartitionedTPStream
///     (core/operator.h, core/partitioned_operator.h);
///   - consume output events (RETURN projections) or raw matches.
///
/// Lower-level building blocks (deriver, matchers, interval algebra,
/// optimizer) are usable on their own; see README.md for the module map.

#include "algebra/detection.h"
#include "algebra/interval_relation.h"
#include "algebra/pattern.h"
#include "algebra/range_bounds.h"
#include "common/event.h"
#include "common/schema.h"
#include "common/situation.h"
#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "core/operator.h"
#include "core/partitioned_operator.h"
#include "core/query_spec.h"
#include "derive/definition.h"
#include "derive/deriver.h"
#include "expr/aggregate.h"
#include "expr/bytecode.h"
#include "expr/expression.h"
#include "io/csv.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/match.h"
#include "matcher/matcher.h"
#include "ooo/reorder_buffer.h"
#include "optimizer/plan_optimizer.h"
#include "parallel/parallel_operator.h"
#include "query/builder.h"
#include "query/parser.h"

#endif  // TPSTREAM_TPSTREAM_H_
