#include "multi/query_group.h"

#include "derive/fingerprint.h"

namespace tpstream {
namespace multi {

namespace {

bool SameSchema(const Schema& a, const Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (int i = 0; i < a.num_fields(); ++i) {
    if (a.field(i).name != b.field(i).name ||
        a.field(i).type != b.field(i).type) {
      return false;
    }
  }
  return true;
}

}  // namespace

QueryGroup::QueryGroup() : QueryGroup(Options()) {}

QueryGroup::QueryGroup(Options options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    events_ctr_ = options_.metrics->GetCounter("multi.events");
    queries_gauge_ = options_.metrics->GetGauge("multi.queries");
    distinct_defs_gauge_ =
        options_.metrics->GetGauge("multi.distinct_definitions");
    plan_hits_gauge_ = options_.metrics->GetGauge("multi.plan_cache_hits");
    plan_misses_gauge_ = options_.metrics->GetGauge("multi.plan_cache_misses");
  }
}

Result<int> QueryGroup::AddQuery(QuerySpec spec, OutputCallback output) {
  return AddQuery(std::move(spec), std::move(output), QueryOptions());
}

Result<int> QueryGroup::AddQuery(QuerySpec spec, OutputCallback output,
                                 QueryOptions query_options) {
  if (sealed_) {
    return Status::InvalidArgument(
        "QueryGroup: cannot add queries after the first Push()");
  }
  if (Status s = spec.Validate(); !s.ok()) return s;
  if (spec.partition_field >= 0) {
    return Status::InvalidArgument(
        "QueryGroup: PARTITION BY queries are not supported in a group; "
        "partition outside the group instead");
  }
  if (!queries_.empty() &&
      !SameSchema(queries_.front()->spec.input_schema, spec.input_schema)) {
    return Status::InvalidArgument(
        "QueryGroup: all queries must share the input schema; query " +
        std::to_string(queries_.size()) + " differs from query 0");
  }

  const int id = static_cast<int>(queries_.size());
  auto query = std::make_unique<Query>();
  query->spec = std::move(spec);
  query->output = std::move(output);

  MatchEngine::Options eo;
  eo.low_latency = options_.low_latency;
  eo.adaptive = options_.adaptive;
  eo.stats_alpha = options_.stats_alpha;
  eo.reopt_threshold = options_.reopt_threshold;
  eo.reopt_interval = options_.reopt_interval;
  eo.fixed_order = std::move(query_options.fixed_order);
  eo.metrics = query_options.metrics;
  eo.overload = query_options.overload.value_or(options_.overload);
  eo.plan_cache = options_.share_plans ? &plan_cache_ : nullptr;
  query->engine_options = std::move(eo);

  // Deduplicate this query's definitions into the shared set and record
  // the fan-out subscriptions, keyed by the structural fingerprint.
  const auto& defs = query->spec.definitions;
  query->slots.reserve(defs.size());
  for (int sym = 0; sym < static_cast<int>(defs.size()); ++sym) {
    const std::string fp = DefinitionFingerprint(defs[sym]);
    auto [it, inserted] =
        def_index_.emplace(fp, static_cast<int>(shared_defs_.size()));
    if (inserted) {
      shared_defs_.push_back(defs[sym]);
      subscribers_.emplace_back();
    }
    query->slots.push_back(it->second);
    subscribers_[it->second].emplace_back(id, sym);
    ++total_definitions_;
  }

  queries_.push_back(std::move(query));
  return id;
}

void QueryGroup::Seal() {
  if (sealed_) return;
  sealed_ = true;

  deriver_ = std::make_unique<Deriver>(
      shared_defs_, /*announce_starts=*/options_.low_latency,
      options_.metrics,
      DeriveOptions{options_.compiled_predicates, options_.simd});
  for (auto& query : queries_) {
    query->engine = std::make_unique<MatchEngine>(
        &query->spec, deriver_.get(), query->slots, query->engine_options,
        std::move(query->output));
  }

  started_by_def_.assign(shared_defs_.size(), nullptr);
  finished_by_def_.assign(shared_defs_.size(), nullptr);
  dirty_flag_.assign(queries_.size(), 0);
  ckpt_dirty_.assign(queries_.size(), 0);
  dirty_.reserve(queries_.size());
  fired_defs_.reserve(shared_defs_.size());

  if (queries_gauge_ != nullptr) {
    queries_gauge_->Set(static_cast<double>(num_queries()));
    distinct_defs_gauge_->Set(
        static_cast<double>(num_distinct_definitions()));
  }
}

void QueryGroup::SyncEvents(int q) {
  Query& query = *queries_[q];
  const int64_t behind = num_events_ - query.engine->num_events();
  if (behind > 0) {
    query.engine->NoteEvents(behind);
    // Advancing the lazy event count changes the engine's serialized
    // state, so the query joins the next incremental checkpoint.
    ckpt_dirty_[q] = 1;
  }
}

void QueryGroup::Push(const Event& event) {
  if (!sealed_) Seal();
  ++num_events_;
  if (events_ctr_ != nullptr) events_ctr_->Inc();

  Deriver::Update& update = deriver_->Process(event);
  if (update.empty()) return;  // quiet event: no per-query work at all

  // Index this event's activity by shared definition and collect the
  // affected queries.
  for (const SymbolSituation& s : update.started) {
    if (started_by_def_[s.symbol] == nullptr &&
        finished_by_def_[s.symbol] == nullptr) {
      fired_defs_.push_back(s.symbol);
    }
    started_by_def_[s.symbol] = &s.situation;
    for (const auto& [q, sym] : subscribers_[s.symbol]) {
      (void)sym;
      if (!dirty_flag_[q]) {
        dirty_flag_[q] = 1;
        dirty_.push_back(q);
      }
    }
  }
  for (const SymbolSituation& f : update.finished) {
    if (started_by_def_[f.symbol] == nullptr &&
        finished_by_def_[f.symbol] == nullptr) {
      fired_defs_.push_back(f.symbol);
    }
    finished_by_def_[f.symbol] = &f.situation;
    for (const auto& [q, sym] : subscribers_[f.symbol]) {
      (void)sym;
      if (!dirty_flag_[q]) {
        dirty_flag_[q] = 1;
        dirty_.push_back(q);
      }
    }
  }

  // Fan out: assemble each dirty query's update in ascending query-symbol
  // order — exactly the order its own deriver would have produced — and
  // feed its engine. Situations are copied per subscriber (isolation);
  // the engine consumes the copies by move.
  for (const int q : dirty_) {
    Query& query = *queries_[q];
    SyncEvents(q);
    ckpt_dirty_[q] = 1;
    Deriver::Update& scratch = query.scratch;
    scratch.started.clear();
    scratch.finished.clear();
    for (int sym = 0; sym < static_cast<int>(query.slots.size()); ++sym) {
      const int d = query.slots[sym];
      if (const Situation* s = started_by_def_[d]) {
        scratch.started.push_back(SymbolSituation{sym, *s});
      }
      if (const Situation* f = finished_by_def_[d]) {
        scratch.finished.push_back(SymbolSituation{sym, *f});
      }
    }
    query.engine->Consume(scratch, event.t);
    dirty_flag_[q] = 0;
  }
  dirty_.clear();
  for (const int d : fired_defs_) {
    started_by_def_[d] = nullptr;
    finished_by_def_[d] = nullptr;
  }
  fired_defs_.clear();
}

void QueryGroup::PushBatch(std::span<Event> events) {
  if (!sealed_) Seal();
  deriver_->PrepareBatch({events.data(), events.size()});
  for (Event& event : events) Push(event);
}

void QueryGroup::PushBatch(std::span<const Event> events) {
  if (!sealed_) Seal();
  deriver_->PrepareBatch(events);
  for (const Event& event : events) Push(event);
}

void QueryGroup::Flush() {
  if (!sealed_) return;  // nothing streamed yet: well-defined no-op
  for (int q = 0; q < num_queries(); ++q) {
    SyncEvents(q);
    queries_[q]->engine->Flush();
  }
  if (plan_hits_gauge_ != nullptr) {
    plan_hits_gauge_->Set(static_cast<double>(plan_cache_.hits()));
    plan_misses_gauge_->Set(static_cast<double>(plan_cache_.misses()));
  }
}

void QueryGroup::Reset() {
  if (!sealed_) return;
  num_events_ = 0;
  deriver_->Reset();
  for (auto& query : queries_) query->engine->Reset();
  // A rewind touches every engine; invalidate the incremental baseline
  // until the next full checkpoint or restore (mirrors
  // PartitionedTPStream::Reset).
  ckpt_dirty_.assign(queries_.size(), 0);
  incremental_valid_ = false;
}

void QueryGroup::Checkpoint(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_events_));
  const size_t cookie = w.BeginSection(ckpt::Tag::kQueryGroup);
  w.U32(static_cast<uint32_t>(num_queries()));
  w.U32(static_cast<uint32_t>(num_distinct_definitions()));
  deriver_->Checkpoint(w);
  for (const auto& query : queries_) query->engine->Checkpoint(w);
  w.EndSection(cookie);
}

Status QueryGroup::Restore(ckpt::Reader& r, uint64_t* offset) {
  if (!sealed_) Seal();
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kQueryGroup);
  const uint32_t num_queries_ck = r.U32();
  const uint32_t num_defs_ck = r.U32();
  if (r.ok() && num_queries_ck != static_cast<uint32_t>(num_queries())) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: query count mismatch (different queries registered?)"));
    return r.status();
  }
  if (r.ok() &&
      num_defs_ck != static_cast<uint32_t>(num_distinct_definitions())) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: distinct definition count mismatch (different queries "
        "registered?)"));
    return r.status();
  }
  status = deriver_->Restore(r);
  if (!status.ok()) return status;
  for (auto& query : queries_) {
    status = query->engine->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_events_ = static_cast<int64_t>(off);
  // The in-memory state now equals the restored snapshot: it becomes
  // the incremental baseline (replay re-dirties exactly the queries
  // that changed after it).
  ckpt_dirty_.assign(queries_.size(), 0);
  incremental_valid_ = true;
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

void QueryGroup::CheckpointIncremental(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_events_));
  const size_t cookie = w.BeginSection(ckpt::Tag::kQueryGroupDelta);
  w.U32(static_cast<uint32_t>(num_queries()));
  w.U32(static_cast<uint32_t>(num_distinct_definitions()));
  // The shared deriver advances on every event; it is always part of
  // the delta.
  deriver_->Checkpoint(w);
  uint32_t dirty_count = 0;
  for (char d : ckpt_dirty_) dirty_count += (d != 0);
  w.U32(dirty_count);
  for (int q = 0; q < num_queries(); ++q) {
    if (!ckpt_dirty_[q]) continue;
    w.U32(static_cast<uint32_t>(q));
    queries_[q]->engine->Checkpoint(w);
  }
  w.EndSection(cookie);
}

Status QueryGroup::RestoreIncremental(ckpt::Reader& r, uint64_t* offset) {
  if (!sealed_) Seal();
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kQueryGroupDelta);
  const uint32_t num_queries_ck = r.U32();
  const uint32_t num_defs_ck = r.U32();
  if (r.ok() && num_queries_ck != static_cast<uint32_t>(num_queries())) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: query count mismatch (different queries registered?)"));
    return r.status();
  }
  if (r.ok() &&
      num_defs_ck != static_cast<uint32_t>(num_distinct_definitions())) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: distinct definition count mismatch (different queries "
        "registered?)"));
    return r.status();
  }
  status = deriver_->Restore(r);
  if (!status.ok()) return status;
  const uint32_t dirty_count = r.U32();
  if (dirty_count > num_queries_ck) {
    r.Fail(Status::ParseError("checkpoint: delta query count exceeds group"));
    return r.status();
  }
  for (uint32_t i = 0; i < dirty_count && r.ok(); ++i) {
    const uint32_t q = r.U32();
    if (q >= static_cast<uint32_t>(num_queries())) {
      r.Fail(Status::ParseError("checkpoint: delta query id out of range"));
      return r.status();
    }
    status = queries_[q]->engine->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_events_ = static_cast<int64_t>(off);
  ckpt_dirty_.assign(queries_.size(), 0);
  incremental_valid_ = true;
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

void QueryGroup::MarkCheckpointBaseline() {
  ckpt_dirty_.assign(queries_.size(), 0);
  incremental_valid_ = true;
}

int64_t QueryGroup::num_matches(int query) const {
  const auto& q = *queries_[query];
  return q.engine ? q.engine->num_matches() : 0;
}

}  // namespace multi
}  // namespace tpstream
