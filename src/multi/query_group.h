#ifndef TPSTREAM_MULTI_QUERY_GROUP_H_
#define TPSTREAM_MULTI_QUERY_GROUP_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ckpt/serde.h"
#include "core/match_engine.h"
#include "core/query_spec.h"
#include "derive/deriver.h"
#include "obs/metrics.h"
#include "optimizer/shared_plan_cache.h"
#include "robust/overload_policy.h"

namespace tpstream {
namespace multi {

/// The multi-query engine: N standing queries against one input schema,
/// each event pushed once.
///
/// Situation derivation is the per-event cost that scales with the query
/// count — every definition evaluates its predicate and folds its
/// aggregates on every event. The group therefore deduplicates
/// definitions by their structural fingerprint (φ predicate, γ aggregate
/// battery, τ duration constraint — see derive/fingerprint.h): one
/// shared Deriver runs each distinct definition once per event and the
/// started/finished situations fan out to every subscribing query's
/// MatchEngine. N identical queries pay one derivation, not N.
///
/// Isolation guarantees (pinned by the differential tests):
///  - every query's matches, RETURN payloads and `matcher.*` /
///    `operator.*` / `robust.*` / `optimizer.*` metrics are byte-for-byte
///    what a standalone TPStreamOperator over the same stream produces;
///  - RETURN/aggregate state is never shared: each engine owns its
///    matcher buffers, statistics and projection state, and situation
///    payloads are copied per subscriber at fan-out;
///  - per-query overload policies apply independently (a flooded query
///    sheds without affecting its siblings);
///  - the shared `deriver.*` counters live in the group registry and
///    count each distinct definition once (equal to ONE standalone
///    operator's deriver counters when all queries are identical).
///
/// Plan sharing: engines consult one SharedPlanCache, a pure memo of the
/// optimizer's subset-DP keyed by (constraint-pair structure, seed mode,
/// exact statistics), so queries overlapping on symbol pairs reuse each
/// other's plans without ever receiving a different plan than they would
/// compute alone.
///
/// Lifecycle: AddQuery() during the registration phase, then Push()
/// events (the first Push seals the group); AddQuery() after sealing is
/// an error. Flush() is an idempotent synchronization point — counters
/// become exact — and the stream may continue afterwards.
///
/// Single-threaded, like TPStreamOperator; wrap in PartitionedTPStream /
/// ParallelTPStream-style sharding for parallelism.
class QueryGroup {
 public:
  struct Options {
    bool low_latency = true;
    bool adaptive = true;
    double stats_alpha = 0.01;
    double reopt_threshold = 0.2;
    int reopt_interval = 64;
    /// Default per-query overload policy (QueryOptions can override).
    robust::OverloadPolicy overload;
    /// Group-level observability: the shared `deriver.*` counters and the
    /// `multi.*` group metrics. Per-query metrics go to
    /// QueryOptions::metrics. Must outlive the group.
    obs::MetricsRegistry* metrics = nullptr;
    /// Cross-query memo of optimizer plans (on by default; never changes
    /// any query's plan, only skips recomputation).
    bool share_plans = true;
    /// Compile the shared deriver's DEFINE predicates to bytecode
    /// (expr/bytecode.h). Programs are keyed by the same structural
    /// fingerprint that deduplicates definitions, so each distinct
    /// predicate across ALL registered queries compiles exactly once
    /// (pinned by num_compiled_programs()). Off by default.
    bool compiled_predicates = false;
    /// SIMD tier for columnar predicate evaluation ("off", "sse2",
    /// "avx2", "native"); empty defers to TPSTREAM_SIMD, then the
    /// machine default. See DeriveOptions::simd.
    std::string simd;
  };

  /// Per-query knobs; everything else comes from the group Options so
  /// that shared derivation stays semantics-preserving.
  struct QueryOptions {
    /// Per-query observability namespace (matcher.*, operator.*,
    /// robust.*, optimizer.*). Distinct registries per query avoid double
    /// counting under sharing. Must outlive the group.
    obs::MetricsRegistry* metrics = nullptr;
    std::optional<robust::OverloadPolicy> overload;
    std::optional<std::vector<int>> fixed_order;
  };

  using OutputCallback = MatchEngine::OutputCallback;

  QueryGroup();
  explicit QueryGroup(Options options);

  QueryGroup(const QueryGroup&) = delete;
  QueryGroup& operator=(const QueryGroup&) = delete;

  /// Registers a compiled query. All queries must share the input schema
  /// (same field names and types). Returns the dense query id used by the
  /// per-query accessors. Error once the group is sealed.
  Result<int> AddQuery(QuerySpec spec, OutputCallback output);
  Result<int> AddQuery(QuerySpec spec, OutputCallback output,
                       QueryOptions query_options);

  /// Finalizes registration: deduplicates definitions, builds the shared
  /// deriver and one MatchEngine per query. Called implicitly by the
  /// first Push(); idempotent.
  void Seal();

  /// Processes one input event for every registered query; timestamps
  /// must be strictly increasing.
  void Push(const Event& event);
  void Push(Event&& event) { Push(static_cast<const Event&>(event)); }
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Synchronization point (lifecycle contract): settles the lazily
  /// advanced per-query event counts and published gauges, making every
  /// per-query counter exact. Idempotent; a no-op before sealing; the
  /// stream may continue afterwards.
  void Flush();

  /// Returns the group to its just-sealed state: the shared deriver's
  /// open situations and every query's engine rewind; the registered
  /// queries, the sealing itself and the observability counters survive.
  /// A no-op before sealing.
  void Reset();

  /// Serializes the sealed group — the shared deriver plus every query's
  /// engine, in registration order — stamped with the event-log offset
  /// (= num_events()). Must be sealed (checkpoints are taken between
  /// Push() calls, and the first Push seals).
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a group with the same queries
  /// registered in the same order (validated by query and distinct-
  /// definition counts). Seals the group if the first Push hasn't
  /// already. On success, `*offset` (when non-null) receives the
  /// event-log offset to replay from. On error the group must be
  /// Reset() or discarded.
  Status Restore(ckpt::Reader& r, uint64_t* offset = nullptr);

  /// Incremental checkpoints (Durability contract): between full
  /// snapshots only the shared deriver (touched by every event) and the
  /// engines of queries dirtied since the last successful checkpoint are
  /// serialized (a kQueryGroupDelta section). Dirty tracking piggybacks
  /// on the per-event fan-out: a query is dirty if an event fired one of
  /// its definitions or its lazy event count was advanced (SyncEvents),
  /// which are exactly the ways an engine's serialized state can change.
  /// Valid only relative to a baseline established by a full
  /// checkpoint/restore — see CanCheckpointIncremental(). The caller
  /// (log::RecoveryManager) invokes MarkCheckpointBaseline() after the
  /// bytes are durably persisted.
  bool CanCheckpointIncremental() const {
    return sealed_ && incremental_valid_;
  }
  void CheckpointIncremental(ckpt::Writer& w) const;
  /// Applies a delta on top of the current state (restored base full
  /// snapshot plus earlier deltas of the same chain).
  Status RestoreIncremental(ckpt::Reader& r, uint64_t* offset = nullptr);
  void MarkCheckpointBaseline();

  int num_queries() const { return static_cast<int>(queries_.size()); }
  int64_t num_events() const { return num_events_; }
  /// Distinct definitions after fingerprint deduplication (valid once
  /// sealed; before sealing, reflects the queries added so far).
  int num_distinct_definitions() const {
    return static_cast<int>(shared_defs_.size());
  }
  int64_t total_definitions() const { return total_definitions_; }

  /// Per-query match count; `query` is an id returned by AddQuery.
  int64_t num_matches(int query) const;

  /// Per-query engine introspection (stats, buffered counts, shed
  /// accounting). Only valid once sealed; null before.
  const MatchEngine* engine(int query) const {
    return queries_[query]->engine.get();
  }
  MatchEngine* engine(int query) { return queries_[query]->engine.get(); }

  int64_t plan_cache_hits() const { return plan_cache_.hits(); }
  int64_t plan_cache_misses() const { return plan_cache_.misses(); }

  /// Compiled-predicate sharing introspection (0 each unless
  /// Options::compiled_predicates and sealed): distinct bytecode
  /// programs in the shared deriver, and definitions that reused a
  /// sibling's program because their predicate fingerprints matched.
  int num_compiled_programs() const {
    return deriver_ ? deriver_->num_compiled_programs() : 0;
  }
  int64_t program_cache_hits() const {
    return deriver_ ? deriver_->program_cache_hits() : 0;
  }

  bool sealed() const { return sealed_; }

 private:
  struct Query {
    QuerySpec spec;
    OutputCallback output;            // consumed at Seal
    MatchEngine::Options engine_options;
    std::vector<int> slots;           // query symbol -> shared def index
    std::unique_ptr<MatchEngine> engine;  // built at Seal
    Deriver::Update scratch;          // per-event fan-out assembly
  };

  /// Lazily advances query `q`'s engine to the group event count,
  /// marking it checkpoint-dirty when it actually advances.
  void SyncEvents(int q);

  Options options_;
  std::vector<std::unique_ptr<Query>> queries_;
  bool sealed_ = false;
  int64_t num_events_ = 0;
  int64_t total_definitions_ = 0;

  // Shared derivation state.
  std::vector<SituationDefinition> shared_defs_;  // deduplicated
  std::unordered_map<std::string, int> def_index_;  // fingerprint -> index
  // def index -> subscribing (query id, query symbol), ascending.
  std::vector<std::vector<std::pair<int, int>>> subscribers_;
  std::unique_ptr<Deriver> deriver_;
  SharedPlanCache plan_cache_;

  // Per-event fan-out scratch (sized at Seal).
  std::vector<const Situation*> started_by_def_;
  std::vector<const Situation*> finished_by_def_;
  std::vector<int> fired_defs_;
  std::vector<int> dirty_;        // query ids touched by this event
  std::vector<char> dirty_flag_;  // per query

  // Cumulative per-query dirty flags since the last
  // MarkCheckpointBaseline(); the payload of the next incremental
  // checkpoint.
  std::vector<char> ckpt_dirty_;
  bool incremental_valid_ = false;

  // Observability handles on the group registry (null when disabled).
  obs::Counter* events_ctr_ = nullptr;
  obs::Gauge* queries_gauge_ = nullptr;
  obs::Gauge* distinct_defs_gauge_ = nullptr;
  obs::Gauge* plan_hits_gauge_ = nullptr;
  obs::Gauge* plan_misses_gauge_ = nullptr;
};

}  // namespace multi
}  // namespace tpstream

#endif  // TPSTREAM_MULTI_QUERY_GROUP_H_
