#include "log/recovery.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace tpstream {
namespace log {

namespace {

constexpr uint32_t kCheckpointFileMagic = 0x46435054;  // "TPCF" little-endian
constexpr uint32_t kCheckpointFileVersion = 1;
constexpr uint8_t kKindFull = 1;
constexpr uint8_t kKindDelta = 2;

}  // namespace

RecoveryManager::RecoveryManager(FileSystem* fs, std::string dir,
                                 EventLog* log, const Options& options)
    : fs_(fs), dir_(std::move(dir)), log_(log), options_(options) {
  if (options_.full_snapshot_interval == 0) {
    options_.full_snapshot_interval = 1;
  }
  if (options_.metrics != nullptr) {
    m_checkpoints_ = options_.metrics->GetCounter("recovery.checkpoints");
    m_full_ = options_.metrics->GetCounter("recovery.full_checkpoints");
    m_delta_ = options_.metrics->GetCounter("recovery.delta_checkpoints");
    m_bytes_ = options_.metrics->GetCounter("recovery.checkpoint_bytes");
    m_recoveries_ = options_.metrics->GetCounter("recovery.recoveries");
    m_replayed_ = options_.metrics->GetCounter("recovery.replayed_events");
    m_corrupt_ =
        options_.metrics->GetCounter("recovery.corrupt_checkpoints_skipped");
  }
}

Status RecoveryManager::Open(FileSystem* fs, const std::string& dir,
                             EventLog* log, const Options& options,
                             std::unique_ptr<RecoveryManager>* out) {
  if (fs == nullptr) return Status::InvalidArgument("null FileSystem");
  if (out == nullptr) return Status::InvalidArgument("null output pointer");
  Status s = fs->CreateDir(dir);
  if (!s.ok()) return s;
  std::unique_ptr<RecoveryManager> mgr(
      new RecoveryManager(fs, dir, log, options));
  s = mgr->ScanDir();
  if (!s.ok()) return s;
  *out = std::move(mgr);
  return Status::OK();
}

std::string RecoveryManager::EntryFileName(uint64_t generation, bool delta) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 "-%s.tpc", generation,
                delta ? "delta" : "full");
  return buf;
}

Status RecoveryManager::ScanDir() {
  std::vector<std::string> names;
  Status s = fs_->ListDir(dir_, &names);
  if (!s.ok()) return s;
  for (const std::string& name : names) {
    unsigned long long generation = 0;
    char kind[8] = {0};
    // Width-limited so a 21-digit name cannot overflow; the round-trip
    // check below rejects any lexical near-miss (e.g. leading '+').
    if (std::sscanf(name.c_str(), "ckpt-%20llu-%5[a-z].tpc", &generation,
                    kind) != 2) {
      continue;  // temp files, foreign files
    }
    const bool delta = std::string_view(kind) == "delta";
    if (!delta && std::string_view(kind) != "full") continue;
    if (name != EntryFileName(generation, delta)) continue;
    Entry e;
    e.generation = generation;
    e.delta = delta;
    e.name = name;
    entries_.push_back(std::move(e));
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.generation < b.generation;
            });
  if (!entries_.empty()) last_generation_ = entries_.back().generation;
  return Status::OK();
}

Status RecoveryManager::PersistGeneration(uint64_t generation, bool delta,
                                          uint64_t base_generation,
                                          uint32_t base_hash,
                                          const std::string& blob,
                                          uint64_t* file_bytes) {
  ckpt::Writer w;
  w.U32(kCheckpointFileMagic);
  w.U32(kCheckpointFileVersion);
  w.U64(generation);
  w.U8(delta ? kKindDelta : kKindFull);
  w.U64(base_generation);
  w.U32(base_hash);
  w.Str(blob);
  w.SealChecksum();
  const std::string bytes = w.Take();

  const std::string name = EntryFileName(generation, delta);
  const std::string tmp_path = JoinPath(dir_, name + ".tmp");
  const std::string final_path = JoinPath(dir_, name);

  // tmp + fsync + rename: the final name only ever points at complete,
  // durable bytes — a crash mid-write leaves a .tmp that ScanDir skips.
  std::unique_ptr<WritableFile> file;
  Status s = fs_->OpenAppend(tmp_path, &file);
  if (s.ok()) s = file->Append(bytes);
  if (s.ok()) s = file->Sync();
  if (file != nullptr) {
    Status close = file->Close();
    if (s.ok()) s = close;
  }
  if (s.ok()) s = fs_->RenameFile(tmp_path, final_path);
  if (!s.ok()) {
    (void)fs_->DeleteFile(tmp_path);
    return s;
  }

  Entry e;
  e.generation = generation;
  e.delta = delta;
  e.name = name;
  entries_.push_back(std::move(e));
  if (file_bytes != nullptr) *file_bytes = bytes.size();
  return Status::OK();
}

Status RecoveryManager::LoadGeneration(const Entry& entry, Loaded* out) {
  std::string raw;
  Status s = fs_->ReadFile(JoinPath(dir_, entry.name), &raw);
  if (!s.ok()) return s;
  std::string_view payload;
  s = ckpt::VerifyAndStripChecksum(raw, &payload);
  if (!s.ok()) return s;
  if (payload.size() == raw.size()) {
    // Generation files are always written sealed (this format is newer
    // than the checksum footer), so the legacy-unchecksummed path can
    // only mean a truncation that ate exactly the footer.
    return Status::ParseError("checkpoint file " + entry.name +
                              ": missing checksum footer");
  }
  ckpt::Reader r(payload);
  const uint32_t magic = r.U32();
  const uint32_t version = r.U32();
  out->generation = r.U64();
  out->delta = r.U8() == kKindDelta;
  out->base_generation = r.U64();
  out->base_hash = r.U32();
  out->blob = r.Str();
  if (!r.ok()) return r.status();
  if (magic != kCheckpointFileMagic) {
    return Status::ParseError("checkpoint file " + entry.name +
                              ": bad magic (not a TPCF file)");
  }
  if (version != kCheckpointFileVersion) {
    return Status::ParseError("checkpoint file " + entry.name +
                              ": unsupported version " +
                              std::to_string(version));
  }
  if (out->generation != entry.generation) {
    return Status::ParseError("checkpoint file " + entry.name +
                              ": generation does not match file name");
  }
  if (r.remaining() != 0) {
    return Status::ParseError("checkpoint file " + entry.name +
                              ": trailing bytes after blob");
  }
  return Status::OK();
}

void RecoveryManager::Quarantine(const std::string& name, const Status& why) {
  if (m_corrupt_ != nullptr) m_corrupt_->Inc();
  if (options_.dead_letter == nullptr) return;
  robust::DeadLetterItem item;
  item.kind = robust::DeadLetterKind::kCorruptCheckpoint;
  item.detail = "checkpoint " + JoinPath(dir_, name) +
                " skipped during recovery: " + std::string(why.message());
  (void)options_.dead_letter->Consume(std::move(item));
}

void RecoveryManager::PruneOldGenerations(uint64_t new_full_generation) {
  // Keep the previous full snapshot and its delta chain as the fallback
  // should the new full turn out unreadable; everything older goes.
  uint64_t previous_full = 0;
  for (const Entry& e : entries_) {
    if (!e.delta && e.generation < new_full_generation &&
        e.generation > previous_full) {
      previous_full = e.generation;
    }
  }
  if (previous_full == 0) return;
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& e : entries_) {
    if (e.generation < previous_full) {
      (void)fs_->DeleteFile(JoinPath(dir_, e.name));
    } else {
      kept.push_back(std::move(e));
    }
  }
  entries_ = std::move(kept);
}

Status RecoveryManager::CommitCheckpoint(uint64_t generation, bool delta,
                                         const std::string& blob,
                                         uint64_t offset,
                                         uint64_t* file_bytes) {
  const uint64_t base_generation = delta ? last_generation_ : 0;
  const uint32_t base_hash = delta ? chain_hash_ : 0;
  Status s =
      PersistGeneration(generation, delta, base_generation, base_hash, blob,
                        file_bytes);
  if (!s.ok()) return s;

  chain_hash_ = delta ? Crc32cExtend(chain_hash_, blob) : Crc32c(blob);
  have_chain_ = true;
  force_full_ = false;
  last_generation_ = generation;
  if (delta) {
    ++gens_since_full_;
  } else {
    PruneOldGenerations(generation);
    gens_since_full_ = 0;
  }

  if (m_checkpoints_ != nullptr) {
    m_checkpoints_->Inc();
    (delta ? m_delta_ : m_full_)->Inc();
    if (file_bytes != nullptr) {
      m_bytes_->Inc(static_cast<int64_t>(*file_bytes));
    }
  }

  if (log_ != nullptr) {
    // Advisory marker (LatestCheckpointMarker); the generation files are
    // the source of truth, so a marker-append failure is not fatal to the
    // checkpoint that already hit disk.
    (void)log_->AppendCheckpointMarker(generation, offset);
  }
  return Status::OK();
}

std::vector<RecoveryManager::Loaded> RecoveryManager::ValidDeltaChain(
    const Loaded& full, uint32_t* chain_hash, int64_t* corrupt_skipped) {
  std::vector<Loaded> chain;
  uint32_t hash = Crc32c(full.blob);
  uint64_t current = full.generation;
  for (const Entry& e : entries_) {
    if (e.generation <= full.generation) continue;
    if (!e.delta) break;  // a newer full ends this chain (it failed to
                          // restore, or we'd have started from it)
    Loaded d;
    Status s = LoadGeneration(e, &d);
    if (s.ok() && !d.delta) {
      s = Status::ParseError("checkpoint file " + e.name +
                             ": kind does not match file name");
    }
    if (s.ok() && (d.base_generation != current || d.base_hash != hash)) {
      s = Status::ParseError(
          "checkpoint file " + e.name + ": chain break (declares base " +
          std::to_string(d.base_generation) + ", running chain is at " +
          std::to_string(current) + ")");
    }
    if (!s.ok()) {
      // Anything after the break cannot re-attach; stop here and recover
      // the validated prefix.
      Quarantine(e.name, s);
      if (corrupt_skipped != nullptr) ++*corrupt_skipped;
      break;
    }
    hash = Crc32cExtend(hash, d.blob);
    current = d.generation;
    chain.push_back(std::move(d));
  }
  *chain_hash = hash;
  return chain;
}

}  // namespace log
}  // namespace tpstream
