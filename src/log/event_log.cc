#include "log/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "ckpt/serde.h"
#include "log/crc32c.h"

namespace tpstream {
namespace log {
namespace {

constexpr uint32_t kSegmentMagic = 0x474c5054;  // "TPLG" little-endian
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderSize = 16;
constexpr size_t kRecordHeaderSize = 8;  // u32 length | u32 crc32c

constexpr uint8_t kRecordEventBatch = 1;
constexpr uint8_t kRecordCheckpointMarker = 2;

// Cap on raw torn-tail bytes preserved in the dead-letter item; the
// full tail is still counted and truncated.
constexpr size_t kQuarantineRawBytes = 256;

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

void StoreU32(char* p, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::string SegmentHeader(uint64_t base) {
  ckpt::Writer w;
  w.U32(kSegmentMagic);
  w.U32(kSegmentVersion);
  w.U64(base);
  return w.Take();
}

/// One parsed record framing within a segment buffer.
struct RecordView {
  size_t pos = 0;           // byte position of the frame start
  std::string_view payload;  // validated payload bytes
};

/// Walks the records of a segment buffer. Stops at the first framing or
/// CRC error; `ok_end` then points at the first untrusted byte.
class SegmentCursor {
 public:
  SegmentCursor(std::string_view data, size_t start) : data_(data), pos_(start) {}

  bool Next(RecordView* out) {
    if (pos_ + kRecordHeaderSize > data_.size()) return false;
    const uint32_t len = LoadU32(data_.data() + pos_);
    const uint32_t crc = LoadU32(data_.data() + pos_ + 4);
    if (len == 0 || pos_ + kRecordHeaderSize + len > data_.size()) {
      return false;
    }
    const std::string_view payload = data_.substr(pos_ + kRecordHeaderSize, len);
    if (Crc32c(payload) != crc) return false;
    out->pos = pos_;
    out->payload = payload;
    pos_ += kRecordHeaderSize + len;
    return true;
  }

  /// First byte after the last successfully parsed record.
  size_t ok_end() const { return pos_; }
  bool at_eof() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_;
};

Status CheckSegmentHeader(std::string_view data, const std::string& name,
                          uint64_t expected_base) {
  if (data.size() < kSegmentHeaderSize) {
    return Status::ParseError("log segment " + name + ": missing header (" +
                              std::to_string(data.size()) + " bytes)");
  }
  if (LoadU32(data.data()) != kSegmentMagic) {
    return Status::ParseError("log segment " + name +
                              ": bad magic (not a TPLG segment)");
  }
  if (LoadU32(data.data() + 4) != kSegmentVersion) {
    return Status::ParseError("log segment " + name +
                              ": unsupported version");
  }
  uint64_t base = 0;
  for (size_t i = 0; i < 8; ++i) {
    base |= static_cast<uint64_t>(static_cast<uint8_t>(data[8 + i])) << (8 * i);
  }
  if (base != expected_base) {
    return Status::ParseError(
        "log segment " + name + ": header base offset " +
        std::to_string(base) + " does not match file name");
  }
  return Status::OK();
}

}  // namespace

const char* SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kEveryRecord:
      return "every_record";
    case SyncMode::kEveryBytes:
      return "every_bytes";
    case SyncMode::kInterval:
      return "interval";
  }
  return "unknown";
}

std::string EventLog::SegmentFileName(uint64_t base) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "segment-%020llu.tpl",
                static_cast<unsigned long long>(base));
  return buf;
}

EventLog::EventLog(FileSystem* fs, std::string dir,
                   const EventLogOptions& options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m_records_ = m->GetCounter("log.appended_records");
    m_bytes_ = m->GetCounter("log.appended_bytes");
    m_fsyncs_ = m->GetCounter("log.fsyncs");
    m_truncated_ = m->GetCounter("log.truncated_tail_records");
    m_replays_ = m->GetCounter("log.replays");
    m_replayed_events_ = m->GetCounter("log.replayed_events");
    m_segments_ = m->GetGauge("log.segments");
    m_fsync_ns_ = m->GetHistogram("log.fsync_ns");
  }
}

int64_t EventLog::NowNs() const {
  if (options_.sync.clock) return options_.sync.clock();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status EventLog::Open(FileSystem* fs, const std::string& dir,
                      const EventLogOptions& options,
                      std::unique_ptr<EventLog>* out, OpenReport* out_report) {
  Status s = fs->CreateDir(dir);
  if (!s.ok()) return s;
  std::unique_ptr<EventLog> log(new EventLog(fs, dir, options));
  OpenReport report;
  s = log->OpenTail(&report);
  if (!s.ok()) return s;
  if (log->m_segments_ != nullptr) {
    log->m_segments_->Set(static_cast<double>(log->segments_.size()));
  }
  if (log->m_truncated_ != nullptr && report.truncated_tail_records > 0) {
    log->m_truncated_->Inc(report.truncated_tail_records);
  }
  if (out_report != nullptr) *out_report = report;
  *out = std::move(log);
  return Status::OK();
}

Status EventLog::OpenTail(OpenReport* report) {
  std::vector<std::string> names;
  Status s = fs_->ListDir(dir_, &names);
  if (!s.ok()) return s;

  segments_.clear();
  for (const std::string& name : names) {
    unsigned long long base = 0;
    if (std::sscanf(name.c_str(), "segment-%20llu.tpl", &base) == 1 &&
        name == SegmentFileName(base)) {
      segments_.push_back(Segment{name, base});
    }
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.base < b.base; });

  // A crash during rotation can leave a final segment too short to hold
  // its header; it carries no records, so drop it and fall back to the
  // previous segment as the tail.
  while (!segments_.empty()) {
    const Segment& last = segments_.back();
    const std::string path = JoinPath(dir_, last.name);
    std::string data;
    s = fs_->ReadFile(path, &data);
    if (!s.ok()) return s;
    if (data.size() >= kSegmentHeaderSize) break;
    report->truncated_tail_bytes += data.size();
    s = fs_->DeleteFile(path);
    if (!s.ok()) return s;
    segments_.pop_back();
  }

  if (segments_.empty()) {
    // Fresh log: create segment 0.
    end_offset_ = 0;
    begin_offset_ = 0;
    segments_.push_back(Segment{SegmentFileName(0), 0});
    tail_path_ = JoinPath(dir_, segments_.back().name);
    s = fs_->OpenAppend(tail_path_, &tail_);
    if (!s.ok()) return s;
    if (tail_->size() == 0) {
      s = tail_->Append(SegmentHeader(0));
      if (!s.ok()) return s;
      s = tail_->Sync();
      if (!s.ok()) return s;
    }
    last_sync_ns_ = NowNs();
    report->segments = 1;
    return Status::OK();
  }

  begin_offset_ = segments_.front().base;
  end_offset_ = segments_.front().base;

  for (size_t i = 0; i < segments_.size(); ++i) {
    const bool is_final = (i + 1 == segments_.size());
    const std::string path = JoinPath(dir_, segments_[i].name);
    std::string data;
    s = fs_->ReadFile(path, &data);
    if (!s.ok()) return s;
    s = CheckSegmentHeader(data, segments_[i].name, segments_[i].base);
    if (!s.ok()) return s;

    uint64_t offset = segments_[i].base;
    SegmentCursor cursor(data, kSegmentHeaderSize);
    RecordView rec;
    while (cursor.Next(&rec)) {
      ckpt::Reader r(rec.payload);
      const uint8_t type = r.U8();
      if (type == kRecordEventBatch) {
        const uint64_t first = r.U64();
        const uint32_t count = r.U32();
        if (!r.ok() || first != offset) {
          return Status::ParseError("log segment " + segments_[i].name +
                                    ": inconsistent batch offsets");
        }
        offset = first + count;
      } else if (type == kRecordCheckpointMarker) {
        const uint64_t gen = r.U64();
        const uint64_t ckpt_offset = r.U64();
        if (!r.ok()) {
          return Status::ParseError("log segment " + segments_[i].name +
                                    ": malformed checkpoint marker");
        }
        has_marker_ = true;
        marker_generation_ = gen;
        marker_offset_ = ckpt_offset;
      } else {
        return Status::ParseError("log segment " + segments_[i].name +
                                  ": unknown record type " +
                                  std::to_string(type));
      }
    }

    if (!cursor.at_eof()) {
      if (!is_final) {
        // Torn writes only happen at the log tail; a bad record in the
        // middle of the log is corruption, not a crash artifact.
        return Status::ParseError("log segment " + segments_[i].name +
                                  ": corrupt record at byte " +
                                  std::to_string(cursor.ok_end()));
      }
      const size_t good = cursor.ok_end();
      const uint64_t torn = data.size() - good;
      s = fs_->Truncate(path, good);
      if (!s.ok()) return s;
      report->truncated_tail_records += 1;
      report->truncated_tail_bytes += torn;
      if (options_.dead_letter != nullptr) {
        robust::DeadLetterItem item;
        item.kind = robust::DeadLetterKind::kTornLogRecord;
        item.detail = "torn record at byte " + std::to_string(good) +
                      " of " + segments_[i].name + " (" +
                      std::to_string(torn) + " byte(s) truncated)";
        item.raw = data.substr(good, std::min<size_t>(torn, kQuarantineRawBytes));
        options_.dead_letter->Consume(std::move(item));
      }
    }

    if (is_final) {
      end_offset_ = offset;
    } else if (offset != segments_[i + 1].base) {
      return Status::ParseError(
          "log segment " + segments_[i].name + " ends at offset " +
          std::to_string(offset) + " but the next segment starts at " +
          std::to_string(segments_[i + 1].base));
    }
  }

  tail_path_ = JoinPath(dir_, segments_.back().name);
  s = fs_->OpenAppend(tail_path_, &tail_);
  if (!s.ok()) return s;
  last_sync_ns_ = NowNs();
  report->segments = static_cast<int64_t>(segments_.size());
  return Status::OK();
}

Status EventLog::RotateIfNeeded() {
  if (tail_->size() < options_.segment_bytes) return Status::OK();
  // A segment that filled without end_offset_ advancing (checkpoint
  // markers only) cannot rotate: the new segment would take the current
  // tail's own name, and OpenAppend would append a duplicate header
  // mid-file. Let the tail keep growing until an event batch lands.
  if (end_offset_ == segments_.back().base) return Status::OK();
  // Seal the full segment: everything in it becomes durable before the
  // log moves on, so only the newest segment can ever hold a torn tail.
  Status s = MaybeSync(/*force=*/true);
  if (!s.ok()) return s;
  s = tail_->Close();
  if (!s.ok()) return s;
  const std::string name = SegmentFileName(end_offset_);
  const std::string path = JoinPath(dir_, name);
  std::unique_ptr<WritableFile> next;
  s = fs_->OpenAppend(path, &next);
  if (s.ok()) s = next->Append(SegmentHeader(end_offset_));
  if (s.ok()) s = next->Sync();
  if (!s.ok()) {
    // Roll back the half-born segment and reattach the previous tail so
    // the log stays append-able (Open also tolerates a headerless final
    // segment, but do not rely on a restart to repair it).
    if (next != nullptr) next->Close();
    next.reset();
    fs_->DeleteFile(path);
    Status reopen = fs_->OpenAppend(tail_path_, &tail_);
    if (!reopen.ok()) return reopen;
    return s;
  }
  tail_ = std::move(next);
  tail_path_ = path;
  segments_.push_back(Segment{name, end_offset_});
  bytes_since_sync_ = 0;
  if (m_segments_ != nullptr) {
    m_segments_->Set(static_cast<double>(segments_.size()));
  }
  return Status::OK();
}

Status EventLog::MaybeSync(bool force) {
  bool due = force;
  if (!due) {
    switch (options_.sync.mode) {
      case SyncMode::kEveryRecord:
        due = true;
        break;
      case SyncMode::kEveryBytes:
        due = bytes_since_sync_ >= options_.sync.sync_bytes;
        break;
      case SyncMode::kInterval:
        due = NowNs() - last_sync_ns_ >= options_.sync.sync_interval_ns;
        break;
    }
  }
  if (!due) return Status::OK();
  const int64_t t0 = NowNs();
  Status s = tail_->Sync();
  if (!s.ok()) return s;
  if (m_fsyncs_ != nullptr) m_fsyncs_->Inc();
  if (m_fsync_ns_ != nullptr) m_fsync_ns_->Record(NowNs() - t0);
  bytes_since_sync_ = 0;
  last_sync_ns_ = NowNs();
  return Status::OK();
}

Status EventLog::WriteRecord(const std::string& payload, bool force_sync) {
  Status s = RotateIfNeeded();
  if (!s.ok()) return s;
  std::string frame;
  frame.resize(kRecordHeaderSize);
  StoreU32(frame.data(), static_cast<uint32_t>(payload.size()));
  StoreU32(frame.data() + 4, Crc32c(payload));
  frame.append(payload);

  const uint64_t pre_size = tail_->size();
  const uint64_t pre_bytes_since_sync = bytes_since_sync_;
  s = tail_->Append(frame);
  if (s.ok()) {
    bytes_since_sync_ += frame.size();
    s = MaybeSync(force_sync);
  }
  if (!s.ok()) {
    // Roll the record back so the segment holds exactly the records the
    // caller was told succeeded. A partial frame would masquerade as a
    // crash artifact; a complete frame left behind after a failed sync is
    // worse — end_offset_ never advances, so a later sync resurrects
    // events reported as failed and a retried Append writes a second
    // batch with the same first-offset, making the log unopenable.
    bytes_since_sync_ = pre_bytes_since_sync;
    tail_->Close();
    tail_.reset();
    fs_->Truncate(tail_path_, pre_size);
    Status reopen = fs_->OpenAppend(tail_path_, &tail_);
    if (!reopen.ok()) return reopen;
    return s;
  }
  if (m_records_ != nullptr) m_records_->Inc();
  if (m_bytes_ != nullptr) m_bytes_->Inc(static_cast<int64_t>(frame.size()));
  return Status::OK();
}

Result<uint64_t> EventLog::Append(std::span<const Event> events) {
  if (events.empty()) return end_offset_;
  ckpt::Writer w;
  w.U8(kRecordEventBatch);
  w.U64(end_offset_);
  w.U32(static_cast<uint32_t>(events.size()));
  for (const Event& e : events) w.WriteEvent(e);
  Status s = WriteRecord(w.buffer(), /*force_sync=*/false);
  if (!s.ok()) return s;
  end_offset_ += events.size();
  return end_offset_;
}

Status EventLog::AppendCheckpointMarker(uint64_t generation, uint64_t offset) {
  ckpt::Writer w;
  w.U8(kRecordCheckpointMarker);
  w.U64(generation);
  w.U64(offset);
  Status s = WriteRecord(w.buffer(), /*force_sync=*/true);
  if (!s.ok()) return s;
  has_marker_ = true;
  marker_generation_ = generation;
  marker_offset_ = offset;
  return Status::OK();
}

Status EventLog::Sync() { return MaybeSync(/*force=*/true); }

bool EventLog::LatestCheckpointMarker(uint64_t* generation,
                                      uint64_t* offset) const {
  if (!has_marker_) return false;
  if (generation != nullptr) *generation = marker_generation_;
  if (offset != nullptr) *offset = marker_offset_;
  return true;
}

Status EventLog::ReplayFrom(uint64_t offset,
                            const std::function<void(const Event&)>& sink,
                            uint64_t* replayed) const {
  uint64_t delivered = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    // Skip whole segments that end below the requested offset.
    if (i + 1 < segments_.size() && segments_[i + 1].base <= offset) continue;
    const std::string path = JoinPath(dir_, segments_[i].name);
    std::string data;
    Status s = fs_->ReadFile(path, &data);
    if (!s.ok()) return s;
    s = CheckSegmentHeader(data, segments_[i].name, segments_[i].base);
    if (!s.ok()) return s;
    SegmentCursor cursor(data, kSegmentHeaderSize);
    RecordView rec;
    while (cursor.Next(&rec)) {
      ckpt::Reader r(rec.payload);
      const uint8_t type = r.U8();
      if (type == kRecordCheckpointMarker) continue;
      if (type != kRecordEventBatch) {
        return Status::ParseError("log segment " + segments_[i].name +
                                  ": unknown record type " +
                                  std::to_string(type));
      }
      const uint64_t first = r.U64();
      const uint32_t count = r.U32();
      if (first + count <= offset) continue;  // whole batch below offset
      for (uint32_t k = 0; k < count; ++k) {
        Event e = r.ReadEvent();
        if (!r.ok()) break;
        if (first + k < offset) continue;  // skip within the batch
        sink(e);
        ++delivered;
      }
      if (!r.ok()) {
        return Status::ParseError("log segment " + segments_[i].name +
                                  ": malformed event batch at byte " +
                                  std::to_string(rec.pos));
      }
    }
    if (!cursor.at_eof()) {
      return Status::ParseError("log segment " + segments_[i].name +
                                ": corrupt record at byte " +
                                std::to_string(cursor.ok_end()));
    }
  }
  if (m_replays_ != nullptr) m_replays_->Inc();
  if (m_replayed_events_ != nullptr) {
    m_replayed_events_->Inc(static_cast<int64_t>(delivered));
  }
  if (replayed != nullptr) *replayed = delivered;
  return Status::OK();
}

}  // namespace log
}  // namespace tpstream
