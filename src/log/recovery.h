#ifndef TPSTREAM_LOG_RECOVERY_H_
#define TPSTREAM_LOG_RECOVERY_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serde.h"
#include "common/event.h"
#include "common/status.h"
#include "log/crc32c.h"
#include "log/event_log.h"
#include "log/file.h"
#include "obs/metrics.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace log {

/// Result of one RecoveryManager::Checkpoint call.
struct CheckpointInfo {
  uint64_t generation = 0;
  /// True when a dirty-set delta was written instead of a full snapshot.
  bool incremental = false;
  /// Bytes of the persisted checkpoint file (header + blob + footer).
  uint64_t bytes = 0;
  /// Event-log offset stamped into the blob (replay resumes here).
  uint64_t offset = 0;
};

/// Result of one RecoveryManager::Recover call.
struct RecoveryReport {
  /// False when no valid checkpoint existed (cold start: full replay).
  bool restored = false;
  /// Generation of the newest state actually restored (full + applied
  /// deltas); 0 when `restored` is false.
  uint64_t generation = 0;
  /// Event-log offset the restored state was taken at.
  uint64_t offset = 0;
  uint64_t replayed_events = 0;
  /// Deltas applied on top of the base full snapshot.
  int64_t deltas_applied = 0;
  /// Checkpoint files skipped as corrupt/unreadable/chain-broken (each
  /// also quarantined as kCorruptCheckpoint when a sink is configured).
  int64_t corrupt_skipped = 0;
};

/// One-call crash recovery for every engine surface (Durability
/// contract, docs/architecture.md).
///
/// The manager owns a directory of checkpoint generation files
/// (`ckpt-<20-digit generation>-{full|delta}.tpc`) next to — usually
/// inside — the durable event log's directory, and ties the two
/// together:
///
///   Checkpoint(engine):  log.Sync()                (events <= offset are
///                                                   durable first)
///                        -> write generation file  (tmp + fsync + rename)
///                        -> engine baseline mark   (dirty sets cleared)
///                        -> log checkpoint marker  (fsync'd)
///
///   Recover(engine):     newest valid full snapshot (corrupt ones fall
///                        back to the previous generation)
///                        -> chain-validated deltas applied on top
///                        -> log.ReplayFrom(stamped offset) under
///                           replay mode (exactly-once dead-letter)
///
/// Incremental checkpoints: for engines exposing the incremental surface
/// (PartitionedTPStream, multi::QueryGroup), every K-th generation is a
/// full snapshot and the ones between are dirty-set deltas. Each file
/// records its base generation and a CRC-32C *chain hash*
/// (h_full = crc(blob); h_g = crc_extend(h_{g-1}, blob_g)), so Recover
/// applies a delta only when its declared base matches the running chain
/// exactly — a missing, corrupt, reordered or foreign delta breaks the
/// chain and recovery cleanly degrades to the prefix that validates
/// (worst case the last full snapshot), never a frankenstate.
///
/// Checkpoint file layout (little-endian, built on the ckpt wire
/// format): u32 magic "TPCF" | u32 version | u64 generation | u8 kind
/// (1=full, 2=delta) | u64 base generation | u32 base chain hash |
/// Str(blob) | checksum footer (ckpt::Writer::SealChecksum). The blob is
/// the engine's own Checkpoint()/CheckpointIncremental() bytes.
///
/// Engines are duck-typed at compile time: Restore/Checkpoint are
/// required; CheckpointIncremental / RestoreIncremental /
/// CanCheckpointIncremental / MarkCheckpointBaseline, SetReplayMode and
/// Reset are used when present. Single-threaded, like the surfaces it
/// checkpoints.
class RecoveryManager {
 public:
  struct Options {
    /// Every K-th generation is a full snapshot (K=1 disables deltas).
    uint64_t full_snapshot_interval = 8;
    /// Optional `recovery.*` metrics. Must outlive the manager.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional quarantine for corrupt checkpoint files
    /// (kCorruptCheckpoint). Must outlive the manager.
    robust::DeadLetterSink* dead_letter = nullptr;
  };

  /// Opens (creating if needed) the checkpoint directory `dir` and scans
  /// the existing generation files. `log` may be null (checkpoint-only
  /// operation: Recover then restores without replay). `fs`, `log` and
  /// the options' sinks must outlive the manager.
  static Status Open(FileSystem* fs, const std::string& dir, EventLog* log,
                     const Options& options, std::unique_ptr<RecoveryManager>* out);

  /// Takes a checkpoint of `engine` at its current quiescent point: a
  /// full snapshot or, when the engine supports it and the cadence
  /// allows, a dirty-set delta. On failure (e.g. kResourceExhausted on a
  /// full disk) no generation is consumed, the partially written temp
  /// file is removed, and the next call falls back to a full snapshot.
  template <typename Engine>
  Result<CheckpointInfo> Checkpoint(Engine& engine);

  /// Restores `engine` to the newest recoverable state and replays the
  /// log tail into it. See the class comment for the procedure.
  template <typename Engine>
  Result<RecoveryReport> Recover(Engine& engine);

  /// Highest generation persisted or discovered (0 when none).
  uint64_t last_generation() const { return last_generation_; }
  /// Checkpoint generation files currently tracked on disk.
  int64_t num_checkpoint_files() const {
    return static_cast<int64_t>(entries_.size());
  }
  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    uint64_t generation = 0;
    bool delta = false;
    std::string name;
  };

  struct Loaded {
    uint64_t generation = 0;
    bool delta = false;
    uint64_t base_generation = 0;
    uint32_t base_hash = 0;
    std::string blob;
  };

  RecoveryManager(FileSystem* fs, std::string dir, EventLog* log,
                  const Options& options);

  Status ScanDir();
  /// Builds the generation file bytes around `blob` and publishes them
  /// atomically (tmp + fsync + rename); registers the entry on success.
  Status PersistGeneration(uint64_t generation, bool delta,
                           uint64_t base_generation, uint32_t base_hash,
                           const std::string& blob, uint64_t* file_bytes);
  /// Loads and validates one generation file (checksum, magic, version).
  Status LoadGeneration(const Entry& entry, Loaded* out);
  void Quarantine(const std::string& name, const Status& why);
  /// After a new full snapshot: deletes generations below the previous
  /// full (the previous full and its deltas stay as the fallback chain).
  void PruneOldGenerations(uint64_t new_full_generation);
  static std::string EntryFileName(uint64_t generation, bool delta);

  // Shared non-template halves of Checkpoint/Recover.
  Status CommitCheckpoint(uint64_t generation, bool delta,
                          const std::string& blob, uint64_t offset,
                          uint64_t* file_bytes);
  /// Validates the delta chain on top of `full` without touching any
  /// engine: returns the longest prefix of consecutive, checksum- and
  /// chain-hash-valid deltas, and the resulting running hash.
  std::vector<Loaded> ValidDeltaChain(const Loaded& full, uint32_t* chain_hash,
                                      int64_t* corrupt_skipped);

  FileSystem* fs_;
  std::string dir_;
  EventLog* log_;
  Options options_;

  std::vector<Entry> entries_;  // ascending by generation
  uint64_t last_generation_ = 0;
  uint32_t chain_hash_ = 0;
  bool have_chain_ = false;
  /// Set on persist failure (and at start): the next checkpoint must be
  /// a full snapshot because the dirty-set baseline is unknown.
  bool force_full_ = true;
  uint64_t gens_since_full_ = 0;

  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_full_ = nullptr;
  obs::Counter* m_delta_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_corrupt_ = nullptr;
};

// ---------------------------------------------------------------------------
// Template implementations

template <typename Engine>
Result<CheckpointInfo> RecoveryManager::Checkpoint(Engine& engine) {
  constexpr bool kIncremental =
      requires(Engine& e, ckpt::Writer& w) {
        e.CheckpointIncremental(w);
        { e.CanCheckpointIncremental() } -> std::convertible_to<bool>;
        e.MarkCheckpointBaseline();
      };

  const uint64_t generation = last_generation_ + 1;
  bool delta = false;
  if constexpr (kIncremental) {
    delta = have_chain_ && !force_full_ &&
            options_.full_snapshot_interval > 1 &&
            gens_since_full_ + 1 < options_.full_snapshot_interval &&
            engine.CanCheckpointIncremental();
  }

  ckpt::Writer wb;
  if constexpr (kIncremental) {
    if (delta) {
      engine.CheckpointIncremental(wb);
    } else {
      engine.Checkpoint(wb);
    }
  } else {
    engine.Checkpoint(wb);
  }
  const std::string blob = wb.Take();

  uint64_t offset = 0;
  {
    ckpt::Reader r(blob);
    Status s = r.Envelope(&offset);
    if (!s.ok()) return s;
  }

  // Events at or below the stamped offset must be durable before a
  // checkpoint claims replay can start there.
  if (log_ != nullptr) {
    Status s = log_->Sync();
    if (!s.ok()) return s;
  }

  uint64_t file_bytes = 0;
  Status s = CommitCheckpoint(generation, delta, blob, offset, &file_bytes);
  if (!s.ok()) {
    // The dirty set was not cleared, so nothing is lost: the next
    // attempt re-covers the same changes — as a full snapshot, since
    // the persisted chain may now be behind the engine's baseline.
    force_full_ = true;
    return s;
  }
  if constexpr (kIncremental) engine.MarkCheckpointBaseline();

  CheckpointInfo info;
  info.generation = generation;
  info.incremental = delta;
  info.bytes = file_bytes;
  info.offset = offset;
  return info;
}

template <typename Engine>
Result<RecoveryReport> RecoveryManager::Recover(Engine& engine) {
  constexpr bool kIncremental =
      requires(Engine& e, ckpt::Reader& r, uint64_t* off) {
        e.RestoreIncremental(r, off);
      };
  constexpr bool kReplayMode = requires(Engine& e) { e.SetReplayMode(true); };
  constexpr bool kReset = requires(Engine& e) { e.Reset(); };

  RecoveryReport report;
  const uint64_t max_generation =
      entries_.empty() ? 0 : entries_.back().generation;

  // Newest-first over full snapshots; the first one that restores wins.
  for (auto it = entries_.rbegin(); it != entries_.rend() && !report.restored;
       ++it) {
    if (it->delta) continue;
    Loaded full;
    Status s = LoadGeneration(*it, &full);
    if (!s.ok() || full.delta) {
      if (s.ok()) {
        s = Status::ParseError("checkpoint file " + it->name +
                               ": kind does not match file name");
      }
      Quarantine(it->name, s);
      ++report.corrupt_skipped;
      continue;
    }
    uint64_t offset = 0;
    if constexpr (kReset) engine.Reset();
    {
      ckpt::Reader r(full.blob);
      s = engine.Restore(r, &offset);
    }
    if (!s.ok()) {
      Quarantine(it->name, s);
      ++report.corrupt_skipped;
      if constexpr (kReset) engine.Reset();
      continue;
    }

    uint32_t chain = Crc32c(full.blob);
    uint64_t current = full.generation;
    int64_t applied = 0;

    if constexpr (kIncremental) {
      std::vector<Loaded> deltas =
          ValidDeltaChain(full, &chain, &report.corrupt_skipped);
      for (Loaded& d : deltas) {
        uint64_t delta_offset = 0;
        ckpt::Reader dr(d.blob);
        s = engine.RestoreIncremental(dr, &delta_offset);
        if (!s.ok()) {
          // Checksum-valid bytes that still fail to restore: degrade to
          // the full snapshot alone rather than keep a half-applied
          // chain.
          Quarantine(EntryFileName(d.generation, true), s);
          ++report.corrupt_skipped;
          if constexpr (kReset) engine.Reset();
          ckpt::Reader rf(full.blob);
          s = engine.Restore(rf, &offset);
          if (!s.ok()) return s;  // restored moments ago; cannot fail
          chain = Crc32c(full.blob);
          current = full.generation;
          applied = 0;
          break;
        }
        offset = delta_offset;
        current = d.generation;
        ++applied;
      }
    }

    report.restored = true;
    report.generation = current;
    report.offset = offset;
    report.deltas_applied = applied;
    chain_hash_ = chain;
    have_chain_ = true;
    force_full_ = false;
    gens_since_full_ = static_cast<uint64_t>(applied);
  }

  // New generations must never collide with files already on disk, even
  // ones skipped as corrupt.
  last_generation_ = std::max(max_generation, report.generation);

  if (report.restored && report.generation != last_generation_) {
    // Fallback recovery: files newer than the restored state remain on
    // disk (corrupt or chain-broken), so a delta based on the running
    // chain could never re-attach past them at the next recovery —
    // ValidDeltaChain stops at the first gap. Start a fresh full chain.
    force_full_ = true;
  }

  if (!report.restored) {
    // Cold start: nothing recoverable, replay the whole log into a
    // fresh engine.
    if constexpr (kReset) engine.Reset();
    have_chain_ = false;
    force_full_ = true;
    gens_since_full_ = 0;
  }

  if (log_ != nullptr) {
    if constexpr (kReplayMode) engine.SetReplayMode(true);
    Status s = log_->ReplayFrom(
        report.offset, [&engine](const Event& e) { engine.Push(e); },
        &report.replayed_events);
    if constexpr (kReplayMode) engine.SetReplayMode(false);
    if (!s.ok()) return s;
  }

  if (m_recoveries_ != nullptr) {
    // corrupt_skipped is already on the counter (Quarantine bumps it).
    m_recoveries_->Inc();
    m_replayed_->Inc(static_cast<int64_t>(report.replayed_events));
  }
  return report;
}

}  // namespace log
}  // namespace tpstream

#endif  // TPSTREAM_LOG_RECOVERY_H_
