#include "log/memfs.h"

#include <algorithm>

namespace tpstream {
namespace log {

namespace {

Status MemNoSpace(const std::string& path, size_t bytes) {
  return Status::ResourceExhausted("disk full: " + path + ": " +
                                   std::to_string(bytes) +
                                   " byte(s) could not be appended");
}

}  // namespace

/// Handle into MemFileSystem state. The handle stays valid across
/// SimulateCrash()/TruncateTo (it re-reads the file length), matching
/// how a real fd would observe an out-of-band truncate only at the next
/// append.
class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(MemFileSystem* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    auto it = fs_->files_.find(path_);
    if (it == fs_->files_.end()) {
      return Status::NotFound("append to deleted file: " + path_);
    }
    size_t allowed = data.size();
    const bool enospc =
        fs_->total_appended_ + data.size() > fs_->enospc_after_bytes_;
    if (enospc) {
      const uint64_t room =
          fs_->enospc_after_bytes_ -
          std::min(fs_->enospc_after_bytes_, fs_->total_appended_);
      allowed = static_cast<size_t>(std::min<uint64_t>(room, data.size()));
    }
    it->second.data.append(data.data(), allowed);
    fs_->total_appended_ += allowed;
    if (enospc) return MemNoSpace(path_, data.size() - allowed);
    return Status::OK();
  }

  Status Sync() override {
    if (fs_->num_syncs_ >= fs_->fail_fsync_after_) {
      ++fs_->num_syncs_;
      return Status::Internal("fsync " + path_ + ": injected failure");
    }
    ++fs_->num_syncs_;
    auto it = fs_->files_.find(path_);
    if (it != fs_->files_.end()) {
      it->second.synced_size = it->second.data.size();
    }
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t size() const override {
    auto it = fs_->files_.find(path_);
    return it == fs_->files_.end() ? 0 : it->second.data.size();
  }

 private:
  MemFileSystem* fs_;
  std::string path_;
};

Status MemFileSystem::OpenAppend(const std::string& path,
                                 std::unique_ptr<WritableFile>* file) {
  files_.try_emplace(path);  // create if absent, keep existing contents
  *file = std::make_unique<MemWritableFile>(this, path);
  return Status::OK();
}

Status MemFileSystem::ReadFile(const std::string& path, std::string* out) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  *out = it->second.data;
  return Status::OK();
}

Status MemFileSystem::ListDir(const std::string& dir,
                              std::vector<std::string>* names) {
  names->clear();
  const std::string prefix = JoinPath(dir, "");
  for (const auto& [path, state] : files_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      names->push_back(path.substr(prefix.size()));
    }
  }
  return Status::OK();
}

Status MemFileSystem::CreateDir(const std::string& dir) {
  dirs_.insert(dir);
  return Status::OK();
}

Status MemFileSystem::DeleteFile(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status MemFileSystem::RenameFile(const std::string& from,
                                 const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::OK();
}

Status MemFileSystem::Truncate(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (size < it->second.data.size()) {
    it->second.data.resize(size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

bool MemFileSystem::FileExists(const std::string& path) {
  return files_.count(path) != 0;
}

void MemFileSystem::SimulateCrash() {
  for (auto& [path, state] : files_) {
    state.data.resize(state.synced_size);
  }
}

void MemFileSystem::TruncateTo(const std::string& path, uint64_t size) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  if (size < it->second.data.size()) it->second.data.resize(size);
  it->second.synced_size = std::min(it->second.synced_size, size);
}

void MemFileSystem::CorruptByte(const std::string& path, uint64_t pos,
                                uint8_t mask) {
  auto it = files_.find(path);
  if (it == files_.end() || pos >= it->second.data.size()) return;
  it->second.data[pos] = static_cast<char>(
      static_cast<uint8_t>(it->second.data[pos]) ^ mask);
}

uint64_t MemFileSystem::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.data.size();
}

std::string MemFileSystem::Contents(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? std::string() : it->second.data;
}

}  // namespace log
}  // namespace tpstream
