#include "log/crc32c.h"

#include <array>

namespace tpstream {
namespace log {
namespace {

// Slicing-by-4 tables for the reflected Castagnoli polynomial, generated
// once at static-init time. Table 0 is the classic byte-at-a-time table;
// table k folds a zero byte k positions later, letting the hot loop
// consume four bytes per iteration without per-byte carries.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const Tables& tb = tables();
  uint32_t c = crc ^ 0xffffffffu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xffu] ^ tb.t[2][(c >> 8) & 0xffu] ^
        tb.t[1][(c >> 16) & 0xffu] ^ tb.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xffu];
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace log
}  // namespace tpstream
