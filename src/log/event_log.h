#ifndef TPSTREAM_LOG_EVENT_LOG_H_
#define TPSTREAM_LOG_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "log/file.h"
#include "obs/metrics.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace log {

/// When the log issues a durability barrier (fsync) — the classic WAL
/// latency/durability dial.
enum class SyncMode {
  /// fsync after every record: no acknowledged event is ever lost, at
  /// the cost of one fsync per append.
  kEveryRecord,
  /// fsync once at least `sync_bytes` have accumulated since the last
  /// barrier (group commit by volume). A crash loses at most the
  /// unsynced tail, which open-time tail repair truncates cleanly.
  kEveryBytes,
  /// fsync once at least `sync_interval_ns` have elapsed since the last
  /// barrier (group commit by time). Checked on the append path, so an
  /// idle log syncs at the next append or explicit Sync().
  kInterval,
};

const char* SyncModeName(SyncMode mode);

struct SyncPolicy {
  SyncMode mode = SyncMode::kEveryRecord;
  /// Barrier threshold for kEveryBytes.
  uint64_t sync_bytes = 64 * 1024;
  /// Barrier period for kInterval, in nanoseconds.
  int64_t sync_interval_ns = 5'000'000;  // 5 ms
  /// Injectable clock for kInterval (tests pin time); defaults to
  /// std::chrono::steady_clock.
  std::function<int64_t()> clock;
};

struct EventLogOptions {
  /// Segment rotation threshold: a new segment file starts once the
  /// current one holds at least this many bytes.
  uint64_t segment_bytes = 4 * 1024 * 1024;
  SyncPolicy sync;
  /// Optional observability sink (`log.*` metrics, see
  /// docs/architecture.md "Observability"). Must outlive the log.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional quarantine for torn-tail bytes truncated at open
  /// (DeadLetterKind::kTornLogRecord). Must outlive the log.
  robust::DeadLetterSink* dead_letter = nullptr;
};

/// Result of opening a log directory (tail-repair accounting).
struct OpenReport {
  /// Torn trailing records truncated from the final segment (0 or 1 per
  /// open: everything after the first bad record is discarded as one
  /// quarantined tail).
  int64_t truncated_tail_records = 0;
  /// Raw bytes discarded by tail repair.
  uint64_t truncated_tail_bytes = 0;
  /// Segments found on disk.
  int64_t segments = 0;
};

/// Segment-based append-only durable event log.
///
/// On-disk layout (little-endian; see "Durability contract",
/// docs/architecture.md): a directory of rotating segment files named
/// `segment-<20-digit base offset>.tpl`. Each segment starts with a
/// 16-byte header
///
///   u32 magic "TPLG" | u32 version | u64 base offset
///
/// (base offset = the log offset of the first event in the segment)
/// followed by records framed as
///
///   u32 payload length | u32 crc32c(payload) | payload
///
/// where payload[0] is a record type byte:
///   1 = event batch:      u64 first offset | u32 count | count x Event
///   2 = checkpoint marker: u64 generation  | u64 log offset
///
/// Events are serialized with the ckpt wire format (bit-exact doubles),
/// which is what makes replay byte-identical. Offsets count events, not
/// bytes; checkpoint markers do not advance the offset.
///
/// Crash tolerance: only the tail of the *final* segment can legally be
/// torn (appends are sequential). Open() scans that segment record by
/// record; the first record with a bad length or CRC ends the trusted
/// prefix — the tail from that point is truncated on disk, counted, and
/// quarantined to the dead-letter sink. A CRC mismatch anywhere else
/// (non-final segment, or before valid trailing records) is corruption,
/// not a torn write, and fails loudly.
class EventLog {
 public:
  /// Opens (creating if needed) the log in `dir`. `fs` and everything in
  /// `options` must outlive the log. On success `*out_report` (when
  /// non-null) receives tail-repair accounting.
  static Status Open(FileSystem* fs, const std::string& dir,
                     const EventLogOptions& options,
                     std::unique_ptr<EventLog>* out,
                     OpenReport* out_report = nullptr);

  /// Appends one batch as a single record. Returns the log offset of the
  /// *end* of the batch (== the new end_offset()); an empty batch is a
  /// no-op returning end_offset(). On kResourceExhausted (disk full) the
  /// partial record is rolled back and the segment stays re-openable;
  /// the error names the path and byte count.
  Result<uint64_t> Append(std::span<const Event> events);

  /// Appends a checkpoint marker record (generation, offset) and forces
  /// a durability barrier regardless of the sync policy — a checkpoint
  /// must never be newer than the log tail it points into.
  Status AppendCheckpointMarker(uint64_t generation, uint64_t offset);

  /// Forces an fsync of the current segment.
  Status Sync();

  /// Replays events with log offset >= `offset` in order, invoking
  /// `sink` for each. `*replayed` (when non-null) receives the number of
  /// events delivered. Checkpoint markers are skipped. Corruption
  /// encountered mid-replay fails with kParseError naming the segment.
  Status ReplayFrom(uint64_t offset,
                    const std::function<void(const Event&)>& sink,
                    uint64_t* replayed = nullptr) const;

  /// Scans for the newest checkpoint marker at or below end_offset().
  /// Returns false if the log holds no marker.
  bool LatestCheckpointMarker(uint64_t* generation, uint64_t* offset) const;

  /// Log offset one past the last appended event.
  uint64_t end_offset() const { return end_offset_; }
  /// Log offset of the first retained event (0 until truncation exists).
  uint64_t begin_offset() const { return begin_offset_; }
  int64_t num_segments() const { return static_cast<int64_t>(segments_.size()); }
  const std::string& dir() const { return dir_; }

  /// Name of the segment file whose base offset is `base`.
  static std::string SegmentFileName(uint64_t base);

 private:
  struct Segment {
    std::string name;
    uint64_t base = 0;
  };

  EventLog(FileSystem* fs, std::string dir, const EventLogOptions& options);

  Status OpenTail(OpenReport* report);
  Status RotateIfNeeded();
  Status WriteRecord(const std::string& payload, bool force_sync);
  Status MaybeSync(bool force);
  int64_t NowNs() const;

  FileSystem* fs_;
  std::string dir_;
  EventLogOptions options_;

  std::vector<Segment> segments_;  // ascending by base offset
  std::unique_ptr<WritableFile> tail_;
  std::string tail_path_;
  uint64_t end_offset_ = 0;
  uint64_t begin_offset_ = 0;
  uint64_t bytes_since_sync_ = 0;
  int64_t last_sync_ns_ = 0;
  // Newest checkpoint marker seen (scanned at open, updated on append).
  bool has_marker_ = false;
  uint64_t marker_generation_ = 0;
  uint64_t marker_offset_ = 0;

  // Resolved metric handles (null when options_.metrics is null).
  obs::Counter* m_records_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_fsyncs_ = nullptr;
  obs::Counter* m_truncated_ = nullptr;
  obs::Counter* m_replays_ = nullptr;
  obs::Counter* m_replayed_events_ = nullptr;
  obs::Gauge* m_segments_ = nullptr;
  obs::LatencyHistogram* m_fsync_ns_ = nullptr;
};

}  // namespace log
}  // namespace tpstream

#endif  // TPSTREAM_LOG_EVENT_LOG_H_
