#ifndef TPSTREAM_LOG_CRC32C_H_
#define TPSTREAM_LOG_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace tpstream {
namespace log {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected). The same
/// checksum guards durable log records and checkpoint blobs, so a
/// bit-flip anywhere in the persistence path is detected by the same
/// deterministic check. Reference vector: Crc32c("123456789") ==
/// 0xE3069283 (RFC 3720 appendix).
uint32_t Crc32c(std::string_view data);

/// Incremental form: extends `crc` (a previous Crc32c result) with
/// `data`, as if the two byte ranges had been checksummed in one call.
/// Used for checkpoint-chain hashes: h_g = Crc32cExtend(h_{g-1}, blob).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

}  // namespace log
}  // namespace tpstream

#endif  // TPSTREAM_LOG_CRC32C_H_
