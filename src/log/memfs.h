#ifndef TPSTREAM_LOG_MEMFS_H_
#define TPSTREAM_LOG_MEMFS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "log/file.h"

namespace tpstream {
namespace log {

/// In-memory FileSystem with deterministic fault injection — the test
/// half of the `log::File` seam. Crash simulation works on the byte
/// level: `synced_size` records how much of each file a Sync() has made
/// durable, and `SimulateCrash()` rolls every file back to that point,
/// modelling a power cut that loses the unsynced tail. Tests then carve
/// arbitrary torn tails with `TruncateTo` / `CorruptByte`.
///
/// Fault plan (all default off):
///   - `set_enospc_after_bytes(n)`: the next appends succeed until n
///     total bytes have been written, then fail with kResourceExhausted;
///     the partial prefix that fit is applied first (short write), as a
///     real filesystem would.
///   - `set_fail_fsync_after(n)`: the first n Sync() calls succeed, every
///     later one fails with kInternal.
class MemFileSystem : public FileSystem {
 public:
  Status OpenAppend(const std::string& path,
                    std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;

  // --- fault plan ------------------------------------------------------
  void set_enospc_after_bytes(uint64_t n) { enospc_after_bytes_ = n; }
  void clear_enospc() {
    enospc_after_bytes_ = std::numeric_limits<uint64_t>::max();
  }
  void set_fail_fsync_after(uint64_t n) { fail_fsync_after_ = n; }
  void clear_fsync_fault() {
    fail_fsync_after_ = std::numeric_limits<uint64_t>::max();
  }

  // --- crash simulation ------------------------------------------------
  /// Rolls every file back to its last synced size (power-cut model).
  void SimulateCrash();
  /// Overrides a file's length (carving a torn tail at any boundary).
  void TruncateTo(const std::string& path, uint64_t size);
  /// XORs one byte (bit-flip fuzzing).
  void CorruptByte(const std::string& path, uint64_t pos, uint8_t mask);

  // --- inspection ------------------------------------------------------
  bool HasFile(const std::string& path) const {
    return files_.count(path) != 0;
  }
  uint64_t FileSize(const std::string& path) const;
  std::string Contents(const std::string& path) const;
  uint64_t total_appended() const { return total_appended_; }
  uint64_t num_syncs() const { return num_syncs_; }

 private:
  friend class MemWritableFile;

  struct FileState {
    std::string data;
    uint64_t synced_size = 0;
  };

  std::map<std::string, FileState> files_;
  std::set<std::string> dirs_;
  uint64_t total_appended_ = 0;
  uint64_t num_syncs_ = 0;
  uint64_t enospc_after_bytes_ = std::numeric_limits<uint64_t>::max();
  uint64_t fail_fsync_after_ = std::numeric_limits<uint64_t>::max();
};

}  // namespace log
}  // namespace tpstream

#endif  // TPSTREAM_LOG_MEMFS_H_
