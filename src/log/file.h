#ifndef TPSTREAM_LOG_FILE_H_
#define TPSTREAM_LOG_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tpstream {
namespace log {

/// Append-only file handle behind the durability seam. Every byte the
/// log or the recovery manager persists flows through this interface, so
/// the chaos suites can inject short writes, fsync failures and ENOSPC
/// without touching the production code path.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. On failure the file may have
  /// grown by a prefix of `data` (short write) — callers that need
  /// record atomicity roll back via FileSystem::Truncate.
  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier: on success all previously appended bytes have
  /// reached stable storage.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;

  /// Bytes appended so far (the current file size).
  virtual uint64_t size() const = 0;
};

/// Minimal filesystem abstraction (the `log::File` seam): a real posix
/// implementation for production and an in-memory fault-injecting one
/// for tests (memfs.h). Paths are plain strings; the log keeps all its
/// files inside one directory.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if absent. On success the
  /// handle's size() reflects the existing file length.
  virtual Status OpenAppend(const std::string& path,
                            std::unique_ptr<WritableFile>* file) = 0;

  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// Lists regular-file names (not paths) in `dir`, unsorted.
  virtual Status ListDir(const std::string& dir,
                         std::vector<std::string>* names) = 0;

  /// Creates `dir` if it does not exist (single level).
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomic within a directory; used for the tmp-write + rename
  /// checkpoint publication protocol.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` to `size` bytes (torn-tail repair and ENOSPC
  /// rollback). The file must not be open for append.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  virtual bool FileExists(const std::string& path) = 0;
};

/// The production implementation: open/write/fsync/rename/ftruncate.
/// ENOSPC is surfaced as Status::ResourceExhausted naming the path and
/// the byte count that could not be written (Degradation contract —
/// disk-full is an operational condition, not a parse error).
class PosixFileSystem : public FileSystem {
 public:
  Status OpenAppend(const std::string& path,
                    std::unique_ptr<WritableFile>* file) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status ListDir(const std::string& dir,
                 std::vector<std::string>* names) override;
  Status CreateDir(const std::string& dir) override;
  Status DeleteFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;
};

/// Joins a directory and a file name with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace log
}  // namespace tpstream

#endif  // TPSTREAM_LOG_FILE_H_
