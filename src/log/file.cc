#include "log/file.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>

namespace tpstream {
namespace log {
namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg = op + " " + path + ": " + ::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(msg);
  }
  return Status::Internal(msg);
}

/// ENOSPC carries the path and the byte count that failed to land, so an
/// operator reading the error knows what to free and how much.
Status NoSpace(const std::string& path, size_t bytes) {
  return Status::ResourceExhausted("disk full: " + path + ": " +
                                   std::to_string(bytes) +
                                   " byte(s) could not be appended");
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ENOSPC || errno == EDQUOT) return NoSpace(path_, left);
        return ErrnoStatus("write", path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
      size_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

  uint64_t size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_;
};

}  // namespace

Status PosixFileSystem::OpenAppend(const std::string& path,
                                   std::unique_ptr<WritableFile>* file) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("fstat", path, err);
  }
  *file = std::make_unique<PosixWritableFile>(
      fd, path, static_cast<uint64_t>(st.st_size));
  return Status::OK();
}

Status PosixFileSystem::ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path, errno);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return ErrnoStatus("read", path, err);
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status PosixFileSystem::ListDir(const std::string& dir,
                                std::vector<std::string>* names) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
  names->clear();
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(name);
  }
  ::closedir(d);
  return Status::OK();
}

Status PosixFileSystem::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", dir, errno);
  }
  return Status::OK();
}

Status PosixFileSystem::DeleteFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
  return Status::OK();
}

Status PosixFileSystem::RenameFile(const std::string& from,
                                   const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status PosixFileSystem::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path, errno);
  }
  return Status::OK();
}

bool PosixFileSystem::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace log
}  // namespace tpstream
