#ifndef TPSTREAM_OOO_REORDER_BUFFER_H_
#define TPSTREAM_OOO_REORDER_BUFFER_H_

#include <functional>
#include <vector>

#include "ckpt/serde.h"
#include "common/event.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "robust/dead_letter.h"

namespace tpstream {
namespace ooo {

/// Buffered reordering frontend for out-of-order event streams — the
/// paper's first future-work item (Section 7, following the slack/K-sort
/// approach of the cited out-of-order literature [7, 21]).
///
/// Events may arrive up to `slack` time units late: an event with
/// timestamp t is released only once an event with timestamp >= t + slack
/// has been seen, which guarantees in-order delivery for any input whose
/// disorder is bounded by the slack. Events arriving later than that are
/// counted and dropped (optionally reported via the late-event callback).
///
/// Usage:
///   ooo::ReorderBuffer reorder({.slack = 30});
///   source.OnEvent([&](const Event& e) {
///     reorder.Push(e, [&](const Event& ordered) { op.Push(ordered); });
///   });
///   reorder.Flush([&](const Event& ordered) { op.Push(ordered); });
class ReorderBuffer {
 public:
  struct Options {
    /// Maximum tolerated lateness (in ticks).
    Duration slack = 0;
    /// Optional observability sink: `reorder.released` / `.reordered` /
    /// `.dropped` counters, `reorder.buffered` / `.watermark_lag` gauges
    /// (lag = max seen timestamp minus watermark, in ticks).
    obs::MetricsRegistry* metrics = nullptr;
    /// Quarantine destination for late-dropped events (Degradation
    /// contract): each dropped event is delivered as a kLateEvent item
    /// carrying the intact event and its lateness, *after* the late
    /// callback (which sees the event first and un-moved). Not owned; may
    /// be null (late events are then only counted).
    robust::DeadLetterSink* dead_letter = nullptr;
  };

  using Sink = std::function<void(const Event&)>;
  using LateCallback = std::function<void(const Event&)>;

  explicit ReorderBuffer(Options options) : options_(options) {
    // A negative slack has no sensible reading; treat it as "no slack"
    // (it would also break the saturating watermark arithmetic in Push).
    if (options_.slack < 0) options_.slack = 0;
    if (options_.metrics != nullptr) {
      released_ctr_ = options_.metrics->GetCounter("reorder.released");
      reordered_ctr_ = options_.metrics->GetCounter("reorder.reordered");
      dropped_ctr_ = options_.metrics->GetCounter("reorder.dropped");
      buffered_gauge_ = options_.metrics->GetGauge("reorder.buffered");
      lag_gauge_ = options_.metrics->GetGauge("reorder.watermark_lag");
    }
  }

  /// Inserts one event and forwards every event whose release condition
  /// is met, in timestamp order.
  void Push(const Event& event, const Sink& sink);

  /// Move overload: the event payload is moved into the buffer heap
  /// instead of copied (late-dropped events are not moved from — the
  /// late callback still sees the intact event).
  void Push(Event&& event, const Sink& sink);

  /// Drains all buffered events in order (end of stream).
  void Flush(const Sink& sink);

  /// Invoked (if set) for events too late to be reordered.
  void SetLateCallback(LateCallback cb) { late_callback_ = std::move(cb); }

  /// Replay mode (Durability contract): while a recovery replay re-feeds
  /// a stream prefix whose late events were already quarantined before
  /// the crash, re-dropping them must not deliver them to the dead-letter
  /// sink again — quarantine is exactly-once per decision, and the
  /// decision happened in the original run. Drops during replay still
  /// bump `num_dropped()`, the metrics and the late callback (so replayed
  /// counters stay byte-identical to the uninterrupted run); only the
  /// sink delivery is suppressed. log::RecoveryManager toggles this
  /// around ReplayFrom via Pipeline::SetReplayMode.
  void SetReplayMode(bool replaying) { replaying_ = replaying; }
  bool replay_mode() const { return replaying_; }

  int64_t num_reordered() const { return num_reordered_; }
  int64_t num_dropped() const { return num_dropped_; }
  size_t buffered() const { return heap_.size(); }
  TimePoint watermark() const { return watermark_; }

  /// Returns the buffer to its freshly-constructed state: empties the
  /// heap and rewinds watermarks and disorder counters. Configuration
  /// (slack, sinks, metrics) is retained.
  void Reset();

  /// Serializes the buffered events (verbatim heap array layout), the
  /// watermark state and the disorder counters. Restoring the exact array
  /// preserves the release order of equal-timestamp events, which the
  /// replay differential tests rely on.
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint. On error the buffer must be Reset() or
  /// discarded before further use.
  Status Restore(ckpt::Reader& r);

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t;
    }
  };

  /// Shared front half of the Push overloads: late-drop check and
  /// disorder accounting. Returns false when the event was dropped.
  bool Admit(const Event& event);
  /// Delivers a dropped event to the dead-letter sink (after the late
  /// callback already saw it intact).
  void QuarantineLate(Event&& event);
  /// Shared back half: advances the watermark and releases in order.
  void ReleaseReady(const Sink& sink);

  Options options_;
  LateCallback late_callback_;
  /// Min-heap on `t` maintained with std::push_heap/std::pop_heap (rather
  /// than std::priority_queue) so checkpoints can serialize and restore
  /// the exact array layout — heap operations are deterministic functions
  /// of the array, so a restored buffer releases equal-timestamp events
  /// in the same order the uninterrupted run would have.
  std::vector<Event> heap_;
  TimePoint max_seen_ = kTimeMin;
  TimePoint last_released_ = kTimeMin;
  TimePoint watermark_ = kTimeMin;
  int64_t num_reordered_ = 0;
  int64_t num_dropped_ = 0;
  bool replaying_ = false;

  // Observability handles (null when metrics are disabled).
  obs::Counter* released_ctr_ = nullptr;
  obs::Counter* reordered_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
  obs::Gauge* buffered_gauge_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
};

}  // namespace ooo
}  // namespace tpstream

#endif  // TPSTREAM_OOO_REORDER_BUFFER_H_
