#include "ooo/reorder_buffer.h"

namespace tpstream {
namespace ooo {

void ReorderBuffer::Push(const Event& event, const Sink& sink) {
  // Ties are legitimate across partitions (several keys reporting in the
  // same tick); only strictly older events are late.
  if (event.t < last_released_) {
    ++num_dropped_;
    if (late_callback_) late_callback_(event);
    return;
  }
  if (event.t < max_seen_) ++num_reordered_;
  if (event.t > max_seen_) max_seen_ = event.t;
  heap_.push(event);

  // Release everything at or below the watermark. The subtraction
  // saturates at kTimeMin: for timestamps within `slack` of the lower
  // bound, `max_seen_ - slack` would be signed overflow (UB) and wrap to
  // a huge positive watermark that releases everything prematurely.
  watermark_ = max_seen_ < kTimeMin + options_.slack
                   ? kTimeMin
                   : max_seen_ - options_.slack;
  while (!heap_.empty() && heap_.top().t <= watermark_) {
    last_released_ = heap_.top().t;
    sink(heap_.top());
    heap_.pop();
  }
}

void ReorderBuffer::Flush(const Sink& sink) {
  while (!heap_.empty()) {
    last_released_ = heap_.top().t;
    sink(heap_.top());
    heap_.pop();
  }
  watermark_ = last_released_;
}

}  // namespace ooo
}  // namespace tpstream
