#include "ooo/reorder_buffer.h"

#include <algorithm>
#include <utility>

namespace tpstream {
namespace ooo {

bool ReorderBuffer::Admit(const Event& event) {
  // Ties are legitimate across partitions (several keys reporting in the
  // same tick); only strictly older events are late.
  if (event.t < last_released_) {
    ++num_dropped_;
    if (dropped_ctr_ != nullptr) dropped_ctr_->Inc();
    if (late_callback_) late_callback_(event);
    return false;
  }
  if (event.t < max_seen_) {
    ++num_reordered_;
    if (reordered_ctr_ != nullptr) reordered_ctr_->Inc();
  }
  if (event.t > max_seen_) max_seen_ = event.t;
  return true;
}

void ReorderBuffer::ReleaseReady(const Sink& sink) {
  // Release everything at or below the watermark. The subtraction
  // saturates at kTimeMin: for timestamps within `slack` of the lower
  // bound, `max_seen_ - slack` would be signed overflow (UB) and wrap to
  // a huge positive watermark that releases everything prematurely.
  watermark_ = max_seen_ < kTimeMin + options_.slack
                   ? kTimeMin
                   : max_seen_ - options_.slack;
  while (!heap_.empty() && heap_.front().t <= watermark_) {
    last_released_ = heap_.front().t;
    sink(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    if (released_ctr_ != nullptr) released_ctr_->Inc();
  }
  if (buffered_gauge_ != nullptr) {
    buffered_gauge_->Set(static_cast<double>(heap_.size()));
    lag_gauge_->Set(static_cast<double>(max_seen_ - watermark_));
  }
}

void ReorderBuffer::QuarantineLate(Event&& event) {
  if (options_.dead_letter == nullptr) return;
  // Replayed drops were quarantined by the original run already; the
  // dead-letter channel is exactly-once per decision (counters and the
  // late callback still fired from Admit).
  if (replaying_) return;
  robust::DeadLetterItem item;
  item.kind = robust::DeadLetterKind::kLateEvent;
  item.detail = "late event t=" + std::to_string(event.t) +
                " older than release point " +
                std::to_string(last_released_) + " (slack " +
                std::to_string(options_.slack) + ")";
  item.events.push_back(std::move(event));
  (void)options_.dead_letter->Consume(std::move(item));
}

void ReorderBuffer::Push(const Event& event, const Sink& sink) {
  if (!Admit(event)) {
    QuarantineLate(Event(event));
    return;
  }
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ReleaseReady(sink);
}

void ReorderBuffer::Push(Event&& event, const Sink& sink) {
  if (!Admit(event)) {
    // Admit's late callback saw the event intact; only now does the
    // payload move into the quarantine item.
    QuarantineLate(std::move(event));
    return;
  }
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ReleaseReady(sink);
}

void ReorderBuffer::Flush(const Sink& sink) {
  while (!heap_.empty()) {
    last_released_ = heap_.front().t;
    sink(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    if (released_ctr_ != nullptr) released_ctr_->Inc();
  }
  watermark_ = last_released_;
  if (buffered_gauge_ != nullptr) {
    buffered_gauge_->Set(0.0);
    lag_gauge_->Set(0.0);
  }
}

void ReorderBuffer::Reset() {
  heap_.clear();
  max_seen_ = kTimeMin;
  last_released_ = kTimeMin;
  watermark_ = kTimeMin;
  num_reordered_ = 0;
  num_dropped_ = 0;
  if (buffered_gauge_ != nullptr) {
    buffered_gauge_->Set(0.0);
    lag_gauge_->Set(0.0);
  }
}

void ReorderBuffer::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kReorderBuffer);
  w.U64(heap_.size());
  for (const Event& e : heap_) w.WriteEvent(e);
  w.I64(max_seen_);
  w.I64(last_released_);
  w.I64(watermark_);
  w.I64(num_reordered_);
  w.I64(num_dropped_);
  w.EndSection(cookie);
}

Status ReorderBuffer::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kReorderBuffer);
  const uint64_t n = r.U64();
  if (n > r.remaining()) {
    r.Fail(Status::ParseError("checkpoint: reorder heap size exceeds input"));
    return r.status();
  }
  heap_.clear();
  heap_.reserve(n);
  for (uint64_t i = 0; i < n && r.ok(); ++i) heap_.push_back(r.ReadEvent());
  if (r.ok() && !std::is_heap(heap_.begin(), heap_.end(), Later{})) {
    r.Fail(Status::ParseError(
        "checkpoint: reorder buffer array violates the heap invariant"));
    return r.status();
  }
  max_seen_ = r.I64();
  last_released_ = r.I64();
  watermark_ = r.I64();
  num_reordered_ = r.I64();
  num_dropped_ = r.I64();
  Status status = r.EndSection(end);
  if (status.ok() && buffered_gauge_ != nullptr) {
    buffered_gauge_->Set(static_cast<double>(heap_.size()));
    // Subtract in double: untrusted checkpoint values must not take the
    // signed-overflow UB path even when semantically nonsensical.
    lag_gauge_->Set(static_cast<double>(max_seen_) -
                    static_cast<double>(watermark_));
  }
  return status;
}

}  // namespace ooo
}  // namespace tpstream
