#include "workload/synthetic.h"

#include <algorithm>

namespace tpstream {

SyntheticGenerator::SyntheticGenerator(Options options)
    : options_(options), rng_(options.seed) {
  std::vector<Field> fields;
  fields.reserve(options_.num_streams);
  for (int i = 0; i < options_.num_streams; ++i) {
    fields.push_back(Field{"s" + std::to_string(i), ValueType::kBool});
  }
  schema_ = Schema(std::move(fields));

  streams_.resize(options_.num_streams);
  for (StreamState& s : streams_) {
    // Random initial offset so streams are not phase-locked.
    s.active = false;
    s.until = 1 + Draw(0, options_.max_gap);
  }
}

void SyntheticGenerator::SetRatios(std::vector<double> ratios) {
  max_ratio_ = 1.0;
  for (double r : ratios) max_ratio_ = std::max(max_ratio_, r);
  for (size_t i = 0; i < streams_.size() && i < ratios.size(); ++i) {
    streams_[i].ratio = std::max(ratios[i], 1e-9);
  }
}

Event SyntheticGenerator::Next() {
  Event event;
  Next(&event);
  return event;
}

void SyntheticGenerator::Next(Event* out) {
  ++t_;
  Tuple& payload = out->payload;
  payload.clear();
  payload.reserve(streams_.size());
  for (StreamState& s : streams_) {
    if (t_ >= s.until) {
      s.active = !s.active;
      if (s.active) {
        s.until = t_ + Draw(options_.min_duration, options_.max_duration);
      } else {
        const double stretch = max_ratio_ / s.ratio;
        const Duration gap = Draw(options_.min_gap, options_.max_gap);
        s.until = t_ + std::max<Duration>(
                           1, static_cast<Duration>(gap * stretch));
      }
    }
    payload.push_back(Value(s.active));
  }
  out->t = t_;
}

}  // namespace tpstream
