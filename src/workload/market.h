#ifndef TPSTREAM_WORKLOAD_MARKET_H_
#define TPSTREAM_WORKLOAD_MARKET_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/event.h"
#include "common/schema.h"

namespace tpstream {

/// Financial tick generator for the paper's "financial applications"
/// domain (Section 1): per-second quotes for a set of instruments, each
/// following a regime-switching random walk. Regimes (calm, rally,
/// selloff, volatile) last tens of seconds to minutes and produce exactly
/// the long-lasting situations temporal queries look for — sustained
/// rallies, drawdown phases, volume bursts.
///
/// Schema: symbol:int, price:double, ret:double (one-tick return, %),
/// volume:int.
class MarketDataGenerator {
 public:
  struct Options {
    int num_symbols = 20;
    uint64_t seed = 20180326;
  };

  explicit MarketDataGenerator(Options options);

  const Schema& schema() const { return schema_; }
  static constexpr int kSymbol = 0;
  static constexpr int kPrice = 1;
  static constexpr int kReturn = 2;
  static constexpr int kVolume = 3;

  /// Next quote; symbols report round-robin, one tick per full round.
  Event Next();

  TimePoint now() const { return t_; }

 private:
  enum class Regime : uint8_t { kCalm, kRally, kSelloff, kVolatile };

  struct Instrument {
    double price = 100.0;
    Regime regime = Regime::kCalm;
    int regime_left = 0;
  };

  void AdvanceRegime(Instrument* instrument);

  Options options_;
  Schema schema_;
  std::mt19937_64 rng_;
  std::vector<Instrument> instruments_;
  TimePoint t_ = 0;
  int next_symbol_ = 0;
};

}  // namespace tpstream

#endif  // TPSTREAM_WORKLOAD_MARKET_H_
