#include "workload/market.h"

#include <algorithm>
#include <cmath>

namespace tpstream {

MarketDataGenerator::MarketDataGenerator(Options options)
    : options_(options), rng_(options.seed) {
  schema_ = Schema({
      Field{"symbol", ValueType::kInt},
      Field{"price", ValueType::kDouble},
      Field{"ret", ValueType::kDouble},
      Field{"volume", ValueType::kInt},
  });
  instruments_.resize(options_.num_symbols);
  std::uniform_real_distribution<double> price0(20.0, 500.0);
  for (Instrument& instrument : instruments_) {
    instrument.price = price0(rng_);
    AdvanceRegime(&instrument);
  }
}

void MarketDataGenerator::AdvanceRegime(Instrument* instrument) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double p = uni(rng_);
  if (p < 0.70) {
    instrument->regime = Regime::kCalm;
  } else if (p < 0.82) {
    instrument->regime = Regime::kRally;
  } else if (p < 0.94) {
    instrument->regime = Regime::kSelloff;
  } else {
    instrument->regime = Regime::kVolatile;
  }
  std::uniform_int_distribution<int> len(
      instrument->regime == Regime::kCalm ? 60 : 20,
      instrument->regime == Regime::kCalm ? 300 : 90);
  instrument->regime_left = len(rng_);
}

Event MarketDataGenerator::Next() {
  if (next_symbol_ == 0) ++t_;
  Instrument& instrument = instruments_[next_symbol_];

  std::normal_distribution<double> noise(0.0, 0.02);
  double drift = 0.0;
  double vol = 1.0;
  double volume_scale = 1.0;
  switch (instrument.regime) {
    case Regime::kCalm:
      break;
    case Regime::kRally:
      drift = 0.08;
      volume_scale = 3.0;
      break;
    case Regime::kSelloff:
      drift = -0.10;
      volume_scale = 4.0;
      break;
    case Regime::kVolatile:
      vol = 6.0;
      volume_scale = 5.0;
      break;
  }
  const double ret = drift + vol * noise(rng_);
  instrument.price = std::max(0.01, instrument.price * (1.0 + ret / 100.0));
  std::poisson_distribution<int> volume(80.0 * volume_scale);

  Tuple payload;
  payload.reserve(4);
  payload.push_back(Value(static_cast<int64_t>(next_symbol_)));
  payload.push_back(Value(instrument.price));
  payload.push_back(Value(ret));
  payload.push_back(Value(static_cast<int64_t>(volume(rng_))));

  if (--instrument.regime_left <= 0) AdvanceRegime(&instrument);
  next_symbol_ = (next_symbol_ + 1) % options_.num_symbols;
  return Event(std::move(payload), t_);
}

}  // namespace tpstream
