#ifndef TPSTREAM_WORKLOAD_INTERVAL_SOURCE_H_
#define TPSTREAM_WORKLOAD_INTERVAL_SOURCE_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/situation.h"
#include "common/time.h"

namespace tpstream {

/// Generates finished situation streams directly (bypassing derivation),
/// merged in end-timestamp order — the input format of interval operators
/// like ISEQ and of the matcher-level experiments (Sections 6.3.1, 6.4.1).
/// Per stream, situations of duration U[min_duration_i, max_duration_i]
/// alternate with gaps of U[min_gap, max_gap].
class RandomSituationGenerator {
 public:
  struct StreamOptions {
    Duration min_duration = 10;
    Duration max_duration = 100;
    Duration min_gap = 10;
    Duration max_gap = 50;
  };

  RandomSituationGenerator(std::vector<StreamOptions> streams, uint64_t seed);

  /// The globally next-finishing situation across all streams.
  SymbolSituation Next();

 private:
  struct State {
    StreamOptions options;
    Situation pending;
  };

  void Refill(int stream);

  std::mt19937_64 rng_;
  std::vector<State> states_;
};

}  // namespace tpstream

#endif  // TPSTREAM_WORKLOAD_INTERVAL_SOURCE_H_
