#ifndef TPSTREAM_WORKLOAD_SYNTHETIC_H_
#define TPSTREAM_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/event.h"
#include "common/schema.h"

namespace tpstream {

/// The paper's random event generator (Section 6.1): an event stream with
/// k boolean attributes, each representing one situation stream. Per
/// attribute, situation phases (attribute true) alternate with gaps
/// (false); durations and gaps are drawn uniformly from configurable
/// ranges (paper defaults: 10-100 s situations, 10-50 s gaps). Events are
/// emitted at 1 Hz, i.e. one event per tick carrying all attributes.
///
/// Occurrence ratios (Section 6.4.2) scale how often situations of each
/// stream occur: a stream with ratio r relative to the maximum has its
/// gaps stretched by max_ratio / r, making its situations proportionally
/// rarer. Ratios can change mid-stream to create workload shifts.
class SyntheticGenerator {
 public:
  struct Options {
    int num_streams = 3;
    Duration min_duration = 10;
    Duration max_duration = 100;
    Duration min_gap = 10;
    Duration max_gap = 50;
    uint64_t seed = 42;
  };

  explicit SyntheticGenerator(Options options);

  /// Schema: one bool field per stream, named "s0", "s1", ...
  const Schema& schema() const { return schema_; }

  /// Next event (timestamps are consecutive ticks starting at 1).
  Event Next();

  /// Scratch-reuse variant: writes the next event into `*out`, reusing
  /// its payload storage (allocation-free once the payload capacity has
  /// been established). Equivalent to `*out = Next()`.
  void Next(Event* out);

  /// Sets per-stream occurrence ratios (all 1 initially). Takes effect at
  /// each stream's next phase change.
  void SetRatios(std::vector<double> ratios);

  TimePoint now() const { return t_; }

 private:
  struct StreamState {
    bool active = false;
    TimePoint until = 0;  // first tick with the next phase
    double ratio = 1.0;
  };

  Duration Draw(Duration lo, Duration hi) {
    return std::uniform_int_distribution<Duration>(lo, hi)(rng_);
  }

  Options options_;
  Schema schema_;
  std::mt19937_64 rng_;
  std::vector<StreamState> streams_;
  double max_ratio_ = 1.0;
  TimePoint t_ = 0;
};

}  // namespace tpstream

#endif  // TPSTREAM_WORKLOAD_SYNTHETIC_H_
