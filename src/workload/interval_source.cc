#include "workload/interval_source.h"

namespace tpstream {

RandomSituationGenerator::RandomSituationGenerator(
    std::vector<StreamOptions> streams, uint64_t seed)
    : rng_(seed) {
  states_.reserve(streams.size());
  for (const StreamOptions& opts : streams) {
    State state;
    state.options = opts;
    state.pending = Situation({}, 0, 0);
    states_.push_back(state);
  }
  for (size_t i = 0; i < states_.size(); ++i) {
    // Random initial offset, then the first situation.
    states_[i].pending.te = std::uniform_int_distribution<TimePoint>(
        0, states_[i].options.max_gap)(rng_);
    Refill(static_cast<int>(i));
  }
}

void RandomSituationGenerator::Refill(int stream) {
  State& state = states_[stream];
  const StreamOptions& o = state.options;
  const Duration gap =
      std::uniform_int_distribution<Duration>(o.min_gap, o.max_gap)(rng_);
  const Duration len = std::uniform_int_distribution<Duration>(
      o.min_duration, o.max_duration)(rng_);
  const TimePoint ts = state.pending.te + gap;
  state.pending = Situation({}, ts, ts + len);
}

SymbolSituation RandomSituationGenerator::Next() {
  int best = 0;
  for (int i = 1; i < static_cast<int>(states_.size()); ++i) {
    if (states_[i].pending.te < states_[best].pending.te) best = i;
  }
  SymbolSituation out{best, states_[best].pending};
  Refill(best);
  return out;
}

}  // namespace tpstream
