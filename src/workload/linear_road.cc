#include "workload/linear_road.h"

#include <algorithm>
#include <cmath>

namespace tpstream {

namespace {

// Simple conversions; the simulator works in mph for speed and m/s^2 for
// acceleration, like the paper's query thresholds.
constexpr double kMpsToMph = 2.23694;

}  // namespace

LinearRoadGenerator::LinearRoadGenerator(Options options)
    : options_(options), rng_(options.seed) {
  schema_ = Schema({
      Field{"car_id", ValueType::kInt},
      Field{"speed", ValueType::kDouble},
      Field{"accel", ValueType::kDouble},
      Field{"position", ValueType::kDouble},
      Field{"lane", ValueType::kInt},
  });
  cars_.resize(options_.num_cars);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_real_distribution<double> speed0(45.0, 65.0);
  std::uniform_int_distribution<int> lane(0, 3);
  for (Car& car : cars_) {
    car.aggressive = uni(rng_) < options_.aggressive_fraction;
    car.speed = speed0(rng_);
    car.position = uni(rng_) * 100000.0;
    car.lane = lane(rng_);
    EnterPhase(&car, Phase::kCruise);
  }
}

void LinearRoadGenerator::EnterPhase(Car* car, Phase phase) {
  std::uniform_int_distribution<int> cruise_len(20, 120);
  std::uniform_int_distribution<int> accel_len(3, 9);
  std::uniform_int_distribution<int> speed_len(6, 45);
  std::uniform_int_distribution<int> brake_len(3, 7);
  car->phase = phase;
  switch (phase) {
    case Phase::kCruise:
      car->phase_left = cruise_len(rng_);
      break;
    case Phase::kAccelerate:
      car->phase_left = accel_len(rng_);
      break;
    case Phase::kSpeeding:
      car->phase_left = speed_len(rng_);
      break;
    case Phase::kBrake:
      car->phase_left = brake_len(rng_);
      break;
  }
}

void LinearRoadGenerator::AdvanceCar(Car* car) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, 0.6);

  switch (car->phase) {
    case Phase::kCruise:
      // Mild corrections toward ~58 mph.
      car->accel = 0.05 * (58.0 - car->speed) + noise(rng_);
      break;
    case Phase::kAccelerate: {
      std::uniform_real_distribution<double> a(8.5, 12.0);
      car->accel = a(rng_);
      break;
    }
    case Phase::kSpeeding:
      car->accel = 0.08 * (80.0 - car->speed) + noise(rng_);
      break;
    case Phase::kBrake: {
      std::uniform_real_distribution<double> a(-13.0, -9.5);
      car->accel = a(rng_);
      break;
    }
  }

  car->speed = std::max(0.0, car->speed + car->accel * kMpsToMph * 0.1);
  car->position += car->speed / kMpsToMph;

  if (--car->phase_left <= 0) {
    const double p = uni(rng_);
    switch (car->phase) {
      case Phase::kCruise: {
        // Aggressive drivers frequently chain accelerate -> speeding ->
        // brake; others mostly keep cruising.
        const double burst = car->aggressive ? 0.5 : 0.03;
        EnterPhase(car, p < burst ? Phase::kAccelerate : Phase::kCruise);
        break;
      }
      case Phase::kAccelerate:
        EnterPhase(car, p < 0.85 ? Phase::kSpeeding : Phase::kCruise);
        break;
      case Phase::kSpeeding:
        EnterPhase(car, p < (car->aggressive ? 0.8 : 0.4) ? Phase::kBrake
                                                          : Phase::kCruise);
        break;
      case Phase::kBrake:
        EnterPhase(car, Phase::kCruise);
        break;
    }
  }
}

Event LinearRoadGenerator::Next() {
  Event event;
  Next(&event);
  return event;
}

void LinearRoadGenerator::Next(Event* out) {
  if (next_car_ == 0) ++t_;
  Car& car = cars_[next_car_];
  AdvanceCar(&car);

  Tuple& payload = out->payload;
  payload.clear();
  payload.reserve(5);
  payload.push_back(Value(static_cast<int64_t>(next_car_)));
  payload.push_back(Value(car.speed));
  payload.push_back(Value(car.accel));
  payload.push_back(Value(car.position));
  payload.push_back(Value(static_cast<int64_t>(car.lane)));

  next_car_ = (next_car_ + 1) % options_.num_cars;
  out->t = t_;
}

double LinearRoadGenerator::SampleFieldPercentile(const Options& options,
                                                  int field,
                                                  double percentile,
                                                  int sample_size) {
  LinearRoadGenerator gen(options);
  std::vector<double> values;
  values.reserve(sample_size);
  for (int i = 0; i < sample_size; ++i) {
    values.push_back(gen.Next().payload[field].ToDouble());
  }
  std::sort(values.begin(), values.end());
  const double rank = percentile / 100.0 * (values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace tpstream
