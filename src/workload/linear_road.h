#ifndef TPSTREAM_WORKLOAD_LINEAR_ROAD_H_
#define TPSTREAM_WORKLOAD_LINEAR_ROAD_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/event.h"
#include "common/schema.h"

namespace tpstream {

/// Offline substitute for the Linear Road Benchmark trip data used in the
/// paper's evaluation (Section 6.1): a deterministic car-following
/// simulator for one expressway. Every active car reports its state once
/// per second: (car_id, speed [mph], accel [m/s^2], position [m], lane).
///
/// Cars follow a phase model that produces the situations the aggressive-
/// driver query looks for: cruising with mild noise, occasional sharp
/// accelerations into a speeding phase, and hard braking out of it. A
/// configurable fraction of drivers is "aggressive" and chains these
/// phases the way the pattern of Listing 1 expects.
class LinearRoadGenerator {
 public:
  struct Options {
    int num_cars = 1000;
    double aggressive_fraction = 0.05;
    uint64_t seed = 7;
  };

  explicit LinearRoadGenerator(Options options);

  /// Schema: car_id:int, speed:double, accel:double, position:double,
  /// lane:int.
  const Schema& schema() const { return schema_; }
  static constexpr int kCarId = 0;
  static constexpr int kSpeed = 1;
  static constexpr int kAccel = 2;
  static constexpr int kPosition = 3;
  static constexpr int kLane = 4;

  /// Next report. Cars emit round-robin; all cars report once per tick
  /// (the per-car streams are separated by PARTITION BY car_id).
  Event Next();

  /// Scratch-reuse variant: writes the next report into `*out`, reusing
  /// its payload storage (allocation-free once the payload capacity has
  /// been established). Equivalent to `*out = Next()`.
  void Next(Event* out);

  TimePoint now() const { return t_; }

  /// Empirical percentile of a field over `sample_size` generated events
  /// (used to calibrate query thresholds as in the paper: p99 speed, p90
  /// accel, p10 accel). Generates from an independent generator with the
  /// same options; `percentile` in [0, 100].
  static double SampleFieldPercentile(const Options& options, int field,
                                      double percentile, int sample_size);

 private:
  enum class Phase : uint8_t { kCruise, kAccelerate, kSpeeding, kBrake };

  struct Car {
    Phase phase = Phase::kCruise;
    int phase_left = 0;  // seconds remaining in the phase
    double speed = 60.0;
    double accel = 0.0;
    double position = 0.0;
    int lane = 0;
    bool aggressive = false;
  };

  void AdvanceCar(Car* car);
  void EnterPhase(Car* car, Phase phase);

  Options options_;
  Schema schema_;
  std::mt19937_64 rng_;
  std::vector<Car> cars_;
  TimePoint t_ = 0;
  int next_car_ = 0;
};

}  // namespace tpstream

#endif  // TPSTREAM_WORKLOAD_LINEAR_ROAD_H_
