#ifndef TPSTREAM_COMMON_VALUE_H_
#define TPSTREAM_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace tpstream {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
};

/// Returns a human-readable name ("int", "double", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed attribute value carried in event payloads.
///
/// Values support the usual comparison and arithmetic operations with
/// numeric widening (int op double -> double). Operations on incompatible
/// types yield a null Value, which every predicate treats as false; this
/// keeps the hot path exception-free.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked via std::get, which terminates in release builds on misuse).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double; 0.0 for non-numeric values.
  double ToDouble() const;

  /// Truthiness used by predicate evaluation: bool -> itself,
  /// numeric -> != 0, null/string -> false.
  bool Truthy() const;

  /// Three-way comparison. Returns 0 on equal, <0 / >0 for ordering.
  /// Comparing incomparable types (e.g. string vs int) or nulls returns
  /// kIncomparable.
  static constexpr int kIncomparable = 2;
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> data_;
};

/// Hash of the underlying typed value, allocation-free (strings are
/// hashed through a string view, never materialized). Sits on the
/// per-event partition-routing hot path of the parallel operator. Equal
/// values of equal type hash equally; numerically equal values of
/// different types (Value(2) vs Value(2.0)) need not collide.
struct ValueHash {
  size_t operator()(const Value& value) const;
};

/// Integer arithmetic used by every predicate evaluator (the expression
/// interpreter and the bytecode VM must agree bit-for-bit, so both call
/// these). Two's-complement wraparound on overflow — well-defined, unlike
/// the signed built-ins.
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}
inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}
inline int64_t WrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}
inline int64_t WrapNeg(int64_t a) {
  return static_cast<int64_t>(0u - static_cast<uint64_t>(a));
}

/// Arithmetic with numeric widening; null on type mismatch.
Value Add(const Value& a, const Value& b);
Value Sub(const Value& a, const Value& b);
Value Mul(const Value& a, const Value& b);
Value Div(const Value& a, const Value& b);

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_VALUE_H_
