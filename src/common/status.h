#ifndef TPSTREAM_COMMON_STATUS_H_
#define TPSTREAM_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace tpstream {

/// Error category for Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kTypeError = 3,
  kNotFound = 4,
  kInternal = 5,
  /// A hard resource cap was hit (overload protection, Degradation
  /// contract in docs/architecture.md): dead-letter sink at capacity,
  /// CSV quarantine budget exceeded, and every other cap-enforcement
  /// path. Distinct from kInternal — the input was valid, the system
  /// chose to degrade rather than grow without bound.
  kResourceExhausted = 6,
};

/// Stable name of a StatusCode (diagnostics, counters, log lines).
inline const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

/// Lightweight success/error result, modeled after the Status idiom used by
/// Arrow and Google codebases. The library avoids exceptions on hot paths;
/// setup-time APIs (query parsing, compilation, validation) return Status
/// or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse
  /// (`return value;` / `return Status::ParseError(...)`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_STATUS_H_
