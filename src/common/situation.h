#ifndef TPSTREAM_COMMON_SITUATION_H_
#define TPSTREAM_COMMON_SITUATION_H_

#include <string>
#include <utility>

#include "common/event.h"
#include "common/time.h"

namespace tpstream {

/// A derived phase lasting a period of time (Definition 5). The payload
/// carries the aggregates computed over the underlying event subsequence.
/// The validity interval [ts, te) is half-open; `te` is the first instant
/// at which the situation no longer holds.
///
/// A situation with `te == kTimeUnknown` is *ongoing*: its start is known
/// but its end is not. Ongoing situations appear only inside the
/// low-latency matcher (Section 5.3); all derived situation streams
/// delivered to clients contain finished situations only.
struct Situation {
  Tuple payload;
  TimePoint ts = 0;
  TimePoint te = kTimeUnknown;

  Situation() = default;
  Situation(Tuple p, TimePoint start, TimePoint end)
      : payload(std::move(p)), ts(start), te(end) {}

  bool ongoing() const { return te == kTimeUnknown; }
  Duration duration() const { return te - ts; }

  std::string ToString() const {
    return "[" + std::to_string(ts) + ", " +
           (ongoing() ? std::string("?") : std::to_string(te)) + ")";
  }
};

/// A situation tagged with the index of the situation stream (pattern
/// symbol) it belongs to.
struct SymbolSituation {
  int symbol = 0;
  Situation situation;
};

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_SITUATION_H_
