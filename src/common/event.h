#ifndef TPSTREAM_COMMON_EVENT_H_
#define TPSTREAM_COMMON_EVENT_H_

#include <utility>
#include <vector>

#include "common/time.h"
#include "common/value.h"

namespace tpstream {

/// Event payload: attribute values positionally matching a Schema.
using Tuple = std::vector<Value>;

/// An instantaneous notification (Definition 4): payload valid at exactly
/// one point in time. Event streams are ordered by `t`.
struct Event {
  Tuple payload;
  TimePoint t = 0;

  Event() = default;
  Event(Tuple p, TimePoint time) : payload(std::move(p)), t(time) {}
};

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_EVENT_H_
