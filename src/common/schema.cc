#include "common/schema.h"

#include <sstream>
#include <utility>

namespace tpstream {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  index_.reserve(fields_.size());
  for (int i = 0; i < static_cast<int>(fields_.size()); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ": " << ValueTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace tpstream
