#ifndef TPSTREAM_COMMON_TIME_H_
#define TPSTREAM_COMMON_TIME_H_

#include <cstdint>
#include <limits>

namespace tpstream {

/// Discrete, totally ordered time domain (Definition 4/5 of the paper).
/// The unit is an application-defined tick; the benchmarks interpret one
/// tick as one second to match the paper's 1 Hz event sources.
using TimePoint = int64_t;

/// Length of a time span, in ticks.
using Duration = int64_t;

/// Smallest representable time point; used as an open lower bound in
/// range queries ("-infinity").
inline constexpr TimePoint kTimeMin = std::numeric_limits<TimePoint>::min();

/// Largest representable time point; used as an open upper bound in range
/// queries ("+infinity") and as the temporary end timestamp of situations
/// that are still ongoing.
inline constexpr TimePoint kTimeMax = std::numeric_limits<TimePoint>::max();

/// Sentinel for "not yet known" end timestamps of ongoing situations.
inline constexpr TimePoint kTimeUnknown = kTimeMax;

/// Duration constraint tau = [min, max] on the length `te - ts` of a
/// situation (Definition 7). The default admits every situation.
struct DurationConstraint {
  Duration min = 1;
  Duration max = std::numeric_limits<Duration>::max();

  /// True if `d` lies within [min, max].
  constexpr bool Contains(Duration d) const { return d >= min && d <= max; }

  /// True if a maximum duration was specified (affects low-latency
  /// matching, see Section 5.3.2 of the paper).
  constexpr bool has_max() const {
    return max != std::numeric_limits<Duration>::max();
  }

  /// True if a minimum duration beyond the trivial one was specified.
  constexpr bool has_min() const { return min > 1; }
};

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_TIME_H_
