#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>
#include <string_view>

namespace tpstream {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kBool:
      return AsBool();
    case ValueType::kInt:
      return AsInt() != 0;
    case ValueType::kDouble:
      return AsDouble() != 0.0;
    default:
      return false;
  }
}

int Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return kIncomparable;
  if (a.is_numeric() && b.is_numeric()) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      const int64_t x = a.AsInt();
      const int64_t y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.ToDouble();
    const double y = b.ToDouble();
    if (std::isnan(x) || std::isnan(y)) return kIncomparable;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() != b.type()) return kIncomparable;
  switch (a.type()) {
    case ValueType::kBool: {
      const int x = a.AsBool() ? 1 : 0;
      const int y = b.AsBool() ? 1 : 0;
      return x - y;
    }
    case ValueType::kString: {
      const int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return kIncomparable;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

size_t ValueHash::operator()(const Value& value) const {
  switch (value.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt:
      return std::hash<int64_t>{}(value.AsInt());
    case ValueType::kDouble:
      // Normalize -0.0 so values that compare equal hash equally.
      return std::hash<double>{}(value.AsDouble() == 0.0 ? 0.0
                                                         : value.AsDouble());
    case ValueType::kBool:
      return std::hash<bool>{}(value.AsBool());
    case ValueType::kString:
      return std::hash<std::string_view>{}(value.AsString());
  }
  return 0;
}

namespace {

// Applies `op` with numeric widening. Integer op integer stays integral
// except for division, which always widens to double.
template <typename IntOp, typename DoubleOp>
Value NumericOp(const Value& a, const Value& b, IntOp int_op,
                DoubleOp double_op) {
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    return int_op(a.AsInt(), b.AsInt());
  }
  return double_op(a.ToDouble(), b.ToDouble());
}

}  // namespace

Value Add(const Value& a, const Value& b) {
  return NumericOp(
      a, b, [](int64_t x, int64_t y) { return Value(WrapAdd(x, y)); },
      [](double x, double y) { return Value(x + y); });
}

Value Sub(const Value& a, const Value& b) {
  return NumericOp(
      a, b, [](int64_t x, int64_t y) { return Value(WrapSub(x, y)); },
      [](double x, double y) { return Value(x - y); });
}

Value Mul(const Value& a, const Value& b) {
  return NumericOp(
      a, b, [](int64_t x, int64_t y) { return Value(WrapMul(x, y)); },
      [](double x, double y) { return Value(x * y); });
}

Value Div(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  const double y = b.ToDouble();
  if (y == 0.0) return Value::Null();
  return Value(a.ToDouble() / y);
}

}  // namespace tpstream
