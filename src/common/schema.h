#ifndef TPSTREAM_COMMON_SCHEMA_H_
#define TPSTREAM_COMMON_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace tpstream {

/// A named, typed attribute of an event payload.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Describes the attributes of the tuples in a stream. Field positions are
/// stable, so expressions can be compiled to index-based accesses.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Index of field `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  const Field& field(int i) const { return fields_[i]; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const std::vector<Field>& fields() const { return fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace tpstream

#endif  // TPSTREAM_COMMON_SCHEMA_H_
