#ifndef TPSTREAM_BASELINES_ISEQ_H_
#define TPSTREAM_BASELINES_ISEQ_H_

#include <memory>
#include <vector>

#include "algebra/pattern.h"
#include "derive/deriver.h"
#include "matcher/match.h"
#include "matcher/situation_buffer.h"

namespace tpstream {

/// Reimplementation of the ISEQ operator (Li et al., DEBS'11 [20]) from
/// the description in the paper, serving as the state-of-the-art
/// comparator for temporal pattern matching.
///
/// ISEQ consumes interval events (situations) ordered by *end* timestamp
/// and detects endpoint-order patterns. Differences to TPStream that the
/// paper's experiments exercise:
///  - matches are concluded only at end timestamps (no early results,
///    Section 6.3);
///  - the join exploits only the end-timestamp order: candidates are
///    located by binary search on te, while all start-timestamp conditions
///    are verified by filtering each candidate (Section 6.2.2 explains the
///    resulting gap on the disconnected pattern).
class IseqMatcher {
 public:
  IseqMatcher(TemporalPattern pattern, Duration window, MatchCallback cb);

  void SetEvaluationOrder(const std::vector<int>& permutation);
  void Update(const std::vector<SymbolSituation>& finished, TimePoint now);

  size_t BufferedCount() const;
  int64_t num_matches() const { return num_matches_; }
  const TemporalPattern& pattern() const { return pattern_; }

 private:
  void Step(size_t step_index, TimePoint now);
  bool CheckAgainstBound(int symbol) const;

  TemporalPattern pattern_;
  Duration window_;
  MatchCallback callback_;
  std::vector<SituationBuffer> buffers_;
  std::vector<int> order_;
  std::vector<const Situation*> working_set_;
  int64_t num_matches_ = 0;
};

/// ISEQ packaged like the TPStream operator: derives situation streams
/// from point events with the shared deriver component (as in the paper's
/// experimental setup) and feeds them to the interval matcher.
class IseqOperator {
 public:
  IseqOperator(std::vector<SituationDefinition> definitions,
               TemporalPattern pattern, Duration window, MatchCallback cb);

  void Push(const Event& event);

  int64_t num_matches() const { return matcher_.num_matches(); }
  size_t BufferedCount() const { return matcher_.BufferedCount(); }

 private:
  Deriver deriver_;
  IseqMatcher matcher_;
};

}  // namespace tpstream

#endif  // TPSTREAM_BASELINES_ISEQ_H_
