#include "baselines/strawman.h"

namespace tpstream {

TwoPhaseMatcher::TwoPhaseMatcher(std::vector<SituationDefinition> definitions,
                                 TemporalPattern pattern, Duration window,
                                 MatchCallback callback, Options options)
    : pattern_(std::move(pattern)),
      window_(window),
      callback_(std::move(callback)),
      options_(options),
      buffers_(definitions.size()),
      working_set_(definitions.size(), nullptr) {
  derivers_.reserve(definitions.size());
  for (size_t i = 0; i < definitions.size(); ++i) {
    const SituationDefinition& def = definitions[i];
    // Pattern !S S+ !S: the bracketing non-matching events pin down the
    // interval boundaries (half-open end at the first non-matching event).
    cep::CepPattern cp;
    cp.steps.push_back(cep::PatternStep{"pre", Not(def.predicate), false, {}});
    cp.steps.push_back(
        cep::PatternStep{"body", def.predicate, true, def.aggregates});
    cp.steps.push_back(
        cep::PatternStep{"post", Not(def.predicate), false, {}});
    const int symbol = static_cast<int>(i);
    const DurationConstraint dur = def.duration;
    derivers_.push_back(std::make_unique<cep::NfaEngine>(
        std::move(cp), [this, symbol, dur](const cep::CepMatch& m) {
          const TimePoint ts = m.step_spans[1].first;
          const TimePoint te = m.step_spans[2].first;
          if (!dur.Contains(te - ts)) return;
          OnSituation(symbol, Situation(m.step_aggregates[1], ts, te),
                      m.detected_at);
        }));
  }
}

void TwoPhaseMatcher::Push(const Event& event) {
  if (options_.retain_events) {
    retained_events_.push_back(event);
    while (!retained_events_.empty() &&
           retained_events_.front().t < event.t - window_) {
      retained_events_.pop_front();
    }
  }
  for (auto& deriver : derivers_) deriver->Push(event);
}

void TwoPhaseMatcher::OnSituation(int symbol, const Situation& situation,
                                  TimePoint now) {
  // Linear window purge on every arrival, as a point-based engine would
  // re-evaluate its window views.
  for (auto& buf : buffers_) {
    while (!buf.empty() && buf.front().ts < now - window_) buf.pop_front();
  }
  buffers_[symbol].push_back(situation);
  working_set_.assign(working_set_.size(), nullptr);
  working_set_[symbol] = &buffers_[symbol].back();
  Join(0, now);
}

void TwoPhaseMatcher::Join(size_t symbol_index, TimePoint now) {
  if (symbol_index == buffers_.size()) {
    // Full nested-loop verification of every temporal constraint.
    TimePoint min_ts = kTimeMax;
    TimePoint max_te = kTimeMin;
    for (const Situation* s : working_set_) {
      min_ts = std::min(min_ts, s->ts);
      max_te = std::max(max_te, s->te);
    }
    if (max_te - min_ts > window_) return;
    for (const TemporalConstraint& c : pattern_.constraints()) {
      bool any = false;
      c.relations.ForEach([&](Relation r) {
        any = any || Holds(r, *working_set_[c.a], *working_set_[c.b]);
      });
      if (!any) return;
    }
    ++num_matches_;
    if (callback_) {
      Match match;
      match.detected_at = now;
      for (const Situation* s : working_set_) match.config.push_back(*s);
      callback_(match);
    }
    return;
  }
  if (working_set_[symbol_index] != nullptr) {
    Join(symbol_index + 1, now);
    return;
  }
  for (const Situation& s : buffers_[symbol_index]) {
    working_set_[symbol_index] = &s;
    Join(symbol_index + 1, now);
  }
  working_set_[symbol_index] = nullptr;
}

size_t TwoPhaseMatcher::BufferedCount() const {
  size_t total = retained_events_.size();
  for (const auto& buf : buffers_) total += buf.size();
  for (const auto& deriver : derivers_) total += deriver->active_runs();
  return total;
}

SingleRunMatcher::SingleRunMatcher(cep::CepPattern pattern,
                                   cep::NfaEngine::Callback cb)
    : engine_(std::move(pattern), std::move(cb)) {}

}  // namespace tpstream
