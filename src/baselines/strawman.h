#ifndef TPSTREAM_BASELINES_STRAWMAN_H_
#define TPSTREAM_BASELINES_STRAWMAN_H_

#include <deque>
#include <memory>
#include <vector>

#include "algebra/pattern.h"
#include "cep/nfa.h"
#include "derive/definition.h"
#include "matcher/match.h"

namespace tpstream {

/// Straw man 1 ("Esper-1" in the paper): temporal pattern matching built
/// from the primitives of a point-based CEP system, in two phases.
///
/// Phase 1 deploys one sequential pattern matcher per defined situation
/// (pattern !S S+ !S on the event stream) that computes the situation's
/// interval and aggregates. Phase 2 buffers the resulting interval events
/// per symbol inside the window and joins them with nested loops,
/// verifying the temporal relations as ordinary predicates on start/end
/// timestamps — a point-based system has no interval-order index, so every
/// buffered combination is enumerated. Matches are concluded only once
/// all situations have ended.
///
/// To mirror the window retention of the modeled systems (which buffer raw
/// events, not compact situations; Section 6.2.2), the matcher optionally
/// keeps every input event inside the window alive.
class TwoPhaseMatcher {
 public:
  struct Options {
    bool retain_events;
    Options() : retain_events(true) {}
  };

  TwoPhaseMatcher(std::vector<SituationDefinition> definitions,
                  TemporalPattern pattern, Duration window,
                  MatchCallback callback, Options options = Options());

  void Push(const Event& event);

  int64_t num_matches() const { return num_matches_; }
  /// Buffered objects (situations + retained raw events + NFA runs):
  /// the memory proxy for Section 6.2.2.
  size_t BufferedCount() const;

 private:
  void OnSituation(int symbol, const Situation& situation, TimePoint now);
  void Join(size_t symbol_index, TimePoint now);

  TemporalPattern pattern_;
  Duration window_;
  MatchCallback callback_;
  Options options_;

  std::vector<std::unique_ptr<cep::NfaEngine>> derivers_;
  std::vector<std::deque<Situation>> buffers_;
  std::deque<Event> retained_events_;
  std::vector<const Situation*> working_set_;
  int64_t num_matches_ = 0;
};

/// Straw man 2 ("Esper-2" / SASE+ in the paper): the temporal pattern is
/// expressed as a *single* event-granularity sequence with conjunctive
/// conditions (e.g. "A overlaps B" as A (A AND B)+ B). Early results come
/// for free (the pattern simply ends at the earliest conclusive event),
/// but aggregates and duration constraints are lost (Section 1).
///
/// The caller provides the event-level encoding of the temporal pattern;
/// this class is a thin veneer over the NFA engine that counts matches
/// like the other operators.
class SingleRunMatcher {
 public:
  SingleRunMatcher(cep::CepPattern pattern, cep::NfaEngine::Callback cb);

  void Push(const Event& event) { engine_.Push(event); }

  int64_t num_matches() const { return engine_.num_matches(); }
  size_t BufferedCount() const { return engine_.active_runs(); }

 private:
  cep::NfaEngine engine_;
};

}  // namespace tpstream

#endif  // TPSTREAM_BASELINES_STRAWMAN_H_
