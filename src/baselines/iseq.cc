#include "baselines/iseq.h"

#include <numeric>

namespace tpstream {

IseqMatcher::IseqMatcher(TemporalPattern pattern, Duration window,
                         MatchCallback cb)
    : pattern_(std::move(pattern)),
      window_(window),
      callback_(std::move(cb)),
      buffers_(pattern_.num_symbols()),
      working_set_(pattern_.num_symbols(), nullptr) {
  order_.resize(pattern_.num_symbols());
  std::iota(order_.begin(), order_.end(), 0);
}

void IseqMatcher::SetEvaluationOrder(const std::vector<int>& permutation) {
  order_ = permutation;
}

void IseqMatcher::Update(const std::vector<SymbolSituation>& finished,
                         TimePoint now) {
  for (SituationBuffer& buf : buffers_) buf.PurgeBefore(now - window_);
  for (const SymbolSituation& ss : finished) {
    SituationBuffer& buf = buffers_[ss.symbol];
    buf.Append(ss.situation);
    working_set_.assign(working_set_.size(), nullptr);
    working_set_[ss.symbol] = &buf.Back();
    Step(0, now);
  }
}

bool IseqMatcher::CheckAgainstBound(int symbol) const {
  // Full predicate check of every constraint between `symbol` and the
  // already-bound symbols (ISEQ has no start-order index; start conditions
  // are verified per candidate).
  for (const TemporalConstraint& c : pattern_.constraints()) {
    int other = -1;
    if (c.a == symbol) {
      other = c.b;
    } else if (c.b == symbol) {
      other = c.a;
    } else {
      continue;
    }
    if (working_set_[other] == nullptr) continue;
    const Situation& sa = *working_set_[c.a];
    const Situation& sb = *working_set_[c.b];
    bool any = false;
    c.relations.ForEach([&](Relation r) { any = any || Holds(r, sa, sb); });
    if (!any) return false;
  }
  return true;
}

void IseqMatcher::Step(size_t step_index, TimePoint now) {
  if (step_index == order_.size()) {
    TimePoint min_ts = kTimeMax;
    TimePoint max_te = kTimeMin;
    for (const Situation* s : working_set_) {
      min_ts = std::min(min_ts, s->ts);
      max_te = std::max(max_te, s->te);
    }
    if (max_te - min_ts > window_) return;
    ++num_matches_;
    if (callback_) {
      Match match;
      match.detected_at = now;
      for (const Situation* s : working_set_) match.config.push_back(*s);
      callback_(match);
    }
    return;
  }
  const int symbol = order_[step_index];
  if (working_set_[symbol] != nullptr) {
    if (CheckAgainstBound(symbol)) Step(step_index + 1, now);
    return;
  }

  // Narrow candidates with binary search on the end timestamp only, then
  // filter each candidate against the full constraint predicates.
  const SituationBuffer& buf = buffers_[symbol];
  if (buf.empty()) return;
  IndexRange candidates{0, static_cast<uint32_t>(buf.size())};
  bool constrained = false;
  for (const TemporalConstraint& c : pattern_.constraints()) {
    const bool symbol_is_a = (c.a == symbol);
    const int other = symbol_is_a ? c.b : c.a;
    if ((!symbol_is_a && c.b != symbol) || working_set_[other] == nullptr) {
      continue;
    }
    IndexRanges te_union;
    c.relations.ForEach([&](Relation r) {
      const auto bounds = BoundsForCounterpart(r, *working_set_[other],
                                               /*fixed_is_a=*/!symbol_is_a);
      if (!bounds) return;
      te_union.Add(buf.FindTe(bounds->te_range));
    });
    // Collapse the union to one covering range: ISEQ tracks a single
    // scan interval per buffer.
    if (te_union.empty()) return;
    const IndexRange covering{te_union.ranges().front().lo,
                              te_union.ranges().back().hi};
    candidates = candidates.Intersect(covering);
    constrained = true;
    if (candidates.empty()) return;
  }
  (void)constrained;
  for (uint32_t i = candidates.lo; i < candidates.hi; ++i) {
    working_set_[symbol] = &buf.At(i);
    if (CheckAgainstBound(symbol)) Step(step_index + 1, now);
  }
  working_set_[symbol] = nullptr;
}

size_t IseqMatcher::BufferedCount() const {
  size_t total = 0;
  for (const SituationBuffer& b : buffers_) total += b.size();
  return total;
}

IseqOperator::IseqOperator(std::vector<SituationDefinition> definitions,
                           TemporalPattern pattern, Duration window,
                           MatchCallback cb)
    : deriver_(std::move(definitions), /*announce_starts=*/false),
      matcher_(std::move(pattern), window, std::move(cb)) {}

void IseqOperator::Push(const Event& event) {
  const Deriver::Update& update = deriver_.Process(event);
  if (!update.finished.empty()) {
    matcher_.Update(update.finished, event.t);
  }
}

}  // namespace tpstream
