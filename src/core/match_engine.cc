#include "core/match_engine.h"

#include <algorithm>

#include "algebra/detection.h"

namespace tpstream {

MatchEngine::MatchEngine(const QuerySpec* spec, const Deriver* deriver,
                         std::vector<int> deriver_slots, Options options,
                         OutputCallback output)
    : spec_(spec),
      deriver_(deriver),
      deriver_slots_(std::move(deriver_slots)),
      options_(std::move(options)),
      output_(std::move(output)) {
  auto on_match = [this](const Match& m) { OnMatch(m); };
  if (options_.low_latency) {
    // Duration constraints in *query symbol* order: the shared deriver
    // stores definitions in deduplicated order, so index through the
    // slot mapping (the identity for a standalone operator).
    const std::vector<DurationConstraint> shared = deriver_->durations();
    std::vector<DurationConstraint> durations;
    durations.reserve(deriver_slots_.size());
    for (int slot : deriver_slots_) durations.push_back(shared[slot]);
    DetectionAnalysis analysis(spec_->pattern, std::move(durations));
    ll_matcher_ = std::make_unique<LowLatencyMatcher>(
        spec_->pattern, std::move(analysis), spec_->window, on_match,
        options_.stats_alpha);
  } else {
    matcher_ = std::make_unique<Matcher>(spec_->pattern, spec_->window,
                                         on_match, options_.stats_alpha);
  }

  if (!options_.overload.unbounded()) {
    if (ll_matcher_) ll_matcher_->SetOverload(options_.overload);
    if (matcher_) matcher_->SetOverload(options_.overload);
  }

  if (options_.metrics != nullptr) {
    if (ll_matcher_) ll_matcher_->EnableMetrics(options_.metrics);
    if (matcher_) matcher_->EnableMetrics(options_.metrics);
    events_ctr_ = options_.metrics->GetCounter("operator.events");
    matches_ctr_ = options_.metrics->GetCounter("operator.matches");
    detection_latency_hist_ =
        options_.metrics->GetHistogram("matcher.detection_latency");
    stats_publisher_ = MatcherStatsPublisher(options_.metrics, spec_->pattern);
  }

  InstallInitialPlan();
}

void MatchEngine::InstallInitialPlan() {
  if (options_.fixed_order.has_value()) {
    if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*options_.fixed_order);
    if (matcher_) matcher_->SetEvaluationOrder(*options_.fixed_order);
  } else {
    // Install the cost-based initial plan (Table 3 selectivities).
    AdaptiveController::Options copts;
    copts.threshold = options_.reopt_threshold;
    copts.check_interval = options_.reopt_interval;
    copts.low_latency = options_.low_latency;
    copts.metrics = options_.metrics;
    copts.plan_cache = options_.plan_cache;
    controller_ = std::make_unique<AdaptiveController>(&spec_->pattern, copts);
    if (auto order = controller_->MaybeReoptimize(stats())) {
      if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*order);
      if (matcher_) matcher_->SetEvaluationOrder(*order);
    }
    if (!options_.adaptive) controller_.reset();
  }
}

void MatchEngine::Reset() {
  num_events_ = 0;
  num_matches_ = 0;
  if (ll_matcher_) ll_matcher_->Reset();
  if (matcher_) matcher_->Reset();
  // Rebuild the adaptive state exactly as construction would: fresh
  // controller (or none), initial cost-based plan re-installed on the
  // just-reset statistics.
  controller_.reset();
  InstallInitialPlan();
}

void MatchEngine::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kMatchEngine);
  w.I64(num_events_);
  w.I64(num_matches_);
  w.Bool(ll_matcher_ != nullptr);
  if (ll_matcher_) {
    ll_matcher_->Checkpoint(w);
  } else {
    matcher_->Checkpoint(w);
  }
  w.Bool(controller_ != nullptr);
  if (controller_) controller_->Checkpoint(w);
  w.EndSection(cookie);
}

Status MatchEngine::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kMatchEngine);
  const int64_t num_events = r.I64();
  const int64_t num_matches = r.I64();
  const bool low_latency = r.Bool();
  if (r.ok() && low_latency != (ll_matcher_ != nullptr)) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: matcher mode mismatch (low_latency option changed?)"));
    return r.status();
  }
  Status status = ll_matcher_ ? ll_matcher_->Restore(r) : matcher_->Restore(r);
  if (!status.ok()) return status;
  const bool adaptive = r.Bool();
  if (r.ok() && adaptive != (controller_ != nullptr)) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: adaptivity mismatch (adaptive option changed?)"));
    return r.status();
  }
  if (controller_) {
    status = controller_->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_events_ = num_events;
  num_matches_ = num_matches;
  return Status::OK();
}

void MatchEngine::NoteEvents(int64_t n) {
  num_events_ += n;
  if (events_ctr_ != nullptr) events_ctr_->Inc(n);
}

void MatchEngine::Consume(Deriver::Update& update, TimePoint t) {
  if (update.empty()) return;

  // The update vectors are scratch, cleared by the producer; the matcher
  // is free to move the situations out of them.
  if (ll_matcher_) {
    ll_matcher_->Consume(update.started, update.finished, t);
  } else if (!update.finished.empty()) {
    matcher_->Consume(update.finished, t);
  }

  if (controller_ != nullptr) {
    if (auto order = controller_->MaybeReoptimize(stats())) {
      if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*order);
      if (matcher_) matcher_->SetEvaluationOrder(*order);
    }
  }

  // EMAs change slowly; publishing at the optimizer's check cadence keeps
  // the gauges fresh without touching the per-event fast path.
  if (stats_publisher_.enabled() &&
      num_events_ % std::max(options_.reopt_interval, 1) == 0) {
    stats_publisher_.Publish(stats());
  }
}

void MatchEngine::Flush() {
  if (stats_publisher_.enabled()) stats_publisher_.Publish(stats());
}

void MatchEngine::OnMatch(const Match& match) {
  ++num_matches_;
  if (matches_ctr_ != nullptr) matches_ctr_->Inc();
  if (detection_latency_hist_ != nullptr) {
    // Detection latency in application time: how far behind the analytic
    // earliest detection instant t_d (Section 5.3.1) this match surfaced.
    // The low-latency matcher should pin this at ~0; the baseline matcher
    // pays the distance between t_d and the last end timestamp.
    const TimePoint td = EarliestDetection(spec_->pattern, match.config);
    if (td != kTimeMax && match.detected_at >= td) {
      detection_latency_hist_->Record(
          static_cast<int64_t>(match.detected_at - td));
    }
  }
  if (match_observer_) match_observer_(match);
  if (!output_) return;

  Tuple payload;
  payload.reserve(spec_->returns.size());
  for (const ReturnItem& item : spec_->returns) {
    const Situation& s = match.config[item.symbol];
    switch (item.source) {
      case ReturnItem::Source::kStartTime:
        payload.push_back(Value(static_cast<int64_t>(s.ts)));
        continue;
      case ReturnItem::Source::kEndTime:
        payload.push_back(s.ongoing() ? Value::Null()
                                      : Value(static_cast<int64_t>(s.te)));
        continue;
      case ReturnItem::Source::kDuration:
        payload.push_back(
            s.ongoing() ? Value::Null()
                        : Value(static_cast<int64_t>(s.duration())));
        continue;
      case ReturnItem::Source::kAggregate:
        break;
    }
    const int slot = deriver_slots_[item.symbol];
    if (s.ongoing() && deriver_->IsOngoing(slot)) {
      // Freshest aggregate snapshot for situations still being derived.
      const Tuple snapshot = deriver_->SnapshotOngoing(slot);
      payload.push_back(item.agg_index < static_cast<int>(snapshot.size())
                            ? snapshot[item.agg_index]
                            : Value::Null());
    } else {
      payload.push_back(item.agg_index < static_cast<int>(s.payload.size())
                            ? s.payload[item.agg_index]
                            : Value::Null());
    }
  }
  output_(Event(std::move(payload), match.detected_at));
}

void MatchEngine::ForceEvaluationOrder(const std::vector<int>& order) {
  if (ll_matcher_) ll_matcher_->SetEvaluationOrder(order);
  if (matcher_) matcher_->SetEvaluationOrder(order);
}

std::vector<int> MatchEngine::CurrentOrder() const {
  return ll_matcher_ ? ll_matcher_->CurrentOrder() : matcher_->CurrentOrder();
}

const MatcherStats& MatchEngine::stats() const {
  return ll_matcher_ ? ll_matcher_->stats() : matcher_->stats();
}

size_t MatchEngine::BufferedCount() const {
  return ll_matcher_ ? ll_matcher_->BufferedCount()
                     : matcher_->BufferedCount();
}

int64_t MatchEngine::shed_situations() const {
  return ll_matcher_ ? ll_matcher_->shed_situations()
                     : matcher_->shed_situations();
}

int64_t MatchEngine::lost_match_upper_bound() const {
  return ll_matcher_ ? ll_matcher_->lost_match_upper_bound()
                     : matcher_->lost_match_upper_bound();
}

int64_t MatchEngine::shed_trigger_candidates() const {
  return ll_matcher_ ? ll_matcher_->shed_trigger_candidates() : 0;
}

}  // namespace tpstream
