#ifndef TPSTREAM_CORE_OPERATOR_H_
#define TPSTREAM_CORE_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/serde.h"
#include "common/status.h"
#include "core/match_engine.h"
#include "core/query_spec.h"
#include "derive/deriver.h"
#include "obs/metrics.h"
#include "robust/overload_policy.h"

namespace tpstream {

/// The TPStream operator (Definition 13, Figure 2): consumes a point
/// event stream, derives situation streams, matches the temporal pattern,
/// and emits one output event per match (timestamp = detection time,
/// payload = the RETURN projections).
///
/// Composition: a Deriver feeding a MatchEngine (the matcher / adaptive
/// controller / projection half, shared with multi::QueryGroup).
///
/// With `low_latency` enabled (default), matches are concluded at the
/// earliest possible point in time t_d(P); otherwise matching waits for
/// all end timestamps (the ISEQ-style baseline behaviour). With
/// `adaptive` enabled, the evaluation order is re-optimized whenever the
/// tracked statistics drift (Section 5.4.1).
class TPStreamOperator {
 public:
  struct Options {
    bool low_latency = true;
    bool adaptive = true;
    double stats_alpha = 0.01;
    double reopt_threshold = 0.2;
    int reopt_interval = 64;
    /// Compile DEFINE predicates to register bytecode and evaluate them
    /// columnarly over PushBatch() spans (expr/bytecode.h). Off by
    /// default — the expression interpreter remains the semantic oracle;
    /// outputs are identical either way (differentially tested).
    bool compiled_predicates = false;
    /// SIMD tier for columnar predicate evaluation ("off", "sse2",
    /// "avx2", "native"); empty defers to TPSTREAM_SIMD, then the
    /// machine default. See DeriveOptions::simd.
    std::string simd;
    /// When set, pins the evaluation order and disables adaptivity (used
    /// by the plan-quality experiments).
    std::optional<std::vector<int>> fixed_order;
    /// Optional observability sink. When set, the operator and all its
    /// components (deriver, matcher, optimizer) record their metrics into
    /// this registry; when null (default) instrumentation is disabled and
    /// the hot path is untouched. The registry must outlive the operator.
    /// See docs/architecture.md ("Observability") for the metric names.
    obs::MetricsRegistry* metrics = nullptr;
    /// Overload protection (Degradation contract): hard caps on the
    /// per-symbol situation buffers and, in low-latency mode, on the
    /// trigger-pool size. Defaults to unbounded (today's behaviour).
    /// Evictions are oldest-first and accounted via shed_situations() /
    /// lost_match_upper_bound() and the `robust.*` metrics.
    robust::OverloadPolicy overload;
  };

  using OutputCallback = std::function<void(const Event&)>;

  TPStreamOperator(QuerySpec spec, Options options, OutputCallback output);

  /// Processes one input event; timestamps must be strictly increasing.
  void Push(const Event& event);

  /// Rvalue overload. The operator never retains the input event (the
  /// deriver folds the payload into its aggregate state), so this is
  /// semantically identical to Push(const Event&); it exists so generic
  /// ingestion code can forward events without caring about value
  /// category.
  void Push(Event&& event) { Push(static_cast<const Event&>(event)); }

  /// Batched ingestion: processes the events in order, equivalent to one
  /// Push() per event (differential-tested). The mutable-span overload
  /// matches the batch handoff contract used by ParallelTPStream and
  /// lets the caller reuse the batch storage afterwards.
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Synchronization point (lifecycle contract): brings all observable
  /// state — counters, published statistics gauges — up to date with
  /// every event pushed so far. The operator is single-threaded and never
  /// defers matching work, so Flush() emits nothing; it exists so all
  /// operator surfaces (sequential, partitioned, parallel, grouped)
  /// share one lifecycle. Idempotent: Flush(); Flush(); is equivalent to
  /// one Flush(). Flush on an empty stream is a no-op, and Push() may
  /// legally continue the stream after a Flush().
  void Flush();

  /// Returns the operator to its freshly-constructed state: the deriver's
  /// open situations and the engine's matcher/optimizer state (including
  /// the exactly-once fingerprint table) are rewound; replaying the same
  /// stream re-emits the same matches. Configuration and observability
  /// counters survive (Durability contract, docs/architecture.md).
  void Reset();

  /// Serializes all live operator state, stamped with the event-log
  /// offset (= num_events()): the envelope, the deriver's open situation
  /// slots and the match engine (buffers, trigger pool, fingerprints,
  /// statistics, adaptive controller). A checkpoint is only taken between
  /// Push() calls (quiescent point).
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on an operator with the same query and
  /// options. On success, `*offset` (when non-null) receives the event-
  /// log offset the checkpoint was taken at; resume by replaying the
  /// input stream from that offset. On error the operator must be
  /// Reset() or discarded before further use.
  Status Restore(ckpt::Reader& r, uint64_t* offset = nullptr);

  /// Optional: observes raw matches (full temporal configurations) in
  /// addition to the projected output events.
  void SetMatchObserver(MatchCallback observer) {
    engine_->SetMatchObserver(std::move(observer));
  }

  /// Installs an evaluation order immediately (migration is free, Section
  /// 5.4.1). Used by the oracle variant of the adaptivity experiment;
  /// adaptive re-optimization, if enabled, may override it later.
  void ForceEvaluationOrder(const std::vector<int>& order) {
    engine_->ForceEvaluationOrder(order);
  }

  const QuerySpec& spec() const { return spec_; }
  int64_t num_events() const { return engine_->num_events(); }
  int64_t num_matches() const { return engine_->num_matches(); }
  std::vector<int> CurrentOrder() const { return engine_->CurrentOrder(); }
  const MatcherStats& stats() const { return engine_->stats(); }
  int64_t plan_migrations() const { return engine_->plan_migrations(); }

  /// Buffered situations across all matcher buffers (memory accounting).
  size_t BufferedCount() const { return engine_->BufferedCount(); }

  /// Distinct bytecode programs backing the DEFINE predicates (0 unless
  /// Options::compiled_predicates; fingerprint-equal predicates share).
  int num_compiled_programs() const {
    return deriver_.num_compiled_programs();
  }

  /// Overload-shedding accounting (Degradation contract); all zero when
  /// Options::overload leaves the caps unbounded.
  int64_t shed_situations() const { return engine_->shed_situations(); }
  int64_t lost_match_upper_bound() const {
    return engine_->lost_match_upper_bound();
  }
  int64_t shed_trigger_candidates() const {
    return engine_->shed_trigger_candidates();
  }

 private:
  QuerySpec spec_;
  Deriver deriver_;
  // unique_ptr: the engine holds pointers into spec_ and deriver_, so the
  // operator must stay non-movable-by-default while keeping them stable.
  std::unique_ptr<MatchEngine> engine_;
};

}  // namespace tpstream

#endif  // TPSTREAM_CORE_OPERATOR_H_
