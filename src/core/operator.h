#ifndef TPSTREAM_CORE_OPERATOR_H_
#define TPSTREAM_CORE_OPERATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/query_spec.h"
#include "derive/deriver.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/matcher.h"
#include "obs/metrics.h"
#include "optimizer/plan_optimizer.h"
#include "robust/overload_policy.h"

namespace tpstream {

/// The TPStream operator (Definition 13, Figure 2): consumes a point
/// event stream, derives situation streams, matches the temporal pattern,
/// and emits one output event per match (timestamp = detection time,
/// payload = the RETURN projections).
///
/// With `low_latency` enabled (default), matches are concluded at the
/// earliest possible point in time t_d(P); otherwise matching waits for
/// all end timestamps (the ISEQ-style baseline behaviour). With
/// `adaptive` enabled, the evaluation order is re-optimized whenever the
/// tracked statistics drift (Section 5.4.1).
class TPStreamOperator {
 public:
  struct Options {
    bool low_latency = true;
    bool adaptive = true;
    double stats_alpha = 0.01;
    double reopt_threshold = 0.2;
    int reopt_interval = 64;
    /// When set, pins the evaluation order and disables adaptivity (used
    /// by the plan-quality experiments).
    std::optional<std::vector<int>> fixed_order;
    /// Optional observability sink. When set, the operator and all its
    /// components (deriver, matcher, optimizer) record their metrics into
    /// this registry; when null (default) instrumentation is disabled and
    /// the hot path is untouched. The registry must outlive the operator.
    /// See docs/architecture.md ("Observability") for the metric names.
    obs::MetricsRegistry* metrics = nullptr;
    /// Overload protection (Degradation contract): hard caps on the
    /// per-symbol situation buffers and, in low-latency mode, on the
    /// trigger-pool size. Defaults to unbounded (today's behaviour).
    /// Evictions are oldest-first and accounted via shed_situations() /
    /// lost_match_upper_bound() and the `robust.*` metrics.
    robust::OverloadPolicy overload;
  };

  using OutputCallback = std::function<void(const Event&)>;

  TPStreamOperator(QuerySpec spec, Options options, OutputCallback output);

  /// Processes one input event; timestamps must be strictly increasing.
  void Push(const Event& event);

  /// Rvalue overload. The operator never retains the input event (the
  /// deriver folds the payload into its aggregate state), so this is
  /// semantically identical to Push(const Event&); it exists so generic
  /// ingestion code can forward events without caring about value
  /// category.
  void Push(Event&& event) { Push(static_cast<const Event&>(event)); }

  /// Batched ingestion: processes the events in order, equivalent to one
  /// Push() per event (differential-tested). The mutable-span overload
  /// matches the batch handoff contract used by ParallelTPStream and
  /// lets the caller reuse the batch storage afterwards.
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Optional: observes raw matches (full temporal configurations) in
  /// addition to the projected output events.
  void SetMatchObserver(MatchCallback observer) {
    match_observer_ = std::move(observer);
  }

  /// Installs an evaluation order immediately (migration is free, Section
  /// 5.4.1). Used by the oracle variant of the adaptivity experiment;
  /// adaptive re-optimization, if enabled, may override it later.
  void ForceEvaluationOrder(const std::vector<int>& order);

  const QuerySpec& spec() const { return spec_; }
  int64_t num_events() const { return num_events_; }
  int64_t num_matches() const { return num_matches_; }
  std::vector<int> CurrentOrder() const;
  const MatcherStats& stats() const;
  int64_t plan_migrations() const {
    return controller_ ? controller_->migrations() : 0;
  }

  /// Buffered situations across all matcher buffers (memory accounting).
  size_t BufferedCount() const;

  /// Overload-shedding accounting (Degradation contract); all zero when
  /// Options::overload leaves the caps unbounded.
  int64_t shed_situations() const;
  int64_t lost_match_upper_bound() const;
  int64_t shed_trigger_candidates() const;

 private:
  void OnMatch(const Match& match);

  QuerySpec spec_;
  Options options_;
  OutputCallback output_;
  MatchCallback match_observer_;

  Deriver deriver_;
  std::unique_ptr<Matcher> matcher_;               // baseline mode
  std::unique_ptr<LowLatencyMatcher> ll_matcher_;  // low-latency mode
  std::unique_ptr<AdaptiveController> controller_;

  int64_t num_events_ = 0;
  int64_t num_matches_ = 0;

  // Observability handles (null when metrics are disabled).
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* matches_ctr_ = nullptr;
  obs::LatencyHistogram* detection_latency_hist_ = nullptr;
  MatcherStatsPublisher stats_publisher_;
};

}  // namespace tpstream

#endif  // TPSTREAM_CORE_OPERATOR_H_
