#ifndef TPSTREAM_CORE_QUERY_SPEC_H_
#define TPSTREAM_CORE_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "algebra/pattern.h"
#include "common/schema.h"
#include "common/status.h"
#include "derive/definition.h"

namespace tpstream {

/// One RETURN projection, emitted as output attribute `name`:
///  - kAggregate: the value of aggregate `agg_index` (an index into
///    definitions[symbol].aggregates) of the situation bound to `symbol`;
///  - kStartTime / kEndTime / kDuration: the situation's interval
///    (`start(B)`, `end(B)`, `duration(B)` in the query language). For a
///    situation still ongoing at detection time, end and duration are
///    null.
struct ReturnItem {
  enum class Source : uint8_t {
    kAggregate,
    kStartTime,
    kEndTime,
    kDuration,
  };

  int symbol = 0;
  Source source = Source::kAggregate;
  int agg_index = 0;  // kAggregate only
  std::string name;
};

/// A fully compiled TPStream query (the result of parsing Listing-1 style
/// text or of using QueryBuilder): input schema, situation definitions
/// (DEFINE), temporal pattern (PATTERN), window (WITHIN), projections
/// (RETURN) and optional partitioning key (PARTITION BY).
struct QuerySpec {
  Schema input_schema;
  std::vector<SituationDefinition> definitions;  // symbol i <-> definitions[i]
  TemporalPattern pattern;
  Duration window = 0;
  std::vector<ReturnItem> returns;
  int partition_field = -1;  // -1: unpartitioned

  /// Structural validation (symbol counts agree, indices in range, ...).
  Status Validate() const;

  /// Names of the output attributes, in RETURN order.
  std::vector<std::string> OutputNames() const;
};

}  // namespace tpstream

#endif  // TPSTREAM_CORE_QUERY_SPEC_H_
