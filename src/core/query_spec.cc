#include "core/query_spec.h"

namespace tpstream {

Status QuerySpec::Validate() const {
  if (definitions.empty()) {
    return Status::InvalidArgument("query defines no situations");
  }
  if (pattern.num_symbols() != static_cast<int>(definitions.size())) {
    return Status::InvalidArgument(
        "pattern symbol count does not match situation definitions");
  }
  if (window <= 0) {
    return Status::InvalidArgument("WITHIN window must be positive");
  }
  for (const SituationDefinition& def : definitions) {
    if (def.predicate == nullptr) {
      return Status::InvalidArgument("situation '" + def.symbol +
                                     "' has no predicate");
    }
    if (def.duration.min < 1 || def.duration.min > def.duration.max) {
      return Status::InvalidArgument("situation '" + def.symbol +
                                     "' has an invalid duration constraint");
    }
  }
  for (const ReturnItem& item : returns) {
    if (item.symbol < 0 ||
        item.symbol >= static_cast<int>(definitions.size())) {
      return Status::InvalidArgument("RETURN references unknown symbol");
    }
    if (item.source != ReturnItem::Source::kAggregate) continue;
    const auto& aggs = definitions[item.symbol].aggregates;
    if (item.agg_index < 0 ||
        item.agg_index >= static_cast<int>(aggs.size())) {
      return Status::InvalidArgument("RETURN references unknown aggregate");
    }
  }
  if (partition_field >= input_schema.num_fields()) {
    return Status::InvalidArgument("PARTITION BY field out of range");
  }
  return Status::OK();
}

std::vector<std::string> QuerySpec::OutputNames() const {
  std::vector<std::string> names;
  names.reserve(returns.size());
  for (const ReturnItem& item : returns) names.push_back(item.name);
  return names;
}

}  // namespace tpstream
