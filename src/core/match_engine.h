#ifndef TPSTREAM_CORE_MATCH_ENGINE_H_
#define TPSTREAM_CORE_MATCH_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/serde.h"
#include "common/status.h"
#include "core/query_spec.h"
#include "derive/deriver.h"
#include "matcher/low_latency_matcher.h"
#include "matcher/matcher.h"
#include "obs/metrics.h"
#include "optimizer/plan_optimizer.h"
#include "optimizer/shared_plan_cache.h"
#include "robust/overload_policy.h"

namespace tpstream {

/// The post-derivation half of one TPStream query: matchers, adaptive
/// controller, RETURN projection and the per-query observability handles.
///
/// Extracted from TPStreamOperator so that the multi-query engine
/// (multi::QueryGroup) can run one shared Deriver and fan its situation
/// updates out to many engines, while every engine executes exactly the
/// code a standalone operator would — the differential tests pin the two
/// deployments to byte-identical matches and metrics.
///
/// The engine does not own the deriver: `deriver` and `spec` must outlive
/// it. `deriver_slots[s]` maps the query-local symbol `s` to the index of
/// its definition inside the (possibly shared, deduplicated) deriver;
/// a standalone operator passes the identity mapping. The mapping is only
/// used to snapshot the freshest aggregates of still-ongoing situations
/// at match time.
class MatchEngine {
 public:
  struct Options {
    bool low_latency = true;
    bool adaptive = true;
    double stats_alpha = 0.01;
    double reopt_threshold = 0.2;
    int reopt_interval = 64;
    std::optional<std::vector<int>> fixed_order;
    /// Per-query observability namespace; null disables instrumentation.
    obs::MetricsRegistry* metrics = nullptr;
    robust::OverloadPolicy overload;
    /// Optional cross-query plan memo (see SharedPlanCache); plans are
    /// unchanged by sharing, only the subset-DP is skipped on a hit.
    SharedPlanCache* plan_cache = nullptr;
  };

  using OutputCallback = std::function<void(const Event&)>;

  MatchEngine(const QuerySpec* spec, const Deriver* deriver,
              std::vector<int> deriver_slots, Options options,
              OutputCallback output);

  /// Advances the input-event count by `n` without matching work. A
  /// standalone operator calls NoteEvents(1) per event; a QueryGroup
  /// advances lazily (just before a Consume and at Flush), so per-query
  /// counts are exact at every point an engine acts and at quiescence.
  void NoteEvents(int64_t n);

  /// Processes one deriver step for this query: feeds the matchers (the
  /// update vectors are consumed by move), runs the adaptive controller
  /// and publishes statistics at its cadence. No-op on an empty update.
  void Consume(Deriver::Update& update, TimePoint t);

  /// Synchronization point: brings the published statistics gauges up to
  /// date. Idempotent; the stream may continue with further Consume()
  /// calls afterwards.
  void Flush();

  void SetMatchObserver(MatchCallback observer) {
    match_observer_ = std::move(observer);
  }
  void ForceEvaluationOrder(const std::vector<int>& order);

  /// Returns the engine to its freshly-constructed state: event/match
  /// counts, matcher state (buffers, trigger pool, exactly-once
  /// fingerprints), statistics and the adaptive controller are all rewound
  /// and the initial cost-based plan is re-installed. Observability
  /// counters keep accumulating (process lifetime). The engine does not
  /// own the deriver — callers resetting an operator reset both halves.
  void Reset();

  /// Serializes all stream-derived engine state: logical event/match
  /// counts, the active matcher and the adaptive controller. Part of an
  /// enclosing checkpoint; the event-log offset lives in the surface
  /// envelope (TPStreamOperator, PartitionedTPStream, QueryGroup).
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on an engine with the same configuration
  /// (same pattern, matcher mode and adaptivity). On error the engine
  /// must be Reset() or discarded before further use.
  Status Restore(ckpt::Reader& r);

  int64_t num_events() const { return num_events_; }
  int64_t num_matches() const { return num_matches_; }
  std::vector<int> CurrentOrder() const;
  const MatcherStats& stats() const;
  int64_t plan_migrations() const {
    return controller_ ? controller_->migrations() : 0;
  }
  size_t BufferedCount() const;
  int64_t shed_situations() const;
  int64_t lost_match_upper_bound() const;
  int64_t shed_trigger_candidates() const;

 private:
  void OnMatch(const Match& match);

  /// Builds the adaptive controller (per Options) and installs the
  /// initial cost-based plan; shared by the constructor and Reset().
  void InstallInitialPlan();

  const QuerySpec* spec_;
  const Deriver* deriver_;
  std::vector<int> deriver_slots_;
  Options options_;
  OutputCallback output_;
  MatchCallback match_observer_;

  std::unique_ptr<Matcher> matcher_;               // baseline mode
  std::unique_ptr<LowLatencyMatcher> ll_matcher_;  // low-latency mode
  std::unique_ptr<AdaptiveController> controller_;

  int64_t num_events_ = 0;
  int64_t num_matches_ = 0;

  // Observability handles (null when metrics are disabled).
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* matches_ctr_ = nullptr;
  obs::LatencyHistogram* detection_latency_hist_ = nullptr;
  MatcherStatsPublisher stats_publisher_;
};

}  // namespace tpstream

#endif  // TPSTREAM_CORE_MATCH_ENGINE_H_
