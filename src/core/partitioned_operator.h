#ifndef TPSTREAM_CORE_PARTITIONED_OPERATOR_H_
#define TPSTREAM_CORE_PARTITIONED_OPERATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/operator.h"

namespace tpstream {

/// PARTITION BY support (Listing 1): routes events to one TPStreamOperator
/// instance per distinct key, so every partition (e.g. every car) is
/// evaluated independently.
class PartitionedTPStream {
 public:
  PartitionedTPStream(QuerySpec spec, TPStreamOperator::Options options,
                      TPStreamOperator::OutputCallback output);

  void Push(const Event& event);
  void Push(Event&& event) { Push(static_cast<const Event&>(event)); }

  /// Batched ingestion: routes the events in order, equivalent to one
  /// Push() per event (differential-tested).
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Synchronization point (lifecycle contract): flushes every partition
  /// operator (see TPStreamOperator::Flush). Idempotent; a no-op before
  /// the first Push; the stream may continue afterwards.
  void Flush();

  /// Returns the stream to its freshly-constructed state: every partition
  /// operator is discarded (new keys re-create them) and the event/match
  /// counts rewind. Configuration and observability counters survive.
  void Reset();

  /// Serializes all partitions (sorted by key, so identical state always
  /// produces identical bytes) with their per-partition operator state,
  /// stamped with the event-log offset (= num_events()).
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a partitioned stream with the same
  /// query and options, re-creating each partition operator. On success,
  /// `*offset` (when non-null) receives the event-log offset to replay
  /// from. On error the stream must be Reset() or discarded.
  Status Restore(ckpt::Reader& r, uint64_t* offset = nullptr);

  /// Incremental checkpoints (Durability contract): between full
  /// snapshots, only the partitions touched since the last successful
  /// checkpoint are serialized (a kPartitionedDelta section; dirty
  /// tracking piggybacks on the Push routing path). Deltas only make
  /// sense relative to a base snapshot, so a delta is valid iff
  /// CanCheckpointIncremental() — false on a fresh or Reset() stream
  /// until the next full checkpoint/restore re-establishes a baseline.
  /// The caller (log::RecoveryManager) owns the chain bookkeeping:
  /// after the bytes are durably persisted it calls
  /// MarkCheckpointBaseline() to clear the dirty set; on persist
  /// failure it simply does not, so the next delta re-covers the same
  /// partitions and nothing is lost.
  bool CanCheckpointIncremental() const { return incremental_valid_; }
  void CheckpointIncremental(ckpt::Writer& w) const;
  /// Applies a delta on top of the current state (a restored base full
  /// snapshot plus any earlier deltas of the same chain): partitions in
  /// the delta are replaced or created, all others keep their state.
  Status RestoreIncremental(ckpt::Reader& r, uint64_t* offset = nullptr);
  /// Declares the current state the persisted baseline: clears the
  /// dirty set and enables incremental checkpoints.
  void MarkCheckpointBaseline();

  size_t num_partitions() const {
    return int_partitions_.size() + string_partitions_.size();
  }
  int64_t num_matches() const { return num_matches_; }
  int64_t num_events() const { return num_events_; }
  size_t BufferedCount() const;

 private:
  TPStreamOperator* Partition(const Value& key);
  std::unique_ptr<TPStreamOperator> NewOperator();

  QuerySpec spec_;
  TPStreamOperator::Options options_;
  TPStreamOperator::OutputCallback output_;
  int64_t num_matches_ = 0;
  int64_t num_events_ = 0;

  // Observability handles (null when options_.metrics is null). All
  // partition operators share options_.metrics, so their per-component
  // counters aggregate across partitions.
  obs::Counter* events_ctr_ = nullptr;
  obs::Gauge* partitions_gauge_ = nullptr;

  std::unordered_map<int64_t, std::unique_ptr<TPStreamOperator>>
      int_partitions_;
  std::unordered_map<std::string, std::unique_ptr<TPStreamOperator>>
      string_partitions_;

  // Keys touched since the last MarkCheckpointBaseline(); the payload of
  // the next incremental checkpoint.
  std::unordered_set<int64_t> dirty_int_;
  std::unordered_set<std::string> dirty_string_;
  bool incremental_valid_ = false;
};

}  // namespace tpstream

#endif  // TPSTREAM_CORE_PARTITIONED_OPERATOR_H_
