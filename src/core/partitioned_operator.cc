#include "core/partitioned_operator.h"

namespace tpstream {

PartitionedTPStream::PartitionedTPStream(
    QuerySpec spec, TPStreamOperator::Options options,
    TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      output_(std::move(output)) {
  if (options_.metrics != nullptr) {
    events_ctr_ = options_.metrics->GetCounter("partitioned.events");
    partitions_gauge_ = options_.metrics->GetGauge("partitioned.partitions");
  }
}

std::unique_ptr<TPStreamOperator> PartitionedTPStream::NewOperator() {
  auto op = std::make_unique<TPStreamOperator>(
      spec_, options_, [this](const Event& e) {
        ++num_matches_;
        if (output_) output_(e);
      });
  if (partitions_gauge_ != nullptr) {
    // The caller already default-inserted the new partition's slot, so
    // num_partitions() counts it.
    partitions_gauge_->Set(static_cast<double>(num_partitions()));
  }
  return op;
}

TPStreamOperator* PartitionedTPStream::Partition(const Value& key) {
  if (key.type() == ValueType::kInt) {
    auto& slot = int_partitions_[key.AsInt()];
    if (slot == nullptr) slot = NewOperator();
    return slot.get();
  }
  auto& slot = string_partitions_[key.ToString()];
  if (slot == nullptr) slot = NewOperator();
  return slot.get();
}

void PartitionedTPStream::Push(const Event& event) {
  ++num_events_;
  if (events_ctr_ != nullptr) events_ctr_->Inc();
  if (spec_.partition_field < 0) {
    // Unpartitioned: single implicit partition keyed by 0.
    auto& slot = int_partitions_[0];
    if (slot == nullptr) slot = NewOperator();
    slot->Push(event);
    return;
  }
  const Value& key = event.payload[spec_.partition_field];
  Partition(key)->Push(event);
}

void PartitionedTPStream::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(event);
}

void PartitionedTPStream::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void PartitionedTPStream::Flush() {
  for (const auto& [k, op] : int_partitions_) op->Flush();
  for (const auto& [k, op] : string_partitions_) op->Flush();
}

size_t PartitionedTPStream::BufferedCount() const {
  size_t total = 0;
  for (const auto& [k, op] : int_partitions_) total += op->BufferedCount();
  for (const auto& [k, op] : string_partitions_) total += op->BufferedCount();
  return total;
}

}  // namespace tpstream
