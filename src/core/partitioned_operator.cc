#include "core/partitioned_operator.h"

#include <algorithm>
#include <vector>

namespace tpstream {

PartitionedTPStream::PartitionedTPStream(
    QuerySpec spec, TPStreamOperator::Options options,
    TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      output_(std::move(output)) {
  if (options_.metrics != nullptr) {
    events_ctr_ = options_.metrics->GetCounter("partitioned.events");
    partitions_gauge_ = options_.metrics->GetGauge("partitioned.partitions");
  }
}

std::unique_ptr<TPStreamOperator> PartitionedTPStream::NewOperator() {
  auto op = std::make_unique<TPStreamOperator>(
      spec_, options_, [this](const Event& e) {
        ++num_matches_;
        if (output_) output_(e);
      });
  if (partitions_gauge_ != nullptr) {
    // The caller already default-inserted the new partition's slot, so
    // num_partitions() counts it.
    partitions_gauge_->Set(static_cast<double>(num_partitions()));
  }
  return op;
}

TPStreamOperator* PartitionedTPStream::Partition(const Value& key) {
  if (key.type() == ValueType::kInt) {
    auto& slot = int_partitions_[key.AsInt()];
    if (slot == nullptr) slot = NewOperator();
    return slot.get();
  }
  auto& slot = string_partitions_[key.ToString()];
  if (slot == nullptr) slot = NewOperator();
  return slot.get();
}

void PartitionedTPStream::Push(const Event& event) {
  ++num_events_;
  if (events_ctr_ != nullptr) events_ctr_->Inc();
  if (spec_.partition_field < 0) {
    // Unpartitioned: single implicit partition keyed by 0.
    auto& slot = int_partitions_[0];
    if (slot == nullptr) slot = NewOperator();
    dirty_int_.insert(0);
    slot->Push(event);
    return;
  }
  const Value& key = event.payload[spec_.partition_field];
  if (key.type() == ValueType::kInt) {
    dirty_int_.insert(key.AsInt());
  } else {
    dirty_string_.insert(key.ToString());
  }
  Partition(key)->Push(event);
}

void PartitionedTPStream::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(event);
}

void PartitionedTPStream::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void PartitionedTPStream::Flush() {
  for (const auto& [k, op] : int_partitions_) op->Flush();
  for (const auto& [k, op] : string_partitions_) op->Flush();
}

void PartitionedTPStream::Reset() {
  int_partitions_.clear();
  string_partitions_.clear();
  num_events_ = 0;
  num_matches_ = 0;
  // A delta records only *touched* partitions; it cannot express "every
  // partition vanished", so Reset() invalidates the incremental
  // baseline until the next full checkpoint or restore.
  dirty_int_.clear();
  dirty_string_.clear();
  incremental_valid_ = false;
  if (partitions_gauge_ != nullptr) partitions_gauge_->Set(0.0);
}

void PartitionedTPStream::Checkpoint(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_events_));
  const size_t cookie = w.BeginSection(ckpt::Tag::kPartitioned);
  w.I64(num_matches_);

  // Sort keys so byte output is a pure function of logical state
  // (unordered_map iteration order is not).
  std::vector<int64_t> int_keys;
  int_keys.reserve(int_partitions_.size());
  for (const auto& [k, op] : int_partitions_) int_keys.push_back(k);
  std::sort(int_keys.begin(), int_keys.end());
  w.U64(int_keys.size());
  for (int64_t k : int_keys) {
    w.I64(k);
    int_partitions_.at(k)->Checkpoint(w);
  }

  std::vector<std::string> str_keys;
  str_keys.reserve(string_partitions_.size());
  for (const auto& [k, op] : string_partitions_) str_keys.push_back(k);
  std::sort(str_keys.begin(), str_keys.end());
  w.U64(str_keys.size());
  for (const std::string& k : str_keys) {
    w.Str(k);
    string_partitions_.at(k)->Checkpoint(w);
  }
  w.EndSection(cookie);
}

Status PartitionedTPStream::Restore(ckpt::Reader& r, uint64_t* offset) {
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kPartitioned);
  const int64_t num_matches = r.I64();

  int_partitions_.clear();
  string_partitions_.clear();
  const uint64_t num_int = r.U64();
  if (num_int > r.remaining()) {
    r.Fail(Status::ParseError("checkpoint: partition count exceeds input"));
    return r.status();
  }
  for (uint64_t i = 0; i < num_int && r.ok(); ++i) {
    const int64_t key = r.I64();
    auto& slot = int_partitions_[key];
    slot = NewOperator();
    status = slot->Restore(r);
    if (!status.ok()) return status;
  }
  const uint64_t num_str = r.U64();
  if (num_str > r.remaining()) {
    r.Fail(Status::ParseError("checkpoint: partition count exceeds input"));
    return r.status();
  }
  for (uint64_t i = 0; i < num_str && r.ok(); ++i) {
    const std::string key = r.Str();
    auto& slot = string_partitions_[key];
    slot = NewOperator();
    status = slot->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_events_ = static_cast<int64_t>(off);
  num_matches_ = num_matches;
  // The in-memory state now equals the restored snapshot, which makes
  // that snapshot the incremental baseline: replayed events re-mark
  // their partitions dirty, which is exactly the post-checkpoint delta.
  dirty_int_.clear();
  dirty_string_.clear();
  incremental_valid_ = true;
  if (partitions_gauge_ != nullptr) {
    partitions_gauge_->Set(static_cast<double>(num_partitions()));
  }
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

void PartitionedTPStream::CheckpointIncremental(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_events_));
  const size_t cookie = w.BeginSection(ckpt::Tag::kPartitionedDelta);
  w.I64(num_matches_);

  std::vector<int64_t> int_keys(dirty_int_.begin(), dirty_int_.end());
  std::sort(int_keys.begin(), int_keys.end());
  w.U64(int_keys.size());
  for (int64_t k : int_keys) {
    w.I64(k);
    int_partitions_.at(k)->Checkpoint(w);
  }

  std::vector<std::string> str_keys(dirty_string_.begin(),
                                    dirty_string_.end());
  std::sort(str_keys.begin(), str_keys.end());
  w.U64(str_keys.size());
  for (const std::string& k : str_keys) {
    w.Str(k);
    string_partitions_.at(k)->Checkpoint(w);
  }
  w.EndSection(cookie);
}

Status PartitionedTPStream::RestoreIncremental(ckpt::Reader& r,
                                               uint64_t* offset) {
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kPartitionedDelta);
  const int64_t num_matches = r.I64();

  const uint64_t num_int = r.U64();
  if (num_int > r.remaining()) {
    r.Fail(Status::ParseError("checkpoint: partition count exceeds input"));
    return r.status();
  }
  for (uint64_t i = 0; i < num_int && r.ok(); ++i) {
    const int64_t key = r.I64();
    auto& slot = int_partitions_[key];
    slot = NewOperator();
    status = slot->Restore(r);
    if (!status.ok()) return status;
  }
  const uint64_t num_str = r.U64();
  if (num_str > r.remaining()) {
    r.Fail(Status::ParseError("checkpoint: partition count exceeds input"));
    return r.status();
  }
  for (uint64_t i = 0; i < num_str && r.ok(); ++i) {
    const std::string key = r.Str();
    auto& slot = string_partitions_[key];
    slot = NewOperator();
    status = slot->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_events_ = static_cast<int64_t>(off);
  num_matches_ = num_matches;
  dirty_int_.clear();
  dirty_string_.clear();
  incremental_valid_ = true;
  if (partitions_gauge_ != nullptr) {
    partitions_gauge_->Set(static_cast<double>(num_partitions()));
  }
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

void PartitionedTPStream::MarkCheckpointBaseline() {
  dirty_int_.clear();
  dirty_string_.clear();
  incremental_valid_ = true;
}

size_t PartitionedTPStream::BufferedCount() const {
  size_t total = 0;
  for (const auto& [k, op] : int_partitions_) total += op->BufferedCount();
  for (const auto& [k, op] : string_partitions_) total += op->BufferedCount();
  return total;
}

}  // namespace tpstream
