#include "core/operator.h"

#include <numeric>

namespace tpstream {

namespace {

MatchEngine::Options EngineOptions(const TPStreamOperator::Options& o) {
  MatchEngine::Options eo;
  eo.low_latency = o.low_latency;
  eo.adaptive = o.adaptive;
  eo.stats_alpha = o.stats_alpha;
  eo.reopt_threshold = o.reopt_threshold;
  eo.reopt_interval = o.reopt_interval;
  eo.fixed_order = o.fixed_order;
  eo.metrics = o.metrics;
  eo.overload = o.overload;
  return eo;
}

std::vector<int> IdentitySlots(size_t n) {
  std::vector<int> slots(n);
  std::iota(slots.begin(), slots.end(), 0);
  return slots;
}

}  // namespace

TPStreamOperator::TPStreamOperator(QuerySpec spec, Options options,
                                   OutputCallback output)
    : spec_(std::move(spec)),
      deriver_(spec_.definitions, /*announce_starts=*/options.low_latency,
               options.metrics,
               DeriveOptions{options.compiled_predicates, options.simd}),
      engine_(std::make_unique<MatchEngine>(
          &spec_, &deriver_, IdentitySlots(spec_.definitions.size()),
          EngineOptions(options), std::move(output))) {}

void TPStreamOperator::Push(const Event& event) {
  engine_->NoteEvents(1);
  Deriver::Update& update = deriver_.Process(event);
  if (update.empty()) return;
  engine_->Consume(update, event.t);
}

void TPStreamOperator::PushBatch(std::span<Event> events) {
  deriver_.PrepareBatch({events.data(), events.size()});
  for (Event& event : events) Push(event);
}

void TPStreamOperator::PushBatch(std::span<const Event> events) {
  deriver_.PrepareBatch(events);
  for (const Event& event : events) Push(event);
}

void TPStreamOperator::Flush() { engine_->Flush(); }

void TPStreamOperator::Reset() {
  deriver_.Reset();
  engine_->Reset();
}

void TPStreamOperator::Checkpoint(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_events()));
  const size_t cookie = w.BeginSection(ckpt::Tag::kOperator);
  deriver_.Checkpoint(w);
  engine_->Checkpoint(w);
  w.EndSection(cookie);
}

Status TPStreamOperator::Restore(ckpt::Reader& r, uint64_t* offset) {
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kOperator);
  status = deriver_.Restore(r);
  if (!status.ok()) return status;
  status = engine_->Restore(r);
  if (!status.ok()) return status;
  status = r.EndSection(end);
  if (!status.ok()) return status;
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

}  // namespace tpstream
