#include "core/operator.h"

#include <algorithm>

#include "algebra/detection.h"

namespace tpstream {

TPStreamOperator::TPStreamOperator(QuerySpec spec, Options options,
                                   OutputCallback output)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      output_(std::move(output)),
      deriver_(spec_.definitions, /*announce_starts=*/options_.low_latency,
               options_.metrics) {
  auto on_match = [this](const Match& m) { OnMatch(m); };
  if (options_.low_latency) {
    DetectionAnalysis analysis(spec_.pattern, deriver_.durations());
    ll_matcher_ = std::make_unique<LowLatencyMatcher>(
        spec_.pattern, std::move(analysis), spec_.window, on_match,
        options_.stats_alpha);
  } else {
    matcher_ = std::make_unique<Matcher>(spec_.pattern, spec_.window,
                                         on_match, options_.stats_alpha);
  }

  if (!options_.overload.unbounded()) {
    if (ll_matcher_) ll_matcher_->SetOverload(options_.overload);
    if (matcher_) matcher_->SetOverload(options_.overload);
  }

  if (options_.metrics != nullptr) {
    if (ll_matcher_) ll_matcher_->EnableMetrics(options_.metrics);
    if (matcher_) matcher_->EnableMetrics(options_.metrics);
    events_ctr_ = options_.metrics->GetCounter("operator.events");
    matches_ctr_ = options_.metrics->GetCounter("operator.matches");
    detection_latency_hist_ =
        options_.metrics->GetHistogram("matcher.detection_latency");
    stats_publisher_ = MatcherStatsPublisher(options_.metrics, spec_.pattern);
  }

  if (options_.fixed_order.has_value()) {
    if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*options_.fixed_order);
    if (matcher_) matcher_->SetEvaluationOrder(*options_.fixed_order);
  } else {
    // Install the cost-based initial plan (Table 3 selectivities).
    AdaptiveController::Options copts;
    copts.threshold = options_.reopt_threshold;
    copts.check_interval = options_.reopt_interval;
    copts.low_latency = options_.low_latency;
    copts.metrics = options_.metrics;
    controller_ = std::make_unique<AdaptiveController>(&spec_.pattern, copts);
    if (auto order = controller_->MaybeReoptimize(stats())) {
      if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*order);
      if (matcher_) matcher_->SetEvaluationOrder(*order);
    }
    if (!options_.adaptive) controller_.reset();
  }
}

void TPStreamOperator::Push(const Event& event) {
  ++num_events_;
  if (events_ctr_ != nullptr) events_ctr_->Inc();
  Deriver::Update& update = deriver_.Process(event);
  if (update.empty()) return;

  // The update vectors are deriver scratch, cleared on the next
  // Process(); the matcher is free to move the situations out of them.
  if (ll_matcher_) {
    ll_matcher_->Consume(update.started, update.finished, event.t);
  } else if (!update.finished.empty()) {
    matcher_->Consume(update.finished, event.t);
  }

  if (controller_ != nullptr) {
    if (auto order = controller_->MaybeReoptimize(stats())) {
      if (ll_matcher_) ll_matcher_->SetEvaluationOrder(*order);
      if (matcher_) matcher_->SetEvaluationOrder(*order);
    }
  }

  // EMAs change slowly; publishing at the optimizer's check cadence keeps
  // the gauges fresh without touching the per-event fast path.
  if (stats_publisher_.enabled() &&
      num_events_ % std::max(options_.reopt_interval, 1) == 0) {
    stats_publisher_.Publish(stats());
  }
}

void TPStreamOperator::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(event);
}

void TPStreamOperator::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void TPStreamOperator::OnMatch(const Match& match) {
  ++num_matches_;
  if (matches_ctr_ != nullptr) matches_ctr_->Inc();
  if (detection_latency_hist_ != nullptr) {
    // Detection latency in application time: how far behind the analytic
    // earliest detection instant t_d (Section 5.3.1) this match surfaced.
    // The low-latency matcher should pin this at ~0; the baseline matcher
    // pays the distance between t_d and the last end timestamp.
    const TimePoint td = EarliestDetection(spec_.pattern, match.config);
    if (td != kTimeMax && match.detected_at >= td) {
      detection_latency_hist_->Record(
          static_cast<int64_t>(match.detected_at - td));
    }
  }
  if (match_observer_) match_observer_(match);
  if (!output_) return;

  Tuple payload;
  payload.reserve(spec_.returns.size());
  for (const ReturnItem& item : spec_.returns) {
    const Situation& s = match.config[item.symbol];
    switch (item.source) {
      case ReturnItem::Source::kStartTime:
        payload.push_back(Value(static_cast<int64_t>(s.ts)));
        continue;
      case ReturnItem::Source::kEndTime:
        payload.push_back(s.ongoing() ? Value::Null()
                                      : Value(static_cast<int64_t>(s.te)));
        continue;
      case ReturnItem::Source::kDuration:
        payload.push_back(
            s.ongoing() ? Value::Null()
                        : Value(static_cast<int64_t>(s.duration())));
        continue;
      case ReturnItem::Source::kAggregate:
        break;
    }
    if (s.ongoing() && deriver_.IsOngoing(item.symbol)) {
      // Freshest aggregate snapshot for situations still being derived.
      const Tuple snapshot = deriver_.SnapshotOngoing(item.symbol);
      payload.push_back(item.agg_index < static_cast<int>(snapshot.size())
                            ? snapshot[item.agg_index]
                            : Value::Null());
    } else {
      payload.push_back(item.agg_index < static_cast<int>(s.payload.size())
                            ? s.payload[item.agg_index]
                            : Value::Null());
    }
  }
  output_(Event(std::move(payload), match.detected_at));
}

void TPStreamOperator::ForceEvaluationOrder(const std::vector<int>& order) {
  if (ll_matcher_) ll_matcher_->SetEvaluationOrder(order);
  if (matcher_) matcher_->SetEvaluationOrder(order);
}

std::vector<int> TPStreamOperator::CurrentOrder() const {
  return ll_matcher_ ? ll_matcher_->CurrentOrder() : matcher_->CurrentOrder();
}

const MatcherStats& TPStreamOperator::stats() const {
  return ll_matcher_ ? ll_matcher_->stats() : matcher_->stats();
}

size_t TPStreamOperator::BufferedCount() const {
  return ll_matcher_ ? ll_matcher_->BufferedCount()
                     : matcher_->BufferedCount();
}

int64_t TPStreamOperator::shed_situations() const {
  return ll_matcher_ ? ll_matcher_->shed_situations()
                     : matcher_->shed_situations();
}

int64_t TPStreamOperator::lost_match_upper_bound() const {
  return ll_matcher_ ? ll_matcher_->lost_match_upper_bound()
                     : matcher_->lost_match_upper_bound();
}

int64_t TPStreamOperator::shed_trigger_candidates() const {
  return ll_matcher_ ? ll_matcher_->shed_trigger_candidates() : 0;
}

}  // namespace tpstream
