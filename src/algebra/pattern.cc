#include "algebra/pattern.h"

#include <sstream>

namespace tpstream {

RelationSet RelationSet::Inverted() const {
  RelationSet out;
  ForEach([&out](Relation r) { out.Add(Inverse(r)); });
  return out;
}

std::string RelationSet::ToString() const {
  std::string s;
  ForEach([&s](Relation r) {
    if (!s.empty()) s += ";";
    s += RelationName(r);
  });
  return s;
}

Certainty TemporalConstraint::Check(const Situation& sa,
                                    const Situation& sb) const {
  bool any_unknown = false;
  bool certain = false;
  relations.ForEach([&](Relation r) {
    switch (CheckRelation(r, sa, sb)) {
      case Certainty::kCertain:
        certain = true;
        break;
      case Certainty::kUnknown:
        any_unknown = true;
        break;
      case Certainty::kImpossible:
        break;
    }
  });
  if (certain) return Certainty::kCertain;

  // Prefix-group relaxation: with both operands ongoing, a complete prefix
  // group whose start prefix holds guarantees that one of its relations
  // will eventually be fulfilled (Table 2).
  if (sa.ongoing() && sb.ongoing()) {
    PrefixGroup group;
    if (sa.ts == sb.ts) {
      group = PrefixGroup::kStartEqual;
    } else if (sa.ts < sb.ts) {
      group = PrefixGroup::kAStartsFirst;
    } else {
      group = PrefixGroup::kBStartsFirst;
    }
    if (relations.ContainsAll(PrefixGroupMask(group))) {
      return Certainty::kCertain;
    }
  }
  return any_unknown ? Certainty::kUnknown : Certainty::kImpossible;
}

std::string TemporalConstraint::ToString(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool first = true;
  relations.ForEach([&](Relation r) {
    if (!first) os << ";";
    first = false;
    os << names[a] << " " << RelationName(r) << " " << names[b];
  });
  return os.str();
}

TemporalPattern::TemporalPattern(std::vector<std::string> symbol_names)
    : names_(std::move(symbol_names)) {
  adjacency_.assign(names_.size() * names_.size(), -1);
}

Status TemporalPattern::AddRelation(int a, Relation r, int b) {
  if (a < 0 || a >= num_symbols() || b < 0 || b >= num_symbols()) {
    return Status::InvalidArgument("pattern symbol index out of range");
  }
  if (a == b) {
    return Status::InvalidArgument(
        "temporal relation requires two distinct symbols");
  }
  if (a > b) {
    std::swap(a, b);
    r = Inverse(r);
  }
  int idx = adjacency_[a * num_symbols() + b];
  if (idx < 0) {
    idx = static_cast<int>(constraints_.size());
    constraints_.push_back(TemporalConstraint{a, b, RelationSet()});
    adjacency_[a * num_symbols() + b] = idx;
    adjacency_[b * num_symbols() + a] = idx;
  }
  constraints_[idx].relations.Add(r);
  return Status::OK();
}

int TemporalPattern::ConstraintIndex(int i, int j) const {
  if (i < 0 || j < 0 || i >= num_symbols() || j >= num_symbols() || i == j) {
    return -1;
  }
  return adjacency_[i * num_symbols() + j];
}

std::vector<int> TemporalPattern::RelatedSymbols(int s) const {
  std::vector<int> out;
  for (int j = 0; j < num_symbols(); ++j) {
    if (j != s && ConstraintIndex(s, j) >= 0) out.push_back(j);
  }
  return out;
}

bool TemporalPattern::IsConnected() const {
  const int n = num_symbols();
  if (n <= 1) return true;
  std::vector<bool> seen(n, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int j = 0; j < n; ++j) {
      if (!seen[j] && ConstraintIndex(v, j) >= 0) {
        seen[j] = true;
        ++count;
        stack.push_back(j);
      }
    }
  }
  return count == n;
}

Certainty TemporalPattern::Check(const std::vector<Situation>& config) const {
  Certainty result = Certainty::kCertain;
  for (const TemporalConstraint& c : constraints_) {
    switch (c.Check(config[c.a], config[c.b])) {
      case Certainty::kImpossible:
        return Certainty::kImpossible;
      case Certainty::kUnknown:
        result = Certainty::kUnknown;
        break;
      case Certainty::kCertain:
        break;
    }
  }
  return result;
}

bool TemporalPattern::Matches(const std::vector<Situation>& config) const {
  return Check(config) == Certainty::kCertain;
}

std::string TemporalPattern::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) os << " AND ";
    os << constraints_[i].ToString(names_);
  }
  return os.str();
}

}  // namespace tpstream
