#include "algebra/range_bounds.h"

namespace tpstream {

namespace {

// Bounds on finished A candidates for a fixed, finished B (the situation
// `b`). Derived directly from the definitions delta_R of Table 1.
std::optional<RelationBounds> BoundsFixedFinishedB(Relation r,
                                                   const Situation& b) {
  switch (r) {
    case Relation::kBefore:  // A.te < B.ts
      return RelationBounds{TimeRange::All(), TimeRange::Below(b.ts)};
    case Relation::kMeets:  // A.te == B.ts
      return RelationBounds{TimeRange::All(), TimeRange::Exactly(b.ts)};
    case Relation::kOverlaps:  // A.ts < B.ts < A.te < B.te
      return RelationBounds{TimeRange::Below(b.ts),
                            TimeRange{b.ts + 1, b.te - 1}};
    case Relation::kStarts:  // A.ts == B.ts, A.te < B.te
      return RelationBounds{TimeRange::Exactly(b.ts), TimeRange::Below(b.te)};
    case Relation::kDuring:  // B.ts < A.ts, A.te < B.te
      return RelationBounds{TimeRange::Above(b.ts), TimeRange::Below(b.te)};
    case Relation::kFinishes:  // A.ts < B.ts, A.te == B.te
      return RelationBounds{TimeRange::Below(b.ts), TimeRange::Exactly(b.te)};
    case Relation::kEquals:
      return RelationBounds{TimeRange::Exactly(b.ts),
                            TimeRange::Exactly(b.te)};
    case Relation::kAfter:  // B.te < A.ts
      return RelationBounds{TimeRange::Above(b.te), TimeRange::All()};
    case Relation::kMetBy:  // A.ts == B.te
      return RelationBounds{TimeRange::Exactly(b.te), TimeRange::All()};
    case Relation::kOverlappedBy:  // B.ts < A.ts < B.te < A.te
      return RelationBounds{TimeRange{b.ts + 1, b.te - 1},
                            TimeRange::Above(b.te)};
    case Relation::kStartedBy:  // A.ts == B.ts, B.te < A.te
      return RelationBounds{TimeRange::Exactly(b.ts), TimeRange::Above(b.te)};
    case Relation::kContains:  // A.ts < B.ts, B.te < A.te
      return RelationBounds{TimeRange::Below(b.ts), TimeRange::Above(b.te)};
    case Relation::kFinishedBy:  // B.ts < A.ts, A.te == B.te
      return RelationBounds{TimeRange::Above(b.ts), TimeRange::Exactly(b.te)};
  }
  return std::nullopt;
}

// Bounds on finished A candidates for a fixed, *ongoing* B. Only relations
// already certain with B's end unknown admit candidates: every finished
// A has A.te <= now < B.te, so conditions of the form "A.te < B.te" hold
// automatically while "B.te < A.te" or "A.te == B.te" are impossible.
std::optional<RelationBounds> BoundsFixedOngoingB(Relation r,
                                                  const Situation& b) {
  switch (r) {
    case Relation::kBefore:
      return RelationBounds{TimeRange::All(), TimeRange::Below(b.ts)};
    case Relation::kMeets:
      return RelationBounds{TimeRange::All(), TimeRange::Exactly(b.ts)};
    case Relation::kOverlaps:
      return RelationBounds{TimeRange::Below(b.ts), TimeRange::Above(b.ts)};
    case Relation::kStarts:
      return RelationBounds{TimeRange::Exactly(b.ts), TimeRange::All()};
    case Relation::kDuring:
      return RelationBounds{TimeRange::Above(b.ts), TimeRange::All()};
    default:
      return std::nullopt;
  }
}

std::optional<RelationBounds> Normalize(std::optional<RelationBounds> b) {
  if (b && (b->ts_range.empty() || b->te_range.empty())) return std::nullopt;
  return b;
}

}  // namespace

std::optional<RelationBounds> BoundsForCounterpart(Relation r,
                                                   const Situation& fixed,
                                                   bool fixed_is_a) {
  // When the fixed situation plays A, matching B candidates for R are
  // exactly the A-side candidates of the inverse relation with fixed as B.
  const Relation effective = fixed_is_a ? Inverse(r) : r;
  if (fixed.ongoing()) {
    return Normalize(BoundsFixedOngoingB(effective, fixed));
  }
  return Normalize(BoundsFixedFinishedB(effective, fixed));
}

}  // namespace tpstream
