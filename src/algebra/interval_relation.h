#ifndef TPSTREAM_ALGEBRA_INTERVAL_RELATION_H_
#define TPSTREAM_ALGEBRA_INTERVAL_RELATION_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/situation.h"
#include "common/time.h"

namespace tpstream {

/// The thirteen relations of Allen's interval algebra as adopted by the
/// paper (Table 1). NOTE: the paper orients `finishes` differently from
/// Allen's original: here `A finishes B` means A starts first and both end
/// together (A.ts < B.ts < A.te = B.te). We follow the paper exactly; the
/// prefix-group analysis of Table 2 depends on this orientation.
enum class Relation : uint8_t {
  kBefore = 0,        // A.te <  B.ts
  kMeets = 1,         // A.te == B.ts
  kOverlaps = 2,      // A.ts <  B.ts < A.te < B.te
  kStarts = 3,        // A.ts == B.ts, A.te < B.te
  kDuring = 4,        // B.ts <  A.ts, A.te < B.te
  kFinishes = 5,      // A.ts <  B.ts, A.te == B.te
  kEquals = 6,        // A.ts == B.ts, A.te == B.te
  kAfter = 7,         // inverse of kBefore
  kMetBy = 8,         // inverse of kMeets
  kOverlappedBy = 9,  // inverse of kOverlaps
  kStartedBy = 10,    // inverse of kStarts
  kContains = 11,     // inverse of kDuring
  kFinishedBy = 12,   // inverse of kFinishes
};

inline constexpr int kNumRelations = 13;

/// The mirror relation: Holds(r, a, b) == Holds(Inverse(r), b, a).
Relation Inverse(Relation r);

/// True iff the relation's definition (delta_R in Table 1) holds for the
/// two finished intervals.
bool Holds(Relation r, TimePoint a_ts, TimePoint a_te, TimePoint b_ts,
           TimePoint b_te);

inline bool Holds(Relation r, const Situation& a, const Situation& b) {
  return Holds(r, a.ts, a.te, b.ts, b.te);
}

/// Lowercase name as used in the query language ("before", "met-by", ...).
const char* RelationName(Relation r);

/// Parses a relation name (accepts both "met-by" and "metby" spellings).
std::optional<Relation> RelationFromName(const std::string& name);

/// Initial selectivity estimate (Table 3). Mirror relations share values.
double DefaultSelectivity(Relation r);

/// Which endpoint of which operand concludes the relation at the earliest
/// possible time t_d(R) (Table 2).
enum class TriggerPoint : uint8_t {
  kStartOfA,  // t_d = A.ts  (after, met-by)
  kStartOfB,  // t_d = B.ts  (before, meets)
  kEndOfA,    // t_d = A.te  (starts, overlaps, during)
  kEndOfB,    // t_d = B.te  (started-by, contains, overlapped-by)
  kBothEnds,  // t_d = A.te = B.te (equals, finishes, finished-by)
};

TriggerPoint DetectionTrigger(Relation r);

/// Outcome of evaluating a relation when one or both operands may still be
/// ongoing (end timestamp unknown but guaranteed to lie in the future).
enum class Certainty : uint8_t {
  kImpossible,  // the relation can no longer hold, whatever the ends
  kUnknown,     // depends on end timestamps not yet known
  kCertain,     // the relation holds for every possible future
};

/// Three-valued evaluation (Section 5.3). An operand with
/// `te == kTimeUnknown` is ongoing; its eventual end is strictly greater
/// than every timestamp observed so far (in particular greater than the
/// other operand's known endpoints).
Certainty CheckRelation(Relation r, const Situation& a, const Situation& b);

/// Prefix groups of Table 2: sets of relations that share a definition
/// prefix. If a temporal constraint contains a full group, two *ongoing*
/// situations whose starts satisfy the prefix already guarantee a match at
/// the later start (t_d(G)).
enum class PrefixGroup : uint8_t {
  kStartEqual,    // {starts, equals, started-by}:           A.ts == B.ts
  kAStartsFirst,  // {overlaps, finishes, contains}:         A.ts <  B.ts
  kBStartsFirst,  // {overlapped-by, finished-by, during}:   B.ts <  A.ts
};

/// Bitmask of the relations forming `group` (bit i <-> Relation(i)).
uint16_t PrefixGroupMask(PrefixGroup group);

/// True if the relation can become certain while the given side's end
/// timestamp is still unknown (every finished counterpart then decides
/// it). These are exactly the relations admitting ongoing-fixed range
/// bounds: {before, meets, overlaps, starts, during} for an ongoing B
/// side, their inverses for an ongoing A side.
bool CertainWhileOngoing(Relation r, bool a_side_ongoing);

}  // namespace tpstream

#endif  // TPSTREAM_ALGEBRA_INTERVAL_RELATION_H_
