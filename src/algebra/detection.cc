#include "algebra/detection.h"

#include <algorithm>

namespace tpstream {

namespace {

// The prefix group a relation belongs to, if any. Only the three groups
// with non-trivial detection-time gain are tracked ({before, meets} and
// {after, met-by} already trigger at a start timestamp individually).
std::optional<PrefixGroup> GroupOf(Relation r) {
  switch (r) {
    case Relation::kStarts:
    case Relation::kEquals:
    case Relation::kStartedBy:
      return PrefixGroup::kStartEqual;
    case Relation::kOverlaps:
    case Relation::kFinishes:
    case Relation::kContains:
      return PrefixGroup::kAStartsFirst;
    case Relation::kOverlappedBy:
    case Relation::kFinishedBy:
    case Relation::kDuring:
      return PrefixGroup::kBStartsFirst;
    default:
      return std::nullopt;
  }
}

bool IsSimultaneousEnd(Relation r) {
  return r == Relation::kEquals || r == Relation::kFinishes ||
         r == Relation::kFinishedBy;
}

}  // namespace

DetectionAnalysis::DetectionAnalysis(
    const TemporalPattern& pattern,
    const std::vector<DurationConstraint>& durations) {
  const int n = pattern.num_symbols();
  match_on_start_.assign(n, false);
  match_on_end_.assign(n, false);
  excluded_while_ongoing_.assign(n, false);
  has_simultaneous_end_.assign(n, false);

  for (const TemporalConstraint& c : pattern.constraints()) {
    c.relations.ForEach([&](Relation r) {
      if (IsSimultaneousEnd(r)) {
        has_simultaneous_end_[c.a] = true;
        has_simultaneous_end_[c.b] = true;
      }
      // With the full prefix group present, the relation concludes at the
      // later start (Table 2) instead of its individual trigger point.
      if (auto group = GroupOf(r);
          group && c.relations.ContainsAll(PrefixGroupMask(*group))) {
        switch (*group) {
          case PrefixGroup::kStartEqual:
            match_on_start_[c.a] = true;
            match_on_start_[c.b] = true;
            break;
          case PrefixGroup::kAStartsFirst:
            match_on_start_[c.b] = true;
            break;
          case PrefixGroup::kBStartsFirst:
            match_on_start_[c.a] = true;
            break;
        }
        return;
      }
      switch (DetectionTrigger(r)) {
        case TriggerPoint::kStartOfA:
          match_on_start_[c.a] = true;
          break;
        case TriggerPoint::kStartOfB:
          match_on_start_[c.b] = true;
          break;
        case TriggerPoint::kEndOfA:
          match_on_end_[c.a] = true;
          break;
        case TriggerPoint::kEndOfB:
          match_on_end_[c.b] = true;
          break;
        case TriggerPoint::kBothEnds:
          match_on_end_[c.a] = true;
          match_on_end_[c.b] = true;
          break;
      }
    });
  }

  // Duration-constraint adjustment (Section 5.3.2): situations with a
  // maximum duration must not be matched while ongoing; their start
  // triggers are deferred to their end.
  for (int s = 0; s < n && s < static_cast<int>(durations.size()); ++s) {
    if (durations[s].has_max()) {
      excluded_while_ongoing_[s] = true;
      if (match_on_start_[s]) {
        match_on_start_[s] = false;
        match_on_end_[s] = true;
      }
    }
  }
  // Symbols without any temporal constraint (single-symbol queries,
  // disconnected pattern components) have no relation-derived triggers;
  // their mere existence contributes to a match, so their (possibly
  // deferred) start is a detection point.
  for (int s = 0; s < n; ++s) {
    if (pattern.RelatedSymbols(s).empty()) match_on_start_[s] = true;
  }

  // A minimum duration defers the start announcement to the deferred start
  // timestamp ts̄; matches whose remaining trigger endpoints passed during
  // the deferral can only be concluded at ts̄, so the deferred start joins
  // t_d(P) (see the "A during B" example in Section 5.3.2).
  for (int s = 0; s < n && s < static_cast<int>(durations.size()); ++s) {
    if (durations[s].has_min() && !durations[s].has_max() &&
        !pattern.RelatedSymbols(s).empty()) {
      match_on_start_[s] = true;
    }
  }
  // An excluded symbol is invisible to the matcher while ongoing, so any
  // relation that would have relied on observing it ongoing (end triggers
  // with an ongoing counterpart, prefix-group start triggers) must defer
  // until both endpoints of the constraint are finished. Conservatively
  // trigger on both ends of every constraint touching an excluded symbol.
  for (const TemporalConstraint& c : pattern.constraints()) {
    if (excluded_while_ongoing_[c.a] || excluded_while_ongoing_[c.b]) {
      match_on_end_[c.a] = true;
      match_on_end_[c.b] = true;
    }
  }

  // --- exactly-once analysis (see needs_dedup()) ---------------------
  bool any_simultaneous = false;
  for (bool flag : has_simultaneous_end_) any_simultaneous |= flag;

  int end_triggered = 0;
  for (bool flag : match_on_end_) end_triggered += flag ? 1 : 0;

  // A relation keeps `symbol` usable while ongoing if it can be certain
  // with that side's end unknown, or through a complete prefix group.
  auto ongoing_allowed = [&](int symbol) {
    for (const TemporalConstraint& c : pattern.constraints()) {
      if (c.a != symbol && c.b != symbol) continue;
      bool any = false;
      for (PrefixGroup g : {PrefixGroup::kStartEqual,
                            PrefixGroup::kAStartsFirst,
                            PrefixGroup::kBStartsFirst}) {
        any |= c.relations.ContainsAll(PrefixGroupMask(g));
      }
      c.relations.ForEach([&](Relation r) {
        any |= CertainWhileOngoing(r, /*a_side_ongoing=*/c.a == symbol);
      });
      if (!any) return false;  // this constraint pins symbol's end
    }
    return true;
  };

  bool end_trigger_on_possibly_ongoing = false;
  for (int s = 0; s < n; ++s) {
    if (match_on_end_[s] && ongoing_allowed(s)) {
      end_trigger_on_possibly_ongoing = true;
    }
  }
  // Disconnected multi-symbol patterns join unconstrained components by
  // cross product; a configuration concluded with an ongoing
  // unconstrained member is re-derivable from later triggers once that
  // member is buffered. Be conservative there.
  needs_dedup_ = any_simultaneous || end_triggered >= 2 ||
                 end_trigger_on_possibly_ongoing ||
                 (n > 1 && !pattern.IsConnected());
}

TimePoint EarliestDetection(const TemporalPattern& pattern,
                            const std::vector<Situation>& config) {
  // Certainty can only change at endpoints of the involved situations.
  std::vector<TimePoint> instants;
  TimePoint max_ts = kTimeMin;
  for (const Situation& s : config) {
    instants.push_back(s.ts);
    instants.push_back(s.te);
    max_ts = std::max(max_ts, s.ts);
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());

  std::vector<Situation> visible(config.size());
  for (TimePoint t : instants) {
    if (t < max_ts) continue;  // every situation must have started
    for (size_t i = 0; i < config.size(); ++i) {
      visible[i] = config[i];
      if (visible[i].te > t) visible[i].te = kTimeUnknown;
    }
    if (pattern.Check(visible) == Certainty::kCertain) return t;
  }
  return kTimeMax;
}

}  // namespace tpstream
