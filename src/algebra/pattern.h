#ifndef TPSTREAM_ALGEBRA_PATTERN_H_
#define TPSTREAM_ALGEBRA_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/interval_relation.h"
#include "common/status.h"

namespace tpstream {

/// A set of temporal relations, stored as a bitmask (bit i <-> Relation i).
class RelationSet {
 public:
  RelationSet() = default;
  explicit RelationSet(uint16_t mask) : mask_(mask) {}
  RelationSet(std::initializer_list<Relation> rs) {
    for (Relation r : rs) Add(r);
  }

  void Add(Relation r) { mask_ |= Bit(r); }
  bool Contains(Relation r) const { return (mask_ & Bit(r)) != 0; }
  bool ContainsAll(uint16_t mask) const { return (mask_ & mask) == mask; }
  bool empty() const { return mask_ == 0; }
  uint16_t mask() const { return mask_; }
  int size() const { return __builtin_popcount(mask_); }

  /// Set with every relation replaced by its inverse.
  RelationSet Inverted() const;

  /// Iteration support: calls fn(Relation) for each contained relation.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int i = 0; i < kNumRelations; ++i) {
      const Relation r = static_cast<Relation>(i);
      if (Contains(r)) fn(r);
    }
  }

  std::string ToString() const;

  friend bool operator==(const RelationSet& a, const RelationSet& b) {
    return a.mask_ == b.mask_;
  }

 private:
  static uint16_t Bit(Relation r) {
    return static_cast<uint16_t>(1u << static_cast<int>(r));
  }
  uint16_t mask_ = 0;
};

/// A temporal constraint C^{a,b} (Definition 10): a disjunction of
/// relations between symbols `a` and `b`. Stored normalized with a < b.
struct TemporalConstraint {
  int a = 0;
  int b = 1;
  RelationSet relations;

  /// Certainty that this constraint holds between situation `sa` (symbol a)
  /// and `sb` (symbol b). Handles ongoing operands and the prefix-group
  /// relaxation of Section 5.3.2: a constraint containing a complete prefix
  /// group is certain for two ongoing situations whose starts satisfy the
  /// group's prefix.
  Certainty Check(const Situation& sa, const Situation& sb) const;

  std::string ToString(const std::vector<std::string>& names) const;
};

/// A temporal pattern (Definition 11): a conjunction of temporal
/// constraints over `num_symbols` situation streams.
class TemporalPattern {
 public:
  TemporalPattern() = default;
  explicit TemporalPattern(std::vector<std::string> symbol_names);

  int num_symbols() const { return static_cast<int>(names_.size()); }
  const std::vector<std::string>& symbol_names() const { return names_; }

  /// Adds relation `r` between symbols `a` and `b` (merging into an
  /// existing constraint; normalizes to a < b by inverting if needed).
  Status AddRelation(int a, Relation r, int b);

  const std::vector<TemporalConstraint>& constraints() const {
    return constraints_;
  }

  /// Index into constraints() of the constraint between i and j (in either
  /// order), or -1 if the two symbols are unconstrained.
  int ConstraintIndex(int i, int j) const;

  /// Symbols with at least one constraint to `s`.
  std::vector<int> RelatedSymbols(int s) const;

  /// True if every symbol is reachable from every other through
  /// constraints (affects plan enumeration, Section 5.4).
  bool IsConnected() const;

  /// Satisfied iff every constraint is certain for the configuration
  /// (one situation per symbol; entries may be ongoing).
  Certainty Check(const std::vector<Situation>& config) const;

  /// Exact match test for fully finished configurations (Definition 11).
  bool Matches(const std::vector<Situation>& config) const;

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<TemporalConstraint> constraints_;
  // adjacency_[i * num_symbols + j] = constraint index or -1.
  std::vector<int> adjacency_;
};

}  // namespace tpstream

#endif  // TPSTREAM_ALGEBRA_PATTERN_H_
