#include "algebra/interval_relation.h"

#include <array>

namespace tpstream {

Relation Inverse(Relation r) {
  switch (r) {
    case Relation::kBefore:
      return Relation::kAfter;
    case Relation::kMeets:
      return Relation::kMetBy;
    case Relation::kOverlaps:
      return Relation::kOverlappedBy;
    case Relation::kStarts:
      return Relation::kStartedBy;
    case Relation::kDuring:
      return Relation::kContains;
    case Relation::kFinishes:
      return Relation::kFinishedBy;
    case Relation::kEquals:
      return Relation::kEquals;
    case Relation::kAfter:
      return Relation::kBefore;
    case Relation::kMetBy:
      return Relation::kMeets;
    case Relation::kOverlappedBy:
      return Relation::kOverlaps;
    case Relation::kStartedBy:
      return Relation::kStarts;
    case Relation::kContains:
      return Relation::kDuring;
    case Relation::kFinishedBy:
      return Relation::kFinishes;
  }
  return Relation::kEquals;
}

bool Holds(Relation r, TimePoint a_ts, TimePoint a_te, TimePoint b_ts,
           TimePoint b_te) {
  switch (r) {
    case Relation::kBefore:
      return a_te < b_ts;
    case Relation::kMeets:
      return a_te == b_ts;
    case Relation::kOverlaps:
      return a_ts < b_ts && b_ts < a_te && a_te < b_te;
    case Relation::kStarts:
      return a_ts == b_ts && a_te < b_te;
    case Relation::kDuring:
      return b_ts < a_ts && a_te < b_te;
    case Relation::kFinishes:
      return a_ts < b_ts && a_te == b_te;
    case Relation::kEquals:
      return a_ts == b_ts && a_te == b_te;
    case Relation::kAfter:
    case Relation::kMetBy:
    case Relation::kOverlappedBy:
    case Relation::kStartedBy:
    case Relation::kContains:
    case Relation::kFinishedBy:
      return Holds(Inverse(r), b_ts, b_te, a_ts, a_te);
  }
  return false;
}

namespace {

constexpr std::array<const char*, kNumRelations> kRelationNames = {
    "before",     "meets",      "overlaps",      "starts",   "during",
    "finishes",   "equals",     "after",         "met-by",   "overlapped-by",
    "started-by", "contains",   "finished-by"};

}  // namespace

const char* RelationName(Relation r) {
  return kRelationNames[static_cast<int>(r)];
}

std::optional<Relation> RelationFromName(const std::string& name) {
  std::string canonical;
  canonical.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    canonical.push_back(
        static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  for (int i = 0; i < kNumRelations; ++i) {
    std::string candidate;
    for (const char* p = kRelationNames[i]; *p != '\0'; ++p) {
      if (*p == '-') continue;
      candidate.push_back(*p);
    }
    if (candidate == canonical) return static_cast<Relation>(i);
  }
  // Accepted aliases.
  if (canonical == "equal") return Relation::kEquals;
  if (canonical == "startedby") return Relation::kStartedBy;
  return std::nullopt;
}

double DefaultSelectivity(Relation r) {
  switch (r) {
    case Relation::kBefore:
    case Relation::kAfter:
      return 0.445;
    case Relation::kDuring:
    case Relation::kContains:
      return 0.03;
    case Relation::kOverlaps:
    case Relation::kOverlappedBy:
      return 0.01;
    case Relation::kStarts:
    case Relation::kStartedBy:
    case Relation::kFinishes:
    case Relation::kFinishedBy:
    case Relation::kMeets:
    case Relation::kMetBy:
      return 0.0049;
    case Relation::kEquals:
      return 0.0006;
  }
  return 0.01;
}

TriggerPoint DetectionTrigger(Relation r) {
  switch (r) {
    case Relation::kBefore:
    case Relation::kMeets:
      return TriggerPoint::kStartOfB;
    case Relation::kAfter:
    case Relation::kMetBy:
      return TriggerPoint::kStartOfA;
    case Relation::kStarts:
    case Relation::kOverlaps:
    case Relation::kDuring:
      return TriggerPoint::kEndOfA;
    case Relation::kStartedBy:
    case Relation::kContains:
    case Relation::kOverlappedBy:
      return TriggerPoint::kEndOfB;
    case Relation::kEquals:
    case Relation::kFinishes:
    case Relation::kFinishedBy:
      return TriggerPoint::kBothEnds;
  }
  return TriggerPoint::kBothEnds;
}

namespace {

// Symbolic comparison of two (possibly unknown) end/start points. An
// unknown end timestamp is strictly greater than every known timestamp in
// the system (the situation is still ongoing); two unknown ends are
// incomparable.
enum class Cmp : uint8_t { kLt, kEq, kGt, kUnknown };

Cmp CompareKnown(TimePoint x, TimePoint y) {
  if (x < y) return Cmp::kLt;
  if (x > y) return Cmp::kGt;
  return Cmp::kEq;
}

Cmp ComparePoints(TimePoint x, bool x_known, TimePoint y, bool y_known) {
  if (x_known && y_known) return CompareKnown(x, y);
  if (!x_known && !y_known) return Cmp::kUnknown;
  return x_known ? Cmp::kLt : Cmp::kGt;
}

// Folds the certainty of one required comparison into the accumulated
// certainty of a conjunction.
Certainty And(Certainty acc, Cmp got, Cmp want) {
  if (acc == Certainty::kImpossible) return acc;
  if (got == Cmp::kUnknown) return Certainty::kUnknown;
  if (got != want) return Certainty::kImpossible;
  return acc;
}

}  // namespace

Certainty CheckRelation(Relation r, const Situation& a, const Situation& b) {
  const bool a_fin = !a.ongoing();
  const bool b_fin = !b.ongoing();
  if (a_fin && b_fin) {
    return Holds(r, a, b) ? Certainty::kCertain : Certainty::kImpossible;
  }

  const Cmp ts_ts = CompareKnown(a.ts, b.ts);
  const Cmp te_te = ComparePoints(a.te, a_fin, b.te, b_fin);
  const Cmp ate_bts = ComparePoints(a.te, a_fin, b.ts, true);
  const Cmp bte_ats = ComparePoints(b.te, b_fin, a.ts, true);

  Certainty c = Certainty::kCertain;
  switch (r) {
    case Relation::kBefore:
      return And(c, ate_bts, Cmp::kLt);
    case Relation::kMeets:
      return And(c, ate_bts, Cmp::kEq);
    case Relation::kOverlaps:
      c = And(c, ts_ts, Cmp::kLt);
      c = And(c, ate_bts, Cmp::kGt);
      return And(c, te_te, Cmp::kLt);
    case Relation::kStarts:
      c = And(c, ts_ts, Cmp::kEq);
      return And(c, te_te, Cmp::kLt);
    case Relation::kDuring:
      c = And(c, ts_ts, Cmp::kGt);
      return And(c, te_te, Cmp::kLt);
    case Relation::kFinishes:
      c = And(c, ts_ts, Cmp::kLt);
      return And(c, te_te, Cmp::kEq);
    case Relation::kEquals:
      c = And(c, ts_ts, Cmp::kEq);
      return And(c, te_te, Cmp::kEq);
    case Relation::kAfter:
      return And(c, bte_ats, Cmp::kLt);
    case Relation::kMetBy:
      return And(c, bte_ats, Cmp::kEq);
    case Relation::kOverlappedBy:
      c = And(c, ts_ts, Cmp::kGt);
      c = And(c, bte_ats, Cmp::kGt);
      return And(c, te_te, Cmp::kGt);
    case Relation::kStartedBy:
      c = And(c, ts_ts, Cmp::kEq);
      return And(c, te_te, Cmp::kGt);
    case Relation::kContains:
      c = And(c, ts_ts, Cmp::kLt);
      return And(c, te_te, Cmp::kGt);
    case Relation::kFinishedBy:
      c = And(c, ts_ts, Cmp::kGt);
      return And(c, te_te, Cmp::kEq);
  }
  return Certainty::kUnknown;
}

bool CertainWhileOngoing(Relation r, bool a_side_ongoing) {
  const Relation effective = a_side_ongoing ? r : Inverse(r);
  switch (effective) {
    case Relation::kAfter:
    case Relation::kMetBy:
    case Relation::kOverlappedBy:
    case Relation::kStartedBy:
    case Relation::kContains:
      return true;
    default:
      return false;
  }
}

uint16_t PrefixGroupMask(PrefixGroup group) {
  auto bit = [](Relation r) {
    return static_cast<uint16_t>(1u << static_cast<int>(r));
  };
  switch (group) {
    case PrefixGroup::kStartEqual:
      return bit(Relation::kStarts) | bit(Relation::kEquals) |
             bit(Relation::kStartedBy);
    case PrefixGroup::kAStartsFirst:
      return bit(Relation::kOverlaps) | bit(Relation::kFinishes) |
             bit(Relation::kContains);
    case PrefixGroup::kBStartsFirst:
      return bit(Relation::kOverlappedBy) | bit(Relation::kFinishedBy) |
             bit(Relation::kDuring);
  }
  return 0;
}

}  // namespace tpstream
