#ifndef TPSTREAM_ALGEBRA_DETECTION_H_
#define TPSTREAM_ALGEBRA_DETECTION_H_

#include <vector>

#include "algebra/pattern.h"
#include "common/time.h"

namespace tpstream {

/// Static analysis of a temporal pattern determining, per symbol, at which
/// endpoints the low-latency matcher must be invoked (Section 5.3.1,
/// Table 2).
///
/// For every relation of every constraint, the earliest detection time
/// t_d(R) is the third timestamp of its definition; if a constraint
/// contains a complete prefix group, the detection time of the group's
/// relations shifts to the later start timestamp. Symbols whose situation
/// definition carries a maximum duration constraint are excluded from
/// matching until their end is known (Section 5.3.2), so their start
/// triggers are folded into end triggers.
class DetectionAnalysis {
 public:
  DetectionAnalysis() = default;
  DetectionAnalysis(const TemporalPattern& pattern,
                    const std::vector<DurationConstraint>& durations);

  /// True if a situation of `symbol` can conclude a match when it starts.
  bool match_on_start(int symbol) const { return match_on_start_[symbol]; }

  /// True if a situation of `symbol` can conclude a match when it ends.
  bool match_on_end(int symbol) const { return match_on_end_[symbol]; }

  /// True if `symbol` must never participate in matching while ongoing
  /// (it has a maximum duration constraint).
  bool excluded_while_ongoing(int symbol) const {
    return excluded_while_ongoing_[symbol];
  }

  /// True if some constraint involving `symbol` contains a relation with
  /// simultaneous ends (equals / finishes / finished-by). Only then can a
  /// configuration whose last contributing endpoint is `symbol`'s end
  /// consist purely of already-finished situations.
  bool has_simultaneous_end(int symbol) const {
    return has_simultaneous_end_[symbol];
  }

  /// True if the trigger structure can reach the same configuration from
  /// more than one trigger, so the matcher must deduplicate emissions.
  /// False proves exactly-once delivery statically, letting the matcher
  /// skip per-match fingerprinting (important for match-heavy patterns).
  ///
  /// Duplicates require one of:
  ///  - a simultaneous-end relation (several enders re-derive the
  ///    configuration from the regular buffers);
  ///  - two or more symbols with end triggers (members may end at the
  ///    same instant and each re-derive);
  ///  - an end-triggered symbol that can still be ongoing when a
  ///    configuration is first concluded (its later end re-derives).
  bool needs_dedup() const { return needs_dedup_; }

 private:
  std::vector<bool> match_on_start_;
  std::vector<bool> match_on_end_;
  std::vector<bool> excluded_while_ongoing_;
  std::vector<bool> has_simultaneous_end_;
  bool needs_dedup_ = true;
};

/// Analytic earliest detection time t_d of a fully known configuration
/// (Section 5.3.1): the first instant at which the pattern match is
/// certain, given that at instant t a situation is visible once started
/// and its end is unknown until reached. Returns the last end timestamp if
/// no earlier instant concludes the match (and kTimeMax if the
/// configuration does not match at all). Ignores windows and duration
/// constraints.
TimePoint EarliestDetection(const TemporalPattern& pattern,
                            const std::vector<Situation>& config);

}  // namespace tpstream

#endif  // TPSTREAM_ALGEBRA_DETECTION_H_
