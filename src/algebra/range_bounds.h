#ifndef TPSTREAM_ALGEBRA_RANGE_BOUNDS_H_
#define TPSTREAM_ALGEBRA_RANGE_BOUNDS_H_

#include <optional>

#include "algebra/interval_relation.h"
#include "common/situation.h"
#include "common/time.h"

namespace tpstream {

/// Inclusive range [lo, hi] of time points; empty when lo > hi.
struct TimeRange {
  TimePoint lo = kTimeMin;
  TimePoint hi = kTimeMax;

  bool empty() const { return lo > hi; }
  bool Contains(TimePoint t) const { return t >= lo && t <= hi; }

  static TimeRange All() { return TimeRange{}; }
  static TimeRange AtMost(TimePoint t) { return TimeRange{kTimeMin, t}; }
  static TimeRange AtLeast(TimePoint t) { return TimeRange{t, kTimeMax}; }
  static TimeRange Exactly(TimePoint t) { return TimeRange{t, t}; }
  /// Strictly-less-than / strictly-greater-than in the discrete domain.
  static TimeRange Below(TimePoint t) {
    return t == kTimeMin ? TimeRange{1, 0} : TimeRange{kTimeMin, t - 1};
  }
  static TimeRange Above(TimePoint t) {
    return t == kTimeMax ? TimeRange{1, 0} : TimeRange{t + 1, kTimeMax};
  }
};

/// Bounds on the start and end timestamps of counterpart situations, used
/// to turn a temporal relation into two range queries on a situation
/// buffer (Section 5.2, Figure 3).
struct RelationBounds {
  TimeRange ts_range;
  TimeRange te_range;
};

/// Computes the bounds on counterpart candidates for relation `r`, given
/// one `fixed` situation.
///
/// If `fixed_is_a`, `fixed` plays the role of A and the bounds describe
/// matching B situations; otherwise `fixed` is B and the bounds describe
/// matching A situations. Candidates are assumed *finished*.
///
/// `fixed` may be ongoing (te unknown); bounds then select exactly the
/// candidates for which the relation is already certain (Section 5.3).
/// Returns nullopt when no finished candidate can satisfy the relation.
std::optional<RelationBounds> BoundsForCounterpart(Relation r,
                                                   const Situation& fixed,
                                                   bool fixed_is_a);

}  // namespace tpstream

#endif  // TPSTREAM_ALGEBRA_RANGE_BOUNDS_H_
