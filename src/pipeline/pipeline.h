#ifndef TPSTREAM_PIPELINE_PIPELINE_H_
#define TPSTREAM_PIPELINE_PIPELINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/serde.h"
#include "common/event.h"
#include "common/schema.h"
#include "common/status.h"
#include "core/partitioned_operator.h"
#include "expr/expression.h"
#include "obs/metrics.h"
#include "ooo/reorder_buffer.h"

namespace tpstream {
namespace pipeline {

/// A processing stage: consumes events, emits zero or more events to the
/// next stage. Stages are composed by Pipeline; Finish() flushes buffered
/// state at end of stream (e.g. the reorder stage).
class Stage {
 public:
  virtual ~Stage() = default;

  virtual void Process(const Event& event) = 0;

  /// Move-aware variant. Stages that buffer or forward the event override
  /// this to move the payload; the default falls back to the const
  /// overload (correct for every stage, just pays a copy where the
  /// override would not).
  virtual void Process(Event&& event) {
    Process(static_cast<const Event&>(event));
  }

  virtual void Finish() {
    if (next_ != nullptr) next_->Finish();
  }

  /// Discards all processing state (buffered events, derived situations,
  /// matcher statistics) so the stage behaves as freshly constructed.
  /// Default: stateless, nothing to do.
  virtual void Reset() {}

  /// Serializes the stage's processing state as one kPipelineStage
  /// section. Default: stateless, an empty section — stateful stages
  /// (Reorder, Detect) override both this and Restore().
  virtual void Checkpoint(ckpt::Writer& w) const {
    const size_t cookie = w.BeginSection(ckpt::Tag::kPipelineStage);
    w.EndSection(cookie);
  }

  /// Restores a stage checkpoint (one kPipelineStage section). On error
  /// the stage must be Reset() or discarded.
  virtual Status Restore(ckpt::Reader& r) {
    const size_t end = r.BeginSection(ckpt::Tag::kPipelineStage);
    return r.EndSection(end);
  }

  /// Recovery replay marker (Durability contract): toggled around a
  /// log replay so side-effecting degradation paths (the reorder
  /// stage's late-event quarantine) stay exactly-once across crashes.
  /// Default: stateless stages ignore it.
  virtual void SetReplayMode(bool replaying) { (void)replaying; }

  /// Entry point used by the pipeline and upstream stages: counts the
  /// event (when instrumented) and forwards to Process().
  void Consume(const Event& event) {
    if (events_ctr_ != nullptr) events_ctr_->Inc();
    Process(event);
  }

  void Consume(Event&& event) {
    if (events_ctr_ != nullptr) events_ctr_->Inc();
    Process(std::move(event));
  }

  void set_next(Stage* next) { next_ = next; }
  void set_events_counter(obs::Counter* counter) { events_ctr_ = counter; }

 protected:
  void Emit(const Event& event) {
    if (next_ != nullptr) next_->Consume(event);
  }

  void Emit(Event&& event) {
    if (next_ != nullptr) next_->Consume(std::move(event));
  }

 private:
  Stage* next_ = nullptr;
  obs::Counter* events_ctr_ = nullptr;  // null when metrics are disabled
};

/// Declarative chaining of stream stages around TPStream operators — the
/// middleware-style composition (cf. JEPC [19]) used to deploy queries in
/// a processing pipeline:
///
///   pipeline::Pipeline p(sensor_schema);
///   auto status = p.Reorder(30)
///       .Filter(Gt(FieldRef(sensor_schema, "quality").value(),
///                  Literal(0.5)))
///       .Detect(query_spec)
///       .Sink([](const Event& match) { ... })
///       .Finalize();
///   p.Push(event);  ...  p.Finish();
///
/// Stages execute synchronously in order. Schema bookkeeping: Filter and
/// Reorder preserve the schema, Map replaces it, Detect replaces it with
/// the query's RETURN attributes.
///
/// Threading: a Pipeline has no internal synchronization and must only
/// be driven by one thread at a time (see docs/architecture.md,
/// "Concurrency contract"). To parallelize, run one pipeline per stream
/// or place a ParallelTPStream behind a custom sink.
class Pipeline {
 public:
  /// `metrics` (optional) instruments every stage: per-stage input
  /// counters `pipeline.stage<N>.<kind>.events`, plus the component
  /// metrics of Reorder (reorder.*) and Detect (deriver.* / matcher.* /
  /// operator.* / partitioned.* / optimizer.*) stages. A Detect stage
  /// whose options already carry a registry keeps it. The registry must
  /// outlive the pipeline; Reset() does not clear it (metrics are
  /// cumulative across restarts).
  explicit Pipeline(Schema input_schema,
                    obs::MetricsRegistry* metrics = nullptr)
      : schema_(std::move(input_schema)), metrics_(metrics) {}

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Drops events whose predicate is not satisfied.
  Pipeline& Filter(ExprPtr predicate);

  /// Rewrites the payload: one (name, expression) pair per output field.
  Pipeline& Map(std::vector<std::pair<std::string, ExprPtr>> projections);

  /// Repairs bounded out-of-order arrival (ooo::ReorderBuffer).
  Pipeline& Reorder(Duration slack);

  /// Full-options overload: wires the reorder stage's dead-letter sink
  /// and other knobs. A null `metrics` field inherits the pipeline's
  /// registry (matching the Duration overload's behaviour).
  Pipeline& Reorder(ooo::ReorderBuffer::Options options);

  /// Runs a TPStream query (partitioned if the spec says so); downstream
  /// stages see the match output events.
  Pipeline& Detect(QuerySpec spec,
                   TPStreamOperator::Options options = {});

  /// Terminal consumer. Further stages may still be appended (the sink
  /// observes and forwards).
  Pipeline& Sink(std::function<void(const Event&)> sink);

  /// Validates the chain (e.g. Detect schemas line up). Must be called
  /// before pushing; returns the first construction error otherwise.
  Status Finalize();

  void Push(const Event& event);

  /// Move overload: the event is moved through the stage chain (stages
  /// that buffer it — Reorder, Detect hand-offs — take ownership of the
  /// payload instead of copying it).
  void Push(Event&& event);

  /// Batched ingestion: pushes the events in order, equivalent to one
  /// Push() per event. The mutable-span overload moves each event.
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Flushes buffered stages at end of stream.
  void Finish();

  /// Restarts the pipeline on the same stage chain: every stage drops
  /// its processing state (Detect rebuilds its engine, so derived
  /// situations, matcher buffers and the adaptive statistics all start
  /// from scratch — previously the statistics leaked across restarts).
  /// The pipeline stays finalized; metrics keep accumulating.
  void Reset();

  /// Serializes every stage's processing state in chain order, stamped
  /// with the event-log offset (= num_pushed()). Checkpoints are taken
  /// between Push() calls; the pipeline must be finalized.
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a pipeline with the same (finalized)
  /// stage chain, validated by stage count. On success, `*offset` (when
  /// non-null) receives the event-log offset to replay from. On error
  /// the pipeline must be Reset() or discarded.
  Status Restore(ckpt::Reader& r, uint64_t* offset = nullptr);

  /// Marks the start/end of a recovery replay (forwarded to every
  /// stage); see Stage::SetReplayMode.
  void SetReplayMode(bool replaying);

  /// Events accepted by Push() since construction / Reset / Restore —
  /// the pipeline's event-log offset.
  int64_t num_pushed() const { return num_pushed_; }

  /// Schema of the events leaving the last stage.
  const Schema& output_schema() const { return schema_; }

 private:
  /// `kind` names the stage in the per-stage metrics.
  void Append(std::unique_ptr<Stage> stage, const std::string& kind);

  Schema schema_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<Stage>> stages_;
  Status deferred_error_;
  bool finalized_ = false;
  int64_t num_pushed_ = 0;
};

}  // namespace pipeline
}  // namespace tpstream

#endif  // TPSTREAM_PIPELINE_PIPELINE_H_
