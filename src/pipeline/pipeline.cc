#include "pipeline/pipeline.h"

namespace tpstream {
namespace pipeline {

namespace {

class FilterStage final : public Stage {
 public:
  explicit FilterStage(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  void Process(const Event& event) override {
    if (EvalPredicate(*predicate_, event.payload)) Emit(event);
  }

 private:
  ExprPtr predicate_;
};

class MapStage final : public Stage {
 public:
  explicit MapStage(std::vector<ExprPtr> exprs) : exprs_(std::move(exprs)) {}

  void Process(const Event& event) override {
    Tuple payload;
    payload.reserve(exprs_.size());
    for (const ExprPtr& expr : exprs_) {
      payload.push_back(expr->Eval(event.payload));
    }
    Emit(Event(std::move(payload), event.t));
  }

 private:
  std::vector<ExprPtr> exprs_;
};

class ReorderStage final : public Stage {
 public:
  explicit ReorderStage(Duration slack)
      : buffer_(ooo::ReorderBuffer::Options{slack}) {}

  void Process(const Event& event) override {
    buffer_.Push(event, [this](const Event& e) { Emit(e); });
  }

  void Finish() override {
    buffer_.Flush([this](const Event& e) { Emit(e); });
    Stage::Finish();
  }

 private:
  ooo::ReorderBuffer buffer_;
};

class DetectStage final : public Stage {
 public:
  DetectStage(QuerySpec spec, TPStreamOperator::Options options)
      : engine_(std::move(spec), std::move(options),
                [this](const Event& match) { Emit(match); }) {}

  void Process(const Event& event) override { engine_.Push(event); }

 private:
  PartitionedTPStream engine_;
};

class SinkStage final : public Stage {
 public:
  explicit SinkStage(std::function<void(const Event&)> sink)
      : sink_(std::move(sink)) {}

  void Process(const Event& event) override {
    sink_(event);
    Emit(event);
  }

 private:
  std::function<void(const Event&)> sink_;
};

}  // namespace

void Pipeline::Append(std::unique_ptr<Stage> stage) {
  if (!stages_.empty()) stages_.back()->set_next(stage.get());
  stages_.push_back(std::move(stage));
}

Pipeline& Pipeline::Filter(ExprPtr predicate) {
  if (predicate == nullptr) {
    deferred_error_ = Status::InvalidArgument("Filter predicate is null");
    return *this;
  }
  Append(std::make_unique<FilterStage>(std::move(predicate)));
  return *this;
}

Pipeline& Pipeline::Map(
    std::vector<std::pair<std::string, ExprPtr>> projections) {
  std::vector<Field> fields;
  std::vector<ExprPtr> exprs;
  fields.reserve(projections.size());
  exprs.reserve(projections.size());
  for (auto& [name, expr] : projections) {
    if (expr == nullptr) {
      deferred_error_ =
          Status::InvalidArgument("Map expression '" + name + "' is null");
      return *this;
    }
    fields.push_back(Field{name, ValueType::kNull});
    exprs.push_back(std::move(expr));
  }
  schema_ = Schema(std::move(fields));
  Append(std::make_unique<MapStage>(std::move(exprs)));
  return *this;
}

Pipeline& Pipeline::Reorder(Duration slack) {
  if (slack < 0) {
    deferred_error_ = Status::InvalidArgument("Reorder slack is negative");
    return *this;
  }
  Append(std::make_unique<ReorderStage>(slack));
  return *this;
}

Pipeline& Pipeline::Detect(QuerySpec spec,
                           TPStreamOperator::Options options) {
  if (Status s = spec.Validate(); !s.ok()) {
    deferred_error_ = s;
    return *this;
  }
  // The stage consumes events shaped like the query's input schema; the
  // current pipeline schema must provide those fields by name. If they
  // sit at different positions, an implicit Map remaps them (the query's
  // expressions are compiled positionally).
  std::vector<ExprPtr> remap;
  bool identity = spec.input_schema.num_fields() == schema_.num_fields();
  for (int i = 0; i < spec.input_schema.num_fields(); ++i) {
    const Field& field = spec.input_schema.field(i);
    const int at = schema_.IndexOf(field.name);
    if (at < 0) {
      deferred_error_ = Status::InvalidArgument(
          "Detect input field '" + field.name +
          "' is not produced by the preceding stages");
      return *this;
    }
    if (at != i) identity = false;
    remap.push_back(FieldRef(at, field.name));
  }
  if (!identity) {
    Append(std::make_unique<MapStage>(std::move(remap)));
  }
  std::vector<Field> out_fields;
  for (const std::string& name : spec.OutputNames()) {
    out_fields.push_back(Field{name, ValueType::kNull});
  }
  schema_ = Schema(std::move(out_fields));
  Append(std::make_unique<DetectStage>(std::move(spec), std::move(options)));
  return *this;
}

Pipeline& Pipeline::Sink(std::function<void(const Event&)> sink) {
  if (sink == nullptr) {
    deferred_error_ = Status::InvalidArgument("Sink callback is null");
    return *this;
  }
  Append(std::make_unique<SinkStage>(std::move(sink)));
  return *this;
}

Status Pipeline::Finalize() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (stages_.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  finalized_ = true;
  return Status::OK();
}

void Pipeline::Push(const Event& event) {
  if (!finalized_) return;  // Finalize() reports the error
  stages_.front()->Process(event);
}

void Pipeline::Finish() {
  if (!finalized_) return;
  stages_.front()->Finish();
}

}  // namespace pipeline
}  // namespace tpstream
