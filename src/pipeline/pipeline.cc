#include "pipeline/pipeline.h"

namespace tpstream {
namespace pipeline {

namespace {

class FilterStage final : public Stage {
 public:
  explicit FilterStage(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}

  void Process(const Event& event) override {
    if (EvalPredicate(*predicate_, event.payload)) Emit(event);
  }

  void Process(Event&& event) override {
    if (EvalPredicate(*predicate_, event.payload)) Emit(std::move(event));
  }

 private:
  ExprPtr predicate_;
};

class MapStage final : public Stage {
 public:
  explicit MapStage(std::vector<ExprPtr> exprs) : exprs_(std::move(exprs)) {}

  void Process(const Event& event) override {
    Tuple payload;
    payload.reserve(exprs_.size());
    for (const ExprPtr& expr : exprs_) {
      payload.push_back(expr->Eval(event.payload));
    }
    Emit(Event(std::move(payload), event.t));
  }

 private:
  std::vector<ExprPtr> exprs_;
};

class ReorderStage final : public Stage {
 public:
  explicit ReorderStage(ooo::ReorderBuffer::Options options)
      : options_(options), buffer_(options) {}

  void Process(const Event& event) override {
    buffer_.Push(event, [this](const Event& e) { Emit(e); });
  }

  void Process(Event&& event) override {
    buffer_.Push(std::move(event), [this](const Event& e) { Emit(e); });
  }

  void Finish() override {
    buffer_.Flush([this](const Event& e) { Emit(e); });
    Stage::Finish();
  }

  void Reset() override { buffer_ = ooo::ReorderBuffer(options_); }

  void Checkpoint(ckpt::Writer& w) const override {
    const size_t cookie = w.BeginSection(ckpt::Tag::kPipelineStage);
    buffer_.Checkpoint(w);
    w.EndSection(cookie);
  }

  Status Restore(ckpt::Reader& r) override {
    const size_t end = r.BeginSection(ckpt::Tag::kPipelineStage);
    Status status = buffer_.Restore(r);
    if (!status.ok()) return status;
    return r.EndSection(end);
  }

  /// Late events re-dropped during a recovery replay were quarantined
  /// by the original run; suppress the duplicate dead-letter delivery
  /// (counters still advance — see ReorderBuffer::SetReplayMode).
  void SetReplayMode(bool replaying) override {
    buffer_.SetReplayMode(replaying);
  }

 private:
  ooo::ReorderBuffer::Options options_;
  ooo::ReorderBuffer buffer_;
};

class DetectStage final : public Stage {
 public:
  DetectStage(QuerySpec spec, TPStreamOperator::Options options)
      : spec_(std::move(spec)), options_(std::move(options)) {
    Rebuild();
  }

  void Process(const Event& event) override { engine_->Push(event); }

  void Process(Event&& event) override { engine_->Push(std::move(event)); }

  /// End-of-stream synchronization: settles the engine's published
  /// gauges (TPStreamOperator::Flush contract) before finishing
  /// downstream stages. The stream may resume afterwards.
  void Finish() override {
    engine_->Flush();
    Stage::Finish();
  }

  /// A fresh engine drops derived situations, matcher buffers and the
  /// adaptive statistics — the restart semantics Pipeline::Reset()
  /// promises (the statistics used to leak across restarts).
  void Reset() override { Rebuild(); }

  void Checkpoint(ckpt::Writer& w) const override {
    const size_t cookie = w.BeginSection(ckpt::Tag::kPipelineStage);
    engine_->Checkpoint(w);
    w.EndSection(cookie);
  }

  Status Restore(ckpt::Reader& r) override {
    const size_t end = r.BeginSection(ckpt::Tag::kPipelineStage);
    Status status = engine_->Restore(r);
    if (!status.ok()) return status;
    return r.EndSection(end);
  }

 private:
  void Rebuild() {
    engine_ = std::make_unique<PartitionedTPStream>(
        spec_, options_, [this](const Event& match) { Emit(match); });
  }

  QuerySpec spec_;
  TPStreamOperator::Options options_;
  std::unique_ptr<PartitionedTPStream> engine_;
};

class SinkStage final : public Stage {
 public:
  explicit SinkStage(std::function<void(const Event&)> sink)
      : sink_(std::move(sink)) {}

  void Process(const Event& event) override {
    sink_(event);
    Emit(event);
  }

  void Process(Event&& event) override {
    sink_(event);
    Emit(std::move(event));
  }

 private:
  std::function<void(const Event&)> sink_;
};

}  // namespace

void Pipeline::Append(std::unique_ptr<Stage> stage,
                      const std::string& kind) {
  if (metrics_ != nullptr) {
    stage->set_events_counter(metrics_->GetCounter(
        "pipeline.stage" + std::to_string(stages_.size()) + "." + kind +
        ".events"));
  }
  if (!stages_.empty()) stages_.back()->set_next(stage.get());
  stages_.push_back(std::move(stage));
}

Pipeline& Pipeline::Filter(ExprPtr predicate) {
  if (predicate == nullptr) {
    deferred_error_ = Status::InvalidArgument("Filter predicate is null");
    return *this;
  }
  Append(std::make_unique<FilterStage>(std::move(predicate)), "filter");
  return *this;
}

Pipeline& Pipeline::Map(
    std::vector<std::pair<std::string, ExprPtr>> projections) {
  std::vector<Field> fields;
  std::vector<ExprPtr> exprs;
  fields.reserve(projections.size());
  exprs.reserve(projections.size());
  for (auto& [name, expr] : projections) {
    if (expr == nullptr) {
      deferred_error_ =
          Status::InvalidArgument("Map expression '" + name + "' is null");
      return *this;
    }
    fields.push_back(Field{name, ValueType::kNull});
    exprs.push_back(std::move(expr));
  }
  schema_ = Schema(std::move(fields));
  Append(std::make_unique<MapStage>(std::move(exprs)), "map");
  return *this;
}

Pipeline& Pipeline::Reorder(Duration slack) {
  ooo::ReorderBuffer::Options options;
  options.slack = slack;
  return Reorder(options);
}

Pipeline& Pipeline::Reorder(ooo::ReorderBuffer::Options options) {
  if (options.slack < 0) {
    deferred_error_ = Status::InvalidArgument("Reorder slack is negative");
    return *this;
  }
  if (options.metrics == nullptr) options.metrics = metrics_;
  Append(std::make_unique<ReorderStage>(options), "reorder");
  return *this;
}

Pipeline& Pipeline::Detect(QuerySpec spec,
                           TPStreamOperator::Options options) {
  if (Status s = spec.Validate(); !s.ok()) {
    deferred_error_ = s;
    return *this;
  }
  // The stage consumes events shaped like the query's input schema; the
  // current pipeline schema must provide those fields by name. If they
  // sit at different positions, an implicit Map remaps them (the query's
  // expressions are compiled positionally).
  std::vector<ExprPtr> remap;
  bool identity = spec.input_schema.num_fields() == schema_.num_fields();
  for (int i = 0; i < spec.input_schema.num_fields(); ++i) {
    const Field& field = spec.input_schema.field(i);
    const int at = schema_.IndexOf(field.name);
    if (at < 0) {
      deferred_error_ = Status::InvalidArgument(
          "Detect input field '" + field.name +
          "' is not produced by the preceding stages");
      return *this;
    }
    if (at != i) identity = false;
    remap.push_back(FieldRef(at, field.name));
  }
  if (!identity) {
    Append(std::make_unique<MapStage>(std::move(remap)), "remap");
  }
  std::vector<Field> out_fields;
  for (const std::string& name : spec.OutputNames()) {
    out_fields.push_back(Field{name, ValueType::kNull});
  }
  schema_ = Schema(std::move(out_fields));
  if (options.metrics == nullptr) options.metrics = metrics_;
  Append(std::make_unique<DetectStage>(std::move(spec), std::move(options)),
         "detect");
  return *this;
}

Pipeline& Pipeline::Sink(std::function<void(const Event&)> sink) {
  if (sink == nullptr) {
    deferred_error_ = Status::InvalidArgument("Sink callback is null");
    return *this;
  }
  Append(std::make_unique<SinkStage>(std::move(sink)), "sink");
  return *this;
}

Status Pipeline::Finalize() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (stages_.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  finalized_ = true;
  return Status::OK();
}

void Pipeline::Push(const Event& event) {
  if (!finalized_) return;  // Finalize() reports the error
  ++num_pushed_;
  stages_.front()->Consume(event);
}

void Pipeline::Push(Event&& event) {
  if (!finalized_) return;  // Finalize() reports the error
  ++num_pushed_;
  stages_.front()->Consume(std::move(event));
}

void Pipeline::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(std::move(event));
}

void Pipeline::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void Pipeline::Finish() {
  if (!finalized_) return;
  stages_.front()->Finish();
}

void Pipeline::Reset() {
  num_pushed_ = 0;
  for (auto& stage : stages_) stage->Reset();
}

void Pipeline::SetReplayMode(bool replaying) {
  for (auto& stage : stages_) stage->SetReplayMode(replaying);
}

void Pipeline::Checkpoint(ckpt::Writer& w) const {
  w.Envelope(static_cast<uint64_t>(num_pushed_));
  const size_t cookie = w.BeginSection(ckpt::Tag::kPipeline);
  w.U32(static_cast<uint32_t>(stages_.size()));
  for (const auto& stage : stages_) stage->Checkpoint(w);
  w.EndSection(cookie);
}

Status Pipeline::Restore(ckpt::Reader& r, uint64_t* offset) {
  if (!finalized_) {
    return Status::InvalidArgument(
        "checkpoint: pipeline is not finalized; build the same stage "
        "chain and Finalize() before restoring");
  }
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kPipeline);
  const uint32_t num_stages = r.U32();
  if (r.ok() && num_stages != stages_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: stage count mismatch (different pipeline chain?)"));
    return r.status();
  }
  for (auto& stage : stages_) {
    status = stage->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  num_pushed_ = static_cast<int64_t>(off);
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

}  // namespace pipeline
}  // namespace tpstream
