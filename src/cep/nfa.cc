#include "cep/nfa.h"

namespace tpstream {
namespace cep {

NfaEngine::NfaEngine(CepPattern pattern, Callback callback)
    : pattern_(std::move(pattern)), callback_(std::move(callback)) {}

void NfaEngine::BeginStep(Run* run, int step, const Event& event) {
  run->step = step;
  run->spans.emplace_back(event.t, event.t);
  run->aggs.emplace_back(pattern_.steps[step].aggregates);
  run->aggs.back().Init(event.payload);
}

void NfaEngine::ExtendStep(Run* run, const Event& event) {
  run->spans.back().second = event.t;
  run->aggs.back().Update(event.payload);
}

void NfaEngine::MaybeEmit(const Run& run, TimePoint now) {
  if (run.step != static_cast<int>(pattern_.steps.size()) - 1) return;
  ++num_matches_;
  if (!callback_) return;
  CepMatch match;
  match.detected_at = now;
  match.step_spans = run.spans;
  match.step_aggregates.reserve(run.aggs.size());
  for (const AggregatorSet& aggs : run.aggs) {
    match.step_aggregates.push_back(aggs.Snapshot());
  }
  callback_(match);
}

void NfaEngine::Push(const Event& event) {
  next_runs_.clear();
  const int last = static_cast<int>(pattern_.steps.size()) - 1;

  for (Run& run : runs_) {
    if (pattern_.within > 0 && event.t - run.start > pattern_.within) {
      continue;  // window expired
    }
    const bool can_stay = pattern_.steps[run.step].one_or_more &&
                          StepSatisfied(run.step, event);
    const bool can_advance =
        run.step < last && StepSatisfied(run.step + 1, event);

    if (can_stay && can_advance) {
      // Fork: one run stays in the Kleene step, one advances.
      Run advanced = run;
      BeginStep(&advanced, run.step + 1, event);
      MaybeEmit(advanced, event.t);
      if (advanced.step < last || pattern_.steps[last].one_or_more) {
        next_runs_.push_back(std::move(advanced));
      }
      ExtendStep(&run, event);
      MaybeEmit(run, event.t);
      next_runs_.push_back(std::move(run));
    } else if (can_advance) {
      BeginStep(&run, run.step + 1, event);
      MaybeEmit(run, event.t);
      if (run.step < last || pattern_.steps[last].one_or_more) {
        next_runs_.push_back(std::move(run));
      }
    } else if (can_stay) {
      ExtendStep(&run, event);
      MaybeEmit(run, event.t);
      next_runs_.push_back(std::move(run));
    } else if (pattern_.policy == SelectionPolicy::kSkipTillNextMatch) {
      // Irrelevant event: the run waits for the next relevant one.
      next_runs_.push_back(std::move(run));
    }
    // Otherwise the run dies (strict contiguity).
  }

  // Spawn a fresh run if the event can begin the pattern.
  if (StepSatisfied(0, event)) {
    Run run;
    run.start = event.t;
    BeginStep(&run, 0, event);
    MaybeEmit(run, event.t);
    if (last > 0 || pattern_.steps[0].one_or_more) {
      next_runs_.push_back(std::move(run));
    }
  }

  runs_.swap(next_runs_);
}

}  // namespace cep
}  // namespace tpstream
