#ifndef TPSTREAM_CEP_NFA_H_
#define TPSTREAM_CEP_NFA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/time.h"
#include "expr/aggregate.h"
#include "expr/expression.h"

namespace tpstream {
namespace cep {

/// A sequential, point-based CEP pattern (SASE+ style): an ordered list of
/// steps matched against contiguous events. A non-Kleene step consumes
/// exactly one event; a Kleene step (`one_or_more`) consumes one or more.
/// The engine uses *strict contiguity*: every incoming event must extend
/// an active run, or the run dies. This is the semantics the paper's
/// straw-man approaches rely on for deriving situations (IS S+ IS) and for
/// single-query temporal matching at event granularity.
struct PatternStep {
  std::string name;
  ExprPtr predicate;
  bool one_or_more = false;
  /// Aggregates computed over the events this step consumes (used by the
  /// two-phase straw man to summarize situations).
  std::vector<AggregateSpec> aggregates;
};

/// Event-selection strategy (the semantics dimension surveyed in [27]):
///  - kStrictContiguity: every event must extend an active run or the run
///    dies — the semantics situation derivation needs (!S S+ !S);
///  - kSkipTillNextMatch: irrelevant events are ignored, runs wait for
///    the next relevant one. Runs then only expire through the window,
///    so `within > 0` is strongly advised.
enum class SelectionPolicy : uint8_t {
  kStrictContiguity,
  kSkipTillNextMatch,
};

struct CepPattern {
  std::vector<PatternStep> steps;
  Duration within = 0;  // 0: unbounded
  SelectionPolicy policy = SelectionPolicy::kStrictContiguity;
};

/// A completed pattern instance. `step_spans[i]` is the [first, last]
/// event-timestamp pair consumed by step i; `step_aggregates[i]` holds the
/// aggregate values of step i (empty if the step declares none).
struct CepMatch {
  std::vector<std::pair<TimePoint, TimePoint>> step_spans;
  std::vector<Tuple> step_aggregates;
  TimePoint detected_at = 0;
};

/// Nondeterministic automaton evaluating a CepPattern over an event
/// stream. On events satisfying both "stay in Kleene step" and "advance to
/// the next step", runs fork (all matches are reported). A fresh run is
/// spawned whenever an event satisfies the first step, so overlapping
/// matches are found.
class NfaEngine {
 public:
  using Callback = std::function<void(const CepMatch&)>;

  NfaEngine(CepPattern pattern, Callback callback);

  void Push(const Event& event);

  /// Currently active partial runs (the memory-pressure proxy of the
  /// straw-man systems, Section 6.2.2).
  size_t active_runs() const { return runs_.size(); }
  int64_t num_matches() const { return num_matches_; }

 private:
  struct Run {
    int step = 0;
    TimePoint start = 0;
    std::vector<std::pair<TimePoint, TimePoint>> spans;
    std::vector<AggregatorSet> aggs;  // one per step reached so far
  };

  /// Starts step `step` of `run` with `event`; completes the run (emits)
  /// if it was the final step and nothing more can extend... final-step
  /// Kleene runs also emit on every extension.
  void BeginStep(Run* run, int step, const Event& event);
  void ExtendStep(Run* run, const Event& event);
  void MaybeEmit(const Run& run, TimePoint now);

  bool StepSatisfied(int step, const Event& event) const {
    return EvalPredicate(*pattern_.steps[step].predicate, event.payload);
  }

  CepPattern pattern_;
  Callback callback_;
  std::vector<Run> runs_;
  std::vector<Run> next_runs_;
  int64_t num_matches_ = 0;
};

}  // namespace cep
}  // namespace tpstream

#endif  // TPSTREAM_CEP_NFA_H_
