#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace tpstream {
namespace obs {

namespace {

void AtomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // NaN/Inf are not valid JSON
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(std::string* out, int64_t v) {
  out->append(std::to_string(v));
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram

int LatencyHistogram::BucketIndex(int64_t value) {
  if (value < 2 * kSub) return static_cast<int>(value);
  const int exponent =
      std::bit_width(static_cast<uint64_t>(value)) - 1;  // floor(log2)
  const int sub =
      static_cast<int>((value >> (exponent - kSubBits)) & (kSub - 1));
  return 2 * kSub + (exponent - kSubBits - 1) * kSub + sub;
}

int64_t LatencyHistogram::BucketLowerBound(int index) {
  if (index < 2 * kSub) return index;
  const int octave = (index - 2 * kSub) / kSub;
  const int sub = (index - 2 * kSub) % kSub;
  const int exponent = octave + kSubBits + 1;
  return static_cast<int64_t>(kSub + sub) << (exponent - kSubBits);
}

int64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < 2 * kSub) return index;
  const int octave = (index - 2 * kSub) / kSub;
  const int exponent = octave + kSubBits + 1;
  return BucketLowerBound(index) + (int64_t{1} << (exponent - kSubBits)) - 1;
}

void LatencyHistogram::Record(int64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  if (value < 0) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else if (value >= kOverflowThreshold) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  snap.underflow = underflow_.load(std::memory_order_relaxed);
  snap.overflow = overflow_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      snap.buckets.push_back(
          HistogramBucket{BucketLowerBound(i), BucketUpperBound(i), c});
    }
  }
  return snap;
}

void LatencyHistogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<int64_t>::max(), std::memory_order_relaxed);
  max_.store(std::numeric_limits<int64_t>::min(), std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int64_t HistogramSnapshot::Quantile(double p) const {
  if (count <= 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  int64_t rank = static_cast<int64_t>(std::ceil(clamped / 100.0 * count));
  rank = std::clamp<int64_t>(rank, 1, count);

  int64_t cumulative = static_cast<int64_t>(underflow);
  if (rank <= cumulative) return min;  // saturated low recordings
  for (const HistogramBucket& b : buckets) {
    cumulative += static_cast<int64_t>(b.count);
    if (rank <= cumulative) return std::min(b.upper, max);
  }
  return max;  // overflow bucket (or rounding slack)
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  underflow += other.underflow;
  overflow += other.overflow;

  // Both bucket lists are ascending over the same fixed grid.
  std::vector<HistogramBucket> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t i = 0;
  size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j == other.buckets.size() ||
        (i < buckets.size() && buckets[i].lower < other.buckets[j].lower)) {
      merged.push_back(buckets[i++]);
    } else if (i == buckets.size() ||
               other.buckets[j].lower < buckets[i].lower) {
      merged.push_back(other.buckets[j++]);
    } else {
      HistogramBucket b = buckets[i++];
      b.count += other.buckets[j++].count;
      merged.push_back(b);
    }
  }
  buckets = std::move(merged);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : counters) {
    out.append("counter ").append(name).push_back(' ');
    AppendInt(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out.append("gauge ").append(name).push_back(' ');
    out.append(buf);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  " count=%lld sum=%lld min=%lld max=%lld",
                  static_cast<long long>(hist.count),
                  static_cast<long long>(hist.sum),
                  static_cast<long long>(hist.min),
                  static_cast<long long>(hist.max));
    out.append("histogram ").append(name).append(buf);
    std::snprintf(buf, sizeof(buf), " p50=%lld p95=%lld p99=%lld",
                  static_cast<long long>(hist.Quantile(50)),
                  static_cast<long long>(hist.Quantile(95)),
                  static_cast<long long>(hist.Quantile(99)));
    out.append(buf);
    out.push_back('\n');
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.push_back('{');

  out.append("\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendInt(&out, value);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendJsonDouble(&out, value);
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.append(":{\"count\":");
    AppendInt(&out, hist.count);
    out.append(",\"sum\":");
    AppendInt(&out, hist.sum);
    out.append(",\"min\":");
    AppendInt(&out, hist.min);
    out.append(",\"max\":");
    AppendInt(&out, hist.max);
    out.append(",\"underflow\":");
    AppendInt(&out, static_cast<int64_t>(hist.underflow));
    out.append(",\"overflow\":");
    AppendInt(&out, static_cast<int64_t>(hist.overflow));
    out.append(",\"p50\":");
    AppendInt(&out, hist.Quantile(50));
    out.append(",\"p95\":");
    AppendInt(&out, hist.Quantile(95));
    out.append(",\"p99\":");
    AppendInt(&out, hist.Quantile(99));
    out.append(",\"buckets\":[");
    bool first_bucket = true;
    for (const HistogramBucket& b : hist.buckets) {
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      AppendInt(&out, b.lower);
      out.push_back(',');
      AppendInt(&out, b.upper);
      out.push_back(',');
      AppendInt(&out, static_cast<int64_t>(b.count));
      out.push_back(']');
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist->Snapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace obs
}  // namespace tpstream
