#ifndef TPSTREAM_OBS_METRICS_H_
#define TPSTREAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tpstream {
namespace obs {

/// Observability primitives for the TPStream engine.
///
/// Design goals (see docs/architecture.md, "Observability"):
///  * lock-light hot path: recording into a Counter / Gauge /
///    LatencyHistogram is a handful of relaxed atomic operations, no
///    locks. The registry mutex is only taken when a metric is first
///    registered (construction time) and when a snapshot is taken;
///  * mergeable: snapshots of distinct registries combine with Merge(),
///    so the parallel operator's workers record into thread-local
///    registries and readers merge on demand (TSan-clean by
///    construction, consistent with the concurrency contract of PR 1);
///  * exact at quiescence: all writes are relaxed atomics, so a snapshot
///    taken while writers are running is a monotone, possibly slightly
///    stale view; once the producing component has been flushed (and a
///    synchronizing operation such as ParallelTPStream::Flush() has run),
///    snapshots are exact.
///
/// Metric naming scheme: `<component>.<metric>` with lowercase dotted
/// segments, e.g. `deriver.situations_finished`,
/// `matcher.detection_latency`. Re-registering a name returns the same
/// metric object, so the per-partition operators of a
/// PartitionedTPStream transparently aggregate into one set of
/// process-wide counters.

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Increment that pins at int64 max instead of wrapping. For
  /// upper-bound accounting (e.g. `robust.lost_match_upper_bound`) whose
  /// deltas are themselves saturated products: repeated Inc(kMax) would
  /// wrap the plain counter and understate the bound. `delta` must be
  /// non-negative.
  void IncSaturating(int64_t delta = 1) {
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (true) {
      const int64_t next = (cur > kMax - delta) ? kMax : cur + delta;
      if (value_.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
        return;
      }
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, watermarks, EMAs).
/// Merging snapshots *sums* gauges: per-worker gauges are additive views
/// of a partitioned whole (e.g. per-worker partition counts).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// One exported histogram bucket: inclusive value range [lower, upper].
struct HistogramBucket {
  int64_t lower = 0;
  int64_t upper = 0;
  uint64_t count = 0;

  friend bool operator==(const HistogramBucket&,
                         const HistogramBucket&) = default;
};

/// Point-in-time copy of a LatencyHistogram, detached from the atomics.
/// Mergeable: merging two snapshots is exactly equivalent to having
/// recorded both value sequences into one histogram.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;  // sum of the *raw* recorded values (incl. clamped)
  int64_t min = 0;  // 0 when empty
  int64_t max = 0;  // 0 when empty
  uint64_t underflow = 0;  // recordings < 0 (bucket-clamped, counted here)
  uint64_t overflow = 0;   // recordings >= 2^40
  std::vector<HistogramBucket> buckets;  // non-empty buckets, ascending

  /// Nearest-rank quantile, `p` in [0, 100]. The returned value is the
  /// upper bound of the bucket holding the rank (capped at the exact
  /// recorded maximum), so it is >= the true quantile and off by at most
  /// one bucket width (<= 12.5% relative error for in-range values).
  /// Ranks landing in the underflow bucket report the exact minimum;
  /// ranks landing in the overflow bucket report the exact maximum.
  int64_t Quantile(double p) const;

  void Merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-bucket log-linear histogram of int64 samples (latencies in any
/// unit: ticks, microseconds, ...). Values 0..15 get exact buckets; every
/// power-of-two octave up to 2^40 is split into 8 sub-buckets (relative
/// error <= 1/8). Out-of-range values saturate into dedicated
/// underflow/overflow buckets instead of invoking UB; the exact raw
/// min/max/sum are tracked alongside. Recording is a few relaxed atomic
/// adds; concurrent recording from many threads is safe.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;           // 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;   // values < 2*kSub are exact
  static constexpr int kMaxExponent = 40;      // in-range: [0, 2^40)
  static constexpr int64_t kOverflowThreshold = int64_t{1} << kMaxExponent;
  static constexpr int kNumBuckets =
      2 * kSub + (kMaxExponent - kSubBits - 1) * kSub;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(int64_t value);

  HistogramSnapshot Snapshot() const;
  void Reset();

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Bucket geometry, exposed for the exporters and the property tests.
  /// `value` must be in [0, kOverflowThreshold).
  static int BucketIndex(int64_t value);
  static int64_t BucketLowerBound(int index);
  static int64_t BucketUpperBound(int index);  // inclusive

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
  std::atomic<uint64_t> underflow_{0};
  std::atomic<uint64_t> overflow_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of a whole registry. Counters and histograms merge
/// additively; gauges merge by summation (see Gauge).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);

  /// Deterministic line-oriented text: counters, then gauges, then
  /// histograms, each section sorted by metric name. Stable across runs
  /// for identical contents (golden-file friendly).
  std::string ToText() const;

  /// Machine-readable JSON:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  ///                          "underflow":..,"overflow":..,
  ///                          "p50":..,"p95":..,"p99":..,
  ///                          "buckets":[[lower,upper,count],...]}}}
  /// Validated by cmake/check_metrics_json.cmake in CI.
  std::string ToJson() const;
};

/// Named metric directory. Handles returned by the Get* methods are
/// stable for the registry's lifetime; callers resolve them once (at
/// construction) and record lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered). Intended
  /// for tests and between benchmark repetitions; not synchronized with
  /// concurrent writers beyond atomicity.
  void Reset();

 private:
  mutable std::mutex mutex_;  // guards the maps, never the hot path
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace tpstream

#endif  // TPSTREAM_OBS_METRICS_H_
