#include "robust/overload_policy.h"

namespace tpstream {
namespace robust {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropNewest:
      return "drop_newest";
    case BackpressurePolicy::kDropOldest:
      return "drop_oldest";
  }
  return "unknown";
}

}  // namespace robust
}  // namespace tpstream
