#ifndef TPSTREAM_ROBUST_SATURATING_H_
#define TPSTREAM_ROBUST_SATURATING_H_

#include <cstdint>
#include <limits>

namespace tpstream {
namespace robust {

/// Saturating arithmetic for overload accounting (Degradation contract):
/// shed counts and lost-match upper bounds are products of buffer sizes
/// and can exceed int64 range under sustained flooding. A bound that
/// wraps is worse than useless — it understates the loss — so every
/// multiplied or accumulated overload statistic pins at int64 max
/// instead. Domain is non-negative (counts); callers never pass negative
/// operands.

constexpr int64_t SaturatingAdd(int64_t a, int64_t b) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  return (a > kMax - b) ? kMax : a + b;
}

constexpr int64_t SaturatingMul(int64_t a, int64_t b) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (a == 0 || b == 0) return 0;
  return (a > kMax / b) ? kMax : a * b;
}

}  // namespace robust
}  // namespace tpstream

#endif  // TPSTREAM_ROBUST_SATURATING_H_
