#ifndef TPSTREAM_ROBUST_OVERLOAD_POLICY_H_
#define TPSTREAM_ROBUST_OVERLOAD_POLICY_H_

#include <cstddef>

namespace tpstream {
namespace robust {

/// What the ParallelTPStream producer does when a worker's SPSC ring is
/// full (see docs/architecture.md, "Degradation contract"):
///  * kBlock       — spin, yield, then park until a slot frees (the
///                   lossless default; push latency is unbounded);
///  * kDropNewest  — after a bounded spin, quarantine the batch being
///                   submitted to the dead-letter sink (bounded push
///                   latency; the newest data is shed);
///  * kDropOldest  — grant the worker a drop credit so it discards the
///                   oldest in-flight batch (quarantined by the worker),
///                   then retry for a bounded spin; if the worker is
///                   stuck mid-batch the producer falls back to shedding
///                   the new batch (counted separately) so push latency
///                   stays bounded.
enum class BackpressurePolicy { kBlock, kDropNewest, kDropOldest };

const char* BackpressurePolicyName(BackpressurePolicy policy);

/// Hard resource caps for one TPStream operator (per partition when the
/// query is partitioned). All caps default to 0 = unbounded, preserving
/// the pre-existing behaviour; setting a cap turns unbounded growth into
/// accounted shedding (`robust.*` counters, StatusCode::kResourceExhausted
/// on Status-returning paths).
struct OverloadPolicy {
  /// Maximum finished situations retained per SituationBuffer (one
  /// buffer per pattern symbol). When an append exceeds the cap the
  /// *oldest* buffered situations are evicted and counted
  /// (`robust.shed_situations`, with `robust.lost_match_upper_bound`
  /// tracking an upper bound on the then-enumerable matches lost).
  /// Values < 1 other than 0 are treated as 1 (the newest situation is
  /// always retained so incremental matching stays well-defined).
  size_t max_situations_per_buffer = 0;

  /// Maximum started (open) situations a low-latency trigger may seed
  /// its working set with — the joiner's working-set depth cap. The
  /// trigger enumerates subsets of this pool (2^n probes), so the cap
  /// bounds both memory and per-trigger work. The oldest open
  /// situations are shed from the pool first
  /// (`robust.shed_trigger_candidates`).
  size_t max_trigger_pool = 0;

  bool unbounded() const {
    return max_situations_per_buffer == 0 && max_trigger_pool == 0;
  }
};

}  // namespace robust
}  // namespace tpstream

#endif  // TPSTREAM_ROBUST_OVERLOAD_POLICY_H_
