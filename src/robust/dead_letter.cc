#include "robust/dead_letter.h"

namespace tpstream {
namespace robust {

const char* DeadLetterKindName(DeadLetterKind kind) {
  switch (kind) {
    case DeadLetterKind::kCsvRow:
      return "csv_row";
    case DeadLetterKind::kLateEvent:
      return "late_event";
    case DeadLetterKind::kShedBatch:
      return "shed_batch";
    case DeadLetterKind::kTornLogRecord:
      return "torn_log_record";
    case DeadLetterKind::kCorruptCheckpoint:
      return "corrupt_checkpoint";
  }
  return "unknown";
}

Status CollectingDeadLetterSink::Consume(DeadLetterItem item) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.size() >= capacity_) {
    ++dropped_;
    return Status::ResourceExhausted(
        "dead-letter sink full (capacity " + std::to_string(capacity_) +
        "); dropped " + DeadLetterKindName(item.kind) + " item");
  }
  items_.push_back(std::move(item));
  ++accepted_;
  return Status::OK();
}

int64_t CollectingDeadLetterSink::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

int64_t CollectingDeadLetterSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<DeadLetterItem> CollectingDeadLetterSink::Items() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_;
}

std::vector<DeadLetterItem> CollectingDeadLetterSink::Take() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<DeadLetterItem> out = std::move(items_);
  items_.clear();
  return out;
}

}  // namespace robust
}  // namespace tpstream
