#ifndef TPSTREAM_ROBUST_DEAD_LETTER_H_
#define TPSTREAM_ROBUST_DEAD_LETTER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/event.h"
#include "common/status.h"

namespace tpstream {
namespace robust {

/// What kind of degradation produced a dead-letter item (see
/// docs/architecture.md, "Degradation contract").
enum class DeadLetterKind {
  /// A malformed CSV row skipped by CsvEventReader in
  /// kSkipAndQuarantine mode. `row` is the 1-based data row number,
  /// `detail` the parse error (with column context), `raw` the
  /// unparsed line.
  kCsvRow,
  /// An event the ReorderBuffer could not reorder (later than the
  /// slack allows). `events` holds the intact event.
  kLateEvent,
  /// A batch shed by ParallelTPStream under a drop backpressure policy.
  /// `events` holds every event of the shed batch, in push order.
  kShedBatch,
  /// A torn record truncated from the tail of a durable log segment on
  /// open (log::EventLog). `detail` names the segment and byte position;
  /// `raw` holds up to the first 256 raw bytes of the discarded tail.
  kTornLogRecord,
  /// A checkpoint file the RecoveryManager skipped because its checksum,
  /// structure, or chain link failed validation. `detail` names the file
  /// and the validation error.
  kCorruptCheckpoint,
};

const char* DeadLetterKindName(DeadLetterKind kind);

/// One quarantined item. Exactly one item is produced per degradation
/// decision; producers never deliver the same payload twice.
struct DeadLetterItem {
  DeadLetterKind kind = DeadLetterKind::kCsvRow;
  /// Human-readable context: parse error, lateness, shed policy.
  std::string detail;
  /// CSV data row number (1-based) for kCsvRow; -1 otherwise.
  int64_t row = -1;
  /// Raw CSV line for kCsvRow; empty otherwise.
  std::string raw;
  /// The quarantined event payload(s): one event for kLateEvent, the
  /// whole batch for kShedBatch, empty for kCsvRow.
  std::vector<Event> events;
};

/// Uniform sink for quarantined items: instead of silently counting (or
/// fail-stopping the stream), every degradation path hands the affected
/// payload here. Implementations MUST be safe to call from multiple
/// threads concurrently — the parallel operator quarantines from both
/// the producer thread and worker threads.
///
/// Consume() returns OK when the item was accepted and
/// kResourceExhausted when the sink itself is at capacity (the item is
/// then dropped and only counted; a dead-letter channel must never be
/// the unbounded buffer it exists to prevent).
class DeadLetterSink {
 public:
  virtual ~DeadLetterSink() = default;
  virtual Status Consume(DeadLetterItem item) = 0;
};

/// Bounded in-memory sink: keeps up to `capacity` items (FIFO of
/// arrival), then drops and counts. Thread-safe; intended for tests,
/// tools, and as the default quarantine buffer of small deployments.
class CollectingDeadLetterSink : public DeadLetterSink {
 public:
  /// `capacity` bounds the retained items; 0 means "count only, retain
  /// nothing" (a pure accounting sink).
  explicit CollectingDeadLetterSink(size_t capacity = 1024)
      : capacity_(capacity) {}

  Status Consume(DeadLetterItem item) override;

  /// Items accepted (retained). Thread-safe.
  int64_t accepted() const;
  /// Items dropped because the sink was full. Thread-safe.
  int64_t dropped() const;
  /// Snapshot of the retained items, in arrival order.
  std::vector<DeadLetterItem> Items() const;
  /// Drains and returns the retained items (accepted()/dropped() keep
  /// their totals).
  std::vector<DeadLetterItem> Take();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<DeadLetterItem> items_;
  int64_t accepted_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace robust
}  // namespace tpstream

#endif  // TPSTREAM_ROBUST_DEAD_LETTER_H_
