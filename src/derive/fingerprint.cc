#include "derive/fingerprint.h"

namespace tpstream {

std::string DefinitionFingerprint(const SituationDefinition& def) {
  std::string out;
  out.reserve(64);
  out.append("phi:");
  if (def.predicate != nullptr) def.predicate->AppendFingerprint(&out);
  out.append("|gamma:");
  for (const AggregateSpec& agg : def.aggregates) {
    out.append(std::to_string(static_cast<int>(agg.kind)))
        .append("@")
        .append(std::to_string(agg.field))
        .append(";");
  }
  out.append("|tau:")
      .append(std::to_string(def.duration.min))
      .append(",")
      .append(std::to_string(def.duration.max));
  return out;
}

}  // namespace tpstream
