#ifndef TPSTREAM_DERIVE_DERIVER_H_
#define TPSTREAM_DERIVE_DERIVER_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckpt/serde.h"
#include "common/event.h"
#include "common/situation.h"
#include "common/status.h"
#include "derive/definition.h"
#include "expr/bytecode.h"
#include "obs/metrics.h"

namespace tpstream {

/// Tuning knobs for the deriver's predicate-evaluation stage.
struct DeriveOptions {
  /// Compile DEFINE predicates to flat register bytecode (expr/bytecode.h)
  /// instead of interpreting the Expression tree per event, and evaluate
  /// them columnarly over event batches when the caller announces one via
  /// PrepareBatch(). Off by default: the tree interpreter remains the
  /// semantic oracle (the two are differentially fuzzed against each
  /// other; see docs/architecture.md, "Compiled predicate path").
  /// Observable behaviour — situations, counters, metrics — is identical
  /// either way; a predicate that fails to compile silently keeps the
  /// interpreter.
  bool compiled_predicates = false;

  /// SIMD tier for columnar batch evaluation: "off", "sse2", "avx2" or
  /// "native" (best the machine supports). Empty defers to the
  /// TPSTREAM_SIMD environment variable, then the machine default.
  /// Requests above the machine's capability clamp down; unparsable
  /// values fall back to the default. Only meaningful with
  /// `compiled_predicates` — result bits are identical at every level.
  std::string simd;
};

/// The deriver component (Algorithm 1): consumes a point event stream and
/// incrementally derives one situation stream per definition.
///
/// In low-latency mode (`announce_starts`), a situation is additionally
/// announced as *started* as soon as its eventual duration is guaranteed
/// to satisfy the minimum duration constraint (Section 5.3.2):
///  - no constraints: announced with its first event;
///  - minimum only: announcement deferred to the deferred start ts̄, the
///    first event at which `t + 1 - ts >= min` holds (event timestamps are
///    strictly increasing, so the end timestamp will be at least t + 1);
///  - any maximum: never announced; such situations take part in matching
///    only once finished (and the constraint is validated then).
class Deriver {
 public:
  /// Situations started / finished while processing one event.
  struct Update {
    std::vector<SymbolSituation> started;
    std::vector<SymbolSituation> finished;

    bool empty() const { return started.empty() && finished.empty(); }
  };

  /// `metrics`, when non-null, receives the `deriver.*` counters (events,
  /// predicate evaluations, situations opened / announced / finished /
  /// discarded). Must outlive the deriver.
  ///
  /// With `options.compiled_predicates`, each distinct predicate (keyed
  /// by its structural fingerprint, expr/expression.h) is compiled once
  /// and shared across definitions; `num_compiled_programs()` /
  /// `program_cache_hits()` and the `deriver.compiled_programs` /
  /// `deriver.program_cache_hits` metrics pin the sharing.
  Deriver(std::vector<SituationDefinition> definitions, bool announce_starts,
          obs::MetricsRegistry* metrics = nullptr,
          DeriveOptions options = {});

  /// Processes one event; events must arrive in strictly increasing
  /// timestamp order. The returned reference is valid until the next call.
  /// The reference is mutable so the operator hot path can *move* the
  /// started/finished situations straight into the matcher buffers; the
  /// scratch vectors are cleared on the next Process() regardless.
  Update& Process(const Event& event);

  /// Announces that the next `events.size()` Process() calls will walk
  /// exactly the elements of `events` in order (the PushBatch contract).
  /// In compiled mode this pre-evaluates every predicate columnarly over
  /// the whole batch — one pass per distinct program with its code and
  /// the referenced field columns hot in cache — and Process() then
  /// consumes the precomputed rows. A no-op in interpreter mode, and
  /// never required for correctness: if the caller pushes different
  /// events instead, Process() detects the mismatch and falls back to
  /// per-tuple evaluation. `events` must stay alive and unmodified until
  /// the batch is consumed.
  void PrepareBatch(std::span<const Event> events);

  /// True if `symbol` has an announced, still ongoing situation.
  bool IsOngoing(int symbol) const {
    return slots_[symbol].active && slots_[symbol].announced;
  }

  /// Current aggregate snapshot of `symbol`'s ongoing situation. Only
  /// valid while IsOngoing(symbol).
  Tuple SnapshotOngoing(int symbol) const {
    return slots_[symbol].aggs.Snapshot();
  }

  int num_definitions() const { return static_cast<int>(defs_.size()); }
  const SituationDefinition& definition(int i) const { return defs_[i]; }

  /// Duration constraints in symbol order (input to DetectionAnalysis).
  std::vector<DurationConstraint> durations() const;

  /// Returns the deriver to its freshly-constructed stream state: every
  /// open situation slot is closed (without emitting) and any announced
  /// batch is forgotten. Definitions and compiled programs are
  /// configuration and survive.
  void Reset();

  /// Serializes the per-definition open-situation slots (active flag,
  /// announcement flag, start timestamp, running aggregates). Prepared
  /// batch state is transient and never checkpointed — a checkpoint is
  /// only taken between events, where no batch is in flight.
  void Checkpoint(ckpt::Writer& w) const;

  /// Restores a checkpoint taken on a deriver with the same definitions.
  /// On error the deriver must be Reset() or discarded before further
  /// use.
  Status Restore(ckpt::Reader& r);

  /// Compiled-mode introspection (0 in interpreter mode): distinct
  /// bytecode programs, and definitions that reused a sibling's program
  /// because their predicate fingerprints matched.
  int num_compiled_programs() const {
    return static_cast<int>(programs_.size());
  }
  int64_t program_cache_hits() const { return program_cache_hits_; }
  bool compiled() const { return options_.compiled_predicates; }

  /// Active SIMD tier name for columnar evaluation ("off" when not in
  /// compiled mode, else "off"/"sse2"/"avx2" after clamping the request
  /// to machine capability).
  const char* simd_level() const {
    return options_.compiled_predicates
               ? simd::SimdLevelName(simd::Effective(exec_scratch_.simd))
               : "off";
  }

 private:
  struct Slot {
    bool active = false;
    bool announced = false;
    TimePoint ts = 0;
    AggregatorSet aggs;

    explicit Slot(std::vector<AggregateSpec> specs)
        : aggs(std::move(specs)) {}
  };

  void CompilePredicates();
  bool EvalCompiled(int def, const Event& event);
  void ApplyDef(int i, const Event& event, bool satisfied);

  std::vector<SituationDefinition> defs_;
  std::vector<Slot> slots_;
  bool announce_starts_;
  DeriveOptions options_;
  Update update_;

  // Compiled-predicate state (empty in interpreter mode). Definitions
  // with fingerprint-equal predicates share one program: program_of_def_
  // maps definition -> index into programs_; -1 falls back to the
  // interpreter for that definition.
  std::vector<std::shared_ptr<const BytecodeProgram>> programs_;
  std::vector<int> program_of_def_;
  std::vector<int> batch_fields_;  // union of referenced fields, ascending
  int64_t program_cache_hits_ = 0;
  ExecScratch exec_scratch_;

  // Prepared-batch state, valid while the caller walks the announced
  // span in order (checked by address). Predicate results are selection
  // bitmaps: bit `row % 64` of batch_bits_[prog * batch_words_ + row/64]
  // is prog's predicate over batch event `row`. batch_any_ is the OR of
  // all program bitmaps — a zero word there means no definition can open
  // or extend a situation across those 64 events, which Process() uses
  // to skip the whole per-definition loop when nothing is active.
  ColumnarBatch batch_;
  std::vector<uint64_t> batch_bits_;
  std::vector<uint64_t> batch_any_;
  const Event* batch_base_ = nullptr;
  size_t batch_n_ = 0;
  size_t batch_words_ = 0;
  size_t batch_cursor_ = 0;

  // True when every definition's predicate compiled (no interpreter
  // fallbacks), so a zero batch_any_ bit covers all of them.
  bool all_defs_compiled_ = false;
  // Open slots (slot.active) across definitions, maintained on every
  // open/close; the skip fast path requires it to be zero because a
  // non-satisfying event must still finish an active situation.
  int active_slots_ = 0;

  // Sparse definition-loop state, live when every predicate compiled
  // and both counts fit in one word (sparse_masks_ok_). PrepareBatch
  // transposes the program bitmaps into batch_row_mask_: bit p of
  // batch_row_mask_[row] is program p's predicate over batch event
  // `row`. def_mask_of_prog_[p] is the set of definitions sharing
  // program p, and active_mask_ mirrors slot.active for definitions
  // < 64. Process() then walks only the set bits of
  // (satisfied | active): a clear bit is a definition that can neither
  // open, extend, nor close a situation on this event.
  std::vector<uint64_t> batch_row_mask_;
  std::vector<uint64_t> def_mask_of_prog_;
  uint64_t active_mask_ = 0;
  bool sparse_masks_ok_ = false;

  // Observability handles (null when metrics are disabled).
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* predicate_evals_ctr_ = nullptr;
  obs::Counter* opened_ctr_ = nullptr;
  obs::Counter* announced_ctr_ = nullptr;
  obs::Counter* finished_ctr_ = nullptr;
  obs::Counter* discarded_ctr_ = nullptr;
};

}  // namespace tpstream

#endif  // TPSTREAM_DERIVE_DERIVER_H_
