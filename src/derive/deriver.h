#ifndef TPSTREAM_DERIVE_DERIVER_H_
#define TPSTREAM_DERIVE_DERIVER_H_

#include <optional>
#include <vector>

#include "common/event.h"
#include "common/situation.h"
#include "derive/definition.h"
#include "obs/metrics.h"

namespace tpstream {

/// The deriver component (Algorithm 1): consumes a point event stream and
/// incrementally derives one situation stream per definition.
///
/// In low-latency mode (`announce_starts`), a situation is additionally
/// announced as *started* as soon as its eventual duration is guaranteed
/// to satisfy the minimum duration constraint (Section 5.3.2):
///  - no constraints: announced with its first event;
///  - minimum only: announcement deferred to the deferred start ts̄, the
///    first event at which `t + 1 - ts >= min` holds (event timestamps are
///    strictly increasing, so the end timestamp will be at least t + 1);
///  - any maximum: never announced; such situations take part in matching
///    only once finished (and the constraint is validated then).
class Deriver {
 public:
  /// Situations started / finished while processing one event.
  struct Update {
    std::vector<SymbolSituation> started;
    std::vector<SymbolSituation> finished;

    bool empty() const { return started.empty() && finished.empty(); }
  };

  /// `metrics`, when non-null, receives the `deriver.*` counters (events,
  /// predicate evaluations, situations opened / announced / finished /
  /// discarded). Must outlive the deriver.
  Deriver(std::vector<SituationDefinition> definitions, bool announce_starts,
          obs::MetricsRegistry* metrics = nullptr);

  /// Processes one event; events must arrive in strictly increasing
  /// timestamp order. The returned reference is valid until the next call.
  /// The reference is mutable so the operator hot path can *move* the
  /// started/finished situations straight into the matcher buffers; the
  /// scratch vectors are cleared on the next Process() regardless.
  Update& Process(const Event& event);

  /// True if `symbol` has an announced, still ongoing situation.
  bool IsOngoing(int symbol) const {
    return slots_[symbol].active && slots_[symbol].announced;
  }

  /// Current aggregate snapshot of `symbol`'s ongoing situation. Only
  /// valid while IsOngoing(symbol).
  Tuple SnapshotOngoing(int symbol) const {
    return slots_[symbol].aggs.Snapshot();
  }

  int num_definitions() const { return static_cast<int>(defs_.size()); }
  const SituationDefinition& definition(int i) const { return defs_[i]; }

  /// Duration constraints in symbol order (input to DetectionAnalysis).
  std::vector<DurationConstraint> durations() const;

 private:
  struct Slot {
    bool active = false;
    bool announced = false;
    TimePoint ts = 0;
    AggregatorSet aggs;

    explicit Slot(std::vector<AggregateSpec> specs)
        : aggs(std::move(specs)) {}
  };

  std::vector<SituationDefinition> defs_;
  std::vector<Slot> slots_;
  bool announce_starts_;
  Update update_;

  // Observability handles (null when metrics are disabled).
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* predicate_evals_ctr_ = nullptr;
  obs::Counter* opened_ctr_ = nullptr;
  obs::Counter* announced_ctr_ = nullptr;
  obs::Counter* finished_ctr_ = nullptr;
  obs::Counter* discarded_ctr_ = nullptr;
};

}  // namespace tpstream

#endif  // TPSTREAM_DERIVE_DERIVER_H_
