#ifndef TPSTREAM_DERIVE_DEFINITION_H_
#define TPSTREAM_DERIVE_DEFINITION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "expr/aggregate.h"
#include "expr/expression.h"

namespace tpstream {

/// One DEFINE clause: derives a situation stream from the input event
/// stream (Definition 7). A situation is the longest contiguous event
/// subsequence on which `predicate` holds; it carries the values of
/// `aggregates` over that subsequence and must satisfy `duration`.
struct SituationDefinition {
  std::string symbol;
  ExprPtr predicate;
  std::vector<AggregateSpec> aggregates;
  DurationConstraint duration;

  SituationDefinition() = default;
  SituationDefinition(std::string sym, ExprPtr pred,
                      std::vector<AggregateSpec> aggs = {},
                      DurationConstraint dur = {})
      : symbol(std::move(sym)),
        predicate(std::move(pred)),
        aggregates(std::move(aggs)),
        duration(dur) {}
};

}  // namespace tpstream

#endif  // TPSTREAM_DERIVE_DEFINITION_H_
