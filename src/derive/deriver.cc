#include "derive/deriver.h"

#include <algorithm>
#include <unordered_map>

namespace tpstream {

Deriver::Deriver(std::vector<SituationDefinition> definitions,
                 bool announce_starts, obs::MetricsRegistry* metrics,
                 DeriveOptions options)
    : defs_(std::move(definitions)),
      announce_starts_(announce_starts),
      options_(options) {
  slots_.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    slots_.emplace_back(def.aggregates);
  }
  if (options_.compiled_predicates) CompilePredicates();
  if (metrics != nullptr) {
    events_ctr_ = metrics->GetCounter("deriver.events");
    predicate_evals_ctr_ = metrics->GetCounter("deriver.predicate_evals");
    opened_ctr_ = metrics->GetCounter("deriver.situations_opened");
    announced_ctr_ = metrics->GetCounter("deriver.situations_announced");
    finished_ctr_ = metrics->GetCounter("deriver.situations_finished");
    discarded_ctr_ = metrics->GetCounter("deriver.situations_discarded");
    if (options_.compiled_predicates) {
      metrics->GetGauge("deriver.compiled_programs")
          ->Set(static_cast<double>(programs_.size()));
      metrics->GetCounter("deriver.program_cache_hits")
          ->Inc(program_cache_hits_);
    }
  }
}

void Deriver::CompilePredicates() {
  // One program per distinct predicate fingerprint: definitions that
  // differ only in aggregates/duration (or symbol name) share code, the
  // same keying the multi-query engine uses to share whole definitions.
  std::unordered_map<std::string, int> by_fingerprint;
  program_of_def_.assign(defs_.size(), -1);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].predicate == nullptr) continue;
    const std::string fp = ExprFingerprint(*defs_[i].predicate);
    auto [it, inserted] =
        by_fingerprint.emplace(fp, static_cast<int>(programs_.size()));
    if (inserted) {
      auto compiled = CompilePredicate(*defs_[i].predicate);
      if (!compiled.ok()) {
        // Semantics over speed: this definition keeps the interpreter.
        by_fingerprint.erase(it);
        continue;
      }
      programs_.push_back(std::move(compiled).value());
      const auto& fields = programs_.back()->referenced_fields();
      batch_fields_.insert(batch_fields_.end(), fields.begin(),
                           fields.end());
    } else {
      ++program_cache_hits_;
    }
    program_of_def_[i] = it->second;
  }
  std::sort(batch_fields_.begin(), batch_fields_.end());
  batch_fields_.erase(
      std::unique(batch_fields_.begin(), batch_fields_.end()),
      batch_fields_.end());
}

void Deriver::PrepareBatch(std::span<const Event> events) {
  batch_base_ = nullptr;
  if (!options_.compiled_predicates || events.empty() ||
      programs_.empty()) {
    return;
  }
  batch_.Assign(events, batch_fields_);
  batch_n_ = events.size();
  batch_bits_.resize(programs_.size() * batch_n_);
  for (size_t p = 0; p < programs_.size(); ++p) {
    programs_[p]->RunPredicateColumn(batch_, &exec_scratch_,
                                     batch_bits_.data() + p * batch_n_);
  }
  batch_base_ = events.data();
  batch_cursor_ = 0;
}

bool Deriver::EvalCompiled(int def, const Event& event) {
  const int p = program_of_def_[def];
  if (p < 0) return EvalPredicate(*defs_[def].predicate, event.payload);
  if (batch_base_ != nullptr) {
    return batch_bits_[static_cast<size_t>(p) * batch_n_ +
                       batch_cursor_] != 0;
  }
  return programs_[p]->RunPredicate(event.payload, &exec_scratch_);
}

Deriver::Update& Deriver::Process(const Event& event) {
  update_.started.clear();
  update_.finished.clear();
  if (events_ctr_ != nullptr) {
    events_ctr_->Inc();
    predicate_evals_ctr_->Inc(static_cast<int64_t>(defs_.size()));
  }

  const bool compiled = options_.compiled_predicates;
  if (compiled && batch_base_ != nullptr &&
      (batch_cursor_ >= batch_n_ || &event != batch_base_ + batch_cursor_)) {
    // The caller deviated from the announced batch (or consumed it);
    // drop the precomputed rows and evaluate per tuple.
    batch_base_ = nullptr;
  }

  for (int i = 0; i < static_cast<int>(defs_.size()); ++i) {
    const SituationDefinition& def = defs_[i];
    Slot& slot = slots_[i];
    const bool satisfied =
        compiled ? EvalCompiled(i, event)
                 : EvalPredicate(*def.predicate, event.payload);

    if (satisfied) {
      if (!slot.active) {
        slot.active = true;
        slot.announced = false;
        slot.ts = event.t;
        slot.aggs.Init(event.payload);
        if (opened_ctr_ != nullptr) opened_ctr_->Inc();
      } else {
        slot.aggs.Update(event.payload);
      }
      // Low-latency announcement once the eventual duration is guaranteed
      // to reach the minimum (the end timestamp will be > event.t).
      if (announce_starts_ && !slot.announced && !def.duration.has_max() &&
          event.t + 1 - slot.ts >= def.duration.min) {
        slot.announced = true;
        if (announced_ctr_ != nullptr) announced_ctr_->Inc();
        update_.started.push_back(SymbolSituation{
            i, Situation(slot.aggs.Snapshot(), slot.ts, kTimeUnknown)});
      }
    } else if (slot.active) {
      // First non-satisfying event fixes the end timestamp (half-open).
      const TimePoint te = event.t;
      if (def.duration.Contains(te - slot.ts)) {
        if (finished_ctr_ != nullptr) finished_ctr_->Inc();
        update_.finished.push_back(
            SymbolSituation{i, Situation(slot.aggs.Snapshot(), slot.ts, te)});
      } else if (discarded_ctr_ != nullptr) {
        discarded_ctr_->Inc();
      }
      slot.active = false;
      slot.announced = false;
    }
  }
  if (compiled && batch_base_ != nullptr) ++batch_cursor_;
  return update_;
}

void Deriver::Reset() {
  for (Slot& slot : slots_) {
    slot.active = false;
    slot.announced = false;
    slot.ts = 0;
  }
  update_.started.clear();
  update_.finished.clear();
  batch_base_ = nullptr;
  batch_n_ = 0;
  batch_cursor_ = 0;
}

void Deriver::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kDeriver);
  w.U32(static_cast<uint32_t>(slots_.size()));
  for (const Slot& slot : slots_) {
    w.Bool(slot.active);
    w.Bool(slot.announced);
    w.I64(slot.ts);
    slot.aggs.Checkpoint(w);
  }
  w.EndSection(cookie);
}

Status Deriver::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kDeriver);
  const uint32_t n = r.U32();
  if (r.ok() && n != slots_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: definition count mismatch (query changed?)"));
    return r.status();
  }
  for (Slot& slot : slots_) {
    slot.active = r.Bool();
    slot.announced = r.Bool();
    slot.ts = r.I64();
    Status status = slot.aggs.Restore(r);
    if (!status.ok()) return status;
  }
  update_.started.clear();
  update_.finished.clear();
  batch_base_ = nullptr;
  batch_n_ = 0;
  batch_cursor_ = 0;
  return r.EndSection(end);
}

std::vector<DurationConstraint> Deriver::durations() const {
  std::vector<DurationConstraint> out;
  out.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    out.push_back(def.duration);
  }
  return out;
}

}  // namespace tpstream
