#include "derive/deriver.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace tpstream {

Deriver::Deriver(std::vector<SituationDefinition> definitions,
                 bool announce_starts, obs::MetricsRegistry* metrics,
                 DeriveOptions options)
    : defs_(std::move(definitions)),
      announce_starts_(announce_starts),
      options_(options) {
  slots_.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    slots_.emplace_back(def.aggregates);
  }
  if (options_.compiled_predicates) {
    if (!options_.simd.empty()) {
      simd::SimdLevel level;
      if (simd::ParseSimdLevel(options_.simd, &level)) {
        exec_scratch_.simd = simd::Effective(level);
      }
    }
    CompilePredicates();
  }
  if (metrics != nullptr) {
    events_ctr_ = metrics->GetCounter("deriver.events");
    predicate_evals_ctr_ = metrics->GetCounter("deriver.predicate_evals");
    opened_ctr_ = metrics->GetCounter("deriver.situations_opened");
    announced_ctr_ = metrics->GetCounter("deriver.situations_announced");
    finished_ctr_ = metrics->GetCounter("deriver.situations_finished");
    discarded_ctr_ = metrics->GetCounter("deriver.situations_discarded");
    if (options_.compiled_predicates) {
      metrics->GetGauge("deriver.compiled_programs")
          ->Set(static_cast<double>(programs_.size()));
      metrics->GetCounter("deriver.program_cache_hits")
          ->Inc(program_cache_hits_);
    }
  }
}

void Deriver::CompilePredicates() {
  // One program per distinct predicate fingerprint: definitions that
  // differ only in aggregates/duration (or symbol name) share code, the
  // same keying the multi-query engine uses to share whole definitions.
  std::unordered_map<std::string, int> by_fingerprint;
  program_of_def_.assign(defs_.size(), -1);
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].predicate == nullptr) continue;
    const std::string fp = ExprFingerprint(*defs_[i].predicate);
    auto [it, inserted] =
        by_fingerprint.emplace(fp, static_cast<int>(programs_.size()));
    if (inserted) {
      auto compiled = CompilePredicate(*defs_[i].predicate);
      if (!compiled.ok()) {
        // Semantics over speed: this definition keeps the interpreter.
        by_fingerprint.erase(it);
        continue;
      }
      programs_.push_back(std::move(compiled).value());
      const auto& fields = programs_.back()->referenced_fields();
      batch_fields_.insert(batch_fields_.end(), fields.begin(),
                           fields.end());
    } else {
      ++program_cache_hits_;
    }
    program_of_def_[i] = it->second;
  }
  std::sort(batch_fields_.begin(), batch_fields_.end());
  batch_fields_.erase(
      std::unique(batch_fields_.begin(), batch_fields_.end()),
      batch_fields_.end());
  all_defs_compiled_ =
      std::find(program_of_def_.begin(), program_of_def_.end(), -1) ==
      program_of_def_.end();
  def_mask_of_prog_.assign(programs_.size(), 0);
  sparse_masks_ok_ = all_defs_compiled_ && !defs_.empty() &&
                     defs_.size() <= 64 && programs_.size() <= 64;
  if (defs_.size() <= 64 && programs_.size() <= 64) {
    for (size_t i = 0; i < defs_.size(); ++i) {
      if (program_of_def_[i] >= 0) {
        def_mask_of_prog_[program_of_def_[i]] |= uint64_t{1} << i;
      }
    }
  }
}

namespace {

// In-place 64x64 bit-matrix transpose about the anti-diagonal
// (Hacker's Delight 7-3): element (row i, bit b) moves to
// (row 63-b, bit 63-i). PrepareBatch compensates by reversing the row
// order on the way in and out, which nets the plain transpose.
void AntiTranspose64(uint64_t m[64]) {
  uint64_t mask = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
      m[k] ^= t;
      m[k + j] ^= t << j;
    }
  }
}

}  // namespace

void Deriver::PrepareBatch(std::span<const Event> events) {
  batch_base_ = nullptr;
  if (!options_.compiled_predicates || events.empty() ||
      programs_.empty()) {
    return;
  }
  batch_.Assign(events, batch_fields_);
  batch_n_ = events.size();
  batch_words_ = (batch_n_ + 63) / 64;
  batch_bits_.resize(programs_.size() * batch_words_);
  for (size_t p = 0; p < programs_.size(); ++p) {
    programs_[p]->RunPredicateColumnBits(
        batch_, &exec_scratch_, batch_bits_.data() + p * batch_words_);
  }
  if (sparse_masks_ok_) {
    // Transpose the program-major bitmaps into one program mask per
    // event, a 64x64 bit transpose per word block. Rows past batch_n_
    // carry zero bits (the packer zeroes the tail), so the over-sized
    // final block is harmless.
    batch_row_mask_.resize(batch_words_ * 64);
    const int nprogs = static_cast<int>(programs_.size());
    for (size_t w = 0; w < batch_words_; ++w) {
      uint64_t blk[64];
      for (int p = 0; p < 64; ++p) {
        blk[63 - p] =
            p < nprogs
                ? batch_bits_[static_cast<size_t>(p) * batch_words_ + w]
                : 0;
      }
      AntiTranspose64(blk);
      uint64_t* out = batch_row_mask_.data() + w * 64;
      for (int r = 0; r < 64; ++r) out[r] = blk[63 - r];
    }
  } else {
    // OR-union across programs: the word-skip fast path reads this
    // bitmap only, one bit per event, regardless of how many
    // definitions there are.
    batch_any_.assign(batch_words_, 0);
    for (size_t p = 0; p < programs_.size(); ++p) {
      const uint64_t* bits = batch_bits_.data() + p * batch_words_;
      for (size_t w = 0; w < batch_words_; ++w) batch_any_[w] |= bits[w];
    }
  }
  batch_base_ = events.data();
  batch_cursor_ = 0;
}

bool Deriver::EvalCompiled(int def, const Event& event) {
  const int p = program_of_def_[def];
  if (p < 0) return EvalPredicate(*defs_[def].predicate, event.payload);
  if (batch_base_ != nullptr) {
    return (batch_bits_[static_cast<size_t>(p) * batch_words_ +
                        (batch_cursor_ >> 6)] >>
                (batch_cursor_ & 63) &
            1) != 0;
  }
  return programs_[p]->RunPredicate(event.payload, &exec_scratch_);
}

void Deriver::ApplyDef(int i, const Event& event, bool satisfied) {
  const SituationDefinition& def = defs_[i];
  Slot& slot = slots_[i];
  if (satisfied) {
    if (!slot.active) {
      slot.active = true;
      slot.announced = false;
      slot.ts = event.t;
      slot.aggs.Init(event.payload);
      ++active_slots_;
      if (i < 64) active_mask_ |= uint64_t{1} << i;
      if (opened_ctr_ != nullptr) opened_ctr_->Inc();
    } else {
      slot.aggs.Update(event.payload);
    }
    // Low-latency announcement once the eventual duration is guaranteed
    // to reach the minimum (the end timestamp will be > event.t).
    if (announce_starts_ && !slot.announced && !def.duration.has_max() &&
        event.t + 1 - slot.ts >= def.duration.min) {
      slot.announced = true;
      if (announced_ctr_ != nullptr) announced_ctr_->Inc();
      update_.started.push_back(SymbolSituation{
          i, Situation(slot.aggs.Snapshot(), slot.ts, kTimeUnknown)});
    }
  } else if (slot.active) {
    // First non-satisfying event fixes the end timestamp (half-open).
    const TimePoint te = event.t;
    if (def.duration.Contains(te - slot.ts)) {
      if (finished_ctr_ != nullptr) finished_ctr_->Inc();
      update_.finished.push_back(
          SymbolSituation{i, Situation(slot.aggs.Snapshot(), slot.ts, te)});
    } else if (discarded_ctr_ != nullptr) {
      discarded_ctr_->Inc();
    }
    slot.active = false;
    slot.announced = false;
    --active_slots_;
    if (i < 64) active_mask_ &= ~(uint64_t{1} << i);
  }
}

Deriver::Update& Deriver::Process(const Event& event) {
  update_.started.clear();
  update_.finished.clear();
  if (events_ctr_ != nullptr) {
    events_ctr_->Inc();
    predicate_evals_ctr_->Inc(static_cast<int64_t>(defs_.size()));
  }

  const bool compiled = options_.compiled_predicates;
  if (compiled && batch_base_ != nullptr &&
      (batch_cursor_ >= batch_n_ || &event != batch_base_ + batch_cursor_)) {
    // The caller deviated from the announced batch (or consumed it);
    // drop the precomputed rows and evaluate per tuple.
    batch_base_ = nullptr;
  }

  // Sparse fast path: the transposed bitmap hands us this event's
  // satisfied-program mask in one load; expanding through
  // def_mask_of_prog_ and OR-ing the open slots yields exactly the
  // definitions with any work to do. The loop below visits only those
  // (in ascending definition order, matching the dense loop's
  // started/finished emission order); on a quiet event it runs zero
  // iterations. This is where the columnar bitmaps pay off: a
  // definition whose predicate rarely flips costs nothing per event.
  if (compiled && batch_base_ != nullptr && sparse_masks_ok_) {
    uint64_t sat_defs = 0;
    for (uint64_t pm = batch_row_mask_[batch_cursor_]; pm != 0;
         pm &= pm - 1) {
      sat_defs |= def_mask_of_prog_[std::countr_zero(pm)];
    }
    for (uint64_t work = sat_defs | active_mask_; work != 0;
         work &= work - 1) {
      const int i = std::countr_zero(work);
      ApplyDef(i, event, (sat_defs >> i & 1) != 0);
    }
    ++batch_cursor_;
    return update_;
  }

  // Word-skip fast path for configurations the sparse masks can't
  // cover (>64 definitions or programs): with no situation open and
  // every predicate precomputed, an event whose bit is clear in the
  // OR-union bitmap can neither open, extend, nor finish anything —
  // the whole definition loop is a no-op.
  if (compiled && batch_base_ != nullptr && active_slots_ == 0 &&
      all_defs_compiled_ &&
      (batch_any_[batch_cursor_ >> 6] >> (batch_cursor_ & 63) & 1) == 0) {
    ++batch_cursor_;
    return update_;
  }

  for (int i = 0; i < static_cast<int>(defs_.size()); ++i) {
    ApplyDef(i, event,
             compiled ? EvalCompiled(i, event)
                      : EvalPredicate(*defs_[i].predicate, event.payload));
  }
  if (compiled && batch_base_ != nullptr) ++batch_cursor_;
  return update_;
}

void Deriver::Reset() {
  for (Slot& slot : slots_) {
    slot.active = false;
    slot.announced = false;
    slot.ts = 0;
  }
  update_.started.clear();
  update_.finished.clear();
  batch_base_ = nullptr;
  batch_n_ = 0;
  batch_words_ = 0;
  batch_cursor_ = 0;
  active_slots_ = 0;
  active_mask_ = 0;
}

void Deriver::Checkpoint(ckpt::Writer& w) const {
  const size_t cookie = w.BeginSection(ckpt::Tag::kDeriver);
  w.U32(static_cast<uint32_t>(slots_.size()));
  for (const Slot& slot : slots_) {
    w.Bool(slot.active);
    w.Bool(slot.announced);
    w.I64(slot.ts);
    slot.aggs.Checkpoint(w);
  }
  w.EndSection(cookie);
}

Status Deriver::Restore(ckpt::Reader& r) {
  const size_t end = r.BeginSection(ckpt::Tag::kDeriver);
  const uint32_t n = r.U32();
  if (r.ok() && n != slots_.size()) {
    r.Fail(Status::InvalidArgument(
        "checkpoint: definition count mismatch (query changed?)"));
    return r.status();
  }
  for (Slot& slot : slots_) {
    slot.active = r.Bool();
    slot.announced = r.Bool();
    slot.ts = r.I64();
    Status status = slot.aggs.Restore(r);
    if (!status.ok()) return status;
  }
  update_.started.clear();
  update_.finished.clear();
  batch_base_ = nullptr;
  batch_n_ = 0;
  batch_words_ = 0;
  batch_cursor_ = 0;
  active_slots_ = 0;
  active_mask_ = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].active) {
      ++active_slots_;
      if (i < 64) active_mask_ |= uint64_t{1} << i;
    }
  }
  return r.EndSection(end);
}

std::vector<DurationConstraint> Deriver::durations() const {
  std::vector<DurationConstraint> out;
  out.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    out.push_back(def.duration);
  }
  return out;
}

}  // namespace tpstream
