#include "derive/deriver.h"

namespace tpstream {

Deriver::Deriver(std::vector<SituationDefinition> definitions,
                 bool announce_starts, obs::MetricsRegistry* metrics)
    : defs_(std::move(definitions)), announce_starts_(announce_starts) {
  slots_.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    slots_.emplace_back(def.aggregates);
  }
  if (metrics != nullptr) {
    events_ctr_ = metrics->GetCounter("deriver.events");
    predicate_evals_ctr_ = metrics->GetCounter("deriver.predicate_evals");
    opened_ctr_ = metrics->GetCounter("deriver.situations_opened");
    announced_ctr_ = metrics->GetCounter("deriver.situations_announced");
    finished_ctr_ = metrics->GetCounter("deriver.situations_finished");
    discarded_ctr_ = metrics->GetCounter("deriver.situations_discarded");
  }
}

Deriver::Update& Deriver::Process(const Event& event) {
  update_.started.clear();
  update_.finished.clear();
  if (events_ctr_ != nullptr) {
    events_ctr_->Inc();
    predicate_evals_ctr_->Inc(static_cast<int64_t>(defs_.size()));
  }

  for (int i = 0; i < static_cast<int>(defs_.size()); ++i) {
    const SituationDefinition& def = defs_[i];
    Slot& slot = slots_[i];
    const bool satisfied = EvalPredicate(*def.predicate, event.payload);

    if (satisfied) {
      if (!slot.active) {
        slot.active = true;
        slot.announced = false;
        slot.ts = event.t;
        slot.aggs.Init(event.payload);
        if (opened_ctr_ != nullptr) opened_ctr_->Inc();
      } else {
        slot.aggs.Update(event.payload);
      }
      // Low-latency announcement once the eventual duration is guaranteed
      // to reach the minimum (the end timestamp will be > event.t).
      if (announce_starts_ && !slot.announced && !def.duration.has_max() &&
          event.t + 1 - slot.ts >= def.duration.min) {
        slot.announced = true;
        if (announced_ctr_ != nullptr) announced_ctr_->Inc();
        update_.started.push_back(SymbolSituation{
            i, Situation(slot.aggs.Snapshot(), slot.ts, kTimeUnknown)});
      }
    } else if (slot.active) {
      // First non-satisfying event fixes the end timestamp (half-open).
      const TimePoint te = event.t;
      if (def.duration.Contains(te - slot.ts)) {
        if (finished_ctr_ != nullptr) finished_ctr_->Inc();
        update_.finished.push_back(
            SymbolSituation{i, Situation(slot.aggs.Snapshot(), slot.ts, te)});
      } else if (discarded_ctr_ != nullptr) {
        discarded_ctr_->Inc();
      }
      slot.active = false;
      slot.announced = false;
    }
  }
  return update_;
}

std::vector<DurationConstraint> Deriver::durations() const {
  std::vector<DurationConstraint> out;
  out.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    out.push_back(def.duration);
  }
  return out;
}

}  // namespace tpstream
