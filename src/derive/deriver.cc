#include "derive/deriver.h"

namespace tpstream {

Deriver::Deriver(std::vector<SituationDefinition> definitions,
                 bool announce_starts)
    : defs_(std::move(definitions)), announce_starts_(announce_starts) {
  slots_.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    slots_.emplace_back(def.aggregates);
  }
}

const Deriver::Update& Deriver::Process(const Event& event) {
  update_.started.clear();
  update_.finished.clear();

  for (int i = 0; i < static_cast<int>(defs_.size()); ++i) {
    const SituationDefinition& def = defs_[i];
    Slot& slot = slots_[i];
    const bool satisfied = EvalPredicate(*def.predicate, event.payload);

    if (satisfied) {
      if (!slot.active) {
        slot.active = true;
        slot.announced = false;
        slot.ts = event.t;
        slot.aggs.Init(event.payload);
      } else {
        slot.aggs.Update(event.payload);
      }
      // Low-latency announcement once the eventual duration is guaranteed
      // to reach the minimum (the end timestamp will be > event.t).
      if (announce_starts_ && !slot.announced && !def.duration.has_max() &&
          event.t + 1 - slot.ts >= def.duration.min) {
        slot.announced = true;
        update_.started.push_back(SymbolSituation{
            i, Situation(slot.aggs.Snapshot(), slot.ts, kTimeUnknown)});
      }
    } else if (slot.active) {
      // First non-satisfying event fixes the end timestamp (half-open).
      const TimePoint te = event.t;
      if (def.duration.Contains(te - slot.ts)) {
        update_.finished.push_back(
            SymbolSituation{i, Situation(slot.aggs.Snapshot(), slot.ts, te)});
      }
      slot.active = false;
      slot.announced = false;
    }
  }
  return update_;
}

std::vector<DurationConstraint> Deriver::durations() const {
  std::vector<DurationConstraint> out;
  out.reserve(defs_.size());
  for (const SituationDefinition& def : defs_) {
    out.push_back(def.duration);
  }
  return out;
}

}  // namespace tpstream
