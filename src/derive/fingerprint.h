#ifndef TPSTREAM_DERIVE_FINGERPRINT_H_
#define TPSTREAM_DERIVE_FINGERPRINT_H_

#include <string>

#include "derive/definition.h"

namespace tpstream {

/// Canonical structural fingerprint of one situation definition: the
/// predicate φ (via Expression::AppendFingerprint — positional,
/// name-free), the aggregate battery γ (kind + input field per
/// aggregate; output names are labels, not semantics) and the duration
/// constraint τ. Two definitions with equal fingerprints derive
/// byte-identical situation streams from any input event stream — the
/// sharing criterion of multi::QueryGroup. The symbol name is excluded:
/// it only binds the definition to a pattern position within one query.
std::string DefinitionFingerprint(const SituationDefinition& def);

}  // namespace tpstream

#endif  // TPSTREAM_DERIVE_FINGERPRINT_H_
