#include "ckpt/serde.h"

#include <atomic>
#include <utility>

#include "log/crc32c.h"

namespace tpstream {
namespace ckpt {

namespace {
std::atomic<uint64_t> g_legacy_unchecksummed_reads{0};
}  // namespace

void Writer::WriteValue(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      I64(v.AsInt());
      break;
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kBool:
      Bool(v.AsBool());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

void Writer::WriteTuple(const Tuple& t) {
  U64(t.size());
  for (const Value& v : t) WriteValue(v);
}

void Writer::WriteSituation(const Situation& s) {
  WriteTuple(s.payload);
  I64(s.ts);
  I64(s.te);
}

void Writer::WriteEvent(const Event& e) {
  WriteTuple(e.payload);
  I64(e.t);
}

size_t Writer::BeginSection(Tag tag) {
  U32(0);  // placeholder byte length, backpatched by EndSection
  const size_t cookie = buf_.size();
  U32(static_cast<uint32_t>(tag));
  return cookie;
}

void Writer::EndSection(size_t cookie) {
  const uint32_t len = static_cast<uint32_t>(buf_.size() - cookie);
  for (size_t i = 0; i < 4; ++i) {
    buf_[cookie - 4 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

void Writer::SealChecksum() {
  const uint32_t crc = log::Crc32c(buf_);
  U32(kChecksumMagic);
  U32(crc);
}

Status VerifyAndStripChecksum(std::string_view blob,
                              std::string_view* payload) {
  constexpr size_t kFooterSize = 8;
  auto footer_u32 = [&blob](size_t from_end) {
    uint32_t v = 0;
    const size_t base = blob.size() - from_end;
    for (size_t i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(blob[base + i]))
           << (8 * i);
    }
    return v;
  };
  if (blob.size() >= kFooterSize && footer_u32(kFooterSize) == kChecksumMagic) {
    const std::string_view body = blob.substr(0, blob.size() - kFooterSize);
    if (log::Crc32c(body) != footer_u32(4)) {
      return Status::ParseError(
          "checkpoint: checksum mismatch (blob corrupted)");
    }
    *payload = body;
    return Status::OK();
  }
  // Legacy pre-integrity blob: accepted, but counted so deployments can
  // see unchecksummed checkpoints are still in rotation.
  g_legacy_unchecksummed_reads.fetch_add(1, std::memory_order_relaxed);
  *payload = blob;
  return Status::OK();
}

uint64_t LegacyUnchecksummedReads() {
  return g_legacy_unchecksummed_reads.load(std::memory_order_relaxed);
}

void ResetLegacyUnchecksummedReads() {
  g_legacy_unchecksummed_reads.store(0, std::memory_order_relaxed);
}

bool Reader::Need(size_t n) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < n) {
    status_ = Status::ParseError("checkpoint truncated at byte " +
                                 std::to_string(pos_));
    return false;
  }
  return true;
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Reader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::Str() {
  const uint64_t n = U64();
  if (!Need(n)) return std::string();
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Value Reader::ReadValue() {
  const uint8_t tag = U8();
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt:
      return Value(I64());
    case ValueType::kDouble:
      return Value(F64());
    case ValueType::kBool:
      return Value(Bool());
    case ValueType::kString:
      return Value(Str());
  }
  Fail(Status::ParseError("checkpoint: unknown value type tag " +
                          std::to_string(tag)));
  return Value::Null();
}

Tuple Reader::ReadTuple() {
  const uint64_t n = U64();
  // A tuple has at least one serialized byte per value; reject sizes the
  // remaining input cannot possibly hold before reserving.
  if (n > remaining()) {
    Fail(Status::ParseError("checkpoint: tuple size exceeds input"));
    return Tuple();
  }
  Tuple t;
  t.reserve(n);
  for (uint64_t i = 0; i < n && ok(); ++i) t.push_back(ReadValue());
  return t;
}

Situation Reader::ReadSituation() {
  Situation s;
  s.payload = ReadTuple();
  s.ts = I64();
  s.te = I64();
  return s;
}

Event Reader::ReadEvent() {
  Event e;
  e.payload = ReadTuple();
  e.t = I64();
  return e;
}

Status Reader::Envelope(uint64_t* offset) {
  const uint32_t magic = U32();
  const uint32_t version = U32();
  const uint64_t off = U64();
  if (!status_.ok()) return status_;
  if (magic != kMagic) {
    status_ = Status::ParseError("checkpoint: bad magic (not a TPCK blob)");
    return status_;
  }
  if (version != kFormatVersion) {
    status_ = Status::InvalidArgument(
        "checkpoint: unsupported format version " + std::to_string(version) +
        " (reader supports " + std::to_string(kFormatVersion) + ")");
    return status_;
  }
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

size_t Reader::BeginSection(Tag expected) {
  const uint32_t len = U32();
  if (!status_.ok()) return pos_;
  if (len > remaining() || len < 4) {
    Fail(Status::ParseError("checkpoint: section length out of bounds"));
    return pos_;
  }
  const size_t end = pos_ + len;
  const uint32_t tag = U32();
  if (status_.ok() && tag != static_cast<uint32_t>(expected)) {
    Fail(Status::ParseError(
        "checkpoint: component tag mismatch (expected " +
        std::to_string(static_cast<uint32_t>(expected)) + ", found " +
        std::to_string(tag) + ")"));
  }
  return end;
}

Status Reader::EndSection(size_t end_pos) {
  if (!status_.ok()) return status_;
  if (pos_ != end_pos) {
    status_ = Status::ParseError(
        "checkpoint: section size mismatch (component read " +
        std::to_string(pos_) + ", section ends at " +
        std::to_string(end_pos) + ")");
  }
  return status_;
}

}  // namespace ckpt
}  // namespace tpstream
