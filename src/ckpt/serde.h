#ifndef TPSTREAM_CKPT_SERDE_H_
#define TPSTREAM_CKPT_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/event.h"
#include "common/situation.h"
#include "common/status.h"
#include "common/value.h"

namespace tpstream {
namespace ckpt {

/// Checkpoint wire format (Durability contract, docs/architecture.md):
/// little-endian fixed-width scalars, length-prefixed strings and
/// sections. Every top-level checkpoint starts with an envelope
///
///   u32 magic "TPCK" | u32 format version | u64 event-log offset
///
/// and every component writes one *section*: a u32 byte length followed
/// by the component tag (u32) and its payload. Readers verify that each
/// section is consumed exactly, so corruption and version skew surface as
/// Status errors instead of silently mis-restored state. Doubles are
/// serialized bit-exact (memcpy through uint64), which is what makes the
/// replay differential tests byte-identical: restored EMA statistics are
/// the same IEEE-754 values, not a rounded decimal round-trip.
inline constexpr uint32_t kMagic = 0x4b435054;  // "TPCK" little-endian
inline constexpr uint32_t kFormatVersion = 1;

/// Footer magic for the trailing integrity section appended by
/// SealChecksum (shared CRC-32C with the durable log, log/crc32c.h).
inline constexpr uint32_t kChecksumMagic = 0x53435054;  // "TPCS"

/// Component tags: each Checkpoint() payload is labelled so a Restore()
/// into the wrong component fails loudly. Values are part of the on-disk
/// format — append only, never renumber.
enum class Tag : uint32_t {
  kSituationBuffer = 1,
  kMatcherStats = 2,
  kJoiner = 3,
  kLowLatencyMatcher = 4,
  kBaselineMatcher = 5,
  kController = 6,
  kAggregatorSet = 7,
  kDeriver = 8,
  kMatchEngine = 9,
  kOperator = 10,
  kPartitioned = 11,
  kQueryGroup = 12,
  kReorderBuffer = 13,
  kParallel = 14,
  kPipeline = 15,
  kPipelineStage = 16,
  /// Dirty-partition delta for PartitionedTPStream (incremental
  /// checkpoints; full snapshots keep kPartitioned).
  kPartitionedDelta = 17,
  /// Dirty-engine delta for multi::QueryGroup.
  kQueryGroupDelta = 18,
};

/// Append-only binary writer. Infallible: it grows an in-memory byte
/// string; the caller persists `buffer()` (file, socket, test vector).
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) { AppendLE(v); }
  void U64(uint64_t v) { AppendLE(v); }
  void I64(int64_t v) { AppendLE(static_cast<uint64_t>(v)); }

  /// Bit-exact: NaNs, signed zeros and subnormals round-trip unchanged.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteSituation(const Situation& s);
  void WriteEvent(const Event& e);

  /// Top-level envelope: magic, format version, event-log offset.
  void Envelope(uint64_t offset) {
    U32(kMagic);
    U32(kFormatVersion);
    U64(offset);
  }

  /// Opens a length-prefixed section labelled `tag`; returns a cookie for
  /// EndSection, which backpatches the byte length. Sections may nest.
  size_t BeginSection(Tag tag);
  void EndSection(size_t cookie);

  /// Appends the trailing integrity footer (u32 "TPCS" magic + u32
  /// CRC-32C over every preceding byte). Call exactly once, at the
  /// persistence boundary, after the whole blob is built — components'
  /// nested Checkpoint() calls never seal. VerifyAndStripChecksum
  /// detects bit-flips anywhere in the sealed bytes deterministically.
  void SealChecksum();

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void AppendLE(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(bytes, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked reader over a checkpoint byte string. The first
/// malformed read latches an error Status; subsequent reads return
/// zero values, so Restore() code can read a whole component and check
/// `status()` once at the end (plus any semantic validation).
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t U8();
  bool Bool() { return U8() != 0; }
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();

  Value ReadValue();
  Tuple ReadTuple();
  Situation ReadSituation();
  Event ReadEvent();

  /// Validates the envelope; on success stores the event-log offset in
  /// `*offset` (when non-null).
  Status Envelope(uint64_t* offset);

  /// Opens a section and validates its tag; returns the absolute end
  /// position for EndSection.
  size_t BeginSection(Tag expected);
  /// Verifies the section was consumed exactly (detects format drift
  /// between writer and reader versions of a component).
  Status EndSection(size_t end_pos);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  /// Latches an error from component-level validation so it is reported
  /// through the same channel as wire-format errors.
  void Fail(Status status) {
    if (status_.ok()) status_ = std::move(status);
  }

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

/// Validates a blob sealed with Writer::SealChecksum and strips the
/// footer: on success `*payload` views the bytes to hand to Reader. A
/// present-but-mismatched checksum fails with kParseError ("checksum
/// mismatch", deterministic — this is how bit-flips are detected before
/// any structural parsing). A blob without a footer is a legacy
/// unchecksummed checkpoint: it is accepted as-is (`*payload` = `blob`)
/// and counted in LegacyUnchecksummedReads() so operators can see that
/// pre-integrity blobs are still in rotation.
Status VerifyAndStripChecksum(std::string_view blob, std::string_view* payload);

/// Process-wide count of legacy (unchecksummed) blobs accepted by
/// VerifyAndStripChecksum since start (or the last reset). Thread-safe.
uint64_t LegacyUnchecksummedReads();
void ResetLegacyUnchecksummedReads();

}  // namespace ckpt
}  // namespace tpstream

#endif  // TPSTREAM_CKPT_SERDE_H_
