#ifndef TPSTREAM_PARALLEL_SPSC_RING_H_
#define TPSTREAM_PARALLEL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace tpstream {
namespace parallel {

// Fixed destructive-interference stride. Deliberately NOT
// std::hardware_destructive_interference_size: its value can change with
// compiler tuning flags (GCC warns about exactly that in any header that
// bakes it into a layout), and 64/128 covers the platforms we build for.
#if defined(__aarch64__)
inline constexpr size_t kCacheLineSize = 128;  // big.LITTLE cores prefetch pairs
#else
inline constexpr size_t kCacheLineSize = 64;
#endif

/// One iteration of a bounded busy-wait: tells the CPU we are spinning so
/// a hyper-thread sibling (or the power governor) can make progress.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded lock-free single-producer / single-consumer ring buffer — the
/// hand-off primitive between ParallelTPStream's producer thread and each
/// worker thread (see docs/architecture.md, "Concurrency contract").
///
/// Design:
///  * power-of-two capacity (the requested minimum is rounded up), so the
///    slot index is `position & mask` and the occupancy is the free-running
///    64-bit `tail - head` difference — positions never wrap in practice
///    (2^64 pushes), only the slot index does;
///  * `head_` (next position to pop, written only by the consumer) and
///    `tail_` (next position to push, written only by the producer) live on
///    separate cache lines, each padded together with the *opposite* side's
///    cached copy, so the producer and consumer never false-share;
///  * acquire/release ordering: the producer publishes a slot with a
///    release store of `tail_`; the consumer's acquire load of `tail_`
///    therefore observes the fully constructed element. Symmetrically the
///    consumer releases a slot with a release store of `head_`, and the
///    producer's acquire load of `head_` guarantees the consumer's move-out
///    happened-before the producer overwrites the slot. No CAS anywhere:
///    with one producer and one consumer, plain loads/stores suffice;
///  * cached indices: the producer only re-reads `head_` (a cache-line
///    transfer from the consumer's core) when its cached copy says the ring
///    looks full, and vice versa — in steady state each side runs on its
///    own cache lines.
///
/// TryPush/TryPop never block and never allocate; elements are moved in
/// and out. A failed TryPush leaves the argument untouched (the move only
/// happens once a free slot is confirmed), so callers can retry with the
/// same object.
template <typename T>
class SpscRing {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (>= 1).
  /// Slots are default-constructed once, here; pushes and pops move
  /// elements in and out of them.
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Producer only. Returns false (leaving `item` untouched) when the
  /// ring is full.
  bool TryPush(T&& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Returns false when the ring is empty; otherwise moves
  /// the oldest element into `*out`.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Exact from the producer thread (its own `tail_` is always current);
  /// conservative from elsewhere (a stale `head_` can only overstate the
  /// occupancy, never report empty while elements remain unobserved).
  bool Full() const {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) >=
           capacity_;
  }

  /// Exact from the consumer thread and from the producer thread (each
  /// side's own index is current and the other side's index only ever
  /// advances toward "less empty" / "more empty" respectively, so a stale
  /// read errs on the side of reporting elements still present).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy for observability (gauge exports); clamped to
  /// [0, capacity] because the two loads are not a consistent snapshot.
  size_t Size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t diff = tail - head;
    if (static_cast<int64_t>(diff) <= 0) return 0;
    return diff > capacity_ ? capacity_ : static_cast<size_t>(diff);
  }

 private:
  // Producer line: tail_ is written by the producer every push;
  // cached_head_ is the producer's private copy of the consumer index.
  alignas(kCacheLineSize) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer line: head_ is written by the consumer every pop;
  // cached_tail_ is the consumer's private copy of the producer index.
  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  // Cold configuration + storage.
  alignas(kCacheLineSize) size_t capacity_ = 0;
  size_t mask_ = 0;
  std::vector<T> slots_;
};

}  // namespace parallel
}  // namespace tpstream

#endif  // TPSTREAM_PARALLEL_SPSC_RING_H_
