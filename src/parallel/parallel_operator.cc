#include "parallel/parallel_operator.h"

#include <cassert>

namespace tpstream {
namespace parallel {

namespace {

// Adaptive-wait budgets. The fast path is pure lock-free ring traffic;
// when a side runs dry (worker) or full (producer) it spins briefly —
// first with CpuRelax (cheap, keeps the core) then with yield (lets the
// other side run on oversubscribed machines) — and only then parks on a
// condition variable.
constexpr int kSpinRelax = 128;
constexpr int kSpinYield = 16;

/// Appends a copy of `event` to `batch`, reusing the recycled Event slot
/// (and its payload capacity) at `batch->count` when one exists — the
/// allocation-free steady state of the producer path.
void AppendCopy(EventBatch* batch, const Event& event) {
  if (batch->count < batch->events.size()) {
    Event& slot = batch->events[batch->count];
    slot.t = event.t;
    slot.payload.assign(event.payload.begin(), event.payload.end());
  } else {
    batch->events.push_back(event);
  }
  ++batch->count;
}

/// Move flavor: swaps payload storage with the recycled slot, so the
/// caller's event gets the slot's capacity back for reuse (zero-copy,
/// zero-allocation in steady state).
void AppendSwap(EventBatch* batch, Event&& event) {
  if (batch->count < batch->events.size()) {
    Event& slot = batch->events[batch->count];
    slot.t = event.t;
    slot.payload.swap(event.payload);
  } else {
    batch->events.push_back(std::move(event));
  }
  ++batch->count;
}

/// Moves a shed batch's live events into a dead-letter item and delivers
/// it. The batch slots are left moved-from; refills overwrite them in
/// place, so recycling keeps working. A full sink counts the loss itself
/// (CollectingDeadLetterSink::dropped()).
void QuarantineBatch(robust::DeadLetterSink* sink, EventBatch* batch,
                     const char* detail) {
  if (sink == nullptr || batch->count == 0) return;
  robust::DeadLetterItem item;
  item.kind = robust::DeadLetterKind::kShedBatch;
  item.detail = detail;
  item.events.reserve(batch->count);
  for (size_t i = 0; i < batch->count; ++i) {
    item.events.push_back(std::move(batch->events[i]));
  }
  (void)sink->Consume(std::move(item));
}

/// CAS-decrements `credit` if it is positive. Returns true when a credit
/// was taken (consume on the worker, revoke on the producer).
bool TakeCredit(std::atomic<int64_t>* credit) {
  int64_t value = credit->load(std::memory_order_acquire);
  while (value > 0) {
    if (credit->compare_exchange_weak(value, value - 1,
                                      std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

}  // namespace

ParallelTPStream::Worker::Worker(size_t ring_capacity, size_t batch_size)
    : ring(ring_capacity), free_ring(ring.capacity() + 2) {
  // Pre-populate the recycling loop: one batch filling at the producer
  // (`pending`), up to ring.capacity() in flight, one draining at the
  // worker — capacity + 2 batches total, so the free ring never runs dry
  // in steady state (see Submit()). The reserve is capped: gigantic
  // batch sizes would multiply across the circulating batches, and the
  // vectors reach their steady-state capacity within the first few
  // batches anyway.
  const size_t reserve = batch_size < 4096 ? batch_size : 4096;
  pending.events.reserve(reserve);
  for (size_t i = 0; i < ring.capacity() + 1; ++i) {
    EventBatch batch;
    batch.events.reserve(reserve);
    free_ring.TryPush(std::move(batch));
  }
}

ParallelTPStream::ParallelTPStream(QuerySpec spec, Options options,
                                   TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(options),
      output_(std::move(output)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.batch_size < 1) options_.batch_size = 1;
  if (options_.ring_capacity < 1) options_.ring_capacity = 1;

  events_ctr_ = producer_registry_.GetCounter("parallel.events");
  batches_ctr_ = producer_registry_.GetCounter("parallel.batches");
  ring_full_ctr_ = producer_registry_.GetCounter("parallel.ring_full");
  merge_stalls_ctr_ = producer_registry_.GetCounter("parallel.merge_stalls");
  free_alloc_ctr_ =
      producer_registry_.GetCounter("parallel.free_ring_allocs");
  shed_batches_ctr_ = producer_registry_.GetCounter("parallel.shed_batches");
  shed_events_ctr_ = producer_registry_.GetCounter("parallel.shed_events");
  drop_oldest_fallback_ctr_ =
      producer_registry_.GetCounter("parallel.drop_oldest_fallback");

  const bool engine_metrics = options_.operator_options.metrics != nullptr;
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(options_.ring_capacity,
                                           options_.batch_size);
    worker->matches_ctr = worker->registry.GetCounter("parallel.matches");
    worker->partitions_ctr =
        worker->registry.GetCounter("parallel.partitions");
    worker->shed_batches_ctr =
        worker->registry.GetCounter("parallel.shed_batches");
    worker->shed_events_ctr =
        worker->registry.GetCounter("parallel.shed_events");
    worker->depth_gauge = producer_registry_.GetGauge(
        "parallel.queue_depth.w" + std::to_string(i));
    // Each worker engine records into the worker's own registry so that
    // no metric is written from two threads (merge-on-read). Matches are
    // buffered worker-locally (no lock while a batch runs) and drained
    // in order at batch boundaries under the output mutex.
    TPStreamOperator::Options op_options = options_.operator_options;
    op_options.metrics = engine_metrics ? &worker->registry : nullptr;
    TPStreamOperator::OutputCallback sink;
    if (output_) {
      sink = [w = worker.get()](const Event& e) {
        AppendCopy(&w->local_matches, e);
      };
    }
    worker->engine = std::make_unique<PartitionedTPStream>(
        spec_, op_options, std::move(sink));
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
}

ParallelTPStream::~ParallelTPStream() {
  // Destruction from a thread other than the producer is legitimate once
  // pushing has stopped (ownership hand-off); release the producer claim
  // so the final flush does not trip the single-producer assert.
  producer_.store(std::thread::id{}, std::memory_order_relaxed);
  FlushInternal();
  // Shutdown ordering: every worker is marked stopped before any join, so
  // the joins proceed concurrently instead of serializing one wake-up at
  // a time. Worker loops only exit with an empty ring (and the flush just
  // emptied them), so nothing is dropped.
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->stop = true;
  }
  for (auto& worker : workers_) worker->wake.notify_one();
  for (auto& worker : workers_) worker->thread.join();
}

void ParallelTPStream::ProcessBatch(Worker* worker, EventBatch* batch) {
  for (size_t i = 0; i < batch->count; ++i) {
    worker->engine->Push(batch->events[i]);
  }
  // Drain the worker-local match buffer in order: the callback fires
  // serialized (output mutex), but contention is per batch, not per
  // match, and a partition's matches keep their engine emission order
  // (each partition lives on exactly one worker).
  if (worker->local_matches.count > 0) {
    std::lock_guard<std::mutex> lock(output_mutex_);
    for (size_t i = 0; i < worker->local_matches.count; ++i) {
      output_(worker->local_matches.events[i]);
    }
  }
  worker->local_matches.count = 0;
  // Publish engine statistics before announcing idleness: a reader
  // synchronizing through Flush() (whose drained-wait re-acquires this
  // worker's mutex after the idle transition) then observes exact
  // values. Concurrent readers see a monotone snapshot at batch
  // granularity. Published as counter deltas into the worker-local
  // registry so they merge with the other workers' on read.
  worker->matches_ctr->Inc(worker->engine->num_matches() -
                           worker->last_matches);
  worker->last_matches = worker->engine->num_matches();
  const int64_t partitions =
      static_cast<int64_t>(worker->engine->num_partitions());
  worker->partitions_ctr->Inc(partitions - worker->last_partitions);
  worker->last_partitions = partitions;
}

void ParallelTPStream::WorkerLoop(Worker* worker) {
  EventBatch batch;
  for (;;) {
    if (worker->ring.TryPop(&batch)) {
      // A slot was just freed: wake the producer if it parked on a full
      // ring. The seq_cst fence pairs with the one in Submit()'s park
      // path (Dekker handshake): either we observe producer_parked, or
      // the producer's post-fence Full() check observes our pop.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (worker->producer_parked.load(std::memory_order_relaxed)) {
        { std::lock_guard<std::mutex> lock(worker->mutex); }
        worker->not_full.notify_one();
      }
      // Drop-oldest: a pending credit means the producer found the ring
      // full — quarantine this (oldest queued) batch instead of
      // processing it, freeing the slot without paying the engine cost.
      if (TakeCredit(&worker->drop_credit)) {
        worker->shed_batches_ctr->Inc();
        worker->shed_events_ctr->Inc(static_cast<int64_t>(batch.count));
        QuarantineBatch(options_.dead_letter, &batch,
                        "ring shed (drop_oldest)");
      } else {
        ProcessBatch(worker, &batch);
      }
      batch.count = 0;
      // Recycle the storage. By the circulation invariant the free ring
      // has room; a failed push (cannot happen in steady state) merely
      // drops the storage, which the next pop replaces.
      worker->free_ring.TryPush(std::move(batch));
      continue;
    }
    // Ring observed empty: spin briefly for the next batch, then park.
    bool woke = false;
    for (int spin = 0; spin < kSpinRelax + kSpinYield; ++spin) {
      if (spin < kSpinRelax) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
      if (!worker->ring.Empty()) {
        woke = true;
        break;
      }
    }
    if (woke) continue;
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->idle.store(true, std::memory_order_relaxed);
    // Pairs with the fence in Submit()'s wake path: either the producer
    // observes idle==true and notifies under the mutex, or our
    // post-fence emptiness recheck observes its push.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!worker->ring.Empty()) {
      worker->idle.store(false, std::memory_order_relaxed);
      continue;
    }
    worker->drained.notify_all();  // Flush() may be waiting on idleness
    worker->wake.wait(lock,
                      [worker] { return worker->stop || !worker->ring.Empty(); });
    if (worker->stop && worker->ring.Empty()) return;  // idle stays true
    worker->idle.store(false, std::memory_order_relaxed);
  }
}

void ParallelTPStream::ShedBatch(Worker* worker, EventBatch* batch,
                                 const char* detail) {
  (void)worker;
  shed_batches_ctr_->Inc();
  shed_events_ctr_->Inc(static_cast<int64_t>(batch->count));
  QuarantineBatch(options_.dead_letter, batch, detail);
  batch->count = 0;
}

bool ParallelTPStream::ResolveFullRing(Worker* worker, EventBatch* batch) {
  switch (options_.backpressure) {
    case robust::BackpressurePolicy::kBlock: {
      // Lossless: adaptive spin, then park until the worker frees a slot.
      int spin = 0;
      while (!worker->ring.TryPush(std::move(*batch))) {
        if (spin < kSpinRelax) {
          ++spin;
          CpuRelax();
        } else if (spin < kSpinRelax + kSpinYield) {
          ++spin;
          std::this_thread::yield();
        } else {
          std::unique_lock<std::mutex> lock(worker->mutex);
          worker->producer_parked.store(true, std::memory_order_relaxed);
          // Pairs with the fence in the worker's pop path (WorkerLoop).
          std::atomic_thread_fence(std::memory_order_seq_cst);
          worker->not_full.wait(lock,
                                [worker] { return !worker->ring.Full(); });
          worker->producer_parked.store(false, std::memory_order_relaxed);
          spin = 0;  // single producer: the retry is guaranteed to succeed
        }
      }
      return true;
    }

    case robust::BackpressurePolicy::kDropNewest: {
      // Bounded wait, then shed the batch being submitted.
      for (int spin = 0; spin < options_.shed_spin; ++spin) {
        if (spin < kSpinRelax) {
          CpuRelax();
        } else {
          std::this_thread::yield();
        }
        if (worker->ring.TryPush(std::move(*batch))) return true;
      }
      ShedBatch(worker, batch, "ring shed (drop_newest)");
      return false;
    }

    case robust::BackpressurePolicy::kDropOldest: {
      // Grant the worker a drop credit: the next batch it pops is
      // quarantined instead of processed, freeing a slot at dequeue cost
      // rather than engine cost.
      worker->drop_credit.fetch_add(1, std::memory_order_acq_rel);
      bool pushed = false;
      for (int spin = 0; spin < options_.shed_spin && !pushed; ++spin) {
        if (spin < kSpinRelax) {
          CpuRelax();
        } else {
          std::this_thread::yield();
        }
        pushed = worker->ring.TryPush(std::move(*batch));
      }
      if (pushed) {
        // The slot may have freed by normal draining; revoke the credit
        // if the worker has not consumed it yet so an overload that
        // resolves on its own drops nothing. A lost race (worker already
        // quarantining) is correct drop-oldest behaviour and accounted
        // on the worker side.
        (void)TakeCredit(&worker->drop_credit);
        return true;
      }
      if (!TakeCredit(&worker->drop_credit)) {
        // The worker consumed the credit, so a slot is being freed right
        // now; give the push one more bounded spin.
        for (int spin = 0; spin < options_.shed_spin && !pushed; ++spin) {
          CpuRelax();
          pushed = worker->ring.TryPush(std::move(*batch));
        }
        if (pushed) return true;
      }
      // Worker stalled mid-batch (or the freed slot never materialized in
      // budget): shed the new batch to keep push latency bounded.
      drop_oldest_fallback_ctr_->Inc();
      ShedBatch(worker, batch, "ring shed (drop_oldest fallback)");
      return false;
    }
  }
  return false;  // unreachable
}

void ParallelTPStream::Submit(Worker* worker) {
  if (worker->pending.count == 0) return;
  batches_ctr_->Inc();
  EventBatch batch = std::move(worker->pending);
  worker->pending.count = 0;
  if (!worker->ring.TryPush(std::move(batch))) {
    // Ring full: apply the backpressure policy. Counted once per stalled
    // submit (`parallel.ring_full`, with the retired single-slot
    // hand-off's `merge_stalls` kept as an alias).
    ring_full_ctr_->Inc();
    merge_stalls_ctr_->Inc();
    if (!ResolveFullRing(worker, &batch)) {
      // The batch was shed: it never entered the ring, so its storage
      // becomes the new `pending` directly (the circulation invariant is
      // untouched — no free-ring pop). The worker has a full ring and is
      // not parked, so no wake is needed.
      worker->pending = std::move(batch);
      worker->pending.count = 0;
      return;
    }
  }
  // Wake the worker if it parked on an empty ring (Dekker, see
  // WorkerLoop's idle transition).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (worker->idle.load(std::memory_order_relaxed)) {
    { std::lock_guard<std::mutex> lock(worker->mutex); }
    worker->wake.notify_one();
  }
  // True ring occupancy, not the batch size that was just handed off.
  worker->depth_gauge->Set(static_cast<double>(worker->ring.Size()));
  // Re-arm `pending` with recycled storage. The circulation invariant
  // (capacity + 2 batches, see Worker::Worker) guarantees the free ring
  // is logically non-empty here; the short spin covers store-visibility
  // lag, and the allocation fallback keeps the producer unconditionally
  // live (counted, never hit in steady state).
  bool recycled = worker->free_ring.TryPop(&worker->pending);
  for (int spin = 0; !recycled && spin < kSpinRelax; ++spin) {
    CpuRelax();
    recycled = worker->free_ring.TryPop(&worker->pending);
  }
  if (!recycled) {
    worker->pending = EventBatch{};
    free_alloc_ctr_->Inc();
  }
  worker->pending.count = 0;
}

void ParallelTPStream::AssertSingleProducer() const {
#ifndef NDEBUG
  std::thread::id unclaimed{};
  const std::thread::id self = std::this_thread::get_id();
  if (!producer_.compare_exchange_strong(unclaimed, self,
                                         std::memory_order_relaxed) &&
      unclaimed != self) {
    assert(false &&
           "ParallelTPStream: Push()/Flush() called from a second thread; "
           "the producer side is single-threaded by contract");
  }
#endif
}

ParallelTPStream::Worker* ParallelTPStream::RouteTo(const Event& event) {
  AssertSingleProducer();
  events_ctr_->Inc();
  size_t index = 0;
  if (spec_.partition_field >= 0 && workers_.size() > 1) {
    // Hash the typed value directly (ValueHash): no per-event ToString()
    // materialization for double/bool/string keys.
    index = ValueHash{}(event.payload[spec_.partition_field]) %
            workers_.size();
  }
  return workers_[index].get();
}

void ParallelTPStream::Push(const Event& event) {
  Worker* worker = RouteTo(event);
  AppendCopy(&worker->pending, event);
  if (worker->pending.count >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::Push(Event&& event) {
  Worker* worker = RouteTo(event);
  AppendSwap(&worker->pending, std::move(event));
  if (worker->pending.count >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(std::move(event));
}

void ParallelTPStream::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void ParallelTPStream::Flush() {
  AssertSingleProducer();
  FlushInternal();
}

void ParallelTPStream::FlushInternal() {
  for (auto& worker : workers_) Submit(worker.get());
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->drained.wait(lock, [w = worker.get()] {
      return w->ring.Empty() && w->idle.load(std::memory_order_relaxed);
    });
    worker->depth_gauge->Set(0.0);
  }
}

void ParallelTPStream::Reset() {
  AssertSingleProducer();
  // Quiesce: after the flush every worker has published its engine state
  // and parked (the drained-wait re-acquired its mutex after the idle
  // transition), so the producer may mutate the engines directly.
  FlushInternal();
  events_ctr_->Reset();
  for (auto& worker : workers_) {
    worker->engine->Reset();
    worker->matches_ctr->Inc(-worker->last_matches);
    worker->last_matches = 0;
    worker->partitions_ctr->Inc(-worker->last_partitions);
    worker->last_partitions = 0;
  }
}

void ParallelTPStream::Checkpoint(ckpt::Writer& w) {
  AssertSingleProducer();
  FlushInternal();  // quiescent point: see Reset() for the hand-off
  w.Envelope(static_cast<uint64_t>(num_events()));
  const size_t cookie = w.BeginSection(ckpt::Tag::kParallel);
  w.U32(static_cast<uint32_t>(workers_.size()));
  for (const auto& worker : workers_) worker->engine->Checkpoint(w);
  w.EndSection(cookie);
}

Status ParallelTPStream::Restore(ckpt::Reader& r, uint64_t* offset) {
  AssertSingleProducer();
  FlushInternal();  // quiescent point: see Reset() for the hand-off
  uint64_t off = 0;
  Status status = r.Envelope(&off);
  if (!status.ok()) return status;
  const size_t end = r.BeginSection(ckpt::Tag::kParallel);
  const uint32_t num_workers = r.U32();
  if (r.ok() && num_workers != workers_.size()) {
    status = Status::InvalidArgument(
        "checkpoint: worker count mismatch (partition-to-worker routing "
        "depends on num_workers)");
    return status;
  }
  for (auto& worker : workers_) {
    status = worker->engine->Restore(r);
    if (!status.ok()) return status;
  }
  status = r.EndSection(end);
  if (!status.ok()) return status;
  // Re-base the published counters on the restored engines so the
  // any-thread getters are exact immediately.
  events_ctr_->Inc(static_cast<int64_t>(off) - events_ctr_->value());
  for (auto& worker : workers_) {
    worker->matches_ctr->Inc(worker->engine->num_matches() -
                             worker->last_matches);
    worker->last_matches = worker->engine->num_matches();
    const int64_t partitions =
        static_cast<int64_t>(worker->engine->num_partitions());
    worker->partitions_ctr->Inc(partitions - worker->last_partitions);
    worker->last_partitions = partitions;
  }
  if (offset != nullptr) *offset = off;
  return Status::OK();
}

size_t ParallelTPStream::num_partitions() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->partitions_ctr->value();
  }
  return static_cast<size_t>(total);
}

int64_t ParallelTPStream::num_matches() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->matches_ctr->value();
  }
  return total;
}

int64_t ParallelTPStream::shed_batches() const {
  int64_t total = shed_batches_ctr_->value();
  for (const auto& worker : workers_) {
    total += worker->shed_batches_ctr->value();
  }
  return total;
}

int64_t ParallelTPStream::shed_events() const {
  int64_t total = shed_events_ctr_->value();
  for (const auto& worker : workers_) {
    total += worker->shed_events_ctr->value();
  }
  return total;
}

obs::MetricsSnapshot ParallelTPStream::Metrics() const {
  obs::MetricsSnapshot snapshot = producer_registry_.Snapshot();
  for (const auto& worker : workers_) {
    snapshot.Merge(worker->registry.Snapshot());
  }
  return snapshot;
}

}  // namespace parallel
}  // namespace tpstream
