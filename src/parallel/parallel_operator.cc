#include "parallel/parallel_operator.h"

#include <cassert>

namespace tpstream {
namespace parallel {

ParallelTPStream::ParallelTPStream(QuerySpec spec, Options options,
                                   TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(options),
      output_(std::move(output)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.batch_size < 1) options_.batch_size = 1;

  events_ctr_ = producer_registry_.GetCounter("parallel.events");
  batches_ctr_ = producer_registry_.GetCounter("parallel.batches");
  merge_stalls_ctr_ = producer_registry_.GetCounter("parallel.merge_stalls");

  const bool engine_metrics = options_.operator_options.metrics != nullptr;
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(options_.batch_size);
    worker->matches_ctr = worker->registry.GetCounter("parallel.matches");
    worker->partitions_ctr =
        worker->registry.GetCounter("parallel.partitions");
    worker->depth_gauge = producer_registry_.GetGauge(
        "parallel.queue_depth.w" + std::to_string(i));
    // Each worker engine records into the worker's own registry so that
    // no metric is written from two threads (merge-on-read).
    TPStreamOperator::Options op_options = options_.operator_options;
    op_options.metrics = engine_metrics ? &worker->registry : nullptr;
    worker->engine = std::make_unique<PartitionedTPStream>(
        spec_, op_options, [this](const Event& e) {
          std::lock_guard<std::mutex> lock(output_mutex_);
          if (output_) output_(e);
        });
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
}

ParallelTPStream::~ParallelTPStream() {
  Flush();
  // Shutdown ordering: every worker is marked stopped before any join, so
  // the joins proceed concurrently instead of serializing one wake-up at
  // a time. Worker loops only exit with an empty queue (and Flush() just
  // emptied them), so nothing is dropped.
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->stop = true;
  }
  for (auto& worker : workers_) worker->wake.notify_one();
  for (auto& worker : workers_) worker->thread.join();
}

void ParallelTPStream::WorkerLoop(Worker* worker) {
  std::vector<Event> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(worker->mutex);
      worker->wake.wait(
          lock, [worker] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty() && worker->stop) return;
      batch.swap(worker->queue);
      worker->busy = true;
    }
    for (const Event& event : batch) {
      worker->engine->Push(event);
    }
    batch.clear();
    // Publish engine statistics before announcing the batch done: a
    // reader synchronizing through Flush() (which re-acquires this
    // worker's mutex) then observes exact values. Concurrent readers see
    // a monotone snapshot at batch granularity. Published as counter
    // deltas into the worker-local registry so they merge with the other
    // workers' on read.
    worker->matches_ctr->Inc(worker->engine->num_matches() -
                             worker->last_matches);
    worker->last_matches = worker->engine->num_matches();
    const int64_t partitions =
        static_cast<int64_t>(worker->engine->num_partitions());
    worker->partitions_ctr->Inc(partitions - worker->last_partitions);
    worker->last_partitions = partitions;
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->busy = false;
    }
    worker->drained.notify_all();
  }
}

void ParallelTPStream::Submit(Worker* worker) {
  if (worker->pending.empty()) return;
  batches_ctr_->Inc();
  worker->depth_gauge->Set(static_cast<double>(worker->pending.size()));
  {
    std::unique_lock<std::mutex> lock(worker->mutex);
    // Keep queues bounded: wait until the previous hand-off was consumed.
    if (!worker->queue.empty()) {
      merge_stalls_ctr_->Inc();
      worker->drained.wait(lock, [worker] { return worker->queue.empty(); });
    }
    worker->queue.swap(worker->pending);
  }
  worker->wake.notify_one();
  worker->pending.clear();
  worker->pending.reserve(options_.batch_size);
}

void ParallelTPStream::AssertSingleProducer() const {
#ifndef NDEBUG
  std::thread::id unclaimed{};
  const std::thread::id self = std::this_thread::get_id();
  if (!producer_.compare_exchange_strong(unclaimed, self,
                                         std::memory_order_relaxed) &&
      unclaimed != self) {
    assert(false &&
           "ParallelTPStream: Push()/Flush() called from a second thread; "
           "the producer side is single-threaded by contract");
  }
#endif
}

ParallelTPStream::Worker* ParallelTPStream::RouteTo(const Event& event) {
  AssertSingleProducer();
  events_ctr_->Inc();
  size_t index = 0;
  if (spec_.partition_field >= 0 && workers_.size() > 1) {
    // Hash the typed value directly (ValueHash): no per-event ToString()
    // materialization for double/bool/string keys.
    index = ValueHash{}(event.payload[spec_.partition_field]) %
            workers_.size();
  }
  return workers_[index].get();
}

void ParallelTPStream::Push(const Event& event) {
  Worker* worker = RouteTo(event);
  worker->pending.push_back(event);
  if (worker->pending.size() >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::Push(Event&& event) {
  Worker* worker = RouteTo(event);
  worker->pending.push_back(std::move(event));
  if (worker->pending.size() >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::PushBatch(std::span<Event> events) {
  for (Event& event : events) Push(std::move(event));
}

void ParallelTPStream::PushBatch(std::span<const Event> events) {
  for (const Event& event : events) Push(event);
}

void ParallelTPStream::Flush() {
  AssertSingleProducer();
  for (auto& worker : workers_) Submit(worker.get());
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->drained.wait(lock, [w = worker.get()] {
      return w->queue.empty() && !w->busy;
    });
  }
}

size_t ParallelTPStream::num_partitions() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->partitions_ctr->value();
  }
  return static_cast<size_t>(total);
}

int64_t ParallelTPStream::num_matches() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->matches_ctr->value();
  }
  return total;
}

obs::MetricsSnapshot ParallelTPStream::Metrics() const {
  obs::MetricsSnapshot snapshot = producer_registry_.Snapshot();
  for (const auto& worker : workers_) {
    snapshot.Merge(worker->registry.Snapshot());
  }
  return snapshot;
}

}  // namespace parallel
}  // namespace tpstream
