#include "parallel/parallel_operator.h"

#include <functional>

namespace tpstream {
namespace parallel {

ParallelTPStream::ParallelTPStream(QuerySpec spec, Options options,
                                   TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(options),
      output_(std::move(output)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(options_.batch_size);
    worker->engine = std::make_unique<PartitionedTPStream>(
        spec_, options_.operator_options, [this](const Event& e) {
          std::lock_guard<std::mutex> lock(output_mutex_);
          if (output_) output_(e);
        });
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
}

ParallelTPStream::~ParallelTPStream() {
  Flush();
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->stop = true;
    }
    worker->wake.notify_one();
    worker->thread.join();
  }
}

void ParallelTPStream::WorkerLoop(Worker* worker) {
  std::vector<Event> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(worker->mutex);
      worker->wake.wait(
          lock, [worker] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty() && worker->stop) return;
      batch.swap(worker->queue);
      worker->busy = true;
    }
    for (const Event& event : batch) {
      worker->engine->Push(event);
    }
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->busy = false;
    }
    worker->drained.notify_all();
  }
}

void ParallelTPStream::Submit(Worker* worker) {
  if (worker->pending.empty()) return;
  {
    std::unique_lock<std::mutex> lock(worker->mutex);
    // Keep queues bounded: wait until the previous hand-off was consumed.
    worker->drained.wait(lock, [worker] { return worker->queue.empty(); });
    worker->queue.swap(worker->pending);
  }
  worker->wake.notify_one();
  worker->pending.clear();
  worker->pending.reserve(options_.batch_size);
}

void ParallelTPStream::Push(const Event& event) {
  ++num_events_;
  size_t index = 0;
  if (spec_.partition_field >= 0 && workers_.size() > 1) {
    const Value& key = event.payload[spec_.partition_field];
    const uint64_t hash =
        key.type() == ValueType::kInt
            ? std::hash<int64_t>{}(key.AsInt())
            : std::hash<std::string>{}(key.ToString());
    index = hash % workers_.size();
  }
  Worker* worker = workers_[index].get();
  worker->pending.push_back(event);
  if (worker->pending.size() >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::Flush() {
  for (auto& worker : workers_) Submit(worker.get());
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->drained.wait(lock, [w = worker.get()] {
      return w->queue.empty() && !w->busy;
    });
  }
}

size_t ParallelTPStream::num_partitions() const {
  size_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->engine->num_partitions();
  }
  return total;
}

int64_t ParallelTPStream::num_matches() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->engine->num_matches();
  }
  return total;
}

}  // namespace parallel
}  // namespace tpstream
