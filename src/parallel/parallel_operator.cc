#include "parallel/parallel_operator.h"

#include <cassert>

namespace tpstream {
namespace parallel {

ParallelTPStream::ParallelTPStream(QuerySpec spec, Options options,
                                   TPStreamOperator::OutputCallback output)
    : spec_(std::move(spec)),
      options_(options),
      output_(std::move(output)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.batch_size < 1) options_.batch_size = 1;
  workers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>(options_.batch_size);
    worker->engine = std::make_unique<PartitionedTPStream>(
        spec_, options_.operator_options, [this](const Event& e) {
          std::lock_guard<std::mutex> lock(output_mutex_);
          if (output_) output_(e);
        });
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
}

ParallelTPStream::~ParallelTPStream() {
  Flush();
  // Shutdown ordering: every worker is marked stopped before any join, so
  // the joins proceed concurrently instead of serializing one wake-up at
  // a time. Worker loops only exit with an empty queue (and Flush() just
  // emptied them), so nothing is dropped.
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->stop = true;
  }
  for (auto& worker : workers_) worker->wake.notify_one();
  for (auto& worker : workers_) worker->thread.join();
}

void ParallelTPStream::WorkerLoop(Worker* worker) {
  std::vector<Event> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(worker->mutex);
      worker->wake.wait(
          lock, [worker] { return worker->stop || !worker->queue.empty(); });
      if (worker->queue.empty() && worker->stop) return;
      batch.swap(worker->queue);
      worker->busy = true;
    }
    for (const Event& event : batch) {
      worker->engine->Push(event);
    }
    batch.clear();
    // Publish engine statistics before announcing the batch done: a
    // reader synchronizing through Flush() (which re-acquires this
    // worker's mutex) then observes exact values. Concurrent readers see
    // a monotone snapshot at batch granularity.
    worker->published_matches.store(worker->engine->num_matches(),
                                    std::memory_order_relaxed);
    worker->published_partitions.store(worker->engine->num_partitions(),
                                       std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      worker->busy = false;
    }
    worker->drained.notify_all();
  }
}

void ParallelTPStream::Submit(Worker* worker) {
  if (worker->pending.empty()) return;
  {
    std::unique_lock<std::mutex> lock(worker->mutex);
    // Keep queues bounded: wait until the previous hand-off was consumed.
    worker->drained.wait(lock, [worker] { return worker->queue.empty(); });
    worker->queue.swap(worker->pending);
  }
  worker->wake.notify_one();
  worker->pending.clear();
  worker->pending.reserve(options_.batch_size);
}

void ParallelTPStream::AssertSingleProducer() const {
#ifndef NDEBUG
  std::thread::id unclaimed{};
  const std::thread::id self = std::this_thread::get_id();
  if (!producer_.compare_exchange_strong(unclaimed, self,
                                         std::memory_order_relaxed) &&
      unclaimed != self) {
    assert(false &&
           "ParallelTPStream: Push()/Flush() called from a second thread; "
           "the producer side is single-threaded by contract");
  }
#endif
}

void ParallelTPStream::Push(const Event& event) {
  AssertSingleProducer();
  num_events_.fetch_add(1, std::memory_order_relaxed);
  size_t index = 0;
  if (spec_.partition_field >= 0 && workers_.size() > 1) {
    // Hash the typed value directly (ValueHash): no per-event ToString()
    // materialization for double/bool/string keys.
    index = ValueHash{}(event.payload[spec_.partition_field]) %
            workers_.size();
  }
  Worker* worker = workers_[index].get();
  worker->pending.push_back(event);
  if (worker->pending.size() >= options_.batch_size) Submit(worker);
}

void ParallelTPStream::Flush() {
  AssertSingleProducer();
  for (auto& worker : workers_) Submit(worker.get());
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->drained.wait(lock, [w = worker.get()] {
      return w->queue.empty() && !w->busy;
    });
  }
}

size_t ParallelTPStream::num_partitions() const {
  size_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->published_partitions.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t ParallelTPStream::num_matches() const {
  int64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->published_matches.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace parallel
}  // namespace tpstream
