#ifndef TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
#define TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/partitioned_operator.h"

namespace tpstream {
namespace parallel {

/// Partition-parallel TPStream execution — the paper's second future-work
/// item (Section 7): partitions (PARTITION BY keys) are hashed onto a
/// fixed set of worker threads, each running an independent
/// PartitionedTPStream over its share of the keys. Because partitions are
/// evaluated independently by definition, results are identical to the
/// sequential operator (verified by tests), while ingestion scales with
/// the number of workers.
///
/// Threading contract: Push() is called from a single producer thread;
/// the output callback fires on worker threads and is serialized by an
/// internal mutex (so a plain callback is safe, at the cost of contention
/// for match-heavy queries).
class ParallelTPStream {
 public:
  struct Options {
    int num_workers = 2;
    /// Events are handed to workers in batches to amortize queue
    /// synchronization.
    size_t batch_size = 256;
    TPStreamOperator::Options operator_options;
  };

  ParallelTPStream(QuerySpec spec, Options options,
                   TPStreamOperator::OutputCallback output);
  ~ParallelTPStream();

  ParallelTPStream(const ParallelTPStream&) = delete;
  ParallelTPStream& operator=(const ParallelTPStream&) = delete;

  /// Routes one event to its partition's worker. Timestamps must be
  /// non-decreasing globally (strictly increasing per partition).
  void Push(const Event& event);

  /// Drains all queues and blocks until every worker is idle. Must be
  /// called before reading aggregate results; also called by the
  /// destructor.
  void Flush();

  int64_t num_matches() const;
  int64_t num_events() const { return num_events_; }
  size_t num_partitions() const;

 private:
  struct Worker {
    explicit Worker(size_t reserve) { pending.reserve(reserve); }

    std::unique_ptr<PartitionedTPStream> engine;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable drained;
    std::vector<Event> pending;  // producer-side batch (unsynchronized)
    std::vector<Event> queue;    // handed over under the mutex
    bool busy = false;
    bool stop = false;
  };

  void WorkerLoop(Worker* worker);
  void Submit(Worker* worker);

  QuerySpec spec_;
  Options options_;
  TPStreamOperator::OutputCallback output_;
  std::mutex output_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  int64_t num_events_ = 0;
};

}  // namespace parallel
}  // namespace tpstream

#endif  // TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
