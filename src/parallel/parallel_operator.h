#ifndef TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
#define TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/partitioned_operator.h"
#include "obs/metrics.h"

namespace tpstream {
namespace parallel {

/// Partition-parallel TPStream execution — the paper's second future-work
/// item (Section 7): partitions (PARTITION BY keys) are hashed onto a
/// fixed set of worker threads, each running an independent
/// PartitionedTPStream over its share of the keys. Because partitions are
/// evaluated independently by definition, results are identical to the
/// sequential operator (verified by tests), while ingestion scales with
/// the number of workers.
///
/// Threading contract (see docs/architecture.md "Concurrency contract"):
///  * Push() and Flush() must be called from a single producer thread;
///    debug builds assert this. Per-partition timestamp ordering is the
///    producer's responsibility (see Push()).
///  * Each worker thread exclusively owns its engine; no engine state is
///    shared across threads. The output callback fires on worker threads
///    and is serialized by an internal mutex (so a plain callback is
///    safe, at the cost of contention for match-heavy queries).
///  * num_matches() / num_partitions() / num_events() may be called from
///    any thread at any time: they read per-worker registry counters
///    published after every completed batch. While ingestion is running
///    they trail the live engines by at most one in-flight batch per
///    worker (and are monotone); once Flush() has returned they are
///    exact.
///  * Observability follows the merge-on-read design: every worker owns a
///    private obs::MetricsRegistry its engine records into (no cross-
///    thread metric writes), plus one producer-side registry for the
///    routing-layer metrics. Metrics() merges all of them into one
///    snapshot; the same staleness/exactness rules as above apply.
class ParallelTPStream {
 public:
  struct Options {
    int num_workers = 2;
    /// Events are handed to workers in batches to amortize queue
    /// synchronization.
    size_t batch_size = 256;
    /// `operator_options.metrics` acts as an enable flag only: when
    /// non-null, every worker engine is instrumented into its *own*
    /// worker-local registry (never into the supplied registry, which
    /// would funnel every worker's writes through shared gauges); read
    /// the merged result — engine metrics plus the routing-layer
    /// `parallel.*` metrics — with Metrics().
    TPStreamOperator::Options operator_options;
  };

  ParallelTPStream(QuerySpec spec, Options options,
                   TPStreamOperator::OutputCallback output);

  /// Flushes outstanding batches, then stops and joins every worker.
  /// Workers only exit once their queue is empty, so no event or match
  /// is dropped. Must run on the producer thread (it flushes).
  ~ParallelTPStream();

  ParallelTPStream(const ParallelTPStream&) = delete;
  ParallelTPStream& operator=(const ParallelTPStream&) = delete;

  /// Routes one event to its partition's worker (allocation-free typed
  /// hashing, see ValueHash). Single producer only; timestamps must be
  /// non-decreasing globally (strictly increasing per partition).
  void Push(const Event& event);

  /// Move overload: the event payload is moved into the worker's pending
  /// batch instead of copied — the zero-copy hand-off for producers that
  /// own their events. Same contract as Push(const Event&).
  void Push(Event&& event);

  /// Batched ingestion: routes the events in order, equivalent to one
  /// Push() per event (differential-tested). The mutable-span overload
  /// moves each event's payload into the worker batches, leaving the
  /// caller's storage with moved-from events for reuse.
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Drains all queues and blocks until every worker is idle. After it
  /// returns, all matches concluded by pushed events have been delivered
  /// and the statistics getters are exact. Idempotent; also called by
  /// the destructor. Single producer only.
  void Flush();

  /// Total matches across workers. Safe from any thread; exact after
  /// Flush(), otherwise a recent (monotone) snapshot.
  int64_t num_matches() const;

  /// Events accepted by Push(). Safe from any thread.
  int64_t num_events() const { return events_ctr_->value(); }

  /// Total partitions across workers. Safe from any thread; exact after
  /// Flush(), otherwise a recent (monotone) snapshot.
  size_t num_partitions() const;

  /// Merged observability snapshot: producer registry + every worker's
  /// registry (counters/histograms add, gauges sum). Safe from any
  /// thread; exact once Flush() has returned.
  obs::MetricsSnapshot Metrics() const;

 private:
  struct Worker {
    explicit Worker(size_t reserve) { pending.reserve(reserve); }

    /// Worker-local metrics: the engine (when instrumented) and the
    /// batch-publish counters below record here; only this worker's
    /// thread writes, any thread may snapshot (merge-on-read).
    obs::MetricsRegistry registry;
    std::unique_ptr<PartitionedTPStream> engine;  // worker-thread-owned
    std::thread thread;
    std::mutex mutex;
    std::condition_variable wake;
    std::condition_variable drained;
    std::vector<Event> pending;  // producer-side batch (unsynchronized)
    std::vector<Event> queue;    // handed over under the mutex
    bool busy = false;
    bool stop = false;
    /// Engine statistics re-published into `registry` by the worker
    /// thread after every completed batch (counter handles resolved at
    /// construction); readable from any thread without the mutex.
    obs::Counter* matches_ctr = nullptr;
    obs::Counter* partitions_ctr = nullptr;
    /// Producer-registry gauge: queue depth at the last hand-off.
    obs::Gauge* depth_gauge = nullptr;
    /// Worker-thread-local: engine totals at the last publish (delta
    /// source for the counters above).
    int64_t last_matches = 0;
    int64_t last_partitions = 0;
  };

  void WorkerLoop(Worker* worker);
  void Submit(Worker* worker);
  /// Shared routing step of the Push overloads: counts the event and
  /// picks its partition's worker.
  Worker* RouteTo(const Event& event);
  /// Debug-build check that Push()/Flush() stay on one thread.
  void AssertSingleProducer() const;

  QuerySpec spec_;
  Options options_;
  TPStreamOperator::OutputCallback output_;
  std::mutex output_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Routing-layer metrics; written by the producer thread only.
  obs::MetricsRegistry producer_registry_;
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* merge_stalls_ctr_ = nullptr;
  /// First thread to call Push()/Flush(); debug-only enforcement.
  mutable std::atomic<std::thread::id> producer_{};
};

}  // namespace parallel
}  // namespace tpstream

#endif  // TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
