#ifndef TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
#define TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/serde.h"
#include "core/partitioned_operator.h"
#include "obs/metrics.h"
#include "parallel/spsc_ring.h"
#include "robust/dead_letter.h"
#include "robust/overload_policy.h"

namespace tpstream {
namespace parallel {

/// A batch of events in flight between the producer and one worker. The
/// `events` vector is storage that is recycled through the worker's free
/// ring: only the first `count` elements are live (a recycled vector may
/// be longer than the batch refilled into it), and refills overwrite the
/// existing Events in place — reusing their payload capacity — so the
/// steady state allocates nothing per event (PR 3's ingestion contract).
struct EventBatch {
  std::vector<Event> events;
  size_t count = 0;
};

/// Partition-parallel TPStream execution — the paper's second future-work
/// item (Section 7): partitions (PARTITION BY keys) are hashed onto a
/// fixed set of worker threads, each running an independent
/// PartitionedTPStream over its share of the keys. Because partitions are
/// evaluated independently by definition, results are identical to the
/// sequential operator (verified by tests), while ingestion scales with
/// the number of workers.
///
/// Threading contract (see docs/architecture.md "Concurrency contract"):
///  * Push() and Flush() must be called from a single producer thread;
///    debug builds assert this. The destructor is exempt: once the
///    producer has stopped pushing, the operator may be destroyed from
///    any thread (it releases the producer claim before its final
///    flush). Per-partition timestamp ordering is the producer's
///    responsibility (see Push()).
///  * Batches are handed to each worker through a bounded lock-free SPSC
///    ring (SpscRing, depth Options::ring_capacity) — up to
///    `ring_capacity` batches may be in flight per worker, so a
///    temporarily slow worker no longer head-of-line-blocks the
///    producer. Only when a ring is full does the producer back-pressure
///    (adaptive spin, then park on a condition variable; counted as
///    `parallel.ring_full`). Batch storage is recycled through a free
///    ring, keeping the producer path allocation-free in steady state.
///  * Each worker thread exclusively owns its engine; no engine state is
///    shared across threads. Matches are collected into a worker-local
///    buffer (no locking while a batch is processed) and drained in
///    order at batch boundaries; the output callback fires on worker
///    threads serialized by an internal mutex, so a plain callback is
///    safe and workers never block each other mid-batch. Per-partition
///    emission order equals the sequential operator's (a partition lives
///    on exactly one worker, and drains preserve engine order).
///  * num_matches() / num_partitions() / num_events() may be called from
///    any thread at any time: they read per-worker registry counters
///    published after every completed batch. While ingestion is running
///    they trail the live engines by at most the in-flight batches per
///    worker (and are monotone); once Flush() has returned they are
///    exact.
///  * Observability follows the merge-on-read design: every worker owns a
///    private obs::MetricsRegistry its engine records into (no cross-
///    thread metric writes), plus one producer-side registry for the
///    routing-layer metrics. Metrics() merges all of them into one
///    snapshot; the same staleness/exactness rules as above apply.
class ParallelTPStream {
 public:
  struct Options {
    int num_workers = 2;
    /// Events are handed to workers in batches to amortize queue
    /// synchronization.
    size_t batch_size = 256;
    /// Bound (in batches, rounded up to a power of two) of each worker's
    /// SPSC hand-off ring. Larger rings absorb more skew before the
    /// producer back-pressures; smaller rings bound memory and staleness.
    size_t ring_capacity = 8;
    /// `operator_options.metrics` acts as an enable flag only: when
    /// non-null, every worker engine is instrumented into its *own*
    /// worker-local registry (never into the supplied registry, which
    /// would funnel every worker's writes through shared gauges); read
    /// the merged result — engine metrics plus the routing-layer
    /// `parallel.*` metrics — with Metrics().
    TPStreamOperator::Options operator_options;
    /// What the producer does when a worker's ring is full (Degradation
    /// contract, docs/architecture.md):
    ///  * kBlock (default): adaptive spin, then park until a slot frees —
    ///    lossless, unbounded push latency under sustained overload.
    ///  * kDropNewest: spin at most `shed_spin` iterations, then shed the
    ///    batch being submitted. Push latency is bounded; the freshest
    ///    data is lost first.
    ///  * kDropOldest: grant the worker a drop credit (it discards the
    ///    next batch it pops instead of processing it) and spin for the
    ///    freed slot; if the worker is stalled mid-batch the credit is
    ///    revoked and the new batch is shed instead (counted separately
    ///    as `parallel.drop_oldest_fallback`). Push latency is bounded;
    ///    the stalest queued data is lost first.
    /// Shed batches are counted (`parallel.shed_batches` /
    /// `parallel.shed_events`) and quarantined to `dead_letter` when set.
    robust::BackpressurePolicy backpressure =
        robust::BackpressurePolicy::kBlock;
    /// Optional quarantine sink for shed batches. Must be thread-safe:
    /// the producer (drop-newest, fallback) and worker threads
    /// (drop-oldest) both deliver to it. Not owned; must outlive the
    /// operator.
    robust::DeadLetterSink* dead_letter = nullptr;
    /// Spin budget (iterations) a drop policy waits for a slot before
    /// shedding. Bounds the producer's worst-case push latency; irrelevant
    /// under kBlock.
    int shed_spin = 256;
  };

  ParallelTPStream(QuerySpec spec, Options options,
                   TPStreamOperator::OutputCallback output);

  /// Flushes outstanding batches, then stops and joins every worker.
  /// Workers only exit once their ring is empty, so no event or match is
  /// dropped. May run on any thread once the producer has stopped
  /// pushing: the destructor releases the producer claim before its
  /// final flush.
  ~ParallelTPStream();

  ParallelTPStream(const ParallelTPStream&) = delete;
  ParallelTPStream& operator=(const ParallelTPStream&) = delete;

  /// Routes one event to its partition's worker (allocation-free typed
  /// hashing, see ValueHash). Single producer only; timestamps must be
  /// non-decreasing globally (strictly increasing per partition).
  void Push(const Event& event);

  /// Move overload: the event's payload storage is swapped into the
  /// worker's pending batch (the caller's event receives the recycled
  /// slot storage back, ready for reuse) — the zero-copy hand-off for
  /// producers that own their events. Same contract as
  /// Push(const Event&).
  void Push(Event&& event);

  /// Batched ingestion: routes the events in order, equivalent to one
  /// Push() per event (differential-tested). The mutable-span overload
  /// moves each event's payload into the worker batches, leaving the
  /// caller's storage with moved-from events for reuse.
  void PushBatch(std::span<Event> events);
  void PushBatch(std::span<const Event> events);

  /// Drains all rings and blocks until every worker is idle. After it
  /// returns, all matches concluded by pushed events have been delivered
  /// and the statistics getters are exact. Idempotent; also called by
  /// the destructor. Single producer only.
  void Flush();

  /// Returns the stream to its freshly-constructed state: drains every
  /// ring (Flush), then resets each worker's engine and rewinds the
  /// published event/match/partition counters. Single producer only;
  /// the worker threads stay parked throughout (no batch is in flight
  /// after the flush, so the producer may touch the engines — the
  /// drained-wait's mutex re-acquisition orders the hand-off).
  void Reset();

  /// Quiescent checkpoint: flushes (all rings drained, every worker
  /// idle), then serializes each worker's partitioned engine in worker
  /// order, stamped with the event-log offset (= num_events()). Single
  /// producer only — counts as a producer call.
  void Checkpoint(ckpt::Writer& w);

  /// Restores a checkpoint taken on a stream with the same worker count
  /// (partition-to-worker routing depends on it) and the same query and
  /// options. Quiesces first; single producer only. On success,
  /// `*offset` (when non-null) receives the event-log offset to replay
  /// from. On error the stream must be Reset() or discarded.
  Status Restore(ckpt::Reader& r, uint64_t* offset = nullptr);

  /// Total matches across workers. Safe from any thread; exact after
  /// Flush(), otherwise a recent (monotone) snapshot.
  int64_t num_matches() const;

  /// Events accepted by Push(). Safe from any thread.
  int64_t num_events() const { return events_ctr_->value(); }

  /// Total partitions across workers. Safe from any thread; exact after
  /// Flush(), otherwise a recent (monotone) snapshot.
  size_t num_partitions() const;

  /// Merged observability snapshot: producer registry + every worker's
  /// registry (counters/histograms add, gauges sum). Safe from any
  /// thread; exact once Flush() has returned.
  obs::MetricsSnapshot Metrics() const;

  /// Batches / events shed by the backpressure policy (producer-side
  /// drop-newest and fallback sheds plus worker-side drop-oldest
  /// discards). Always 0 under kBlock. Safe from any thread; exact after
  /// Flush().
  int64_t shed_batches() const;
  int64_t shed_events() const;

 private:
  struct Worker {
    Worker(size_t ring_capacity, size_t batch_size);

    /// Worker-local metrics: the engine (when instrumented) and the
    /// batch-publish counters below record here; only this worker's
    /// thread writes, any thread may snapshot (merge-on-read).
    obs::MetricsRegistry registry;
    std::unique_ptr<PartitionedTPStream> engine;  // worker-thread-owned
    std::thread thread;

    /// Lock-free hand-off: filled batches flow producer -> worker through
    /// `ring`; drained batch storage flows back worker -> producer
    /// through `free_ring` (sized ring_capacity + 2: one batch filling at
    /// the producer, `ring_capacity` in flight, one at the worker).
    SpscRing<EventBatch> ring;
    SpscRing<EventBatch> free_ring;

    /// Slow-path parking. The mutex guards `stop` and serializes the
    /// park/notify handshakes; the hot path never takes it.
    std::mutex mutex;
    std::condition_variable wake;      // worker parks: ring empty
    std::condition_variable not_full;  // producer parks: ring full
    std::condition_variable drained;   // Flush() waits: ring empty + idle
    bool stop = false;                 // guarded by mutex
    /// True while the worker is parked (or about to park) on `wake`; set
    /// under the mutex, read by the producer through a seq_cst fence
    /// (Dekker handshake, see the .cc) to decide whether to notify.
    std::atomic<bool> idle{false};
    /// Symmetric flag for the producer parked on `not_full`.
    std::atomic<bool> producer_parked{false};
    /// Drop-oldest hand-off: the producer grants a credit when it finds
    /// the ring full; the worker consumes it (CAS decrement) right after
    /// a pop and quarantines that batch instead of processing it. The
    /// producer revokes unconsumed credits once its push lands so an
    /// overload that resolves by normal draining drops nothing.
    std::atomic<int64_t> drop_credit{0};

    /// Producer-side batch being filled (recycled storage; only
    /// `pending.count` elements are live).
    EventBatch pending;
    /// Worker-side match buffer: the engine's output callback appends
    /// here lock-free; drained under the output mutex at batch
    /// boundaries. Storage recycled like `pending`.
    EventBatch local_matches;

    /// Engine statistics re-published into `registry` by the worker
    /// thread after every completed batch (counter handles resolved at
    /// construction); readable from any thread without the mutex.
    obs::Counter* matches_ctr = nullptr;
    obs::Counter* partitions_ctr = nullptr;
    /// Worker-registry shed accounting for drop-oldest discards (the
    /// producer-side sheds use the producer-registry twins; Metrics()
    /// merges both under the same names).
    obs::Counter* shed_batches_ctr = nullptr;
    obs::Counter* shed_events_ctr = nullptr;
    /// Producer-registry gauge: true ring occupancy (in batches) after
    /// the last hand-off / flush.
    obs::Gauge* depth_gauge = nullptr;
    /// Worker-thread-local: engine totals at the last publish (delta
    /// source for the counters above).
    int64_t last_matches = 0;
    int64_t last_partitions = 0;
  };

  void WorkerLoop(Worker* worker);
  void ProcessBatch(Worker* worker, EventBatch* batch);
  void Submit(Worker* worker);
  /// Slow path of Submit() once the first TryPush failed: applies the
  /// configured backpressure policy. Returns true when the batch entered
  /// the ring, false when it was shed (its storage is reusable).
  bool ResolveFullRing(Worker* worker, EventBatch* batch);
  /// Counts `batch` as shed (producer side) and quarantines its events
  /// to the dead-letter sink; resets the batch to empty-but-reusable.
  void ShedBatch(Worker* worker, EventBatch* batch, const char* detail);
  /// Shared routing step of the Push overloads: counts the event and
  /// picks its partition's worker.
  Worker* RouteTo(const Event& event);
  /// Flush body without the single-producer assertion (destructor path).
  void FlushInternal();
  /// Debug-build check that Push()/Flush() stay on one thread.
  void AssertSingleProducer() const;

  QuerySpec spec_;
  Options options_;
  TPStreamOperator::OutputCallback output_;
  std::mutex output_mutex_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Routing-layer metrics; written by the producer thread only.
  obs::MetricsRegistry producer_registry_;
  obs::Counter* events_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  /// Submits that found the ring full (producer spun or parked). The
  /// retired single-slot hand-off counted these as `merge_stalls`; that
  /// name is kept as an alias (incremented in lockstep) so existing
  /// exporters keep working.
  obs::Counter* ring_full_ctr_ = nullptr;
  obs::Counter* merge_stalls_ctr_ = nullptr;
  /// Free-ring misses: the producer could not recycle batch storage and
  /// had to allocate fresh (never happens in steady state; see Submit).
  obs::Counter* free_alloc_ctr_ = nullptr;
  /// Producer-side shed accounting (drop-newest sheds and drop-oldest
  /// fallbacks; the worker-side drop-oldest discards live in the worker
  /// registries under the same names).
  obs::Counter* shed_batches_ctr_ = nullptr;
  obs::Counter* shed_events_ctr_ = nullptr;
  /// Drop-oldest submits that had to shed the new batch because the
  /// worker was stalled mid-batch and never consumed the credit.
  obs::Counter* drop_oldest_fallback_ctr_ = nullptr;
  /// First thread to call Push()/Flush(); debug-only enforcement.
  mutable std::atomic<std::thread::id> producer_{};
};

}  // namespace parallel
}  // namespace tpstream

#endif  // TPSTREAM_PARALLEL_PARALLEL_OPERATOR_H_
